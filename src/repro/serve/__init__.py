"""``repro.serve`` — the asynchronous simulation job service.

The piece that turns "reproduce a figure" into "serve traffic": a
long-running HTTP service over :mod:`repro.runtime` that accepts
*declarative* sweep submissions (workloads × inputs × machine
configs, expanded server-side into content-hashed
:class:`~repro.runtime.task.SimTask` cells), queues them with
priorities and per-client quotas, executes them on a supervised
worker pool, and serves results idempotently: identical sweeps map to
the same content-addressed job, and completed cells are re-served
from the result cache — a million identical submissions cost one
simulation.

The moving parts, one per module:

* :mod:`~repro.serve.protocol` — the wire schema (``repro.serve/1``):
  sweep specs, server-side expansion, content-addressed job ids;
* :mod:`~repro.serve.jobs` — the job state machine (``PENDING →
  RUNNING → DONE/FAILED/CANCELLED``) and the on-disk journal that
  makes it resumable across server restarts;
* :mod:`~repro.serve.queue` — priority queue with per-client quotas;
* :mod:`~repro.serve.scheduler` — the supervised worker pool driving
  batches through the runtime executor (timeout / retry / serial
  fallback / worker-death requeue);
* :mod:`~repro.serve.server` — ``SimService`` + the stdlib
  ``ThreadingHTTPServer`` JSON API, including the chunked NDJSON
  progress stream;
* :mod:`~repro.serve.client` — a stdlib client (the CLI's
  ``submit`` / ``jobs`` / ``fetch`` commands are built on it).
"""

from __future__ import annotations

from .client import DEFAULT_URL, ServeClient, make_sweep
from .jobs import Job, JobState, JobStore
from .protocol import SERVE_SCHEMA, Submission, SweepSpec, job_id_for
from .queue import DEFAULT_QUOTA, JobQueue, QuotaError
from .scheduler import Scheduler
from .server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    DEFAULT_STATE_DIR,
    ServeHTTPServer,
    SimService,
    make_server,
)

__all__ = [
    "SERVE_SCHEMA",
    "SweepSpec",
    "Submission",
    "job_id_for",
    "Job",
    "JobState",
    "JobStore",
    "JobQueue",
    "QuotaError",
    "DEFAULT_QUOTA",
    "Scheduler",
    "SimService",
    "ServeHTTPServer",
    "make_server",
    "ServeClient",
    "make_sweep",
    "DEFAULT_URL",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_STATE_DIR",
]
