"""The job queue: priority ordering, per-client quotas, lazy cancel.

A small, exactly-specified core the scheduler drives:

* **priority**: higher ``priority`` pops first; ties pop in submission
  order (a monotonic sequence number keeps the heap stable).
* **quota**: each client may hold at most ``quota`` *active* jobs —
  queued or running — counted from :meth:`push` until :meth:`release`.
  Pushing past the quota raises :class:`QuotaError` (HTTP 429); jobs
  re-enqueued by crash recovery bypass enforcement so a restart never
  drops accepted work.
* **cancel**: queued entries are cancelled lazily — the id goes into a
  tombstone set and :meth:`pop` discards it on the way out (heap
  surgery under a lock is not worth it at this scale).
"""

from __future__ import annotations

import heapq
import threading
from collections import Counter

from ..errors import ServeError

#: default per-client active-job quota.
DEFAULT_QUOTA = 8


class QuotaError(ServeError):
    """The client already holds its full quota of active jobs."""


class JobQueue:
    """Thread-safe priority queue of job ids with client accounting."""

    def __init__(self, quota: int = DEFAULT_QUOTA) -> None:
        if quota < 1:
            raise ServeError(f"quota must be >= 1, got {quota}")
        self.quota = quota
        self._heap: list[tuple[int, int, str, str]] = []
        self._seq = 0
        self._queued: set[str] = set()
        self._tombstones: set[str] = set()
        self._active: Counter[str] = Counter()
        self._cond = threading.Condition()
        self._closed = False

    # ----------------------------------------------------------- lifecycle

    @property
    def accepting(self) -> bool:
        """Whether :meth:`push` will take new work (readiness probe)."""
        with self._cond:
            return not self._closed

    def close(self) -> None:
        """Stop accepting submissions (service shutdown); queued work
        already accepted still pops normally."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------ submit

    def push(self, job_id: str, *, client: str, priority: int = 0,
             enforce_quota: bool = True) -> None:
        """Enqueue a job and reserve one slot of the client's quota
        (held until :meth:`release`)."""
        with self._cond:
            if self._closed:
                raise ServeError("queue is closed to new submissions")
            if job_id in self._queued:
                return  # already waiting; keep its original position
            if enforce_quota and self._active[client] >= self.quota:
                raise QuotaError(
                    f"client {client!r} already has "
                    f"{self._active[client]} active jobs "
                    f"(quota {self.quota})")
            self._active[client] += 1
            self._seq += 1
            heapq.heappush(self._heap,
                           (-priority, self._seq, job_id, client))
            self._queued.add(job_id)
            self._tombstones.discard(job_id)
            self._cond.notify()

    # -------------------------------------------------------------- pop

    def pop(self, timeout: float | None = None) -> str | None:
        """The next job id by (priority, submission order), or ``None``
        on timeout.  Tombstoned (cancelled) entries are discarded in
        passing — whoever cancelled them already released their quota
        slot."""
        with self._cond:
            while True:
                while self._heap:
                    _, _, job_id, _client = heapq.heappop(self._heap)
                    self._queued.discard(job_id)
                    if job_id in self._tombstones:
                        self._tombstones.discard(job_id)
                        continue
                    return job_id
                if timeout is not None:
                    if not self._cond.wait(timeout):
                        return None
                    timeout = 0.0  # one wakeup, then drain or give up
                else:
                    self._cond.wait()

    # ------------------------------------------------------- accounting

    def _release_locked(self, client: str) -> None:
        self._active[client] -= 1
        if self._active[client] <= 0:
            del self._active[client]

    def release(self, client: str) -> None:
        """Return one quota slot (job finished, failed terminally, or
        was cancelled while queued)."""
        with self._cond:
            self._release_locked(client)

    def cancel(self, job_id: str) -> bool:
        """Tombstone a queued entry; returns whether it was queued.
        On True the caller owns the now-dead quota slot and must
        :meth:`release` it."""
        with self._cond:
            if job_id not in self._queued:
                return False
            self._tombstones.add(job_id)
            self._queued.discard(job_id)
            return True

    def active(self, client: str) -> int:
        with self._cond:
            return self._active[client]

    @property
    def depth(self) -> int:
        """Jobs currently waiting (excludes tombstoned entries)."""
        with self._cond:
            return len(self._queued)
