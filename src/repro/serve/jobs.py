"""Job records and the on-disk job journal.

A :class:`Job` is the persistent state machine of one accepted sweep::

    PENDING ──> RUNNING ──> DONE
       │           │ └────> FAILED
       │           ├──────> CANCELLED
       │           └──────> PENDING      (requeue after worker death,
       └─────────> CANCELLED              or recovery after a restart)

FAILED / CANCELLED additionally re-open to PENDING when the same sweep
is resubmitted.  Every transition and every executor progress event is
journaled by the :class:`JobStore` — one ``<id>.json`` record plus an
append-only ``<id>.events.jsonl`` per job — so a restarted server
resumes exactly where it stopped: RUNNING jobs demote to PENDING and
re-run, and their already-completed cells are re-served from the
result cache instead of being simulated again.
"""

from __future__ import annotations

import enum
import json
import logging
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import ServeError
from ..obs.logging import get_logger, log_event
from .protocol import SERVE_SCHEMA

_log = get_logger("serve.jobs")


class JobState(str, enum.Enum):
    """The lifecycle states of a job (string-valued for plain JSON)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


#: legal state-machine edges; everything else raises ServeError.
_TRANSITIONS = {
    JobState.PENDING: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED,
                       JobState.CANCELLED, JobState.PENDING},
    JobState.DONE: set(),
    JobState.FAILED: {JobState.PENDING},
    JobState.CANCELLED: {JobState.PENDING},
}


@dataclass
class Job:
    """One accepted sweep and everything known about its execution."""

    id: str
    client: str = "anon"
    priority: int = 0
    sweep: dict = field(default_factory=dict)
    cells: list[str] = field(default_factory=list)
    state: JobState = JobState.PENDING
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    completed: int = 0
    cached: int = 0
    simulated: int = 0
    failed: int = 0
    requeues: int = 0
    error: str | None = None
    telemetry: dict | None = None
    schema: str = SERVE_SCHEMA

    def __post_init__(self) -> None:
        self.state = JobState(self.state)

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def remaining(self) -> int:
        return self.total - self.completed - self.failed

    def advance(self, state: JobState | str) -> None:
        """Move to ``state``, enforcing the legal transitions."""
        state = JobState(state)
        if state not in _TRANSITIONS[self.state]:
            raise ServeError(
                f"job {self.id[:12]}: illegal transition "
                f"{self.state.value} -> {state.value}")
        self.state = state
        if state is JobState.RUNNING and self.started_at is None:
            self.started_at = time.time()
        if state.terminal:
            self.finished_at = time.time()

    def reopen(self) -> None:
        """Reset execution progress for a re-run (resubmit of a FAILED
        or CANCELLED job, or recovery of an interrupted RUNNING one).
        Completed cells live in the result cache, not here, so nothing
        is lost — the re-run serves them as cache hits."""
        self.advance(JobState.PENDING)
        self.completed = self.cached = self.simulated = self.failed = 0
        self.finished_at = None
        self.error = None

    def as_dict(self) -> dict:
        data = asdict(self)
        data["state"] = self.state.value
        data["total"] = self.total
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        fields = {k: v for k, v in data.items()
                  if k in cls.__dataclass_fields__}
        return cls(**fields)


class JobStore:
    """The journal: atomic job records + append-only event logs.

    Thread-safe; writers notify a condition variable on every event
    append so the HTTP event stream can block instead of busy-poll.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._event_cond = threading.Condition(self._lock)

    def path_for(self, job_id: str) -> Path:
        return self.root / f"{job_id}.json"

    def events_path(self, job_id: str) -> Path:
        return self.root / f"{job_id}.events.jsonl"

    # ------------------------------------------------------- job records

    def put(self, job: Job) -> None:
        path = self.path_for(job.id)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}")
        with self._lock:
            tmp.write_text(json.dumps(job.as_dict(), sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, path)

    def get(self, job_id: str) -> Job | None:
        try:
            data = json.loads(
                self.path_for(job_id).read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"corrupt job record {job_id[:12]}: {exc}") from exc
        return Job.from_dict(data)

    def delete(self, job_id: str) -> None:
        """Remove a job record and its event journal (submit rollback
        after a quota rejection)."""
        with self._lock:
            self.path_for(job_id).unlink(missing_ok=True)
            self.events_path(job_id).unlink(missing_ok=True)

    def list(self) -> list[Job]:
        jobs = []
        for path in self.root.glob("*.json"):
            if ".events" in path.name or ".tmp." in path.name:
                continue
            try:
                jobs.append(Job.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))))
            except (OSError, json.JSONDecodeError) as exc:
                log_event(_log, logging.WARNING,
                          "skipping corrupt job record",
                          record=path.name, error=str(exc))
                continue
        return sorted(jobs, key=lambda j: (j.created_at, j.id))

    def writable(self) -> bool:
        """Whether the journal directory accepts writes (readiness
        probe — a full or read-only disk must flip ``/readyz``)."""
        return self.root.is_dir() and os.access(self.root, os.W_OK)

    # ------------------------------------------------------ event journal

    def append_event(self, job_id: str, event: dict) -> None:
        line = json.dumps({"ts": time.time(), **event}, sort_keys=True)
        with self._event_cond:
            with self.events_path(job_id).open(
                    "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
            self._event_cond.notify_all()

    def events(self, job_id: str, since: int = 0) -> list[dict]:
        """Journaled events from line index ``since`` onward."""
        try:
            with self.events_path(job_id).open(
                    "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return []
        out = []
        for line in lines[since:]:
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail write; next read picks it up
        return out

    def wait_events(self, job_id: str, since: int = 0,
                    timeout: float = 1.0) -> list[dict]:
        """Like :meth:`events`, but block up to ``timeout`` seconds for
        something new to appear past ``since``."""
        deadline = time.monotonic() + timeout
        while True:
            fresh = self.events(job_id, since)
            if fresh:
                return fresh
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return []
            with self._event_cond:
                self._event_cond.wait(remaining)

    # ----------------------------------------------------------- recovery

    def recover(self) -> list[Job]:
        """Demote interrupted RUNNING jobs to PENDING and return every
        job that needs (re-)enqueueing, oldest first.  Called once at
        server startup before the scheduler starts."""
        pending = []
        for job in self.list():
            if job.state is JobState.RUNNING:
                job.reopen()
                job.requeues += 1
                self.put(job)
                self.append_event(job.id, {
                    "event": "recovered",
                    "message": "server restarted mid-job; requeued",
                })
                pending.append(job)
            elif job.state is JobState.PENDING:
                pending.append(job)
        return pending
