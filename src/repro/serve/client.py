"""A stdlib client for the simulation job service.

Everything the CLI, the examples and CI smoke tests need: submit a
declarative sweep, poll or stream a job, fetch its content-addressed
results.  Pure ``urllib`` — no dependencies beyond the standard
library, same as the server.

Usage::

    from repro.serve.client import ServeClient, make_sweep

    client = ServeClient("http://127.0.0.1:8321")
    job = client.submit(make_sweep(workloads=["spmv", "spkadd"]))
    job = client.wait(job["id"])
    records = client.result(job["id"])["records"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from ..errors import ServeError
from .server import DEFAULT_HOST, DEFAULT_PORT

#: default service URL, matching ``repro serve`` defaults.
DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


def make_sweep(*, workloads, inputs=None, scale="small",
               variants=("baseline", "tmu"), machines=None,
               seed=0) -> dict:
    """A sweep dict in the wire layout (validated server-side)."""
    sweep = {"workloads": list(workloads), "scale": scale,
             "variants": list(variants), "seed": seed}
    if inputs:
        sweep["inputs"] = list(inputs)
    if machines:
        sweep["machines"] = list(machines)
    return sweep


class ServeClient:
    """Thin JSON-over-HTTP client for one service endpoint."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- wire

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                    req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(
                    exc.read().decode("utf-8"))["error"]
            except Exception:  # noqa: BLE001 - non-JSON error body
                message = str(exc)
            raise ServeError(
                f"{method} {path} -> {exc.code}: {message}") from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServeError(
                f"cannot reach service at {self.base_url}: "
                f"{exc}") from exc

    # ------------------------------------------------------------ verbs

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, sweep: dict, *, client: str = "anon",
               priority: int = 0) -> dict:
        """Submit a sweep; returns the job dict (``_created`` carries
        whether this submission created the job or deduplicated onto
        an existing one)."""
        body = {"sweep": sweep, "client": client, "priority": priority}
        data = self._request("POST", "/v1/jobs", body)
        job = data["job"]
        job["_created"] = data["created"]
        return job

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST",
                             f"/v1/jobs/{job_id}/cancel")["job"]

    def events(self, job_id: str, since: int = 0) -> dict:
        return self._request(
            "GET", f"/v1/jobs/{job_id}/events?since={since}")

    # ----------------------------------------------------- conveniences

    def wait(self, job_id: str, *, timeout: float | None = None,
             poll: float = 0.3, on_event=None) -> dict:
        """Poll until the job reaches a terminal state; returns the
        final job dict.  ``on_event`` (if given) receives each new
        journal event along the way."""
        deadline = None if timeout is None else \
            time.monotonic() + timeout
        cursor = 0
        while True:
            if on_event is not None:
                data = self.events(job_id, since=cursor)
                for event in data["events"]:
                    on_event(event)
                cursor = data["next"]
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                if on_event is not None:
                    data = self.events(job_id, since=cursor)
                    for event in data["events"]:
                        on_event(event)
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id[:12]} still {job['state']} after "
                    f"{timeout}s")
            time.sleep(poll)

    def stream_events(self, job_id: str, since: int = 0):
        """Yield journal events from the chunked follow stream until
        the job completes."""
        url = (f"{self.base_url}/v1/jobs/{job_id}/events"
               f"?since={since}&follow=1")
        req = urllib.request.Request(
            url, headers={"Accept": "application/x-ndjson"})
        try:
            with urllib.request.urlopen(req) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise ServeError(
                f"event stream for {job_id[:12]} failed: "
                f"{exc.code}") from exc
