"""The scheduler: a supervised worker pool executing queued jobs.

Each worker thread pops a job, re-expands its journaled sweep into
cells and runs them in small batches through a
:class:`~repro.runtime.executor.Runtime` sharing the service-wide
:class:`~repro.runtime.cache.ResultCache` — so the per-cell
timeout/retry/serial-fallback policy, the process-pool fan-out and the
content-addressed idempotency all come from the runtime layer for
free.  Batching is what makes jobs *interruptible*: cancellation is
checked between batches, progress events flow per cell, and a job
interrupted anywhere resumes without re-simulating completed cells
(they are cache hits on the next attempt).

Supervision is two layers deep.  A worker that hits an unexpected
exception requeues its job (bounded by ``max_requeues``) instead of
losing it; a worker *thread* that dies outright is respawned by the
supervisor thread, and a whole-process death is covered by the
journal + :meth:`JobStore.recover` at the next startup.

When :mod:`repro.obs` telemetry is enabled the scheduler maintains the
service gauges — ``serve.queue_depth``, ``serve.inflight_cells``, and
per-client ``serve.client.<id>.{cells,cells_per_sec}`` — and each
finished job carries a ``repro.obs/1`` snapshot on its record.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable

from .. import obs
from ..errors import ServeError
from ..obs.logging import correlation, get_logger, log_event
from ..runtime.cache import NullCache, ResultCache
from ..runtime.executor import ProgressEvent, Runtime
from ..runtime.task import task_from_spec
from .jobs import Job, JobState, JobStore
from .protocol import Submission, SweepSpec, job_id_for
from .queue import JobQueue, QuotaError

_log = get_logger("serve.scheduler")

#: cells per executor batch: small enough that cancel latency and
#: journal granularity stay at "a few cells", large enough to amortize
#: pool fan-out.
DEFAULT_BATCH_SIZE = 8


class Scheduler:
    """Supervised execution of queued jobs over a shared runtime."""

    def __init__(self, store: JobStore, queue: JobQueue, *,
                 cache: ResultCache | NullCache | None = None,
                 jobs: int = 1, workers: int = 1,
                 timeout: float | None = None, retries: int = 1,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 max_requeues: int = 1,
                 runtime_factory: Callable[..., Runtime] | None = None,
                 store_path: str | None = None,
                 ) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.queue = queue
        self.workers = workers
        self.cache = cache if cache is not None else NullCache()
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.batch_size = max(1, batch_size)
        self.max_requeues = max_requeues
        self.store_path = store_path
        self._runtime_factory = runtime_factory or self._make_runtime
        self._stop = threading.Event()
        self._lock = threading.RLock()
        self._cancel_requested: set[str] = set()
        self._inflight: dict[str, int] = {}   # job id -> remaining cells
        self._threads: list[threading.Thread] = []
        self._supervisor: threading.Thread | None = None
        self._client_done: dict[str, tuple[int, float]] = {}

    def _make_runtime(self, progress) -> Runtime:
        return Runtime(jobs=self.jobs, cache=self.cache,
                       timeout=self.timeout, retries=self.retries,
                       progress=progress)

    # ------------------------------------------------------------ control

    def start(self) -> None:
        self._stop.clear()
        self._threads = [self._spawn(i) for i in range(self.workers)]
        self._supervisor = threading.Thread(
            target=self._supervise, name="serve-supervisor", daemon=True)
        self._supervisor.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        if self._supervisor is not None:
            self._supervisor.join(timeout)
        self._threads = []

    @property
    def alive(self) -> bool:
        """Whether the supervision loop is running (readiness probe):
        started, not stopped, and the supervisor thread still lives."""
        return (not self._stop.is_set()
                and self._supervisor is not None
                and self._supervisor.is_alive())

    def _spawn(self, slot: int) -> threading.Thread:
        thread = threading.Thread(target=self._worker_loop,
                                  name=f"serve-worker-{slot}",
                                  daemon=True)
        thread.start()
        return thread

    def _supervise(self) -> None:
        """Respawn worker threads that died with an unhandled error."""
        while not self._stop.wait(0.2):
            for i, thread in enumerate(self._threads):
                if not thread.is_alive() and not self._stop.is_set():
                    self._threads[i] = self._spawn(i)

    # ------------------------------------------------------------- submit

    def submit(self, submission: Submission) -> tuple[Job, bool]:
        """Accept a sweep; returns ``(job, created)``.

        Idempotent by construction: the job id is the sha256 of the
        expanded cell hashes, so an identical sweep maps onto the
        existing PENDING/RUNNING/DONE job (``created=False``) and
        costs nothing.  FAILED and CANCELLED jobs re-open and requeue.
        """
        tasks = list(submission.tasks) or submission.sweep.expand()
        job_id = job_id_for(tasks)
        with self._lock:
            job = self.store.get(job_id)
            if job is not None and (not job.state.terminal
                                    or job.state is JobState.DONE):
                return job, False
            previous = job.as_dict() if job is not None else None
            if job is not None:            # failed / cancelled: re-open
                job.reopen()
                job.client = submission.client
                job.priority = submission.priority
                created = False
            else:
                job = Job(
                    id=job_id,
                    client=submission.client,
                    priority=submission.priority,
                    sweep=submission.sweep.as_dict(),
                    cells=[t.content_hash() for t in tasks],
                )
                created = True
            # persist before enqueueing — a worker may pop the id the
            # instant it lands on the queue and must find the record.
            # A quota rejection then rolls the journal back, so a
            # refused submission leaves no trace.
            self._cancel_requested.discard(job_id)
            self.store.put(job)
            try:
                self.queue.push(job_id, client=job.client,
                                priority=job.priority)
            except QuotaError:
                if previous is not None:
                    self.store.put(Job.from_dict(previous))
                else:
                    self.store.delete(job_id)
                raise
            self.store.append_event(job_id, {
                "event": "submitted" if created else "resubmitted",
                "client": job.client, "priority": job.priority,
                "cells": job.total,
            })
            log_event(_log, logging.INFO,
                      "job submitted" if created else "job resubmitted",
                      job_id=job_id, client=job.client,
                      cells=job.total, priority=job.priority)
            self._update_gauges()
            return job, created

    # ------------------------------------------------------------- cancel

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; effective immediately for queued jobs,
        at the next batch boundary for running ones."""
        with self._lock:
            job = self.store.get(job_id)
            if job is None:
                raise ServeError(f"unknown job {job_id[:12]}")
            if job.state.terminal:
                return job
            if job.state is JobState.PENDING and \
                    self.queue.cancel(job_id):
                self.queue.release(job.client)
                job.advance(JobState.CANCELLED)
                self.store.put(job)
                self.store.append_event(job_id, {
                    "event": "cancelled", "message": "while queued"})
            else:
                self._cancel_requested.add(job_id)
            log_event(_log, logging.INFO, "job cancellation requested",
                      job_id=job_id, state=job.state.value)
            self._update_gauges()
            return job

    # ------------------------------------------------------ worker loop

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job_id = self.queue.pop(timeout=0.2)
            if job_id is None:
                continue
            job = self.store.get(job_id)
            if job is None or job.state is not JobState.PENDING:
                # cancelled or corrupted between push and pop
                if job is not None:
                    self.queue.release(job.client)
                continue
            try:
                self._run_job(job)
            except BaseException as exc:  # noqa: BLE001 - supervised
                self._handle_worker_death(job, exc)
                if not isinstance(exc, Exception):
                    raise  # kills the thread; the supervisor respawns
            finally:
                self.queue.release(job.client)
                self._update_gauges()

    def _handle_worker_death(self, job: Job, exc: BaseException) -> None:
        """A worker blew up outside the runtime's own failure handling:
        requeue the job (bounded), else fail it."""
        with self._lock:
            job = self.store.get(job.id) or job
            if job.state.terminal:
                return
            reason = f"{type(exc).__name__}: {exc}"
            log_event(_log, logging.WARNING, "worker died running job",
                      job_id=job.id, error=reason,
                      requeues=job.requeues)
            if job.requeues < self.max_requeues:
                if job.state is JobState.RUNNING:
                    job.reopen()
                job.requeues += 1
                self.store.put(job)
                self.store.append_event(job.id, {
                    "event": "requeued",
                    "message": f"worker died ({reason}); "
                               f"requeue {job.requeues}/"
                               f"{self.max_requeues}",
                })
                self.queue.push(job.id, client=job.client,
                                priority=job.priority,
                                enforce_quota=False)
            else:
                if job.state is JobState.PENDING:
                    job.advance(JobState.RUNNING)
                job.error = f"worker died: {reason}"
                job.advance(JobState.FAILED)
                self.store.put(job)
                self.store.append_event(job.id, {
                    "event": "failed", "message": job.error})

    # -------------------------------------------------------- job driver

    def _run_job(self, job: Job) -> None:
        with correlation(job_id=job.id, client=job.client):
            self._run_job_correlated(job)

    def _run_job_correlated(self, job: Job) -> None:
        job.advance(JobState.RUNNING)
        self.store.put(job)
        self.store.append_event(job.id, {
            "event": "started", "cells": job.total,
            "requeues": job.requeues,
        })
        log_event(_log, logging.INFO, "job started",
                  cells=job.total, requeues=job.requeues)
        tasks = [task_from_spec(spec) for spec in
                 self._cell_specs(job)]
        self._inflight[job.id] = len(tasks)
        runtime = self._runtime_factory(
            lambda ev: self._on_progress(job, ev))
        failures: list[str] = []
        for lo in range(0, len(tasks), self.batch_size):
            if job.id in self._cancel_requested:
                self._finish_cancelled(job)
                return
            batch = tasks[lo:lo + self.batch_size]
            batch_start = time.perf_counter()
            report = runtime.run(batch)
            batch_elapsed = time.perf_counter() - batch_start
            with self._lock:
                for outcome in report.outcomes:
                    if outcome.ok:
                        job.completed += 1
                        if outcome.cached:
                            job.cached += 1
                        else:
                            job.simulated += 1
                    else:
                        job.failed += 1
                        failures.append(
                            f"{outcome.task.label}: {outcome.error}")
                self._inflight[job.id] = len(tasks) - job.completed \
                    - job.failed
                self.store.put(job)
                self._note_client_cells(job.client, len(batch),
                                        batch_elapsed)
        self._finish(job, failures)

    def _cell_specs(self, job: Job) -> list[dict]:
        """The cells to execute, rebuilt from the journaled sweep."""
        return [t.spec()
                for t in SweepSpec.from_dict(job.sweep).expand()]

    def _finish(self, job: Job, failures: list[str]) -> None:
        with self._lock:
            self._inflight.pop(job.id, None)
            self._cancel_requested.discard(job.id)
            if failures:
                job.error = "; ".join(failures[:5]) + (
                    f" (+{len(failures) - 5} more)"
                    if len(failures) > 5 else "")
                job.advance(JobState.FAILED)
            else:
                job.advance(JobState.DONE)
            if obs.enabled():
                job.telemetry = obs.snapshot(meta={"job": job.id})
            self.store.put(job)
            self.store.append_event(job.id, {
                "event": job.state.value,
                "completed": job.completed, "cached": job.cached,
                "simulated": job.simulated, "failed": job.failed,
            })
            log_event(_log,
                      logging.INFO if job.state is JobState.DONE
                      else logging.WARNING,
                      f"job {job.state.value}",
                      completed=job.completed, cached=job.cached,
                      simulated=job.simulated, failed=job.failed,
                      error=job.error)
        self._ingest_finished(job)

    def _finish_cancelled(self, job: Job) -> None:
        with self._lock:
            self._inflight.pop(job.id, None)
            self._cancel_requested.discard(job.id)
            job.advance(JobState.CANCELLED)
            self.store.put(job)
            self.store.append_event(job.id, {
                "event": "cancelled",
                "message": f"while running; {job.completed}/"
                           f"{job.total} cells done",
            })

    def _ingest_finished(self, job: Job) -> None:
        """Auto-ingest a finished job's journal into the experiment
        database when one is configured (``repro serve --store``).
        Ingest failures never raise — the analytics layer must not
        take a job down with it — but they are journaled, logged at
        WARNING, and counted (``repro_store_ingest_failures`` on
        ``/metrics``) so they can't silently accumulate."""
        if self.store_path is None:
            return
        from ..errors import StoreError
        from ..store import ExperimentStore, ingest_job

        try:
            with ExperimentStore(self.store_path) as store:
                ingest_job(store, job.as_dict(),
                           events=self.store.events(job.id),
                           source=f"serve:{job.id[:12]}")
        except StoreError as exc:
            self.store.append_event(job.id, {
                "event": "store-error",
                "message": f"store ingest failed: {exc}"})
            log_event(_log, logging.WARNING, "store ingest failed",
                      job_id=job.id, store=self.store_path,
                      error=str(exc))
            obs.counter("store.ingest_failures").add()

    # ---------------------------------------------------------- telemetry

    def _on_progress(self, job: Job, event: ProgressEvent) -> None:
        self.store.append_event(job.id, {"event": "progress",
                                         **event.as_dict()})

    def _note_client_cells(self, client: str, cells: int,
                           elapsed: float) -> None:
        done, seconds = self._client_done.get(client, (0, 0.0))
        done, seconds = done + cells, seconds + elapsed
        self._client_done[client] = (done, seconds)
        if obs.enabled():
            view = obs.active().prefixed(f"serve.client.{client}")
            view.counter("cells").add(cells)
            if seconds > 0:
                view.gauge("cells_per_sec").set(done / seconds)
        self._update_gauges()

    def _update_gauges(self) -> None:
        if not obs.enabled():
            return
        view = obs.active().prefixed("serve")
        view.gauge("queue_depth").set(float(self.queue.depth))
        view.gauge("inflight_cells").set(
            float(sum(self._inflight.values())))

    # ------------------------------------------------------------ recover

    def recover(self) -> int:
        """Requeue journaled work after a restart; returns the count.
        Quota enforcement is bypassed — this is work the server already
        accepted."""
        count = 0
        for job in self.store.recover():
            self.queue.push(job.id, client=job.client,
                            priority=job.priority, enforce_quota=False)
            count += 1
        return count
