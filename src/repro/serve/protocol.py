"""The service wire protocol: declarative sweeps and the job schema.

A submitted job is *data, not code*: a :class:`SweepSpec` names the
axes of a sweep (workloads × inputs × machine configs, plus scale /
variants / seed) and the server expands it into
:class:`~repro.runtime.task.SimTask` cells.  Because cells are
content-hashed, the job id is itself content-addressed — the sha256
over the sorted cell hashes — which is what makes submission
idempotent: a million identical submissions name the same job and cost
one simulation.

HTTP surface (all bodies JSON, schema :data:`SERVE_SCHEMA`)::

    GET  /healthz                   liveness + schema version
    GET  /v1/stats                  service gauges + obs snapshot
    POST /v1/jobs                   {"sweep": {...}, "client": "ci",
                                     "priority": 0}  -> {job, created}
    GET  /v1/jobs                   {"jobs": [...]}
    GET  /v1/jobs/<id>              one job record (poll endpoint)
    GET  /v1/jobs/<id>/result       {"records": {hash: record}}
    GET  /v1/jobs/<id>/events       journaled progress events; with
                                    ``?follow=1`` a chunked NDJSON
                                    stream that ends when the job does
    POST /v1/jobs/<id>/cancel       request cancellation

Error responses are ``{"error": "..."}`` with 400 (malformed sweep),
404 (unknown job), 409 (result not ready) or 429 (quota exhausted).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import ServeError
from ..runtime.task import (
    KNOWN_VARIANTS,
    SimTask,
    canonical_json,
    machine_from_dict,
)

#: bump on any incompatible change to the job record or HTTP surface.
SERVE_SCHEMA = "repro.serve/1"

#: sweep scales the server accepts (mirrors the CLI presets).
KNOWN_SCALES = ("small", "medium", "paper")


@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep submission.

    ``inputs=None`` means the full suite inputs of each workload
    (:func:`repro.eval.workloads.inputs_for`); an explicit tuple must
    be valid for *every* workload in the sweep.  ``machines`` is an
    optional axis of full machine dicts
    (:func:`repro.runtime.task.machine_to_dict` layout); ``None``
    resolves to the cache-scaled experiment machine for ``scale``.
    """

    workloads: tuple[str, ...]
    inputs: tuple[str, ...] | None = None
    scale: str = "small"
    variants: tuple[str, ...] = ("baseline", "tmu")
    machines: tuple[dict, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ServeError("sweep names no workloads")
        if self.scale not in KNOWN_SCALES:
            raise ServeError(
                f"unknown scale {self.scale!r}; "
                f"known: {list(KNOWN_SCALES)}")
        unknown = set(self.variants) - set(KNOWN_VARIANTS)
        if unknown:
            raise ServeError(
                f"unknown variants {sorted(unknown)}; "
                f"known: {list(KNOWN_VARIANTS)}")

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ServeError(f"sweep must be an object, got "
                             f"{type(data).__name__}")
        allowed = {"workloads", "inputs", "scale", "variants",
                   "machines", "seed"}
        unknown = set(data) - allowed
        if unknown:
            raise ServeError(f"unknown sweep fields {sorted(unknown)}; "
                             f"allowed: {sorted(allowed)}")
        try:
            return cls(
                workloads=tuple(data["workloads"]),
                inputs=tuple(data["inputs"])
                if data.get("inputs") else None,
                scale=data.get("scale", "small"),
                variants=tuple(data.get("variants")
                               or ("baseline", "tmu")),
                machines=tuple(data["machines"])
                if data.get("machines") else None,
                seed=int(data.get("seed", 0)),
            )
        except ServeError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed sweep: {exc}") from exc

    def as_dict(self) -> dict:
        data = {
            "workloads": list(self.workloads),
            "scale": self.scale,
            "variants": sorted(self.variants),
            "seed": self.seed,
        }
        if self.inputs is not None:
            data["inputs"] = list(self.inputs)
        if self.machines is not None:
            data["machines"] = list(self.machines)
        return data

    # -------------------------------------------------------- expansion

    def expand(self) -> list[SimTask]:
        """The sweep's cells, expanded and validated server-side."""
        from ..eval.workloads import WORKLOADS, inputs_for

        unknown = set(self.workloads) - set(WORKLOADS)
        if unknown:
            raise ServeError(
                f"unknown workloads {sorted(unknown)}; "
                f"known: {sorted(WORKLOADS)}")
        machines = [None]
        if self.machines is not None:
            try:
                machines = [machine_from_dict(m) for m in self.machines]
            except (KeyError, TypeError) as exc:
                raise ServeError(f"malformed machine dict: {exc}") \
                    from exc
        tasks: list[SimTask] = []
        for workload in self.workloads:
            suite = inputs_for(workload)
            input_ids = suite if self.inputs is None else self.inputs
            bad = set(input_ids) - set(suite)
            if bad:
                raise ServeError(
                    f"inputs {sorted(bad)} are not valid for workload "
                    f"{workload!r} (suite: {suite})")
            for input_id in input_ids:
                for machine in machines:
                    tasks.append(SimTask(
                        workload, input_id, scale=self.scale,
                        variants=self.variants, machine=machine,
                        seed=self.seed))
        return tasks


def job_id_for(tasks: list[SimTask]) -> str:
    """The content-addressed job id: sha256 over the sorted cell
    hashes.  Two sweeps expanding to the same cells are the same job,
    however their specs were phrased."""
    cells = sorted(t.content_hash() for t in tasks)
    payload = canonical_json({"schema": SERVE_SCHEMA, "cells": cells})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Submission:
    """A validated submit request (the POST /v1/jobs body)."""

    sweep: SweepSpec
    client: str = "anon"
    priority: int = 0
    tasks: tuple[SimTask, ...] = field(default=(), compare=False)

    @classmethod
    def from_dict(cls, data: dict) -> "Submission":
        if not isinstance(data, dict) or "sweep" not in data:
            raise ServeError('submission must be {"sweep": {...}, ...}')
        client = str(data.get("client", "anon")) or "anon"
        if any(c in client for c in "./\\ \t\n"):
            raise ServeError(f"invalid client id {client!r}")
        try:
            priority = int(data.get("priority", 0))
        except (TypeError, ValueError) as exc:
            raise ServeError(f"invalid priority: {exc}") from exc
        sweep = SweepSpec.from_dict(data["sweep"])
        return cls(sweep=sweep, client=client, priority=priority,
                   tasks=tuple(sweep.expand()))
