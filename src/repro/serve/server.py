"""The HTTP face of the service: a stdlib ``ThreadingHTTPServer``.

:class:`SimService` is the composition root — store + queue +
scheduler + result cache wired together — and :func:`make_server`
binds it to a JSON API (routes documented in
:mod:`repro.serve.protocol`).  Every request is handled on its own
thread; the handlers only touch the thread-safe service objects, so
the HTTP layer stays a thin translation of requests into scheduler
calls and journal reads.

The event endpoint doubles as a poll (``GET .../events?since=N``
returns immediately) and a stream (``?follow=1`` keeps the connection
open and writes NDJSON chunks as the journal grows, ending when the
job reaches a terminal state).
"""

from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from .. import obs
from ..errors import ServeError
from ..obs.live import PROM_CONTENT_TYPE, to_prometheus
from ..obs.logging import get_logger, log_event
from ..obs.registry import Registry
from ..runtime.cache import NullCache, ResultCache
from .jobs import JobState, JobStore
from .protocol import SERVE_SCHEMA, Submission
from .queue import DEFAULT_QUOTA, JobQueue, QuotaError
from .scheduler import Scheduler

_log = get_logger("serve.server")

#: default service state (job journal) location, next to the cache.
DEFAULT_STATE_DIR = ".repro-serve"

#: default bind address of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321


class SimService:
    """Store + queue + scheduler + cache, wired and supervised."""

    def __init__(self, *, state_dir: str | Path = DEFAULT_STATE_DIR,
                 cache_dir: str | Path | None = None,
                 jobs: int = 1, workers: int = 1,
                 quota: int = DEFAULT_QUOTA,
                 timeout: float | None = None, retries: int = 1,
                 batch_size: int | None = None,
                 telemetry: bool = False,
                 store_path: str | Path | None = None) -> None:
        self.state_dir = Path(state_dir)
        self.store = JobStore(self.state_dir / "jobs")
        self.queue = JobQueue(quota=quota)
        self.cache = ResultCache(Path(cache_dir)) \
            if cache_dir is not None else NullCache()
        kwargs = {} if batch_size is None else {
            "batch_size": batch_size}
        self.scheduler = Scheduler(
            self.store, self.queue, cache=self.cache, jobs=jobs,
            workers=workers, timeout=timeout, retries=retries,
            store_path=None if store_path is None else str(store_path),
            **kwargs)
        self.telemetry = telemetry

    def start(self) -> int:
        """Enable telemetry, recover journaled work, start workers;
        returns the number of recovered jobs."""
        if self.telemetry and not obs.enabled():
            obs.enable()
        recovered = self.scheduler.recover()
        self.scheduler.start()
        return recovered

    def stop(self) -> None:
        self.queue.close()
        self.scheduler.stop()

    # ----------------------------------------------------------- queries

    def job_dict(self, job_id: str) -> dict:
        job = self.store.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id[:12]}")
        return job.as_dict()

    def result(self, job_id: str) -> dict:
        """The job's result records, served from the content-addressed
        cache by cell hash."""
        job = self.store.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id[:12]}")
        records = self.cache.get_many(job.cells)
        missing = sum(1 for r in records.values() if r is None)
        return {
            "schema": SERVE_SCHEMA,
            "job": job.as_dict(),
            "records": records,
            "missing": missing,
        }

    def stats(self) -> dict:
        counts: dict[str, int] = {}
        for job in self.store.list():
            counts[job.state.value] = counts.get(job.state.value, 0) + 1
        data = {
            "schema": SERVE_SCHEMA,
            "queue_depth": self.queue.depth,
            "jobs": counts,
        }
        if obs.enabled():
            data["telemetry"] = obs.snapshot(meta={"source": "serve"})
        return data

    # ------------------------------------------------------- observability

    def readiness(self) -> dict:
        """The ``/readyz`` body: ready iff the scheduler supervisor is
        alive, the queue accepts submissions, and the journal is
        writable."""
        checks = {
            "scheduler": self.scheduler.alive,
            "queue": self.queue.accepting,
            "store": self.store.writable(),
        }
        return {"schema": SERVE_SCHEMA,
                "ready": all(checks.values()), "checks": checks}

    def refresh_gauges(self, registry: Registry) -> None:
        """Write the scrape-time service gauges into ``registry``:
        queue depth, per-state job counts (zero-filled so every state
        series exists from the first scrape), and readiness."""
        view = registry.prefixed("serve")
        view.gauge("queue_depth").set(float(self.queue.depth))
        counts = dict.fromkeys((s.value for s in JobState), 0)
        for job in self.store.list():
            counts[job.state.value] += 1
        for state, n in counts.items():
            view.gauge(f"jobs.{state}").set(float(n))
        view.gauge("ready").set(
            1.0 if self.readiness()["ready"] else 0.0)

    def metrics_registry(self) -> Registry:
        """The registry ``/metrics`` renders: the live telemetry
        registry when enabled (refreshed with scrape-time gauges),
        else a fresh registry carrying the gauges alone."""
        registry = obs.active() if obs.enabled() else Registry()
        self.refresh_gauges(registry)
        return registry


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service object for handlers."""

    daemon_threads = True

    def __init__(self, address, service: SimService,
                 quiet: bool = False) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServeHTTPServer

    # ------------------------------------------------------------ helpers

    def log_message(self, fmt, *args):  # noqa: A003
        if not self.server.quiet:
            log_event(_log, logging.INFO, fmt % args,
                      peer=self.client_address[0])

    @property
    def service(self) -> SimService:
        return self.server.service

    def _send_json(self, code: int, body: dict) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not JSON: {exc}") \
                from exc

    # ------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST", self._route_post)

    def _dispatch(self, method: str, route_fn) -> None:
        """Run one request through its router, recording a per-route
        request counter and latency histogram (``serve.http.<route>.*``
        — the route segment becomes a label on ``/metrics``)."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        route = _route_label(method, parts)
        start = time.perf_counter()
        try:
            route_fn(url, parts)
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1e3
            if obs.enabled():
                view = obs.active().prefixed(f"serve.http.{route}")
                view.counter("requests").add()
                view.histogram("latency_ms").record(elapsed_ms)
            log_event(_log, logging.DEBUG, f"{method} {url.path}",
                      route=route, latency_ms=round(elapsed_ms, 3),
                      peer=self.client_address[0])

    def _route_get(self, url, parts: list[str]) -> None:
        query = parse_qs(url.query)
        try:
            if parts == ["healthz"]:
                self._send_json(200, {"ok": True,
                                      "schema": SERVE_SCHEMA})
            elif parts == ["readyz"]:
                ready = self.service.readiness()
                self._send_json(200 if ready["ready"] else 503, ready)
            elif parts == ["metrics"]:
                self._get_metrics()
            elif parts == ["v1", "stats"]:
                self._send_json(200, self.service.stats())
            elif parts == ["v1", "jobs"]:
                self._send_json(200, {"jobs": [
                    j.as_dict() for j in self.service.store.list()]})
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send_json(200, self.service.job_dict(parts[2]))
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "result":
                self._get_result(parts[2])
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "events":
                self._get_events(parts[2], query)
            else:
                self._send_error_json(404, f"no route {url.path}")
        except ServeError as exc:
            self._send_error_json(404 if "unknown job" in str(exc)
                                  else 400, str(exc))

    def _route_post(self, url, parts: list[str]) -> None:
        try:
            if parts == ["v1", "jobs"]:
                submission = Submission.from_dict(self._read_body())
                job, created = self.service.scheduler.submit(submission)
                self._send_json(201 if created else 200, {
                    "job": job.as_dict(), "created": created})
            elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                    and parts[3] == "cancel":
                job = self.service.scheduler.cancel(parts[2])
                self._send_json(200, {"job": job.as_dict()})
            else:
                self._send_error_json(404, f"no route {self.path}")
        except QuotaError as exc:
            self._send_error_json(429, str(exc))
        except ServeError as exc:
            self._send_error_json(404 if "unknown job" in str(exc)
                                  else 400, str(exc))

    # ------------------------------------------------------------ metrics

    def _get_metrics(self) -> None:
        registry = self.service.metrics_registry()
        # worker threads mutate the registry mid-scrape; snapshotting
        # iterates it, so retry the rare torn iteration.
        for attempt in range(3):
            try:
                text = to_prometheus(registry,
                                     labels={"job": "repro-serve"})
                break
            except RuntimeError:
                if attempt == 2:
                    raise
        payload = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROM_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    # ----------------------------------------------------- result/events

    def _get_result(self, job_id: str) -> None:
        result = self.service.result(job_id)
        state = result["job"]["state"]
        if state not in ("done", "failed", "cancelled"):
            self._send_error_json(
                409, f"job {job_id[:12]} is {state}; results are "
                     "served once it reaches a terminal state")
            return
        self._send_json(200, result)

    def _get_events(self, job_id: str, query: dict) -> None:
        service = self.service
        if service.store.get(job_id) is None:
            self._send_error_json(404, f"unknown job {job_id[:12]}")
            return
        since = int(query.get("since", ["0"])[0])
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        if not follow:
            events = service.store.events(job_id, since)
            self._send_json(200, {"events": events,
                                  "next": since + len(events)})
            return
        # chunked NDJSON stream: one event per line, closed when the
        # job reaches a terminal state and the journal is drained.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        cursor = since
        try:
            while True:
                fresh = service.store.wait_events(job_id, cursor,
                                                  timeout=0.5)
                for event in fresh:
                    self._write_chunk(
                        json.dumps(event, sort_keys=True) + "\n")
                cursor += len(fresh)
                job = service.store.get(job_id)
                if not fresh and (job is None or job.state.terminal):
                    break
            self._write_chunk("")  # terminating zero-length chunk
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream

    def _write_chunk(self, text: str) -> None:
        data = text.encode("utf-8")
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()


def _route_label(method: str, parts: list[str]) -> str:
    """Normalize a request path to a bounded route-family label (job
    ids must never become label values — cardinality)."""
    if parts in (["healthz"], ["readyz"], ["metrics"]):
        return parts[0]
    if parts == ["v1", "stats"]:
        return "stats"
    if parts[:2] == ["v1", "jobs"]:
        if len(parts) == 2:
            return "jobs_submit" if method == "POST" else "jobs_list"
        if len(parts) == 3:
            return "job_get"
        if len(parts) == 4 and parts[3] in ("result", "events",
                                            "cancel"):
            return f"job_{parts[3]}"
    return "other"


def make_server(service: SimService, host: str = DEFAULT_HOST,
                port: int = DEFAULT_PORT,
                quiet: bool = False) -> ServeHTTPServer:
    """Bind the service to an HTTP server (``port=0`` for ephemeral;
    the bound port is ``server.server_address[1]``)."""
    return ServeHTTPServer((host, port), service, quiet=quiet)
