"""Sparse-matrix x sparse-vector product: ``Z_i = A_ij B_j``.

Each matrix row is *conjunctively merged* (intersected) with the sparse
vector: only coordinates present in both contribute (Table 4 maps this
to a ``ConjMrg`` layer).
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..fibers.fiber import Fiber
from ..fibers.merge import conjunctive_merge
from ..formats.csr import CsrMatrix


def spmspv(a: CsrMatrix, b: Fiber) -> np.ndarray:
    """Reference SpMSpV: dense output ``Z = A @ b`` with sparse ``b``."""
    if b.nnz and int(b.indices[-1]) >= a.num_cols:
        raise WorkloadError("sparse vector index exceeds matrix columns")
    out = np.zeros(a.num_rows)
    for i in range(a.num_rows):
        idxs, vals = a.row(i)
        row_fiber = Fiber(idxs, vals, validate=False)
        acc = 0.0
        for point in conjunctive_merge([row_fiber, b]):
            acc += point.values[0] * point.values[1]
        out[i] = acc
    return out


def spmspv_numpy(a: CsrMatrix, b: Fiber) -> np.ndarray:
    """Vectorized check implementation (densifies the vector)."""
    dense_b = b.to_dense(a.num_cols)
    from .spmv import spmv

    return spmv(a, dense_b)
