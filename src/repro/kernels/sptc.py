"""Sparse tensor contraction: ``Z_ij = A_ikl B_lkj`` (CSF x CSF).

Follows Sparta (Liu et al.): contract the last two modes of ``A``
against the first two modes of ``B``.  The output is sparse, so the
algorithm runs a *symbolic* phase (size discovery) before the *numeric*
phase; the paper evaluates the symbolic phase, which is pure traversal
and conjunctive merging.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.csf import CsfTensor
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import INDEX_BYTES


def _csf_top_fibers(t: CsfTensor):
    """Yield ``(coord0, positions-range)`` for each root node of a CSF
    tensor."""
    for n in range(t.idxs[0].size):
        yield int(t.idxs[0][n]), n


def _build_b_lookup(b: CsfTensor) -> dict[tuple[int, int], int]:
    """Map (l, k) — the first two coordinates of ``B_lkj`` — to the
    level-1 node position holding that fiber of j's."""
    lookup: dict[tuple[int, int], int] = {}
    for l_node in range(b.idxs[0].size):
        l_coord = int(b.idxs[0][l_node])
        beg, end = int(b.ptrs[1][l_node]), int(b.ptrs[1][l_node + 1])
        for k_node in range(beg, end):
            lookup[(l_coord, int(b.idxs[1][k_node]))] = k_node
    return lookup


def match_b_fibers(b: CsfTensor, l_coords: np.ndarray,
                   k_coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``_build_b_lookup`` probe: for each query ``(l, k)``
    pair, the B level-1 node holding that fiber (undefined where not
    found) and a found mask.

    CSF coordinate order makes the packed ``l * K + k`` keys of B's
    level-1 nodes globally sorted (root coordinates ascend, and each
    root's k fiber ascends), so one ``searchsorted`` answers every
    probe at once.
    """
    if b.idxs[1].size == 0:
        zeros = np.zeros(l_coords.shape, dtype=np.int64)
        return zeros, np.zeros(l_coords.shape, dtype=bool)
    k_extent = int(b.idxs[1].max()) + 1
    l_of_k = np.repeat(b.idxs[0], np.diff(b.ptrs[1]))
    b_keys = l_of_k * k_extent + b.idxs[1]
    in_range = k_coords < k_extent
    keys = l_coords * k_extent + np.minimum(k_coords, k_extent - 1)
    pos = np.searchsorted(b_keys, keys)
    hit = in_range & (pos < b_keys.size)
    hit[hit] = b_keys[pos[hit]] == keys[hit]
    return pos, hit


def sptc_symbolic(a: CsfTensor, b: CsfTensor) -> np.ndarray:
    """Symbolic phase: per-``i`` output non-zero counts of
    ``Z_ij = A_ikl B_lkj``."""
    if a.ndim != 3 or b.ndim != 3:
        raise WorkloadError("sptc expects two order-3 CSF tensors")
    lookup = _build_b_lookup(b)
    counts = np.zeros(a.idxs[0].size, dtype=np.int64)
    for i_node in range(a.idxs[0].size):
        j_set: set[int] = set()
        kb, ke = int(a.ptrs[1][i_node]), int(a.ptrs[1][i_node + 1])
        for k_node in range(kb, ke):
            k = int(a.idxs[1][k_node])
            lb, le = int(a.ptrs[2][k_node]), int(a.ptrs[2][k_node + 1])
            for l_node in range(lb, le):
                l = int(a.idxs[2][l_node])
                match = lookup.get((l, k))
                if match is None:
                    continue
                jb, je = int(b.ptrs[2][match]), int(b.ptrs[2][match + 1])
                j_set.update(int(j) for j in b.idxs[2][jb:je])
        counts[i_node] = len(j_set)
    return counts


def sptc_numeric(a: CsfTensor, b: CsfTensor) -> dict[tuple[int, int], float]:
    """Numeric phase: the full contraction as a (i, j) → value map."""
    if a.ndim != 3 or b.ndim != 3:
        raise WorkloadError("sptc expects two order-3 CSF tensors")
    lookup = _build_b_lookup(b)
    out: dict[tuple[int, int], float] = {}
    for i_node in range(a.idxs[0].size):
        i = int(a.idxs[0][i_node])
        kb, ke = int(a.ptrs[1][i_node]), int(a.ptrs[1][i_node + 1])
        for k_node in range(kb, ke):
            k = int(a.idxs[1][k_node])
            lb, le = int(a.ptrs[2][k_node]), int(a.ptrs[2][k_node + 1])
            for l_node in range(lb, le):
                l = int(a.idxs[2][l_node])
                a_val = float(a.vals[l_node])
                match = lookup.get((l, k))
                if match is None:
                    continue
                jb, je = int(b.ptrs[2][match]), int(b.ptrs[2][match + 1])
                for j_node in range(jb, je):
                    key = (i, int(b.idxs[2][j_node]))
                    out[key] = out.get(key, 0.0) + a_val * float(
                        b.vals[j_node]
                    )
    return out


def characterize_sptc(a: CsfTensor, b: CsfTensor,
                      machine: MachineConfig) -> KernelTrace:
    """Characterize the symbolic-phase baseline.

    The hot loop intersects A's (k, l) fibers with B's (l, k) fiber
    directory — a conjunctive merge per level — and unions the matched
    j fibers.  Everything is index traffic; there is no floating-point
    work in the symbolic phase (cf. Figure 12's note that SpTC is
    excluded from the flops roofline).
    """
    k_of_leaf = np.repeat(a.idxs[1], np.diff(a.ptrs[2]))
    pos, hit = match_b_fibers(b, a.idxs[2], k_of_leaf)
    matches = int(hit.sum())
    j_scanned = int((b.ptrs[2][pos[hit] + 1] - b.ptrs[2][pos[hit]]).sum())
    directory_size = int(b.idxs[1].size)

    space = AddressSpace()
    nnz_a = a.nnz
    a_idx_base = space.place(nnz_a * INDEX_BYTES)
    b_dir_base = space.place(directory_size * 2 * INDEX_BYTES)
    b_j_base = space.place(b.nnz * INDEX_BYTES)
    out_base = space.place(max(1, matches) * INDEX_BYTES)

    rng = np.random.default_rng(7)
    dir_probe = rng.integers(0, max(1, directory_size),
                             size=nnz_a) * 2 * INDEX_BYTES
    j_scan_idx = np.arange(j_scanned, dtype=np.int64) % max(1, b.nnz)

    streams = [
        AccessStream(a_idx_base + np.arange(nnz_a, dtype=np.int64)
                     * INDEX_BYTES, INDEX_BYTES, "read", "A kl idxs"),
        AccessStream(b_dir_base + dir_probe, INDEX_BYTES, "read",
                     "B fiber directory", dependent=True),
        AccessStream(b_j_base + j_scan_idx * INDEX_BYTES, INDEX_BYTES,
                     "read", "B j fibers", dependent=True),
        AccessStream(out_base + (np.arange(max(1, matches),
                                           dtype=np.int64)
                                 % max(1, matches)) * INDEX_BYTES,
                     INDEX_BYTES, "write", "Z symbolic"),
    ]
    steps = nnz_a + j_scanned
    return KernelTrace(
        name="sptc",
        scalar_ops=6 * steps,
        vector_ops=0,
        loads=2 * nnz_a + j_scanned + matches,
        stores=matches,
        branches=2 * steps,
        datadep_branches=steps // 2,
        flops=0.0,
        streams=streams,
        dependent_load_fraction=0.5,
        parallel_units=int(a.idxs[0].size),
    )
