"""Gustavson sparse-matrix x sparse-matrix product (CSR, ikj schedule).

``Z_ij = A_ik B_kj``: for every non-zero ``A_ik`` the kernel scans the
whole row ``B_k*`` and reduces (accumulates) the scaled rows into the
output row — the paper's proxy for the *computation* stage, with a
symbolic/numeric two-phase structure because the output is compressed
(Section 2.5).  The evaluation instantiates ``Z = A Aᵀ``.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.csr import CsrMatrix
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import CsrOperand, sorted_unique, sve_lanes


def spmspm_symbolic(a: CsrMatrix, b: CsrMatrix) -> np.ndarray:
    """Symbolic phase: per-row output non-zero counts of ``A @ B``."""
    if a.num_cols != b.num_rows:
        raise WorkloadError("inner dimensions of A and B do not match")
    counts = np.zeros(a.num_rows, dtype=np.int64)
    marker = np.full(b.num_cols, -1, dtype=np.int64)
    for i in range(a.num_rows):
        count = 0
        for k in a.idxs[a.ptrs[i]:a.ptrs[i + 1]]:
            for j in b.idxs[b.ptrs[k]:b.ptrs[k + 1]]:
                if marker[j] != i:
                    marker[j] = i
                    count += 1
        counts[i] = count
    return counts


#: memos keyed by operand identity — the input suite memoizes matrices,
#: so identities are stable; architecture sweeps (Figure 14)
#: re-characterize the same operands many times.
_SYMBOLIC_MEMO: dict[tuple, np.ndarray] = {}
_SCAN_MEMO: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}


def scan_arrays(a: CsrMatrix, b: CsrMatrix
                ) -> tuple[np.ndarray, np.ndarray]:
    """The positions and B column indexes visited by the Gustavson
    B-row scans, in traversal order, memoized by operand identity.

    The baseline characterization, the symbolic counts, and the TMU
    timing model all walk the same expansion; computing it once per
    operand pair is a measurable win on the benchmark sweeps.
    """
    from .common import gather_scan_positions

    key = (id(a), id(b), a.nnz, b.nnz)
    got = _SCAN_MEMO.get(key)
    if got is None:
        positions = gather_scan_positions(b.ptrs, a.idxs)
        got = _SCAN_MEMO[key] = (positions, b.idxs[positions])
    return got


def _symbolic_counts_fast(a: CsrMatrix, b: CsrMatrix) -> np.ndarray:
    """Vectorized equivalent of :func:`spmspm_symbolic` (same counts,
    numpy set-union per row) for characterization of larger inputs."""
    key = (id(a), id(b), a.nnz, b.nnz)
    cached = _SYMBOLIC_MEMO.get(key)
    if cached is not None:
        return cached
    # Expand every (A row i, B row k) pairing into packed
    # ``i << shift | col`` keys and take one global unique — the
    # per-row distinct-column counts drop out of the keys' high
    # halves.  Small operands pack into int32 (a ~2x faster sort);
    # the int64 fallback requires B column indexes < 2**32 (far
    # beyond simulated inputs).
    row_of = np.repeat(np.arange(a.num_rows, dtype=np.int64),
                       np.diff(a.ptrs))
    blk = np.diff(b.ptrs)[a.idxs]
    _, cols = scan_arrays(a, b)
    if cols.size == 0:
        counts = np.zeros(a.num_rows, dtype=np.int64)
    else:
        i_rep = np.repeat(row_of, blk)
        if a.num_rows <= 1 << 15 and b.num_cols <= 1 << 16:
            uniq = sorted_unique((i_rep.astype(np.int32) << 16)
                                 | cols.astype(np.int32))
            counts = np.bincount(uniq >> 16,
                                 minlength=a.num_rows).astype(np.int64)
        else:
            uniq = sorted_unique((i_rep << 32) | cols)
            counts = np.bincount(uniq >> 32,
                                 minlength=a.num_rows).astype(np.int64)
    _SYMBOLIC_MEMO[key] = counts
    return counts


def spmspm(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """Reference Gustavson SpMSpM returning CSR output.

    Uses a dense accumulator per output row (the classic implementation
    the TACO baseline compiles to), with a touched-column list so reset
    cost is proportional to the row's non-zeros.
    """
    if a.num_cols != b.num_rows:
        raise WorkloadError("inner dimensions of A and B do not match")
    acc = np.zeros(b.num_cols)
    out_ptrs = np.zeros(a.num_rows + 1, dtype=np.int64)
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for i in range(a.num_rows):
        touched: list[np.ndarray] = []
        beg, end = a.row_slice(i)
        for p in range(beg, end):
            k = int(a.idxs[p])
            kb, ke = b.row_slice(k)
            cols = b.idxs[kb:ke]
            acc[cols] += a.vals[p] * b.vals[kb:ke]
            touched.append(cols)
        if touched:
            cols = np.unique(np.concatenate(touched))
            idx_parts.append(cols)
            val_parts.append(acc[cols].copy())
            acc[cols] = 0.0
            out_ptrs[i + 1] = out_ptrs[i] + cols.size
        else:
            out_ptrs[i + 1] = out_ptrs[i]
    idxs = (np.concatenate(idx_parts) if idx_parts
            else np.zeros(0, dtype=np.int64))
    vals = np.concatenate(val_parts) if val_parts else np.zeros(0)
    return CsrMatrix((a.num_rows, b.num_cols), out_ptrs, idxs, vals,
                     validate=False)


def characterize_spmspm(a: CsrMatrix, b: CsrMatrix,
                        machine: MachineConfig) -> KernelTrace:
    """Characterize the SVE Gustavson baseline on ``Z = A B``.

    The dominant loop scans rows of ``B`` selected by column indexes of
    ``A`` (a scan-and-lookup with whole-row spatial locality) and
    accumulates scaled rows — flops = 2 x Σ nnz(B row k) over all A
    non-zeros.
    """
    lanes = sve_lanes(machine.core.vector_bits)
    rows, nnz_a = a.num_rows, a.nnz
    b_row_nnz = np.diff(b.ptrs)
    scanned = b_row_nnz[a.idxs]          # B-row lengths per A non-zero
    total_scanned = int(scanned.sum())
    inner_chunks = int(np.sum(-(-scanned // lanes)))

    space = AddressSpace()
    a_op = CsrOperand(space, a)
    b_op = CsrOperand(space, b)
    # Output row assembly touches each produced non-zero ~twice
    # (accumulate + gather-out); symbolic counts give its footprint.
    out_counts = _symbolic_counts_fast(a, b)
    nnz_out = int(out_counts.sum())
    out_idx_base = space.place(nnz_out * INDEX_BYTES)
    out_val_base = space.place(nnz_out * VALUE_BYTES)
    acc_base = space.place(b.num_cols * VALUE_BYTES)

    # Address stream of the B-row scans, in traversal order.
    scan_positions, scan_cols = scan_arrays(a, b)

    streams = [
        AccessStream(a_op.ptr_addresses(), INDEX_BYTES, "read", "A ptrs"),
        AccessStream(a_op.idx_addresses(), INDEX_BYTES, "read", "A idxs"),
        AccessStream(a_op.val_addresses(), VALUE_BYTES, "read", "A vals"),
        AccessStream(b_op.idx_addresses(scan_positions), INDEX_BYTES,
                     "read", "B idxs scan", dependent=True),
        AccessStream(b_op.val_addresses(scan_positions), VALUE_BYTES,
                     "read", "B vals scan", dependent=True),
        AccessStream(acc_base + scan_cols * VALUE_BYTES,
                     VALUE_BYTES, "read", "accumulator", dependent=True),
        AccessStream(out_idx_base + np.arange(nnz_out, dtype=np.int64)
                     * INDEX_BYTES, INDEX_BYTES, "write", "Z idxs"),
        AccessStream(out_val_base + np.arange(nnz_out, dtype=np.int64)
                     * VALUE_BYTES, VALUE_BYTES, "write", "Z vals"),
    ]
    return KernelTrace(
        name="spmspm",
        scalar_ops=8 * nnz_a + 6 * rows + 4 * nnz_out,
        vector_ops=3 * inner_chunks,
        loads=3 * inner_chunks + 3 * nnz_a + 2 * rows + nnz_out,
        stores=inner_chunks + 2 * nnz_out,
        branches=inner_chunks + nnz_a + rows,
        datadep_branches=nnz_a,
        flops=2.0 * total_scanned,
        streams=streams,
        dependent_load_fraction=0.55,
        parallel_units=rows,
    )
