"""Software reference kernels (the paper's TACO/SVE baselines).

Each module implements one kernel of Section 6 with the same loop and
merge structure as the paper's software baseline, plus a
``characterize_*`` function that derives the baseline's committed
instruction mix and ordered memory-address streams for the timing model
(:mod:`repro.sim`).

Kernels
-------
* :mod:`repro.kernels.spmv` — SpMV, CSR x dense vector.
* :mod:`repro.kernels.spmm` — SpMM, CSR x dense matrix.
* :mod:`repro.kernels.spmspv` — SpMSpV, CSR x sparse vector.
* :mod:`repro.kernels.spmspm` — Gustavson SpMSpM (Z = A·Aᵀ in the eval).
* :mod:`repro.kernels.schedules` — the ijk/kij alternatives (§2.1).
* :mod:`repro.kernels.spadd` — two-matrix disjunctive addition.
* :mod:`repro.kernels.spkadd` — K-matrix disjunctive addition (DCSR).
* :mod:`repro.kernels.mttkrp` — COO matricized tensor times Khatri-Rao.
* :mod:`repro.kernels.sptc` — CSF x CSF tensor contraction (symbolic).
* :mod:`repro.kernels.spttv` — CSF tensor times vector.
* :mod:`repro.kernels.spttm` — CSF tensor times matrix.
* :mod:`repro.kernels.pagerank` — Jacobi PageRank (GAP-style).
* :mod:`repro.kernels.triangle` — masked-SpMSpM triangle counting.
* :mod:`repro.kernels.cpals` — CP-ALS tensor decomposition (GenTen-style).
"""

from .spmv import spmv
from .spmm import spmm
from .spmspv import spmspv
from .spmspm import spmspm
from .schedules import (
    schedule_merge_work,
    spmspm_inner_product,
    spmspm_outer_product,
)
from .spadd import spadd
from .spkadd import spkadd, split_rows_cyclic
from .mttkrp import mttkrp
from .sptc import sptc_symbolic, sptc_numeric
from .spttv import spttv
from .spttm import spttm
from .pagerank import pagerank
from .triangle import triangle_count
from .cpals import cp_als

__all__ = [
    "spmv",
    "spmm",
    "spmspv",
    "spmspm",
    "spmspm_inner_product",
    "spmspm_outer_product",
    "schedule_merge_work",
    "spadd",
    "spkadd",
    "split_rows_cyclic",
    "mttkrp",
    "sptc_symbolic",
    "sptc_numeric",
    "spttv",
    "spttm",
    "pagerank",
    "triangle_count",
    "cp_als",
]
