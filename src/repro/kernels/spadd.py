"""Sparse matrix addition: ``Z_ij = A_ij + B_ij`` (CSR, disjunctive).

The paper's proxy for the *merging* stage (Section 3): each pair of
rows with the same index is joined with a disjunctive merge whose
while/if-then-else structure generates the hard-to-predict branches
that dominate Figure 3's frontend stalls.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..fibers.fiber import Fiber
from ..fibers.merge import disjunctive_merge
from ..formats.csr import CsrMatrix
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import CsrOperand


def spadd(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """Reference SpAdd via per-row disjunctive merge."""
    if a.shape != b.shape:
        raise WorkloadError(f"shape mismatch: {a.shape} vs {b.shape}")
    out_ptrs = np.zeros(a.num_rows + 1, dtype=np.int64)
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for i in range(a.num_rows):
        fa = Fiber(*a.row(i), validate=False)
        fb = Fiber(*b.row(i), validate=False)
        idxs: list[int] = []
        vals: list[float] = []
        for point in disjunctive_merge([fa, fb]):
            idxs.append(point.index)
            vals.append(point.values[0] + point.values[1])
        idx_parts.append(np.asarray(idxs, dtype=np.int64))
        val_parts.append(np.asarray(vals))
        out_ptrs[i + 1] = out_ptrs[i] + len(idxs)
    return CsrMatrix(
        a.shape,
        out_ptrs,
        np.concatenate(idx_parts) if idx_parts else np.zeros(0, np.int64),
        np.concatenate(val_parts) if val_parts else np.zeros(0),
        validate=False,
    )


def spadd_numpy(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """Vectorized check implementation (via COO concatenation)."""
    if a.shape != b.shape:
        raise WorkloadError(f"shape mismatch: {a.shape} vs {b.shape}")
    from ..formats.convert import coo_to_csr, csr_to_coo
    from ..formats.coo import CooMatrix

    ca, cb = csr_to_coo(a), csr_to_coo(b)
    merged = CooMatrix(
        a.shape,
        np.concatenate((ca.rows, cb.rows)),
        np.concatenate((ca.cols, cb.cols)),
        np.concatenate((ca.values, cb.values)),
    )
    return coo_to_csr(merged)


def characterize_spadd(a: CsrMatrix, b: CsrMatrix,
                       machine: MachineConfig) -> KernelTrace:
    """Characterize the scalar two-way merge baseline.

    Merging is inherently serial per row: every output step executes a
    compare, a select, one or two head advances, and a data-dependent
    branch (which way the comparison went is as unpredictable as the
    coordinate interleaving of the inputs).
    """
    rows = a.num_rows
    # Count merge steps and two-hit steps exactly, vectorized.
    steps = 0
    both = 0
    for i in range(rows):
        ia = a.idxs[a.ptrs[i]:a.ptrs[i + 1]]
        ib = b.idxs[b.ptrs[i]:b.ptrs[i + 1]]
        inter = np.intersect1d(ia, ib, assume_unique=True).size
        steps += ia.size + ib.size - inter
        both += inter
    nnz_out = steps

    space = AddressSpace()
    a_op = CsrOperand(space, a)
    b_op = CsrOperand(space, b)
    out_idx = space.place(nnz_out * INDEX_BYTES)
    out_val = space.place(nnz_out * VALUE_BYTES)

    streams = [
        AccessStream(a_op.ptr_addresses(), INDEX_BYTES, "read", "A ptrs"),
        AccessStream(b_op.ptr_addresses(), INDEX_BYTES, "read", "B ptrs"),
        AccessStream(a_op.idx_addresses(), INDEX_BYTES, "read", "A idxs"),
        AccessStream(a_op.val_addresses(), VALUE_BYTES, "read", "A vals"),
        AccessStream(b_op.idx_addresses(), INDEX_BYTES, "read", "B idxs"),
        AccessStream(b_op.val_addresses(), VALUE_BYTES, "read", "B vals"),
        AccessStream(out_idx + np.arange(nnz_out, dtype=np.int64)
                     * INDEX_BYTES, INDEX_BYTES, "write", "Z idxs"),
        AccessStream(out_val + np.arange(nnz_out, dtype=np.int64)
                     * VALUE_BYTES, VALUE_BYTES, "write", "Z vals"),
    ]
    return KernelTrace(
        name="spadd",
        scalar_ops=7 * steps + 5 * rows,
        vector_ops=0,                    # merge code does not vectorize
        loads=2 * (a.nnz + b.nnz) + 4 * rows,
        stores=2 * nnz_out,
        branches=3 * steps + rows,
        datadep_branches=2 * steps,
        flops=float(both),
        streams=streams,
        dependent_load_fraction=0.15,
        parallel_units=rows,
    )
