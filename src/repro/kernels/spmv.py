"""Sparse Matrix-Vector multiplication: ``Z_i = A_ij B_j`` (CSR).

SpMV is the paper's proxy for the *traversal* stage (Section 3): its
inner loop is a memory-intensive scan-and-lookup whose data-dependent
control flow and gather accesses dominate execution.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.csr import CsrMatrix
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import CsrOperand, DenseOperand, row_chunk_count, sve_lanes


def spmv(a: CsrMatrix, b) -> np.ndarray:
    """Reference SpMV: returns the dense vector ``A @ b``.

    Numerically equivalent to the scalar loop of Figure 4; implemented
    with vectorized numpy for speed (the loop *structure* matters only
    to :func:`characterize_spmv`).
    """
    b = np.asarray(b, dtype=np.float64)
    if b.size != a.num_cols:
        raise WorkloadError(
            f"vector length {b.size} != matrix cols {a.num_cols}"
        )
    contributions = a.vals * b[a.idxs]
    out = np.zeros(a.num_rows)
    row_of = np.repeat(np.arange(a.num_rows), np.diff(a.ptrs))
    np.add.at(out, row_of, contributions)
    return out


def characterize_spmv(a: CsrMatrix, machine: MachineConfig) -> KernelTrace:
    """Characterize the SVE-vectorized CSR SpMV baseline.

    Per inner-loop chunk of ``VL`` non-zeros the baseline issues: two
    contiguous vector loads (column indexes, values), one vector gather
    (``b[idxs]``), one vector FMA, predicate/induction updates and a
    loop branch.  Per row: pointer loads, reduction tail, and a store.
    """
    lanes = sve_lanes(machine.core.vector_bits)
    rows = a.num_rows
    nnz = a.nnz
    row_nnz = a.row_nnz()
    chunks = row_chunk_count(row_nnz, lanes)

    space = AddressSpace()
    mat = CsrOperand(space, a)
    vec = DenseOperand(space, a.num_cols)
    out = DenseOperand(space, rows)

    streams = [
        AccessStream(mat.ptr_addresses(), INDEX_BYTES, "read", "row_ptrs"),
        AccessStream(mat.idx_addresses(), INDEX_BYTES, "read", "col_idxs"),
        AccessStream(mat.val_addresses(), VALUE_BYTES, "read", "nnz_vals"),
        AccessStream(vec.addresses(a.idxs), VALUE_BYTES, "read", "b[idx]",
                     dependent=True, gather=True),
        AccessStream(out.addresses(), VALUE_BYTES, "write", "x[i]"),
    ]

    # Row-exit branches are only hard to predict when row lengths vary:
    # a TAGE-class predictor locks onto constant trip counts (banded FEM
    # matrices) but not onto irregular ones (power-law, road networks).
    if rows > 1:
        irregular_rows = int(np.count_nonzero(np.diff(row_nnz))) + 1
    else:
        irregular_rows = rows
    return KernelTrace(
        name="spmv",
        scalar_ops=6 * rows,           # ptr arithmetic, sum init, tail
        vector_ops=3 * chunks,         # fma + predicate + induction
        loads=3 * chunks + 2 * rows,   # idx/val/gather + two ptrs
        stores=rows,
        branches=chunks + rows,
        datadep_branches=irregular_rows,
        flops=2.0 * nnz,
        streams=streams,
        dependent_load_fraction=1.0 / 3.0,
        parallel_units=rows,
    )
