"""CP-ALS: canonical polyadic tensor decomposition via alternating
least squares (GenTen-style), built on COO MTTKRP.

Each sweep updates every factor matrix in turn::

    A_n ← MTTKRP(X, {A_m}_{m≠n}) · pinv(Π_{m≠n} A_mᵀA_m)

then renormalizes columns into the weight vector λ.  The paper runs
CP-ALS as a *real application*: partial results (factors and Gram
matrices) are consumed between kernels, which is exactly the pattern
near-core acceleration handles and discrete accelerators do not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.coo import CooTensor
from ..sim.trace import KernelTrace
from .mttkrp import characterize_mttkrp, mttkrp


@dataclass
class CpDecomposition:
    """Result of a CP-ALS run: ``X ≈ Σ_r λ_r a_r ∘ b_r ∘ c_r``."""

    weights: np.ndarray
    factors: list[np.ndarray]
    fit_history: list[float]

    def reconstruct(self) -> np.ndarray:
        """Materialize the (dense) rank-R reconstruction."""
        a, b, c = self.factors
        rank = self.weights.size
        shape = (a.shape[0], b.shape[0], c.shape[0])
        out = np.zeros(shape)
        for r in range(rank):
            out += self.weights[r] * np.einsum(
                "i,j,k->ijk", a[:, r], b[:, r], c[:, r]
            )
        return out


def _normalize_columns(factor: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    norms = np.linalg.norm(factor, axis=0)
    norms[norms == 0] = 1.0
    return factor / norms, norms


def cp_als(tensor: CooTensor, rank: int, *, iterations: int = 5,
           seed: int = 0, tolerance: float = 0.0) -> CpDecomposition:
    """Run CP-ALS on an order-3 COO tensor.

    Returns the factor matrices, weights and the fit (1 - relative
    residual) after each sweep.
    """
    if tensor.ndim != 3:
        raise WorkloadError("cp_als reference expects an order-3 tensor")
    if rank < 1:
        raise WorkloadError("rank must be >= 1")
    rng = np.random.default_rng(seed)
    factors = [rng.standard_normal((s, rank)) for s in tensor.shape]
    weights = np.ones(rank)
    norm_x = float(np.linalg.norm(tensor.values))
    fit_history: list[float] = []
    prev_fit = -np.inf

    for _ in range(iterations):
        for mode in range(3):
            others = [m for m in range(3) if m != mode]
            m_mat = mttkrp(tensor, factors[others[0]], factors[others[1]],
                           mode=mode)
            gram = (factors[others[0]].T @ factors[others[0]]) * (
                factors[others[1]].T @ factors[others[1]]
            )
            factor = m_mat @ np.linalg.pinv(gram)
            factor, weights = _normalize_columns(factor)
            factors[mode] = factor
        fit = _fit(tensor, factors, weights, norm_x)
        fit_history.append(fit)
        if tolerance and abs(fit - prev_fit) < tolerance:
            break
        prev_fit = fit
    return CpDecomposition(weights, factors, fit_history)


def _fit(tensor: CooTensor, factors, weights, norm_x: float) -> float:
    """Fit = 1 - ||X - X̂|| / ||X||, evaluated only at stored non-zeros
    plus the factor norms (exact for the residual's cross terms)."""
    a, b, c = factors
    i, k, l = tensor.coords
    approx_at_nnz = np.einsum(
        "r,nr,nr,nr->n", weights, a[i], b[k], c[l]
    )
    # ||X̂||² via the Gram matrices.
    gram = (a.T @ a) * (b.T @ b) * (c.T @ c)
    norm_hat_sq = float(weights @ gram @ weights)
    inner = float(np.dot(tensor.values, approx_at_nnz))
    residual_sq = max(0.0, norm_x ** 2 - 2 * inner + norm_hat_sq)
    return 1.0 - np.sqrt(residual_sq) / norm_x if norm_x else 1.0


def characterize_cpals(tensor: CooTensor, rank: int,
                       machine: MachineConfig) -> KernelTrace:
    """Characterize one CP-ALS sweep: three MTTKRPs (one per mode) plus
    the dense Gram/solve updates, which stay on the core."""
    base = characterize_mttkrp(tensor, rank, machine)
    n_rows = sum(tensor.shape)
    dense_flops = (2.0 * n_rows * rank * rank + 6.0 * rank ** 3
                   + 2.0 * tensor.nnz * rank)
    dense_vec_ops = int(dense_flops / 8)
    return KernelTrace(
        name="cpals",
        scalar_ops=3 * base.scalar_ops,
        vector_ops=3 * base.vector_ops + dense_vec_ops,
        loads=3 * base.loads + dense_vec_ops // 2,
        stores=3 * base.stores + dense_vec_ops // 4,
        branches=3 * base.branches,
        datadep_branches=3 * base.datadep_branches,
        flops=3.0 * base.flops + dense_flops,
        streams=base.streams * 3,
        dependent_load_fraction=base.dependent_load_fraction * 0.8,
        parallel_units=base.parallel_units,
    )
