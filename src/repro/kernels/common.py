"""Shared helpers for kernel implementations and characterization."""

from __future__ import annotations

import numpy as np

from ..formats.csr import CsrMatrix
from ..sim.trace import AddressSpace
from ..types import INDEX_BYTES, VALUE_BYTES


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative operands."""
    return -(-a // b)


def sve_lanes(vector_bits: int, elem_bytes: int = VALUE_BYTES) -> int:
    """Number of elements one SVE vector holds."""
    return max(1, vector_bits // (8 * elem_bytes))


def sorted_unique(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an integer key array.

    Sort-plus-boundary-scan beats ``np.unique`` by an order of magnitude
    on the multi-million-element packed-key arrays the vectorized
    characterizations build (numpy ≥ 2.3 routes ``unique`` through a
    hash table that loses badly to a radix-friendly int64 sort here).
    """
    if keys.size == 0:
        return keys
    keys = np.sort(keys)
    boundary = np.empty(keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    return keys[boundary]


class CsrOperand:
    """Virtual placement of a CSR matrix's three arrays, with address
    helpers for characterization."""

    def __init__(self, space: AddressSpace, matrix: CsrMatrix) -> None:
        self.matrix = matrix
        self.ptrs_base = space.place((matrix.num_rows + 1) * INDEX_BYTES)
        self.idxs_base = space.place(matrix.nnz * INDEX_BYTES)
        self.vals_base = space.place(matrix.nnz * VALUE_BYTES)

    def ptr_addresses(self) -> np.ndarray:
        """Sequential walk over the row-pointer array."""
        n = self.matrix.num_rows + 1
        return self.ptrs_base + np.arange(n, dtype=np.int64) * INDEX_BYTES

    def idx_addresses(self, positions=None) -> np.ndarray:
        if positions is None:
            positions = np.arange(self.matrix.nnz, dtype=np.int64)
        return self.idxs_base + np.asarray(positions, np.int64) * INDEX_BYTES

    def val_addresses(self, positions=None) -> np.ndarray:
        if positions is None:
            positions = np.arange(self.matrix.nnz, dtype=np.int64)
        return self.vals_base + np.asarray(positions, np.int64) * VALUE_BYTES


class DenseOperand:
    """Virtual placement of a dense array."""

    def __init__(self, space: AddressSpace, num_elems: int,
                 elem_bytes: int = VALUE_BYTES) -> None:
        self.base = space.place(num_elems * elem_bytes)
        self.elem_bytes = elem_bytes
        self.num_elems = num_elems

    def addresses(self, indices=None) -> np.ndarray:
        if indices is None:
            indices = np.arange(self.num_elems, dtype=np.int64)
        return self.base + np.asarray(indices, np.int64) * self.elem_bytes


def row_chunk_count(row_nnz: np.ndarray, lanes: int) -> int:
    """Total vectorized inner-loop iterations when each row is processed
    in ``lanes``-wide chunks (the SVE baseline's trip count)."""
    return int(np.sum(-(-row_nnz // lanes)))


def gather_scan_positions(ptrs, keys) -> np.ndarray:
    """Positions visited when scanning fiber ``keys[k]`` of a compressed
    structure for each k, concatenated in order (vectorized).

    Equivalent to ``concatenate([arange(ptrs[k], ptrs[k+1]) for k in
    keys])`` without the Python loop.
    """
    ptrs = np.asarray(ptrs)
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return np.zeros(0, dtype=np.int64)
    starts = ptrs[keys].astype(np.int64)
    lens = (ptrs[keys + 1] - ptrs[keys]).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(lens) - lens, lens)
    return np.repeat(starts, lens) + (np.arange(total, dtype=np.int64)
                                      - offsets)
