"""SpMSpM loop schedules (paper Section 2.1).

The paper notes that matrix multiplication admits three classic index
schedules, each traversing and combining different fibers:

* ``ijk`` — inner product: every (i, j) output intersects a row of A
  with a column of B (conjunctive merge per output);
* ``kij`` — outer product: every k pairs a column of A with a row of B,
  producing rank-1 updates merged into the output;
* ``ikj`` — Gustavson/dataflow: rows of B selected by A's non-zeros
  accumulate into the output row (the schedule the evaluation uses,
  implemented in :mod:`repro.kernels.spmspm`).

All three compute the same product; they differ in which format
orientations they need and how much merging they do — exactly the
trade-off the TMU's format-completeness is about.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..fibers.fiber import Fiber
from ..fibers.merge import conjunctive_merge
from ..formats.coo import CooMatrix
from ..formats.convert import coo_to_csr
from ..formats.csr import CsrMatrix


def spmspm_inner_product(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """``ijk`` schedule: conjunctively merge row ``A_i*`` with column
    ``B_*j`` for every candidate output coordinate.

    Requires B in column-major orientation (we transpose internally,
    i.e. use CSC of B).  Asymptotically the worst schedule for sparse
    outputs — every candidate pair pays a merge — which is why it is
    the proxy for merge-heavy inner loops.
    """
    if a.num_cols != b.num_rows:
        raise WorkloadError("inner dimensions of A and B do not match")
    b_csc = b.transpose()  # rows of b_csc are columns of B
    out_ptrs = np.zeros(a.num_rows + 1, dtype=np.int64)
    idx_parts: list[int] = []
    val_parts: list[float] = []
    for i in range(a.num_rows):
        a_idx, a_val = a.row(i)
        if a_idx.size == 0:
            out_ptrs[i + 1] = out_ptrs[i]
            continue
        row_fiber = Fiber(a_idx, a_val, validate=False)
        count = 0
        # candidate columns: those with any nonzero in B's rows A_i hits
        for j in range(b.num_cols):
            col_fiber = Fiber(*b_csc.row(j), validate=False)
            if col_fiber.nnz == 0:
                continue
            acc = 0.0
            hit = False
            for point in conjunctive_merge([row_fiber, col_fiber]):
                acc += point.values[0] * point.values[1]
                hit = True
            if hit and acc != 0.0:
                idx_parts.append(j)
                val_parts.append(acc)
                count += 1
        out_ptrs[i + 1] = out_ptrs[i] + count
    return CsrMatrix(
        (a.num_rows, b.num_cols), out_ptrs,
        np.asarray(idx_parts, dtype=np.int64),
        np.asarray(val_parts), validate=False)


def spmspm_outer_product(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """``kij`` schedule: for every k, the outer product of column
    ``A_*k`` and row ``B_k*`` contributes a rank-1 update; all updates
    are merged (here: COO assembly with duplicate summing, the
    merge-tree a hardware implementation like OuterSPACE would use)."""
    if a.num_cols != b.num_rows:
        raise WorkloadError("inner dimensions of A and B do not match")
    a_csc = a.transpose()  # rows of a_csc are columns of A
    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    for k in range(a.num_cols):
        col_idx, col_val = a_csc.row(k)
        row_idx, row_val = b.row(k)
        if col_idx.size == 0 or row_idx.size == 0:
            continue
        rows_parts.append(np.repeat(col_idx, row_idx.size))
        cols_parts.append(np.tile(row_idx, col_idx.size))
        vals_parts.append(np.outer(col_val, row_val).ravel())
    if not rows_parts:
        return CsrMatrix((a.num_rows, b.num_cols),
                         np.zeros(a.num_rows + 1, dtype=np.int64),
                         [], [], validate=False)
    coo = CooMatrix(
        (a.num_rows, b.num_cols),
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
    )
    return coo_to_csr(coo)


def schedule_merge_work(a: CsrMatrix, b: CsrMatrix) -> dict[str, int]:
    """Analytic merge/traversal element counts per schedule — the
    numbers that explain why Gustavson wins on sparse outputs and why
    the paper evaluates it."""
    b_csc_counts = np.zeros(b.num_cols, dtype=np.int64)
    np.add.at(b_csc_counts, b.idxs, 1)
    a_csc_counts = np.zeros(a.num_cols, dtype=np.int64)
    np.add.at(a_csc_counts, a.idxs, 1)
    b_row_counts = np.diff(b.ptrs)

    inner = int(a.num_rows * b_csc_counts.sum()
                + b.num_cols * a.nnz)           # every (i, j) co-scan
    outer = int((a_csc_counts * b_row_counts).sum())  # rank-1 volume
    gustavson = int(b_row_counts[a.idxs].sum())       # scanned rows
    return {"ijk": inner, "kij": outer, "ikj": gustavson}
