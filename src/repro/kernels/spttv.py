"""Sparse Tensor Times Vector: ``Z_ij = A_ijk B_k`` (CSF x dense).

Contracts the last mode of an order-3 CSF tensor against a dense
vector; the output keeps the leading two modes' sparsity.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..formats.csf import CsfTensor


def spttv(a: CsfTensor, b) -> dict[tuple[int, int], float]:
    """Reference SpTTV returning an (i, j) → value map (the natural
    sparse output structure)."""
    if a.ndim != 3:
        raise WorkloadError("spttv expects an order-3 CSF tensor")
    b = np.asarray(b, dtype=np.float64)
    if b.size != a.shape[2]:
        raise WorkloadError("vector length must match the last mode")
    out: dict[tuple[int, int], float] = {}
    for i_node in range(a.idxs[0].size):
        i = int(a.idxs[0][i_node])
        jb, je = int(a.ptrs[1][i_node]), int(a.ptrs[1][i_node + 1])
        for j_node in range(jb, je):
            j = int(a.idxs[1][j_node])
            kb, ke = int(a.ptrs[2][j_node]), int(a.ptrs[2][j_node + 1])
            ks = a.idxs[2][kb:ke]
            acc = float(np.dot(a.vals[kb:ke], b[ks]))
            out[(i, j)] = acc
    return out


def spttv_numpy(a: CsfTensor, b) -> dict[tuple[int, int], float]:
    """Vectorized check implementation via COO expansion."""
    coords, vals = a.to_coo_arrays()
    b = np.asarray(b, dtype=np.float64)
    contrib = vals * b[coords[2]]
    out: dict[tuple[int, int], float] = {}
    for i, j, v in zip(coords[0].tolist(), coords[1].tolist(),
                       contrib.tolist()):
        out[(i, j)] = out.get((i, j), 0.0) + v
    return out
