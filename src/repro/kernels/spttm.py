"""Sparse Tensor Times Matrix: ``Z_ijl = A_ijk B_kl`` (CSF x dense).

Contracts the last mode of an order-3 CSF tensor against a dense
matrix; each (i, j) fiber of the tensor produces one dense row of
length ``L`` in the semi-sparse output.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..formats.csf import CsfTensor


def spttm(a: CsfTensor, b) -> dict[tuple[int, int], np.ndarray]:
    """Reference SpTTM returning an (i, j) → dense row map."""
    if a.ndim != 3:
        raise WorkloadError("spttm expects an order-3 CSF tensor")
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != a.shape[2]:
        raise WorkloadError("matrix rows must match the last tensor mode")
    out: dict[tuple[int, int], np.ndarray] = {}
    for i_node in range(a.idxs[0].size):
        i = int(a.idxs[0][i_node])
        jb, je = int(a.ptrs[1][i_node]), int(a.ptrs[1][i_node + 1])
        for j_node in range(jb, je):
            j = int(a.idxs[1][j_node])
            kb, ke = int(a.ptrs[2][j_node]), int(a.ptrs[2][j_node + 1])
            ks = a.idxs[2][kb:ke]
            out[(i, j)] = a.vals[kb:ke] @ b[ks]
    return out
