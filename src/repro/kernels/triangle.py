"""Triangle counting via masked SpMSpM (fused GraphBLAS formulation).

``c = Σ (L · Lᵀ) .* L`` over the lower-triangular half ``L`` of an
undirected graph: for every edge (i, j) ∈ L the kernel *conjunctively
merges* (intersects) neighbour lists ``L_i`` and ``L_j`` — making TC
the most merge-dominated workload in the paper's suite.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.csr import CsrMatrix
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import INDEX_BYTES
from .common import CsrOperand


def lower_triangle(a: CsrMatrix) -> CsrMatrix:
    """Strictly-lower-triangular part of a square matrix, in CSR."""
    if a.num_rows != a.num_cols:
        raise WorkloadError("lower_triangle needs a square matrix")
    row_of = np.repeat(np.arange(a.num_rows), np.diff(a.ptrs))
    keep = a.idxs < row_of
    new_ptrs = np.zeros(a.num_rows + 1, dtype=np.int64)
    np.add.at(new_ptrs, row_of[keep] + 1, 1)
    np.cumsum(new_ptrs, out=new_ptrs)
    return CsrMatrix(a.shape, new_ptrs, a.idxs[keep], a.vals[keep],
                     validate=False)


def triangle_count(l: CsrMatrix) -> int:
    """Count triangles of the graph whose lower-triangular adjacency is
    ``l`` (each triangle counted once).

    Vectorized wedge closure: a triangle is an edge (i, j) plus a common
    neighbour k, i.e. a wedge i-j-k whose closing pair (i, k) is itself
    an edge.  Materialize every wedge's closing pair as a packed
    ``i << 32 | k`` key and count the ones present in the edge-key set —
    one searchsorted instead of an intersect1d per edge.  Requires
    column indexes < 2**32 (far beyond any simulated input).
    """
    if l.num_rows != l.num_cols:
        raise WorkloadError("triangle_count needs a square matrix")
    if l.nnz == 0:
        return 0
    row_nnz = np.diff(l.ptrs)
    row_of = np.repeat(np.arange(l.num_rows, dtype=np.int64), row_nnz)
    edge_keys = np.sort((row_of << 32) | l.idxs)
    # Per edge p = (i, j): expand row j's neighbour list.
    j = l.idxs
    counts = row_nnz[j]
    total = int(counts.sum())
    if total == 0:
        return 0
    i_rep = np.repeat(row_of, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts,
                                           counts)
    k = l.idxs[np.repeat(l.ptrs[j], counts) + offsets]
    wedge_keys = (i_rep << 32) | k
    pos = np.searchsorted(edge_keys, wedge_keys)
    pos[pos == edge_keys.size] = 0
    return int(np.count_nonzero(edge_keys[pos] == wedge_keys))


def characterize_triangle(l: CsrMatrix,
                          machine: MachineConfig) -> KernelTrace:
    """Characterize the masked-SpMSpM TC baseline.

    Per edge (i, j), the merge walks both neighbour lists until one is
    exhausted — every step is a compare plus a data-dependent branch.
    """
    rows = l.num_rows
    row_nnz = np.diff(l.ptrs)
    # Steps of a two-pointer intersection of rows i and j per edge:
    # |L_i| + |L_j| advances, summed over all edges (vectorized).
    row_of = np.repeat(np.arange(rows), row_nnz)
    merge_steps = int(row_nnz[row_of].sum() + row_nnz[l.idxs].sum())

    space = AddressSpace()
    op = CsrOperand(space, l)
    # Row i's list is re-scanned per edge; row j's list is a dependent
    # lookup.  Sample re-scan positions per edge.
    from .spmspm import scan_arrays

    scan_positions, _ = scan_arrays(l, l)

    streams = [
        AccessStream(op.ptr_addresses(), INDEX_BYTES, "read", "L ptrs"),
        AccessStream(op.idx_addresses(), INDEX_BYTES, "read", "L_i idxs"),
        AccessStream(op.idx_addresses(scan_positions), INDEX_BYTES,
                     "read", "L_j idxs", dependent=True),
    ]
    return KernelTrace(
        name="triangle",
        scalar_ops=3 * merge_steps + 4 * rows,
        vector_ops=0,
        loads=merge_steps + 2 * l.nnz + 2 * rows,
        stores=rows,
        branches=int(1.2 * merge_steps) + rows,
        datadep_branches=int(0.6 * merge_steps),
        flops=0.0,                      # integer kernel (Figure 12 note)
        streams=streams,
        dependent_load_fraction=0.4,
        parallel_units=rows,
    )
