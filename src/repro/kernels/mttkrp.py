"""MTTKRP: Matricized Tensor Times Khatri-Rao Product (COO).

``Z_ij = Σ_{k,l} A_ikl B_kj C_lj`` for an order-3 sparse tensor ``A``
and dense factor matrices ``B`` and ``C``.  This is the workhorse of
CP-ALS tensor decomposition; the paper uses the GenTen/Phipps-Kolda COO
formulation with permutation optimization (non-zeros sorted by the
output mode so partial results accumulate into one row at a time).
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.coo import CooTensor
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import ceil_div, sve_lanes


def mttkrp(tensor: CooTensor, b, c, mode: int = 0) -> np.ndarray:
    """Reference MTTKRP for an order-3 COO tensor.

    ``mode`` selects the output mode (0 → ``Z_ij = A_ikl B_kj C_lj``);
    the other two modes' coordinates index the factor matrices.
    """
    if tensor.ndim != 3:
        raise WorkloadError("mttkrp reference expects an order-3 tensor")
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    modes = [m for m in range(3) if m != mode]
    if b.shape[0] != tensor.shape[modes[0]]:
        raise WorkloadError("factor B rows must match tensor mode extent")
    if c.shape[0] != tensor.shape[modes[1]]:
        raise WorkloadError("factor C rows must match tensor mode extent")
    if b.shape[1] != c.shape[1]:
        raise WorkloadError("factor ranks must agree")
    rank = b.shape[1]
    out = np.zeros((tensor.shape[mode], rank))
    i = tensor.coords[mode]
    k = tensor.coords[modes[0]]
    l = tensor.coords[modes[1]]
    np.add.at(out, i, tensor.values[:, None] * b[k] * c[l])
    return out


def characterize_mttkrp(tensor: CooTensor, rank: int,
                        machine: MachineConfig,
                        parallel_mode: str = "mode") -> KernelTrace:
    """Characterize the permuted COO MTTKRP baseline.

    Per non-zero the kernel gathers one row of each factor (rank-wide
    vector loads), multiplies them element-wise, scales by the tensor
    value and accumulates into the output row — ``3 x rank`` flops.

    ``parallel_mode`` mirrors Table 4's two TMU variants: ``'mode'``
    (P1, parallelize the non-zero loop) and ``'rank'`` (P2, parallelize
    the rank loop).
    """
    if tensor.ndim != 3:
        raise WorkloadError("characterize_mttkrp expects an order-3 tensor")
    if parallel_mode not in ("mode", "rank"):
        raise WorkloadError(f"unknown parallel_mode {parallel_mode!r}")
    lanes = sve_lanes(machine.core.vector_bits)
    nnz = tensor.nnz
    rank_chunks = ceil_div(rank, lanes)

    space = AddressSpace()
    coord_bases = [space.place(nnz * INDEX_BYTES) for _ in range(3)]
    val_base = space.place(nnz * VALUE_BYTES)
    b_base = space.place(tensor.shape[1] * rank * VALUE_BYTES)
    c_base = space.place(tensor.shape[2] * rank * VALUE_BYTES)
    out_base = space.place(tensor.shape[0] * rank * VALUE_BYTES)

    nnzidx = np.arange(nnz, dtype=np.int64)
    vec_bytes = min(64, lanes * VALUE_BYTES)
    # One sampled address per rank-chunk per factor row.
    chunk_off = np.arange(rank_chunks, dtype=np.int64) * lanes
    b_rows = np.repeat(tensor.coords[1] * rank, rank_chunks)
    c_rows = np.repeat(tensor.coords[2] * rank, rank_chunks)
    z_rows = np.repeat(tensor.coords[0] * rank, rank_chunks)
    tiled = np.tile(chunk_off, nnz)

    streams = [
        AccessStream(coord_bases[0] + nnzidx * INDEX_BYTES, INDEX_BYTES,
                     "read", "coords i"),
        AccessStream(coord_bases[1] + nnzidx * INDEX_BYTES, INDEX_BYTES,
                     "read", "coords k"),
        AccessStream(coord_bases[2] + nnzidx * INDEX_BYTES, INDEX_BYTES,
                     "read", "coords l"),
        AccessStream(val_base + nnzidx * VALUE_BYTES, VALUE_BYTES,
                     "read", "A vals"),
        # Factor-row gathers: only the first chunk of each row is
        # address-dependent; later chunks stream sequentially, so the
        # stream is not marked dependent (the trace-level
        # dependent_load_fraction captures the per-row serialization).
        AccessStream(b_base + (b_rows + tiled) * VALUE_BYTES, vec_bytes,
                     "read", "B[k,:]"),
        AccessStream(c_base + (c_rows + tiled) * VALUE_BYTES, vec_bytes,
                     "read", "C[l,:]"),
        AccessStream(out_base + (z_rows + tiled) * VALUE_BYTES, vec_bytes,
                     "read", "Z[i,:] rmw"),
        AccessStream(out_base + (z_rows + tiled) * VALUE_BYTES, vec_bytes,
                     "write", "Z[i,:]"),
    ]
    total_chunks = nnz * rank_chunks
    return KernelTrace(
        name=f"mttkrp_{parallel_mode}",
        scalar_ops=8 * nnz,
        vector_ops=3 * total_chunks,          # two muls + one add
        loads=3 * total_chunks + 4 * nnz,
        stores=total_chunks,
        branches=total_chunks + nnz,
        datadep_branches=nnz // 8,            # output-row change detection
        flops=3.0 * nnz * rank,
        streams=streams,
        dependent_load_fraction=0.6,
        parallel_units=int(tensor.shape[0]),
    )
