"""SpKAdd: summation of K sparse matrices, ``Z_ij = Σ_k A^k_ij`` (DCSR).

The paper's merge-intensive headline kernel (Hussain et al.): K input
matrices are co-iterated row by row and joined with a K-way disjunctive
merge.  Inputs are produced by cyclically distributing the rows of a
source matrix (``A^x_i = A_{i·k+x}``) so domain structure is preserved.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.csr import CsrMatrix
from ..formats.convert import coo_to_dcsr, csr_to_coo
from ..formats.dcsr import DcsrMatrix
from ..formats.coo import CooMatrix
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import sorted_unique


def split_rows_cyclic(a: CsrMatrix, k: int) -> list[DcsrMatrix]:
    """Cyclically distribute the rows of ``a`` over ``k`` DCSR matrices:
    row ``i`` of output ``x`` is row ``i*k + x`` of ``a`` (Section 6)."""
    if k < 1:
        raise WorkloadError("k must be >= 1")
    out_rows = -(-a.num_rows // k)
    coo = csr_to_coo(a)
    outputs = []
    for x in range(k):
        pick = (coo.rows % k) == x
        rows = coo.rows[pick] // k
        # Filtering a lexsorted COO preserves lexsorted order (i*k+x is
        # monotone in i for a fixed residue x), so skip the re-sort.
        part = CooMatrix((out_rows, a.num_cols), rows, coo.cols[pick],
                         coo.values[pick], sum_duplicates=False,
                         assume_sorted=True)
        outputs.append(coo_to_dcsr(part))
    return outputs


def spkadd(matrices: list[DcsrMatrix]) -> CsrMatrix:
    """Reference SpKAdd via a K-way heap merge per output row.

    All inputs must share the same shape.  Returns CSR output.
    """
    if not matrices:
        raise WorkloadError("spkadd needs at least one input matrix")
    shape = matrices[0].shape
    if any(m.shape != shape for m in matrices):
        raise WorkloadError("spkadd inputs must share one shape")
    rows, cols = shape

    # Row-index cursors per input (DCSR rows are sparse).
    cursors = [0] * len(matrices)
    out_ptrs = np.zeros(rows + 1, dtype=np.int64)
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    for i in range(rows):
        # Collect the fibers of inputs that have row i (hierarchical
        # merge: first dimension selects active lanes).
        fibers = []
        for x, m in enumerate(matrices):
            cur = cursors[x]
            if cur < m.num_nonempty_rows and int(m.row_idxs[cur]) == i:
                beg, end = int(m.ptrs[cur]), int(m.ptrs[cur + 1])
                fibers.append((m.idxs[beg:end], m.vals[beg:end]))
                cursors[x] += 1
        if not fibers:
            out_ptrs[i + 1] = out_ptrs[i]
            continue
        # K-way disjunctive merge with accumulation.
        heap = [(int(idxs[0]), x, 0) for x, (idxs, _vals) in
                enumerate(fibers)]
        heapq.heapify(heap)
        out_i: list[int] = []
        out_v: list[float] = []
        while heap:
            col, x, pos = heapq.heappop(heap)
            idxs, vals = fibers[x]
            if out_i and out_i[-1] == col:
                out_v[-1] += float(vals[pos])
            else:
                out_i.append(col)
                out_v.append(float(vals[pos]))
            if pos + 1 < idxs.size:
                heapq.heappush(heap, (int(idxs[pos + 1]), x, pos + 1))
        idx_parts.append(np.asarray(out_i, dtype=np.int64))
        val_parts.append(np.asarray(out_v))
        out_ptrs[i + 1] = out_ptrs[i] + len(out_i)
    return CsrMatrix(
        shape,
        out_ptrs,
        np.concatenate(idx_parts) if idx_parts else np.zeros(0, np.int64),
        np.concatenate(val_parts) if val_parts else np.zeros(0),
        validate=False,
    )


def merged_output_points(matrices: list[DcsrMatrix]) -> tuple[int, int]:
    """(distinct output rows, distinct output points) of the K-way union.

    One pass over all inputs at once: every stored element becomes a
    packed ``(row << 32) | col`` key and the union sizes fall out of two
    sorted-unique passes — replacing the per-row searchsorted/unique
    loop that previously dominated SpKAdd model building.
    """
    row_parts, key_parts = [], []
    for m in matrices:
        ridx = np.asarray(m.row_idxs, dtype=np.int64)
        row_parts.append(ridx)
        if m.nnz:
            per_row = np.diff(np.asarray(m.ptrs, dtype=np.int64))
            rows = np.repeat(ridx, per_row)
            key_parts.append((rows << 32) | np.asarray(m.idxs, np.int64))
    if not row_parts:
        return 0, 0
    row_points = int(sorted_unique(np.concatenate(row_parts)).size)
    nnz_out = int(sorted_unique(np.concatenate(key_parts)).size
                  ) if key_parts else 0
    return row_points, nnz_out


def characterize_spkadd(matrices: list[DcsrMatrix],
                        machine: MachineConfig) -> KernelTrace:
    """Characterize the software K-way merge baseline.

    Every input element passes through the merge network once: a
    compare-tree descent (~log2 K compares), a head advance, and a
    highly data-dependent branch per element — plus the per-row lane
    activation checks on the DCSR row dimension.
    """
    k = len(matrices)
    total_nnz = sum(m.nnz for m in matrices)
    total_rows = sum(m.num_nonempty_rows for m in matrices)
    rows = matrices[0].num_rows if matrices else 0
    log_k = max(1, int(np.ceil(np.log2(max(2, k)))))

    # Output nnz: distinct columns per output row across inputs.
    _row_points, nnz_out = merged_output_points(matrices)

    space = AddressSpace()
    streams: list[AccessStream] = []
    for x, m in enumerate(matrices):
        row_base = space.place(m.num_nonempty_rows * INDEX_BYTES)
        ptr_base = space.place((m.num_nonempty_rows + 1) * INDEX_BYTES)
        idx_base = space.place(m.nnz * INDEX_BYTES)
        val_base = space.place(m.nnz * VALUE_BYTES)
        nridx = np.arange(m.num_nonempty_rows, dtype=np.int64)
        nnzidx = np.arange(m.nnz, dtype=np.int64)
        streams.extend([
            AccessStream(row_base + nridx * INDEX_BYTES, INDEX_BYTES,
                         "read", f"A{x} row_idxs"),
            AccessStream(ptr_base + nridx * INDEX_BYTES, INDEX_BYTES,
                         "read", f"A{x} ptrs"),
            AccessStream(idx_base + nnzidx * INDEX_BYTES, INDEX_BYTES,
                         "read", f"A{x} idxs"),
            AccessStream(val_base + nnzidx * VALUE_BYTES, VALUE_BYTES,
                         "read", f"A{x} vals"),
        ])
    out_idx = space.place(nnz_out * INDEX_BYTES)
    out_val = space.place(nnz_out * VALUE_BYTES)
    onnz = np.arange(nnz_out, dtype=np.int64)
    streams.extend([
        AccessStream(out_idx + onnz * INDEX_BYTES, INDEX_BYTES, "write",
                     "Z idxs"),
        AccessStream(out_val + onnz * VALUE_BYTES, VALUE_BYTES, "write",
                     "Z vals"),
    ])
    return KernelTrace(
        name="spkadd",
        scalar_ops=(2 * log_k + 2) * total_nnz + 6 * total_rows,
        vector_ops=0,
        loads=2 * total_nnz + 3 * total_rows + k * rows // 4,
        stores=2 * nnz_out,
        branches=(log_k + 1) * total_nnz + total_rows + rows,
        datadep_branches=int(0.4 * log_k * total_nnz),
        flops=float(total_nnz - nnz_out),
        streams=streams,
        dependent_load_fraction=0.1,
        parallel_units=rows,
    )
