"""PageRank, Jacobi-style (GAP benchmark suite formulation).

``Z_i = A_ij X_j Y_i`` per Table 4: each iteration multiplies the
(pull-direction) adjacency matrix by the outgoing-contribution vector
and applies the damping update.  The SpMV dominates; the weight update
(``Y``) is regular streaming compute the TMU does not accelerate —
which is why the paper reports slightly lower PR speedups than SpMV.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.csr import CsrMatrix
from ..sim.trace import AccessStream, KernelTrace
from ..types import VALUE_BYTES
from .spmv import characterize_spmv, spmv


def pagerank(adj: CsrMatrix, *, damping: float = 0.85,
             iterations: int = 10,
             tolerance: float = 0.0) -> np.ndarray:
    """Reference PageRank over a (square) adjacency matrix.

    ``adj[i, j] != 0`` means an edge j → i in pull direction (row i
    gathers from its in-neighbours).  Returns the rank vector.
    """
    if adj.num_rows != adj.num_cols:
        raise WorkloadError("pagerank needs a square adjacency matrix")
    n = adj.num_rows
    if n == 0:
        return np.zeros(0)
    # Out-degree of j = column count of j = row count of transpose.
    out_deg = np.zeros(n)
    np.add.at(out_deg, adj.idxs, 1.0)
    out_deg[out_deg == 0] = 1.0
    ranks = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    # Binary adjacency for the gather (GAP PR ignores edge weights).
    ones = CsrMatrix(adj.shape, adj.ptrs, adj.idxs,
                     np.ones(adj.nnz), validate=False)
    for _ in range(iterations):
        contrib = ranks / out_deg
        new_ranks = base + damping * spmv(ones, contrib)
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if tolerance and delta < tolerance:
            break
    return ranks


def characterize_pagerank(adj: CsrMatrix, machine: MachineConfig,
                          iterations: int = 1) -> KernelTrace:
    """Characterize one PR iteration: the SpMV plus the (regular,
    streaming, non-accelerated) contribution and damping updates."""
    trace = characterize_spmv(adj, machine)
    n = adj.num_rows
    from ..sim.trace import AddressSpace, strided_addresses
    from .common import sve_lanes, ceil_div

    lanes = sve_lanes(machine.core.vector_bits)
    chunks = ceil_div(n, lanes)
    space = AddressSpace()
    ranks_base = space.place(n * VALUE_BYTES)
    deg_base = space.place(n * VALUE_BYTES)
    contrib_base = space.place(n * VALUE_BYTES)
    extra = [
        AccessStream(strided_addresses(ranks_base, n, VALUE_BYTES),
                     VALUE_BYTES, "read", "ranks"),
        AccessStream(strided_addresses(deg_base, n, VALUE_BYTES),
                     VALUE_BYTES, "read", "out_deg"),
        AccessStream(strided_addresses(contrib_base, n, VALUE_BYTES),
                     VALUE_BYTES, "write", "contrib"),
    ]
    return KernelTrace(
        name="pagerank",
        scalar_ops=trace.scalar_ops + 2 * n // lanes,
        vector_ops=trace.vector_ops + 4 * chunks,  # div, fma, abs, sum
        loads=trace.loads + 2 * chunks,
        stores=trace.stores + chunks,
        branches=trace.branches + chunks,
        datadep_branches=trace.datadep_branches,
        flops=trace.flops + 4.0 * n,
        streams=trace.streams + extra,
        dependent_load_fraction=trace.dependent_load_fraction * 0.85,
        parallel_units=n,
    )
