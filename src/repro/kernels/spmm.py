"""Sparse-matrix x dense-matrix product: ``Z_ij = A_ik B_kj`` (CSR x row-major).

SpMM is SpMV with an extra inner dense loop: instead of looking up one
scalar ``b[k]``, the kernel scans the whole row ``B[k, :]`` (the paper
maps this to an ``IdxFbrT`` primitive on the TMU).
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.csr import CsrMatrix
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import CsrOperand, DenseOperand, ceil_div, sve_lanes


def spmm(a: CsrMatrix, b) -> np.ndarray:
    """Reference SpMM: ``A @ B`` with dense row-major ``B``."""
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != a.num_cols:
        raise WorkloadError(
            f"B shape {b.shape} incompatible with A cols {a.num_cols}"
        )
    out = np.zeros((a.num_rows, b.shape[1]))
    row_of = np.repeat(np.arange(a.num_rows), np.diff(a.ptrs))
    np.add.at(out, row_of, a.vals[:, None] * b[a.idxs])
    return out


def characterize_spmm(a: CsrMatrix, num_cols_b: int,
                      machine: MachineConfig) -> KernelTrace:
    """Characterize the SVE SpMM baseline (schedule ikj, vectorized j).

    Per A-non-zero the kernel streams ``ceil(J / VL)`` chunks of row
    ``B[k, :]`` and of the output row, each chunk one load + one FMA +
    one store-accumulate.
    """
    lanes = sve_lanes(machine.core.vector_bits)
    rows, nnz = a.num_rows, a.nnz
    j_chunks = ceil_div(num_cols_b, lanes)

    space = AddressSpace()
    mat = CsrOperand(space, a)
    b_op = DenseOperand(space, a.num_cols * num_cols_b)
    out = DenseOperand(space, rows * num_cols_b)

    # B row scans: for each nonzero (in traversal order) touch
    # B[k*J .. k*J+J).  Sample one address per vector chunk.
    chunk_offsets = np.arange(j_chunks, dtype=np.int64) * lanes
    b_rows = np.repeat(a.idxs * num_cols_b, j_chunks)
    b_scan = b_rows + np.tile(chunk_offsets, nnz)
    row_of = np.repeat(np.arange(rows), np.diff(a.ptrs))
    z_rows = np.repeat(row_of * num_cols_b, j_chunks)
    z_scan = z_rows + np.tile(chunk_offsets, nnz)

    # Each sampled address stands for one full vector access of `lanes`
    # elements, so the element size is a whole vector register.
    vec_bytes = lanes * VALUE_BYTES
    streams = [
        AccessStream(mat.ptr_addresses(), INDEX_BYTES, "read", "row_ptrs"),
        AccessStream(mat.idx_addresses(), INDEX_BYTES, "read", "col_idxs"),
        AccessStream(mat.val_addresses(), VALUE_BYTES, "read", "nnz_vals"),
        AccessStream(b_op.addresses(b_scan), vec_bytes, "read",
                     "B[k,:]", dependent=True),
        AccessStream(out.addresses(z_scan), vec_bytes, "read",
                     "Z[i,:] rmw"),
        AccessStream(out.addresses(z_scan), vec_bytes, "write",
                     "Z[i,:]"),
    ]
    total_chunks = nnz * j_chunks
    return KernelTrace(
        name="spmm",
        scalar_ops=4 * nnz + 4 * rows,
        vector_ops=2 * total_chunks,            # fma + induction
        loads=2 * total_chunks + nnz * 2 + 2 * rows,
        stores=total_chunks,
        branches=total_chunks + nnz + rows,
        datadep_branches=rows,
        flops=2.0 * nnz * num_cols_b,
        streams=streams,
        dependent_load_fraction=0.5,
        parallel_units=rows,
    )
