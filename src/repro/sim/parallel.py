"""Multicore execution: row-partitioned parallel runs.

The paper evaluates an 8-core system with every core running the same
kernel on a shard of the row/fiber space and its own TMU (Section 5.6:
one engine per core, private outQs, read-only shared traversals).  The
per-core models in :mod:`repro.sim.machine` assume perfectly symmetric
shards; this module makes the partitioning explicit so load imbalance
and core-count scaling can be studied:

* :func:`partition_rows` — contiguous, nnz-balanced row partitioning
  (the OpenMP-static-by-nnz split TACO-style baselines use);
* :func:`parallel_speedup` — the imbalance-aware scaling factor:
  parallel time = slowest shard + the bandwidth floor of the *total*
  traffic through the shared memory system;
* :func:`run_parallel` — whole-chip cycle estimate from a per-shard
  runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..config import MachineConfig
from ..errors import SimulationError


def partition_rows(row_weights, num_parts: int) -> list[tuple[int, int]]:
    """Split rows into ``num_parts`` contiguous [beg, end) shards with
    near-equal total weight (non-zeros per row).

    Uses the standard prefix-sum splitter: shard k covers the rows
    whose cumulative weight falls in slice k.
    """
    weights = np.asarray(row_weights, dtype=np.float64)
    if num_parts < 1:
        raise SimulationError("need at least one partition")
    n = weights.size
    if n == 0:
        return [(0, 0)] * num_parts
    prefix = np.concatenate(([0.0], np.cumsum(weights)))
    total = prefix[-1]
    bounds = [0]
    for k in range(1, num_parts):
        target = total * k / num_parts
        bounds.append(int(np.searchsorted(prefix, target, side="left")))
    bounds.append(n)
    # enforce monotonicity for degenerate weight distributions
    for k in range(1, len(bounds)):
        bounds[k] = max(bounds[k], bounds[k - 1])
    return [(bounds[k], bounds[k + 1]) for k in range(num_parts)]


@dataclass
class ParallelResult:
    """Whole-chip outcome of a partitioned run."""

    shard_cycles: list[float]
    bandwidth_floor: float
    total_cycles: float

    @property
    def imbalance(self) -> float:
        """max shard / mean shard — 1.0 is perfectly balanced."""
        mean = float(np.mean(self.shard_cycles))
        return max(self.shard_cycles) / mean if mean else 1.0

    def speedup_over_serial(self, serial_cycles: float) -> float:
        return serial_cycles / self.total_cycles if self.total_cycles \
            else float("inf")


def run_parallel(shard_runner: Callable[[int, int], float],
                 row_weights, machine: MachineConfig, *,
                 total_mem_bytes: float = 0.0,
                 num_cores: int | None = None) -> ParallelResult:
    """Estimate the whole-chip runtime of a row-partitioned kernel.

    ``shard_runner(beg, end)`` returns the cycles one core needs for
    rows [beg, end) *given its fair bandwidth share*; the chip finishes
    when the slowest shard does, but never before the total traffic
    drains through the shared memory system.
    """
    cores = num_cores if num_cores is not None else machine.num_cores
    shards = partition_rows(row_weights, cores)
    shard_cycles = [shard_runner(beg, end) for beg, end in shards]
    bw_floor = total_mem_bytes / max(1e-9, machine.bytes_per_cycle())
    total = max(max(shard_cycles, default=0.0), bw_floor)
    return ParallelResult(shard_cycles=shard_cycles,
                          bandwidth_floor=bw_floor,
                          total_cycles=total)


def parallel_speedup(row_weights, num_cores: int) -> float:
    """Upper-bound speedup from nnz-balanced static partitioning alone
    (no memory effects): serial weight / slowest shard weight."""
    weights = np.asarray(row_weights, dtype=np.float64)
    if weights.size == 0:
        return float(num_cores)
    shards = partition_rows(weights, num_cores)
    prefix = np.concatenate(([0.0], np.cumsum(weights)))
    shard_weights = [prefix[end] - prefix[beg] for beg, end in shards]
    slowest = max(shard_weights)
    return float(prefix[-1] / slowest) if slowest else float(num_cores)


def core_scaling(machine: MachineConfig, per_core_cycles: float,
                 per_core_mem_bytes: float,
                 core_counts: Sequence[int]) -> dict[int, float]:
    """Scaling curve of a symmetric workload: with ``c`` cores, each
    core does ``1/c`` of the work but the shared bandwidth saturates —
    the knee the paper's bandwidth-bound TMU runs sit right on top of.

    Returns speedup over one core per core count.
    """
    one_core = max(per_core_cycles * machine.num_cores,
                   per_core_mem_bytes * machine.num_cores
                   / machine.bytes_per_cycle())
    out = {}
    for c in core_counts:
        if c < 1:
            raise SimulationError("core counts must be positive")
        compute = per_core_cycles * machine.num_cores / c
        bw = (per_core_mem_bytes * machine.num_cores
              / machine.bytes_per_cycle())
        out[c] = one_core / max(compute, bw)
    return out
