"""Whole-system execution models: software baseline, TMU, Single-Lane
TMU and IMP variants.

Every run is expressed per-core (all cores execute symmetric shards of
the row/fiber space, the paper's parallelization), with the off-chip
bandwidth shared fairly.  Speedups are ratios of per-core cycle counts,
which equal whole-system ratios under symmetric sharding.

The TMU run models the decoupled producer/consumer pipeline of Section
5: the TMU streams traversal data from the LLC at up to
``outstanding_requests`` in flight, marshals outQ chunks into the L2,
and the core consumes chunks with SIMD callbacks.  Total time is the
slower of the two sides plus one chunk of pipeline fill — which makes
the *read-to-write ratio* (Figure 13) a direct model output.

Cache behaviour is classified by the model ``machine.fast_cache``
selects (the vectorized :class:`~repro.sim.fastcache.FastCache` by
default, the golden-reference :class:`~repro.sim.cache.Cache` under
``--reference``); the two are hit/miss-equivalent, so every result in
this module is identical either way — only the wall-clock cost of
producing it changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import MachineConfig
from ..errors import SimulationError
from .core import CycleBreakdown, IntervalCoreModel
from .memsys import AccessProfile, MemoryHierarchy, StreamProfile, \
    llc_only_profile
from .prefetcher import ImpConfig, apply_imp
from .trace import AccessStream, KernelTrace


@dataclass
class TmuWorkloadModel:
    """Everything the timing model needs about one TMU-mapped workload.

    Produced by the builders in :mod:`repro.programs`; consumed by
    :func:`run_tmu`.
    """

    name: str
    #: traversal read streams the TMU issues (element-granular)
    tmu_streams: list[AccessStream]
    #: elements traversed per TMU layer over the whole run
    layer_elements: list[int]
    #: lanes occupied per layer under the default 8-lane configuration
    layer_lanes: list[int]
    #: TG merge steps (each serializes one gite across the layer)
    merge_steps: int = 0
    #: records pushed into the outQ (callback IDs + operands)
    outq_records: int = 0
    #: total outQ traffic in bytes
    outq_bytes: int = 0
    #: the core-side callback work (instruction mix + result streams)
    core_trace: KernelTrace = field(default_factory=lambda: KernelTrace("_"))

    def scaled_lanes(self, lanes: int) -> list[int]:
        """Lane occupancy when the engine has ``lanes`` lanes."""
        return [max(1, min(l, lanes)) for l in self.layer_lanes]

    def scalarized(self, vector_lanes: int) -> "TmuWorkloadModel":
        """The same workload on an engine that cannot marshal vector
        operands (Single-Lane): every SIMD callback op becomes
        ``vector_lanes`` scalar ops and per-element records replace the
        vectorized ones."""
        t = self.core_trace
        scalar_trace = KernelTrace(
            name=f"{t.name}-scalar",
            scalar_ops=t.scalar_ops + t.vector_ops * vector_lanes,
            vector_ops=0,
            loads=t.loads * max(1, vector_lanes // 2),
            stores=t.stores,
            branches=t.branches * max(1, vector_lanes // 2),
            datadep_branches=t.datadep_branches,
            flops=t.flops,
            streams=t.streams,
            dependent_load_fraction=t.dependent_load_fraction,
            parallel_units=t.parallel_units,
        )
        return TmuWorkloadModel(
            name=self.name,
            tmu_streams=self.tmu_streams,
            layer_elements=self.layer_elements,
            layer_lanes=self.layer_lanes,
            merge_steps=self.merge_steps,
            outq_records=self.outq_records * max(1, vector_lanes // 2),
            outq_bytes=self.outq_bytes,
            core_trace=scalar_trace,
        )


@dataclass
class SystemResult:
    """Outcome of one system-level run."""

    name: str
    cycles: float
    breakdown: CycleBreakdown
    #: TMU runs only: core chunk-read time / TMU chunk-write time
    read_to_write: float | None = None
    #: TMU runs only: producer/consumer side times
    tmu_cycles: float = 0.0
    core_cycles: float = 0.0

    def speedup_over(self, other: "SystemResult") -> float:
        return other.cycles / self.cycles if self.cycles else float("inf")


#: line requests one lane's queues keep in flight (queue-depth bound of
#: a single traversal stream; parallel lanes multiply it)
LANE_OUTSTANDING = 8

#: sustained cycles per merge gite: the merger can only pull when every
#: active lane's queue head is valid — TU refill cadence and the
#: comparator/pop round trip stretch the ideal 1 gite/cycle
MERGE_CPI = 2.0


def run_baseline(trace: KernelTrace, machine: MachineConfig, *,
                 sample_window: int | None = None) -> SystemResult:
    """Software baseline: full hierarchy profile + interval core."""
    hierarchy = MemoryHierarchy(machine, sample_window=sample_window)
    profile = hierarchy.profile(trace)
    breakdown = IntervalCoreModel(machine).run(trace, profile)
    return SystemResult(name=f"{trace.name}/baseline",
                        cycles=breakdown.total, breakdown=breakdown)


def run_imp(trace: KernelTrace, machine: MachineConfig, *,
            config: ImpConfig | None = None,
            sample_window: int | None = None) -> SystemResult:
    """Baseline core + Indirect Memory Prefetcher (Figure 15)."""
    hierarchy = MemoryHierarchy(machine, sample_window=sample_window)
    profile = apply_imp(hierarchy.profile(trace), config)
    breakdown = IntervalCoreModel(machine).run(trace, profile)
    return SystemResult(name=f"{trace.name}/imp",
                        cycles=breakdown.total, breakdown=breakdown)


#: queue storage an outstanding line effectively occupies, relative to
#: one cache line: the line's own data plus the sibling streams'
#: elements (indexes, pointers, gathered values) buffered alongside it
STORAGE_PER_LINE_FACTOR = 4


def _tmu_outstanding(machine: MachineConfig, lanes: int) -> float:
    """In-flight line requests the engine sustains: bounded by the
    request tracker, the shared per-lane storage (each line's data is
    buffered together with its sibling streams' elements, Section 5.5),
    and the per-lane queue depth."""
    tmu = machine.tmu
    storage_lines = (tmu.per_lane_storage_bytes * tmu.lanes) / (
        machine.llc.line_bytes * STORAGE_PER_LINE_FACTOR)
    return float(max(1.0, min(tmu.outstanding_requests, storage_lines,
                              lanes * LANE_OUTSTANDING)))


def _core_outq_profile(model: TmuWorkloadModel,
                       machine: MachineConfig) -> AccessProfile:
    """Synthetic memory profile of the callback core: outQ reads hit the
    private L2 (the TMU injects chunks there); result writes stream out
    through the hierarchy."""
    line = machine.l1d.line_bytes
    outq_lines = int(np.ceil(model.outq_bytes / line))
    streams = [StreamProfile(
        label="outQ", kind="read", dependent=False,
        accesses=outq_lines, bytes=model.outq_bytes,
        l1_hits=0, l2_hits=outq_lines, llc_hits=0, mem_accesses=0,
    )]
    for s in model.core_trace.streams:
        if s.kind != "write":
            continue
        lines = max(1, s.bytes // line)
        streams.append(StreamProfile(
            label=s.label, kind="write", dependent=False,
            accesses=s.count, bytes=s.bytes,
            l1_hits=0, l2_hits=0, llc_hits=0, mem_accesses=lines,
        ))
    return AccessProfile(streams=streams, line_bytes=line)


def run_tmu(model: TmuWorkloadModel, machine: MachineConfig, *,
            lanes: int | None = None,
            merge_on_engine: bool = True,
            sample_window: int | None = None) -> SystemResult:
    """TMU-accelerated run (multi-lane by default).

    ``lanes`` overrides the engine's lane count (Single-Lane = 1);
    ``merge_on_engine=False`` models engines without merge support.
    """
    tmu = machine.tmu
    lanes = tmu.lanes if lanes is None else lanes
    if lanes < 1:
        raise SimulationError("the engine needs at least one lane")

    # ---- producer (TMU) side ------------------------------------
    llc_profile = llc_only_profile(machine, model.tmu_streams,
                                   sample_window=sample_window)
    outstanding = _tmu_outstanding(machine, lanes)
    mem_lat = machine.memory_latency_cycles()
    llc_lat = machine.llc.latency + machine.noc.average_latency() / 2

    mem_lines = llc_profile.mem_lines
    llc_hits = llc_profile.total("llc_hits")
    t_mem_latency = (mem_lines * mem_lat + llc_hits * llc_lat
                     ) / outstanding
    t_llc_throughput = (mem_lines + llc_hits) / 2.0  # 2 lines/cycle port
    t_bandwidth = llc_profile.mem_bytes / max(
        1e-9, machine.bytes_per_cycle_per_core())

    occupancy = model.scaled_lanes(lanes)
    t_iterate = max(
        (elems / lanes_l for elems, lanes_l
         in zip(model.layer_elements, occupancy)),
        default=0.0,
    )
    t_merge = (model.merge_steps * MERGE_CPI) if merge_on_engine else 0.0

    tmu_cycles = max(t_mem_latency, t_llc_throughput, t_bandwidth,
                     t_iterate, t_merge)

    # ---- consumer (core) side ------------------------------------
    core_profile = _core_outq_profile(model, machine)
    core_breakdown = IntervalCoreModel(machine).run(
        model.core_trace, core_profile)
    core_cycles = core_breakdown.total

    # ---- pipeline composition ------------------------------------
    # The off-chip bus carries both the TMU's traversal reads and the
    # core's result writebacks; the combined traffic bounds the run.
    write_lines = core_profile.total("mem_accesses", "write")
    # Result writes are sequential full-line stores: write-combining
    # drains them without allocate-fills, so they cross the bus once.
    combined_bytes = llc_profile.mem_bytes + write_lines * (
        core_profile.line_bytes)
    bw_floor = combined_bytes / max(1e-9,
                                    machine.bytes_per_cycle_per_core())
    chunks = max(1.0, model.outq_bytes / tmu.outq_chunk_bytes)
    fill = tmu_cycles / chunks  # first chunk must exist before compute
    total = max(tmu_cycles, core_cycles, bw_floor) + fill
    read_to_write = (core_cycles / tmu_cycles) if tmu_cycles else (
        float("inf"))

    committing = core_breakdown.committing
    frontend = core_breakdown.frontend
    backend = max(0.0, total - committing - frontend)
    breakdown = CycleBreakdown(
        committing=committing,
        frontend=frontend,
        backend=backend,
        load_to_use=core_profile.average_load_latency(machine),
        mem_bytes=llc_profile.mem_bytes + core_profile.total(
            "mem_accesses", "write") * core_profile.line_bytes,
        flops=model.core_trace.flops,
    )
    return SystemResult(
        name=f"{model.name}/tmu{lanes}",
        cycles=total,
        breakdown=breakdown,
        read_to_write=read_to_write,
        tmu_cycles=tmu_cycles,
        core_cycles=core_cycles,
    )


def run_single_lane(model: TmuWorkloadModel, machine: MachineConfig, *,
                    sample_window: int | None = None) -> SystemResult:
    """Single-lane traversal engine (HATS/SpZip-class, Section 7.3):
    same storage as the TMU, one lane, no merge or parallel loading.
    Merging (if the workload needs it) falls back to the core — which
    is why the paper only evaluates this point on SpMV and SpMSpM.

    Without parallel lanes the engine cannot marshal vector operands,
    so the core computes scalar code on the marshaled stream."""
    vector_lanes = max(1, machine.core.vector_bits // 64)
    result = run_tmu(model.scalarized(vector_lanes), machine, lanes=1,
                     sample_window=sample_window)
    result.name = f"{model.name}/single-lane"
    return result
