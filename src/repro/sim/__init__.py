"""The multicore timing-model substrate.

The paper evaluates the TMU with gem5 full-system simulation; this
package replaces gem5 with a Python interval/event model that reproduces
the first-order effects the paper's analysis rests on:

* :mod:`repro.sim.cache` — set-associative caches with LRU replacement
  and a bounded MSHR count.
* :mod:`repro.sim.memsys` — the three-level hierarchy plus HBM2e
  channel bandwidth, assembled per :class:`repro.config.MachineConfig`.
* :mod:`repro.sim.noc` — mesh network-on-chip latency contribution.
* :mod:`repro.sim.core` — an interval-analysis out-of-order core model
  producing the committing / frontend-stall / backend-stall breakdown of
  Figures 3 and 11.
* :mod:`repro.sim.trace` — the kernel characterization record
  (instruction mix + address streams) the core model consumes.
* :mod:`repro.sim.prefetcher` — stride and indirect-memory-prefetcher
  (IMP) models for the Figure 15 comparison.
* :mod:`repro.sim.machine` — whole-system runs: software baseline,
  TMU-accelerated, Single-Lane and IMP variants.
* :mod:`repro.sim.stats` — derived metrics (roofline, ratios).
"""

from .cache import Cache, CacheStats
from .core import CycleBreakdown, IntervalCoreModel
from .machine import (
    SystemResult,
    TmuWorkloadModel,
    run_baseline,
    run_imp,
    run_single_lane,
    run_tmu,
)
from .memsys import MemoryHierarchy, AccessProfile
from .parallel import (
    ParallelResult,
    core_scaling,
    parallel_speedup,
    partition_rows,
    run_parallel,
)
from .pipeline import (
    PipelineResult,
    chunk_times_from_totals,
    simulate_outq_pipeline,
)
from .prefetcher import ImpConfig, apply_imp
from .trace import AccessStream, KernelTrace

__all__ = [
    "Cache",
    "CacheStats",
    "CycleBreakdown",
    "IntervalCoreModel",
    "SystemResult",
    "TmuWorkloadModel",
    "run_baseline",
    "run_imp",
    "run_single_lane",
    "run_tmu",
    "MemoryHierarchy",
    "AccessProfile",
    "ParallelResult",
    "core_scaling",
    "parallel_speedup",
    "partition_rows",
    "run_parallel",
    "PipelineResult",
    "chunk_times_from_totals",
    "simulate_outq_pipeline",
    "ImpConfig",
    "apply_imp",
    "AccessStream",
    "KernelTrace",
]
