"""Interval-analysis out-of-order core model.

Produces the three-way cycle decomposition of Figures 3 and 11:

* **committing** — cycles retiring at the commit width,
* **frontend stalls** — branch-misprediction flush penalties,
* **backend stalls** — cycles waiting on the memory hierarchy,

plus the average load-to-use latency.  The model follows classic
interval simulation: the base pipeline retires ``instructions /
commit_width`` cycles; each mispredicted branch injects a flush
penalty; long-latency misses inject ``latency / MLP`` penalties, where
the memory-level parallelism is bounded by the ROB span, the load
queue, the L1 MSHRs, and the dependence structure of the address
streams; and the whole run can never complete faster than the off-chip
bandwidth allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..config import MachineConfig
from ..errors import SimulationError
from .memsys import AccessProfile
from .trace import KernelTrace


@dataclass
class CycleBreakdown:
    """Cycle accounting for one kernel run on one core."""

    committing: float
    frontend: float
    backend: float
    load_to_use: float
    mem_bytes: int
    flops: float

    @property
    def total(self) -> float:
        return self.committing + self.frontend + self.backend

    def normalized(self) -> tuple[float, float, float]:
        """(committing, frontend, backend) as fractions of total."""
        t = self.total
        if t <= 0:
            return (0.0, 0.0, 0.0)
        return (self.committing / t, self.frontend / t, self.backend / t)

    def gflops(self, freq_ghz: float) -> float:
        """Achieved GFLOP/s for one core at the given frequency."""
        if self.total <= 0:
            return 0.0
        return self.flops / self.total * freq_ghz

    def bandwidth_gbps(self, freq_ghz: float) -> float:
        """Achieved off-chip bandwidth (GB/s) for one core."""
        if self.total <= 0:
            return 0.0
        return self.mem_bytes / self.total * freq_ghz

    def arithmetic_intensity(self) -> float:
        return self.flops / self.mem_bytes if self.mem_bytes else 0.0


class IntervalCoreModel:
    """The out-of-order core of Table 5, as an interval model."""

    #: fraction of LLC-hit latency hidden by the OoO window
    _LLC_HIDE = 0.55
    #: fraction of L2-hit latency hidden
    _L2_HIDE = 0.85
    #: easy (non-data-dependent) branch misprediction rate
    _EASY_BRANCH_MISS = 0.002
    #: fraction of the theoretical ROB-window MLP a real core sustains
    #: on irregular access streams.  Misses arrive in bursts, the ROB
    #: head blocks on the oldest miss, and DRAM bank conflicts spread
    #: service times — measured SpMV-class codes reach only ~25% of
    #: peak bandwidth (Figure 12), far below the window bound.
    _MLP_EFFICIENCY = 0.18
    #: concurrency of *dependent* (pointer-chasing / gather) streams
    #: relative to independent ones: the consumer address is only known
    #: once the producer load returns.
    _DEP_MLP_FACTOR = 0.35
    #: in-flight lines a hardware prefetcher sustains from its own
    #: request queues, independent of the core's ROB/LSQ occupancy.
    _PREFETCH_MLP = 6.0

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine

    # -- helpers -----------------------------------------------------

    def _mispredicts(self, trace: KernelTrace) -> float:
        core = self.machine.core
        easy = trace.branches - trace.datadep_branches
        if easy < 0:
            raise SimulationError("datadep_branches exceeds branches")
        return (
            trace.datadep_branches * (1.0 - core.datadep_branch_accuracy)
            + easy * self._EASY_BRANCH_MISS
        )

    def _effective_mlp(self, trace: KernelTrace,
                       profile: AccessProfile) -> float:
        """MLP available to overlap off-chip misses.

        Bounded by how many misses fit in the ROB span, the load queue,
        and the L1 MSHRs; degraded by dependent (pointer-chasing) loads
        whose addresses arrive late.
        """
        core = self.machine.core
        long_misses = max(1, profile.total("mem_accesses", "read")
                          + profile.total("llc_hits", "read"))
        instrs = max(1, trace.total_instructions())
        instr_per_miss = instrs / long_misses
        window_mlp = core.rob_entries / max(1.0, instr_per_miss)
        mlp = min(window_mlp, float(core.load_queue),
                  float(self.machine.l2.mshrs))
        mlp = max(1.0, mlp * self._MLP_EFFICIENCY)
        # Dependent loads serialize address generation: a fraction
        # `dep` of the in-flight misses must wait for a producer load.
        dep = min(1.0, max(0.0, trace.dependent_load_fraction))
        return max(1.0, mlp * (1.0 - 0.55 * dep))

    # -- main entry point --------------------------------------------

    def run(self, trace: KernelTrace, profile: AccessProfile,
            *, bandwidth_share: float = 1.0) -> CycleBreakdown:
        """Cycle accounting for one core running ``trace`` whose memory
        behaviour is ``profile``.

        ``bandwidth_share`` scales the core's slice of off-chip
        bandwidth (1.0 = fair share of the whole chip).
        """
        machine = self.machine
        core = machine.core

        committing = trace.total_instructions() / core.commit_width
        frontend = self._mispredicts(trace) * core.branch_miss_penalty

        # Latency-limited memory time.
        mem_lat = machine.memory_latency_cycles()
        llc_lat = machine.llc.latency + machine.noc.average_latency() / 2
        l2_lat = machine.l2.latency
        mlp = self._effective_mlp(trace, profile)

        # Batched stream evaluation: both the latency-limited stall sum
        # and the in-flight service ceiling below reduce over the same
        # per-stream quantities, so gather them once into lanes and let
        # numpy fold the whole profile in one pass (kernels like SpKAdd
        # carry dozens of streams per profile).
        reads = [s for s in profile.streams if s.kind == "read"]
        if reads:
            mem = np.array([s.mem_accesses for s in reads], dtype=float)
            llc = np.array([s.llc_hits for s in reads], dtype=float)
            l2h = np.array([s.l2_hits for s in reads], dtype=float)
            cov = np.array([s.prefetch_coverage for s in reads],
                           dtype=float)
            dep = np.array([s.dependent for s in reads], dtype=bool)
            s_mlp = np.where(dep, max(2.0, mlp * self._DEP_MLP_FACTOR),
                             mlp)
            eff_mem = mem * (1.0 - cov)
            stall = (eff_mem * mem_lat
                     + llc * (1.0 - cov) * llc_lat * (1.0 - self._LLC_HIDE)
                     + ((mem + llc) * cov + l2h) * l2_lat
                     * (1.0 - self._L2_HIDE))
            backend_latency = float((stall / s_mlp).sum())
        else:
            backend_latency = 0.0

        # Bandwidth floor: the run cannot finish before its off-chip
        # traffic is transferred through this core's bandwidth share.
        bytes_per_cycle = machine.bytes_per_cycle_per_core() * (
            bandwidth_share
        )
        # Write-allocate caches write lines back to memory after filling
        # them, so written lines cross the bus twice (fill + writeback).
        writeback_bytes = profile.total("mem_accesses", "write") * (
            profile.line_bytes
        )
        total_mem_bytes = profile.mem_bytes + writeback_bytes
        bw_cycles = total_mem_bytes / max(1e-9, bytes_per_cycle)

        # Concurrency ceiling: every off-chip *read* line — demand miss
        # or prefetch — occupies a limited in-flight slot for a full
        # round trip (stores drain asynchronously through the store
        # buffer).  Prefetcher-issued lines run ahead with their own
        # queues, so covered lines weigh less.  This ceiling is what
        # keeps software baselines at a fraction of peak bandwidth
        # (Figure 12) and what the TMU's deep request queue removes.
        if reads:
            service_cycles = float(
                (eff_mem * mem_lat / s_mlp
                 + mem * cov * mem_lat / self._PREFETCH_MLP).sum())
        else:
            service_cycles = 0.0

        # Branch flushes that occur while the backend is already stalled
        # are hidden behind the memory wait; overlap a share of the
        # frontend penalty proportional to how memory-bound the run is.
        if committing + backend_latency > 0:
            mem_bound = backend_latency / (committing + backend_latency)
        else:
            mem_bound = 0.0
        frontend *= 1.0 - 0.6 * mem_bound

        pipeline = committing + frontend + backend_latency
        total = max(pipeline, bw_cycles, service_cycles)
        backend = backend_latency + max(0.0, total - pipeline)

        if obs.enabled():
            view = obs.active().prefixed("sim.core")
            view.counter("runs").add()
            view.counter("instructions").add(trace.total_instructions())
            view.counter("cycles.committing").add(committing)
            view.counter("cycles.frontend").add(frontend)
            view.counter("cycles.backend").add(backend)
            view.histogram("cycles.total").record(total)
            view.gauge("mlp").set(mlp)

        tracer = obs.tracer()
        if tracer.enabled:
            # Lay the Fig. 11 phases out sequentially on the sim clock
            # (cycle-denominated spans the stall report folds).
            t = tracer.alloc(int(round(total)))
            for phase, cycles in (("committing", committing),
                                  ("frontend", frontend),
                                  ("backend", backend)):
                d = int(round(cycles))
                tracer.span("sim.core", phase, t, d)
                t += d
            tracer.instant("sim.core", "run_done", args={
                "total": total, "mlp": mlp})

        return CycleBreakdown(
            committing=committing,
            frontend=frontend,
            backend=backend,
            load_to_use=profile.average_load_latency(machine),
            mem_bytes=profile.mem_bytes,
            flops=trace.flops,
        )
