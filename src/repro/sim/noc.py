"""Mesh network-on-chip latency/contention model (AMBA 5 CHI-style).

The NoC contributes (i) a per-hop latency on every LLC/memory access
(already folded into :meth:`repro.config.MachineConfig.memory_latency_cycles`)
and (ii) a throughput ceiling when all cores stream simultaneously.
This module makes both explicit and adds a simple M/M/1-style
contention factor used by sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import NocConfig
from ..errors import SimulationError


@dataclass
class NocModel:
    """Latency/throughput model of a 2-D mesh."""

    config: NocConfig
    flit_bytes: int = 32

    def hop_latency(self) -> float:
        return self.config.router_cycles + self.config.link_cycles

    def average_latency(self, utilization: float = 0.0) -> float:
        """Average one-way latency in cycles at a given utilization.

        Uses the standard queueing inflation ``1 / (1 - u)`` capped to
        keep the model stable near saturation.
        """
        if not 0.0 <= utilization < 1.0:
            raise SimulationError("utilization must be in [0, 1)")
        base = self.config.average_hops() * self.hop_latency()
        inflation = 1.0 / (1.0 - min(utilization, 0.95))
        return base * inflation

    def bisection_lines_per_cycle(self) -> float:
        """Cache lines per cycle the mesh bisection sustains."""
        links = min(self.config.mesh_x, self.config.mesh_y)
        bytes_per_cycle = links * self.flit_bytes
        return bytes_per_cycle / 64.0

    def saturation_utilization(self, lines_per_cycle: float) -> float:
        """Fraction of bisection bandwidth a traffic demand uses."""
        cap = self.bisection_lines_per_cycle()
        return min(1.0, lines_per_cycle / cap) if cap else 1.0
