"""Set-associative cache model with LRU replacement and MSHR bookkeeping.

The model is *behavioural*: it classifies an ordered address stream into
hits and misses.  Timing is derived later by the interval core model;
the MSHR count is carried along as the memory-level-parallelism bound
of the level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..config import CacheConfig
from ..errors import SimulationError


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.accesses += other.accesses
        self.hits += other.hits


class _CacheTelemetry:
    """Per-instance cache of the telemetry handles used on every call.

    ``obs.active()`` / ``obs.tracer()`` involve module-global lookups
    and a prefixed-view allocation per call; ``lookup_lines`` instead
    keeps the resolved handles here and refreshes them only when the
    process-wide registry or tracer identity changes (the same hoisting
    pattern :mod:`repro.tmu.engine` uses).  With telemetry disabled the
    per-call cost is two attribute reads and two identity compares.
    """

    __slots__ = ("registry", "accesses", "hits", "tracer")

    def __init__(self) -> None:
        self.registry = None
        self.accesses = None
        self.hits = None
        self.tracer = obs.NULL_TRACER

    def refresh(self, name: str):
        registry = obs.active()
        if registry is not self.registry:
            self.registry = registry
            if registry is not None and name:
                view = registry.prefixed(f"sim.cache.{name}")
                self.accesses = view.counter("accesses")
                self.hits = view.counter("hits")
            else:
                self.accesses = None
                self.hits = None
        self.tracer = obs.tracer()
        return self


def settle_lookup(cache, accesses: int, hit_count: int) -> None:
    """Fold an externally computed lookup outcome into a cache object's
    stats and published telemetry — exactly the bookkeeping
    ``lookup_lines`` performs, for callers (the stack-distance walk in
    :mod:`repro.sim.memsys`) that classify a stream without driving the
    cache's own state machine."""
    cache.stats.accesses += accesses
    cache.stats.hits += hit_count
    if cache.name:
        _publish(cache._tele.refresh(cache.name), cache.name,
                 accesses, hit_count)


def _publish(tele: _CacheTelemetry, name: str, n: int, hit_count: int) -> None:
    """Publish one lookup_lines call's counters/trace events."""
    if tele.accesses is not None:
        tele.accesses.add(n)
        tele.hits.add(hit_count)
    tracer = tele.tracer
    if tracer.enabled and n:
        track = f"sim.cache.{name}"
        misses = n - hit_count
        if misses:
            tracer.instant(track, "misses", args={"count": misses})
        tracer.sample(track, "hit_rate", hit_count / n)


class Cache:
    """One set-associative, LRU, write-allocate cache level.

    ``lookup_lines`` consumes *cache line* numbers (byte address >>
    log2(line)); hits update recency, misses install the line.  The
    model is inclusive-of-nothing: levels are composed externally by
    feeding one level's misses into the next.
    """

    def __init__(self, config: CacheConfig, name: str = "") -> None:
        self.config = config
        #: telemetry identity; named caches publish hit profiles under
        #: ``sim.cache.<name>`` when :mod:`repro.obs` is enabled
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        if self.num_sets & (self.num_sets - 1):
            raise SimulationError("cache set count must be a power of two")
        self._set_mask = self.num_sets - 1
        # Per-set list of tags in LRU order (index 0 = LRU).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()
        self._tele = _CacheTelemetry()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def lookup_lines(self, lines: np.ndarray) -> np.ndarray:
        """Process line numbers in order; return a boolean hit mask."""
        lines = np.asarray(lines, dtype=np.int64)
        hits = np.zeros(lines.size, dtype=bool)
        sets = self._sets
        mask = self._set_mask
        ways = self.ways
        line_list = lines.tolist()
        hit_count = 0
        for k, line in enumerate(line_list):
            s = sets[line & mask]
            try:
                s.remove(line)
            except ValueError:
                # miss: install as MRU, evict LRU if full
                if len(s) >= ways:
                    s.pop(0)
                s.append(line)
            else:
                s.append(line)
                hits[k] = True
                hit_count += 1
        settle_lookup(self, int(lines.size), hit_count)
        return hits

    def contains_line(self, line: int) -> bool:
        return line in self._sets[line & self._set_mask]

    @property
    def mshrs(self) -> int:
        return self.config.mshrs


def to_lines(addresses: np.ndarray, line_bytes: int = 64) -> np.ndarray:
    """Convert byte addresses to cache-line numbers."""
    shift = int(line_bytes).bit_length() - 1
    if (1 << shift) != line_bytes:
        raise SimulationError("line size must be a power of two")
    return np.asarray(addresses, dtype=np.int64) >> shift


def dedup_consecutive(lines: np.ndarray) -> np.ndarray:
    """Drop immediately repeated line numbers (models the fact that
    consecutive same-line accesses coalesce into one request)."""
    lines = np.asarray(lines, dtype=np.int64)
    if lines.size == 0:
        return lines
    keep = np.concatenate(([True], lines[1:] != lines[:-1]))
    return lines[keep]
