"""Derived metrics: rooflines, ratios, normalized breakdowns."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from .core import CycleBreakdown


@dataclass
class RooflinePoint:
    """One point of a roofline plot (Figure 12)."""

    label: str
    arithmetic_intensity: float
    gflops: float
    bandwidth_gbps: float


def peak_gflops(machine: MachineConfig) -> float:
    """Peak double-precision GFLOP/s of the whole chip: per-core FMA
    throughput at the configured SVE width."""
    lanes = machine.core.vector_bits // 64
    fma_per_cycle = 2  # two FMA pipes, as in Neoverse N1-class cores
    flops_per_cycle = lanes * fma_per_cycle * 2  # FMA = 2 flops
    return machine.num_cores * flops_per_cycle * machine.core.freq_ghz


def peak_bandwidth_gbps(machine: MachineConfig) -> float:
    """Peak off-chip bandwidth of the whole chip in GB/s."""
    return machine.memory.total_gbps


def roofline_ceiling(machine: MachineConfig, ai: float) -> float:
    """Attainable GFLOP/s at arithmetic intensity ``ai``."""
    return min(peak_gflops(machine), peak_bandwidth_gbps(machine) * ai)


def roofline_point(label: str, breakdown: CycleBreakdown,
                   machine: MachineConfig) -> RooflinePoint:
    """Roofline coordinates of a per-core cycle breakdown, scaled to the
    whole chip (all cores running symmetric shards)."""
    cores = machine.num_cores
    freq = machine.core.freq_ghz
    return RooflinePoint(
        label=label,
        arithmetic_intensity=breakdown.arithmetic_intensity(),
        gflops=breakdown.gflops(freq) * cores,
        bandwidth_gbps=breakdown.bandwidth_gbps(freq) * cores,
    )


def nnz_per_row_ceiling(machine: MachineConfig, nnz_per_row: float) -> float:
    """The dashed compute ceilings of Figure 12c: with ``n`` non-zeros
    per row, Gustavson SpMSpM performs 2·n flops per (8+4)-byte
    non-zero read plus amortized row overhead — an intrinsic arithmetic
    intensity cap independent of the memory system."""
    bytes_per_nnz = 12.0 + 12.0 / max(1.0, nnz_per_row)
    ai_cap = 2.0 * 1.0 / bytes_per_nnz * min(nnz_per_row, 64)
    return roofline_ceiling(machine, ai_cap)
