"""Kernel characterization records consumed by the timing model.

A :class:`KernelTrace` summarizes one kernel execution on one input:
the committed instruction mix (for the commit/frontend axes of the
interval model), the floating-point work (for rooflines), and the
ordered memory *address streams* (for the cache model, which turns them
into per-level hit/miss profiles).

Address streams are plain numpy arrays of byte addresses in program
order.  Builders below construct them vectorized from the tensor
structures, so characterizing a kernel costs a few numpy passes instead
of an instrumented interpreter run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError

#: Virtual base addresses for the operand arrays of a simulated kernel.
#: Arrays are placed on disjoint 1 GiB-aligned regions so streams never
#: alias; the cache model only cares about line/set bits.
_REGION_BYTES = 1 << 30


class AddressSpace:
    """Hands out disjoint virtual regions for operand arrays."""

    def __init__(self) -> None:
        self._next_region = 1

    def place(self, nbytes: int) -> int:
        """Reserve a region of at least ``nbytes`` and return its base."""
        if nbytes < 0:
            raise SimulationError("cannot place a negative-size array")
        regions = max(1, -(-nbytes // _REGION_BYTES))
        base = self._next_region * _REGION_BYTES
        self._next_region += regions
        return base


@dataclass
class AccessStream:
    """One ordered stream of memory accesses.

    Attributes
    ----------
    addresses:
        Byte addresses in program order.
    elem_bytes:
        Element size (4 for indexes, 8 for values).
    kind:
        ``'read'`` or ``'write'``.
    label:
        Human-readable operand name (``'b[idx]'``, ``'row_ptrs'``...).
    dependent:
        True when each access's address depends on a previous load's
        *data* (indirect access) — these bound the MLP the core can
        extract.
    gather:
        True for single-element ``B[A[i]]`` indirections — the pattern
        the Indirect Memory Prefetcher detects and covers.  Dependent
        range scans (e.g. Gustavson's B-row walks) are *not* gathers:
        IMP has no handler for them.
    """

    addresses: np.ndarray
    elem_bytes: int
    kind: str = "read"
    label: str = ""
    dependent: bool = False
    gather: bool = False

    def __post_init__(self) -> None:
        self.addresses = np.asarray(self.addresses, dtype=np.int64)
        if self.kind not in ("read", "write"):
            raise SimulationError(f"bad access kind {self.kind!r}")
        if not 1 <= self.elem_bytes <= 256:
            # 4/8 for scalar index/value elements; up to a full vector
            # register (or cache line) for one SIMD access.
            raise SimulationError(f"bad element size {self.elem_bytes}")

    @property
    def count(self) -> int:
        return int(self.addresses.size)

    @property
    def bytes(self) -> int:
        return self.count * self.elem_bytes


def strided_addresses(base: int, count: int, elem_bytes: int,
                      stride_elems: int = 1) -> np.ndarray:
    """Addresses of a sequential (or strided) array walk."""
    return base + np.arange(count, dtype=np.int64) * (
        elem_bytes * stride_elems
    )


def indexed_addresses(base: int, indices, elem_bytes: int) -> np.ndarray:
    """Addresses of ``array[indices[k]]`` for each k, in order."""
    return base + np.asarray(indices, dtype=np.int64) * elem_bytes


def interleave(*streams: np.ndarray) -> np.ndarray:
    """Interleave equal-length address arrays element-wise, modeling the
    program-order alternation of accesses inside one loop body."""
    if not streams:
        return np.zeros(0, dtype=np.int64)
    length = streams[0].size
    if any(s.size != length for s in streams):
        raise SimulationError("interleave requires equal-length streams")
    out = np.empty(length * len(streams), dtype=np.int64)
    for k, s in enumerate(streams):
        out[k::len(streams)] = s
    return out


@dataclass
class KernelTrace:
    """Characterization of one kernel run on one input.

    The instruction-mix fields count *committed* instructions of the
    scalar (or SVE-vectorized, where noted) software implementation.
    """

    name: str
    #: scalar ALU/FP instructions (address arithmetic, compares, ...)
    scalar_ops: int = 0
    #: SIMD instructions at the configured vector width
    vector_ops: int = 0
    #: scalar/gather loads issued by the core
    loads: int = 0
    #: stores issued by the core
    stores: int = 0
    #: all conditional branches
    branches: int = 0
    #: the data-dependent, hard-to-predict subset of ``branches``
    datadep_branches: int = 0
    #: double-precision floating-point operations performed (roofline y)
    flops: float = 0.0
    #: ordered memory access streams (reads and writes)
    streams: list[AccessStream] = field(default_factory=list)
    #: fraction of loads whose address depends on an earlier load's data
    dependent_load_fraction: float = 0.0
    #: work items (e.g. rows) over which the kernel parallelizes
    parallel_units: int = 1

    def total_instructions(self) -> int:
        return (self.scalar_ops + self.vector_ops + self.loads
                + self.stores + self.branches)

    def total_bytes(self, kind: str | None = None) -> int:
        return sum(s.bytes for s in self.streams
                   if kind is None or s.kind == kind)

    def read_streams(self) -> list[AccessStream]:
        return [s for s in self.streams if s.kind == "read"]

    def write_streams(self) -> list[AccessStream]:
        return [s for s in self.streams if s.kind == "write"]

    def merged_addresses(self, kind: str | None = None) -> np.ndarray:
        """All addresses of the selected streams, concatenated in stream
        order (streams are already internally program-ordered)."""
        parts = [s.addresses for s in self.streams
                 if kind is None or s.kind == kind]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    def arithmetic_intensity(self) -> float:
        """Flops per byte moved — the roofline x axis."""
        total = self.total_bytes()
        return self.flops / total if total else 0.0
