"""Hardware prefetcher models.

Two roles in the reproduction:

* The baseline system's stride (L1) and best-offset (L2) prefetchers —
  folded into :mod:`repro.sim.memsys` as sequential-stream coverage.
* The **Indirect Memory Prefetcher** (IMP, Yu et al.) evaluated in
  Figure 15: detects ``B[A[i]]`` patterns and prefetches the indirect
  targets, using virtual addresses to cross page boundaries.  IMP helps
  SpMV (covers the gather) but *thrashes partial results* in SpMSpM —
  its prefetches evict the in-cache accumulator rows — which is exactly
  the behaviour the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SimulationError
from .memsys import AccessProfile, StreamProfile


@dataclass(frozen=True)
class ImpConfig:
    """IMP tuning knobs (defaults follow the paper's recommendation)."""

    #: fraction of indirect accesses detected and issued early enough
    coverage: float = 0.72
    #: fraction of prefetches that arrive fully on time
    timeliness: float = 0.85
    #: L2 lines evicted per useful prefetch (pollution pressure)
    pollution_factor: float = 0.5

    def __post_init__(self) -> None:
        for name in ("coverage", "timeliness", "pollution_factor"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1]")


#: stream labels that hold cache-resident partial results (SpMSpM's
#: dense accumulator, MTTKRP's output rows) — the structures IMP's
#: pollution hurts.
_PARTIAL_RESULT_MARKERS = ("accumulator", "rmw")


def _is_partial_result(stream: StreamProfile) -> bool:
    return any(marker in stream.label for marker in _PARTIAL_RESULT_MARKERS)


def apply_imp(profile: AccessProfile, config: ImpConfig | None = None
              ) -> AccessProfile:
    """Return a copy of ``profile`` with IMP effects applied.

    * Dependent (indirect) read streams gain prefetch coverage.
    * Partial-result streams lose cache hits to prefetch pollution:
      a slice of their L2/LLC hits becomes off-chip misses.
    """
    config = config or ImpConfig()
    covered = config.coverage * config.timeliness
    has_indirect = any(
        s.gather and s.kind == "read" and not _is_partial_result(s)
        for s in profile.streams
    )
    new_streams: list[StreamProfile] = []
    for s in profile.streams:
        if s.gather and s.kind == "read" and not _is_partial_result(s):
            new_streams.append(replace(
                s, prefetch_coverage=max(s.prefetch_coverage, covered)
            ))
        elif has_indirect and _is_partial_result(s):
            # Pollution: prefetched lines evict accumulator lines.
            lost_l2 = int(s.l2_hits * config.pollution_factor)
            lost_llc = int(s.llc_hits * config.pollution_factor * 0.6)
            new_streams.append(replace(
                s,
                l2_hits=s.l2_hits - lost_l2,
                llc_hits=s.llc_hits + lost_l2 - lost_llc,
                mem_accesses=s.mem_accesses + lost_llc,
            ))
        else:
            new_streams.append(s)
    return AccessProfile(streams=new_streams,
                         line_bytes=profile.line_bytes)
