"""Exact offline stack-distance model for set-associative LRU caches.

:func:`hit_mask` classifies a *whole* line stream against a cold
cache in one stateless NumPy pass — no tag matrix, no occupancy
vector, no batch chunking.  It exploits the classic stack-distance
theorem: under install-on-miss LRU, an access hits iff its line was
seen before and the number of *distinct* lines of the same set touched
since the previous occurrence is ``< ways``.  Because the whole stream
is visible at once, the model needs none of
:class:`~repro.sim.fastcache.FastCache`'s batch machinery (prologue
replay, per-chunk packed sorts, tag-matrix rebuild) — which is exactly
the overhead that made the hierarchy walk the bottleneck of large
sweeps.

The pass:

1. takes an all-cold-miss early exit for strictly monotonic streams
   (sequential scans, marshaled operand/output streams touch every
   line exactly once);
2. groups accesses by set with one stable packed sort (int32 when the
   pack fits 31 bits) and computes previous/next-occurrence links
   (``f``/``nxt``) with a second;
3. screens: ``f < 0`` is a cold-start miss; a positional reuse
   distance ``k - f[k] <= ways`` is a definite hit;
4. retires the survivors through a *block distinct-count table*: the
   packed stream is cut into fixed ``B``-sized blocks and each block's
   exact distinct-line count is one vectorized reduction
   (``f[j] < block_start`` marks j's line as new within the block).
   Any window that fully contains a block with ``>= ways`` distinct
   lines is a certain miss, and the summed block counts plus the raw
   boundary widths upper-bound the window's distinct count for a
   certain hit — both O(1) per query off two block-level prefix sums;
5. resolves the remainder (narrow windows shorter than two blocks,
   and rare duplicate-heavy wide windows whose bounds stay ambiguous)
   with the same lockstep bounded scan FastCache uses, straggler
   fallback included, in bounded-size chunks.

Every path is exact, so the mask is bit-identical to both
:class:`~repro.sim.cache.Cache` and ``FastCache`` from a cold start —
``tests/test_stackdist_equiv.py`` fuzzes all three against each other.
The hierarchy walk in :mod:`repro.sim.memsys` resets every level
before profiling, so its batched walks are cold-start by construction
and route here whenever ``MachineConfig.fast_cache`` is on.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .fastcache import FastCache

#: Queries per lockstep-scan batch.  The scan materializes
#: ``queries x block`` work matrices; bounding the batch keeps them
#: cache-resident instead of page-fault-bound on multi-million-access
#: streams.  Each batch is an independent pure function of the shared
#: ``f``/``nxt`` links, so chunking cannot change any verdict.
_SCAN_CHUNK = 1 << 16


def _scan(f, nxt, q, ways):
    if q.size <= _SCAN_CHUNK:
        return FastCache._resolve(f, nxt, q, ways)
    out = np.empty(q.size, dtype=bool)
    for lo in range(0, q.size, _SCAN_CHUNK):
        part = q[lo:lo + _SCAN_CHUNK]
        out[lo:lo + part.size] = FastCache._resolve(f, nxt, part, ways)
    return out


def hit_mask(lines: np.ndarray, num_sets: int, ways: int) -> np.ndarray:
    """Boolean hit mask of ``lines`` against a cold ``num_sets`` ×
    ``ways`` LRU cache — bit-identical to replaying the stream through
    the stateful models."""
    if num_sets & (num_sets - 1):
        raise SimulationError("cache set count must be a power of two")
    lines = np.asarray(lines, dtype=np.int64)
    n = lines.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n > 1:
        # Strictly monotonic streams (sequential scans, marshaled
        # operand/output streams) touch every line exactly once: from a
        # cold cache every access misses.  Only a *stateless* model can
        # take this exit — with carried state an earlier batch could
        # have installed any of these lines.  The short prefix probe
        # skips the full-stream diff on clearly irregular inputs.
        head = lines[:4097]
        dh = np.diff(head)
        if (dh > 0).all() or (dh < 0).all():
            d = np.diff(lines)
            if (d > 0).all() or (d < 0).all():
                return np.zeros(n, dtype=bool)
    set_mask = num_sets - 1
    sets = lines & set_mask

    # Group by set, program order within each set segment.  Packing
    # (key << pos_bits) | position keeps a plain np.sort stable, and
    # the int32 pack is measurably faster on the hot small-set walks.
    pos_bits = max(1, (n - 1).bit_length())
    pos_mask = (1 << pos_bits) - 1
    pos32 = np.arange(n, dtype=np.int32)
    if int(set_mask).bit_length() + pos_bits <= 31:
        order = np.sort((sets.astype(np.int32) << pos_bits)
                        | pos32) & pos_mask
    else:
        order = np.sort((sets << pos_bits)
                        | pos32.astype(np.int64)) & pos_mask
    pv = lines[order]

    # Previous/next occurrence of the same line (same line ⇒ same set,
    # so the links never leave a set segment).
    vmax = int(pv.max())
    if vmax.bit_length() + pos_bits <= 31:
        o2 = np.sort((pv.astype(np.int32) << pos_bits)
                     | pos32) & pos_mask
    elif vmax < (1 << (62 - pos_bits)):
        o2 = np.sort((pv << pos_bits)
                     | pos32.astype(np.int64)) & pos_mask
    else:  # astronomically large line numbers: plain stable argsort
        o2 = np.argsort(pv, kind="stable")
    sv = pv[o2]
    same = sv[1:] == sv[:-1]
    prev_idx = o2[:-1][same]
    next_idx = o2[1:][same]
    f = np.full(n, -1, dtype=np.int32)
    f[next_idx] = prev_idx

    # Screens: cold-start miss / positional-reuse hit.  A window of
    # ``gap - 1 <= ways - 1`` packed positions cannot reach ``ways``
    # distinct lines, whatever it contains.
    gap = pos32 - f
    seen = f >= 0
    hit_packed = seen & (gap <= ways)
    q = np.flatnonzero(seen & (gap > ways)).astype(np.int32)

    if q.size:
        q = _block_screen(f, pos32, hit_packed, q, ways, n)
    if q.size:
        nxt = np.full(n, n, dtype=np.int32)
        nxt[prev_idx] = next_idx
        hit_packed[q] = _scan(f, nxt, q, ways)

    hits = np.empty(n, dtype=bool)
    hits[order] = hit_packed
    return hits


def _block_screen(f, pos32, hit_packed, q, ways, n):
    """Retire queries through the block distinct-count table; returns
    the remainder for the lockstep scan.

    The packed stream is cut into blocks of ``B = 2^lb`` positions
    (the smallest power of two holding ``2 * ways`` accesses, so a
    single block *can* certify a miss).  ``bd[b]`` is block ``b``'s
    exact distinct-line count: position ``j`` introduces a new line to
    its block iff its previous occurrence lies before the block
    (``f[j] < block_start``; cold starts with ``f = -1`` included).
    Blocks never mix information across sets in a way a query can
    observe: a window ``(p, k)`` never crosses its set segment, so any
    block it fully contains lies inside that segment too.

    For a query window ``(p, k)``, the blocks ``bp1 .. bk-1`` are
    exactly the fully-contained ones, giving two O(1) verdicts off
    prefix sums over blocks:

    * ``miss``  — some contained block alone holds ``>= ways``
      distinct lines (window distinct count can only be larger);
    * ``hit``   — the *sum* of contained block counts plus the raw
      widths of the two boundary fragments stays ``< ways`` (the sum
      double-counts lines recurring across blocks and the fragments
      are counted undeduplicated, so it upper-bounds the window's
      distinct count).

    The survivors are narrow windows (no fully-contained block) and
    duplicate-heavy wide windows sitting between the two bounds; both
    retire in the bounded lockstep scan, whose cost is proportional to
    exactly the ambiguity the table could not remove.
    """
    lb = max(3, (2 * ways - 1).bit_length())
    nfull = n >> lb
    if nfull < 2:
        return q
    B = 1 << lb
    first_in_blk = f < (pos32 & np.int32(~(B - 1)))
    bd = first_in_blk[:nfull << lb].reshape(nfull, B).sum(
        axis=1, dtype=np.int32)
    cbad = np.zeros(nfull + 1, dtype=np.int32)
    np.cumsum(bd >= ways, out=cbad[1:])
    cgood = np.zeros(nfull + 1, dtype=np.int32)
    np.cumsum(bd, out=cgood[1:])

    p = f[q]
    bp1 = np.minimum((p >> lb) + 1, nfull)  # first candidate block
    bk = np.minimum(q >> lb, nfull)         # first block past the last
    contained = bk > bp1
    miss = contained & (cbad[bk] - cbad[bp1] > 0)
    interior = np.where(contained, cgood[bk] - cgood[bp1], 0)
    left = np.where(contained, (bp1 << lb) - 1 - p, q - 1 - p)
    right = np.maximum(np.where(contained, q - (bk << lb), 0), 0)
    hit = ~miss & (interior + left + right < ways)
    hit_packed[q[hit]] = True
    return q[~miss & ~hit]
