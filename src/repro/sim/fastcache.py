"""NumPy-vectorized set-associative LRU cache model.

:class:`FastCache` is a drop-in replacement for :class:`~repro.sim.cache.Cache`
that classifies an ordered line stream into hits and misses without a
per-access Python loop.  It is *bit-for-bit equivalent* to the reference
model (same hit masks, same :class:`CacheStats`, same end state); the
reference stays in the tree as the golden model and a seeded fuzz suite
(``tests/test_fastcache_equiv.py``) holds the two to identical answers
on adversarial streams.

How it works
------------

Cache state is a per-set tag matrix in LRU→MRU order plus an occupancy
vector.  Each batch of accesses is processed set-at-a-time using the
classic LRU *stack distance* theorem: an access hits iff its line was
seen before and fewer than ``ways`` distinct lines of the same set were
touched since (install-on-miss LRU obeys the inclusion property, so the
stack distance alone decides hit/miss).

Per batch the model:

1. prepends a *prologue* — the resident lines of every touched set, in
   LRU→MRU order, as virtual accesses — so state composes exactly
   across batches and across the chunked windows used by
   :mod:`repro.sim.memsys`;
2. groups accesses by set with a stable radix argsort (same line ⇒ same
   set, so each line's occurrences stay inside one contiguous segment);
3. computes previous/next-occurrence links (``f``/``nxt``) for every
   access with one stable value argsort;
4. screens: ``f < 0`` is a definite miss (the prologue contains every
   resident line, so "never seen" ⇒ not resident); a positional reuse
   distance ``k - f[k] <= ways`` is a definite hit (at most
   ``ways - 1`` distinct lines fit in the gap).  On real workload
   streams ~99% of accesses resolve here;
5. resolves the remaining accesses with a lockstep bounded backward
   scan that counts within-window last occurrences (``nxt[j] > k``,
   i.e. distinct lines), stopping early at ``ways`` (miss) or at the
   window start (hit), with an exact ``np.unique`` fallback for the
   rare scan that exceeds the step budget;
6. rebuilds the tag matrix from each set's most recent distinct lines
   (after any access sequence, an LRU set holds exactly the ``ways``
   most recently used distinct lines, in recency order).

Telemetry matches the reference model call for call; the per-call
registry/tracer lookups are cached on the instance and refreshed only
when the process-wide switch changes (``_CacheTelemetry`` in
:mod:`repro.sim.cache`, shared with the reference model).
"""

from __future__ import annotations

import numpy as np

from ..config import CacheConfig
from ..errors import SimulationError
from .cache import CacheStats, _CacheTelemetry, settle_lookup

#: Internal batch size; the prologue mechanism makes chunk boundaries
#: exact, so this only bounds peak memory of the intermediate arrays.
#: Large batches amortize the per-call prologue (the resident lines of
#: every touched set are replayed each call — expensive on the
#: many-set LLC walks); the per-batch pos_bits sizing keeps the packed
#: sorts exact at any batch length.
_CHUNK = 1 << 18

# The grouping sorts pack (key << pos_bits) | position so a plain
# ``np.sort`` doubles as a stable argsort; ``pos_bits`` is sized per
# batch (covering _CHUNK plus the prologue), and when key and position
# bits together fit 31 the pack drops to int32 — a measurably faster
# sort on the hot small-set batches.


class FastCache:
    """Vectorized set-associative, LRU, write-allocate cache level.

    Same interface and observable behaviour as the reference
    :class:`~repro.sim.cache.Cache`; selected via
    ``MachineConfig.fast_cache`` (the default) or ``--fast`` on the CLI.
    """

    def __init__(self, config: CacheConfig, name: str = "") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        if self.num_sets & (self.num_sets - 1):
            raise SimulationError("cache set count must be a power of two")
        self._set_mask = self.num_sets - 1
        # Per-set resident tags, left-aligned in LRU→MRU order; -1 is
        # the empty sentinel (line numbers are non-negative).
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._occ = np.zeros(self.num_sets, dtype=np.int64)
        self.stats = CacheStats()
        self._tele = _CacheTelemetry()

    def reset(self) -> None:
        # Reuse the tag matrix instead of reallocating (hot in the
        # per-stream reset of the hierarchy walk).
        self._tags.fill(-1)
        self._occ.fill(0)
        self.stats = CacheStats()

    def lookup_lines(self, lines: np.ndarray) -> np.ndarray:
        """Process line numbers in order; return a boolean hit mask."""
        lines = np.asarray(lines, dtype=np.int64)
        n = lines.size
        if n == 0:
            hits = np.zeros(0, dtype=bool)
        elif n <= _CHUNK:
            hits = self._process(lines)
        else:
            parts = [self._process(chunk)
                     for chunk in np.array_split(lines, -(-n // _CHUNK))]
            hits = np.concatenate(parts)
        settle_lookup(self, n, int(hits.sum()))
        return hits

    def contains_line(self, line: int) -> bool:
        row = self._tags[line & self._set_mask]
        return bool((row == line).any())

    @property
    def mshrs(self) -> int:
        return self.config.mshrs

    # -- core batch step ------------------------------------------------

    def _process(self, lines: np.ndarray) -> np.ndarray:
        ways = self.ways
        n = lines.size
        sets = lines & self._set_mask

        # Prologue: resident lines of every touched set, LRU→MRU.
        touched = np.bincount(sets, minlength=self.num_sets)
        us = np.flatnonzero(touched)
        occ_us = self._occ[us]
        prologue = int(occ_us.sum())
        if prologue:
            rows = self._tags[us]
            pro_vals = rows[rows != -1]  # left-aligned ⇒ LRU→MRU per row
            all_sets = np.concatenate([np.repeat(us, occ_us), sets])
            all_vals = np.concatenate([pro_vals, lines])
        else:
            all_sets = sets
            all_vals = lines
        total = n + prologue

        # Group by set, prologue first, batch accesses in program order
        # within each set segment.  Packing (key << pos_bits) | position
        # makes the keys unique, so a plain np.sort doubles as a stable
        # argsort at a fraction of the cost; pos_bits adapts to the
        # batch so oversized prologues cannot overflow the pack.
        pos_bits = max(1, (total - 1).bit_length())
        pos_mask = (1 << pos_bits) - 1
        pos32 = np.arange(total, dtype=np.int32)
        if int(self._set_mask).bit_length() + pos_bits <= 31:
            order = np.sort((all_sets.astype(np.int32) << pos_bits)
                            | pos32) & pos_mask
        else:
            order = np.sort((all_sets << pos_bits)
                            | pos32.astype(np.int64)) & pos_mask
        pv = all_vals[order]

        # Previous/next occurrence of the same line (same line ⇒ same
        # set, so the links never leave a set segment).
        vmax = int(pv.max())
        if vmax.bit_length() + pos_bits <= 31:
            o2 = np.sort((pv.astype(np.int32) << pos_bits)
                         | pos32) & pos_mask
        elif vmax < (1 << (62 - pos_bits)):
            o2 = np.sort((pv << pos_bits)
                         | pos32.astype(np.int64)) & pos_mask
        else:  # astronomically large line numbers: plain stable argsort
            o2 = np.argsort(pv, kind="stable")
        sv = pv[o2]
        same = sv[1:] == sv[:-1]
        prev_idx = o2[:-1][same]
        next_idx = o2[1:][same]
        # Position-space arrays fit int32; the narrower lanes measurably
        # speed the screens and the scan.
        f = np.full(total, -1, dtype=np.int32)
        f[next_idx] = prev_idx

        # Screen: definite misses / definite hits by positional reuse
        # distance; everything in between needs a distinct count.
        gap = pos32 - f
        seen = f >= 0
        hit_packed = seen & (gap <= ways)
        uncertain = seen & (gap > ways)
        if prologue:
            uncertain &= order >= prologue  # prologue hits are discarded
        q = np.flatnonzero(uncertain).astype(np.int32)
        if q.size > 16 or q.size * max(8, 2 * ways) > 2 * total:
            # Many uncertain queries: two prefix-sum bounds on the
            # window's distinct count retire most of them in O(total).
            # Batch-first accesses (f == -1) inside the window are
            # certainly distinct (lower bound ⇒ miss); everything but
            # immediate repeats bounds the count from above (the +1
            # covers a first-in-window immediate repeat at the window's
            # first position).
            p = f[q]
            cum_first = np.empty(total + 1, dtype=np.int32)
            cum_first[0] = 0
            np.cumsum(f == -1, out=cum_first[1:])
            missed = cum_first[q] - cum_first[p + 1] >= ways
            cum_move = np.empty(total + 1, dtype=np.int32)
            cum_move[0] = 0
            np.cumsum(f != pos32 - 1, out=cum_move[1:])
            hit2 = ~missed & (cum_move[q] - cum_move[p + 1] + 1 < ways)
            hit_packed[q[hit2]] = True
            q = q[~missed & ~hit2]
        if q.size:
            # The scan needs next-occurrence links; built lazily since
            # most batches resolve entirely in the screens above.
            nxt = np.full(total, total, dtype=np.int32)
            nxt[prev_idx] = next_idx
            hit_packed[q] = self._resolve(f, nxt, q, ways)

        # Unpack batch positions to the caller's order.
        hits = np.empty(n, dtype=bool)
        if prologue:
            batch = order >= prologue
            hits[order[batch] - prologue] = hit_packed[batch]
        else:
            hits[order] = hit_packed

        # New state: each touched set holds its `ways` most recently
        # used distinct lines, in recency order.
        is_last = np.ones(total, dtype=bool)
        is_last[prev_idx] = False
        lp = np.flatnonzero(is_last)
        ls = all_sets[order[lp]]  # ascending: packed is grouped by set
        cnt = np.bincount(ls, minlength=self.num_sets)
        ends = np.cumsum(cnt)
        idx_in_set = np.arange(lp.size, dtype=np.int64) - (ends[ls] - cnt[ls])
        from_end = cnt[ls] - 1 - idx_in_set
        keep = from_end < ways
        new_occ = np.minimum(cnt, ways)
        col = new_occ[ls] - 1 - from_end
        self._tags[us] = -1
        self._tags[ls[keep], col[keep]] = pv[lp[keep]]
        self._occ[us] = new_occ[us]
        return hits

    @staticmethod
    def _resolve(f, nxt, q, ways):
        """Exact hit/miss for accesses the screens could not decide.

        Lockstep backward block scan over all queries at once: walk a
        cursor from ``k-1`` down in blocks of ``B`` positions, counting
        positions whose line does not recur before ``k`` (``nxt[j] > k``
        ⇔ a distinct line of the window).  A query retires as a miss
        when the count reaches ``ways`` and as a hit when the scan
        exhausts the window (reaches the previous occurrence) first.
        Real streams retire within a block or two; the rare straggler
        (duplicate-heavy long windows) falls back to an exact
        first-in-window count, one vectorized reduction per query.
        """
        block = int(min(48, max(8, 2 * ways)))
        max_blocks = 1 + (8 * ways + 64) // block
        offs = np.arange(block, dtype=np.int32)
        p = f[q]
        c = q - 1
        cnt = np.zeros(q.size, dtype=np.int32)
        verdict = np.zeros(q.size, dtype=bool)
        alive = np.arange(q.size)
        qa, pa, ca, cna = q, p, c, cnt
        for _ in range(max_blocks):
            if not alive.size:
                break
            win = ca[:, None] - offs[None, :]
            valid = win > pa[:, None]
            dist = (nxt[np.maximum(win, 0)] > qa[:, None]) & valid
            totals = cna + dist.sum(axis=1, dtype=np.int32)
            # A miss is decided as soon as the running count reaches
            # `ways`; counts only accrue inside the window, so the block
            # total is exact for deciding both outcomes below.
            missed = totals >= ways
            exhausted = ~valid[:, -1]
            retired = missed | exhausted
            verdict[alive[exhausted & ~missed]] = True
            keep = ~retired
            alive = alive[keep]
            qa, pa, cna = qa[keep], pa[keep], totals[keep]
            ca = ca[keep] - block
        for i in alive:  # stragglers: count first-in-window occurrences
            verdict[i] = int(
                np.count_nonzero(f[p[i] + 1:q[i]] <= p[i])) < ways
        return verdict
