"""Memory hierarchy composition and access profiling.

:class:`MemoryHierarchy` feeds a kernel's address streams through the
L1D → L2 → LLC chain and produces an :class:`AccessProfile`: per-level
hit counts, off-chip bytes, and the average load-to-use latency — the
inputs of the interval core model and the roofline analysis.

Modeling notes (vs. gem5):

* Streams are filtered per level; one level's misses are replayed into
  the next, which is exact for an exclusive-of-nothing composition and
  a good approximation of the paper's mostly-exclusive LLC.
* Long streams are optionally *window-sampled*: a prefix window of each
  stream is simulated and the hit rates extrapolated.  Sampling is off
  by default at the suite's default scale.
* Hardware prefetchers (L1 stride / L2 best-offset) are modeled as a
  coverage factor on sequential streams, computed from each stream's
  measured sequentiality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..config import CacheConfig, MachineConfig
from .cache import Cache, dedup_consecutive, to_lines
from .fastcache import FastCache
from .trace import AccessStream, KernelTrace


def make_cache(config: CacheConfig, name: str = "", *, fast: bool = True):
    """One cache level in the selected model: the vectorized
    :class:`~repro.sim.fastcache.FastCache` (default) or the
    golden-reference :class:`~repro.sim.cache.Cache`.  Both are
    bit-for-bit hit/miss-equivalent; ``MachineConfig.fast_cache``
    (``--fast`` / ``--reference`` on the CLI) picks one."""
    cls = FastCache if fast else Cache
    return cls(config, name=name)


@dataclass
class StreamProfile:
    """Per-stream outcome of the hierarchy walk."""

    label: str
    kind: str
    dependent: bool
    gather: bool = False
    accesses: int = 0
    bytes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    mem_accesses: int = 0
    prefetch_coverage: float = 0.0


@dataclass
class AccessProfile:
    """Aggregate memory behaviour of one kernel run on one core."""

    streams: list[StreamProfile] = field(default_factory=list)
    line_bytes: int = 64

    @property
    def loads(self) -> int:
        return sum(s.accesses for s in self.streams if s.kind == "read")

    def total(self, attr: str, kind: str | None = None) -> int:
        return sum(getattr(s, attr) for s in self.streams
                   if kind is None or s.kind == kind)

    @property
    def mem_lines(self) -> int:
        return self.total("mem_accesses")

    @property
    def mem_bytes(self) -> int:
        """Off-chip traffic (cache-line granular)."""
        return self.mem_lines * self.line_bytes

    def average_load_latency(self, machine: MachineConfig) -> float:
        """Mean load-to-use latency in cycles, weighted by access counts
        (reads only), after prefetch coverage."""
        l1 = machine.l1d.latency
        l2 = machine.l2.latency
        llc = machine.llc.latency + machine.noc.average_latency() / 2
        mem = machine.memory_latency_cycles()
        total_lat = 0.0
        total_cnt = 0
        for s in self.streams:
            if s.kind != "read" or s.accesses == 0:
                continue
            covered = s.prefetch_coverage
            # Prefetched lines are served at ~L2 latency.
            miss_lat = covered * l2 + (1 - covered) * mem
            llc_lat = covered * l2 + (1 - covered) * llc
            total_lat += (
                s.l1_hits * l1
                + s.l2_hits * l2
                + s.llc_hits * llc_lat
                + s.mem_accesses * miss_lat
            )
            total_cnt += s.accesses
        return total_lat / total_cnt if total_cnt else 0.0


def sequentiality(lines: np.ndarray) -> float:
    """Fraction of accesses whose line is within +-2 lines of the
    previous access — the streams a stride/best-offset prefetcher
    covers."""
    if lines.size < 2:
        return 0.0
    deltas = np.abs(np.diff(lines))
    return float(np.mean(deltas <= 2))


class MemoryHierarchy:
    """L1D → L2 → LLC slice chain for one core."""

    def __init__(self, machine: MachineConfig, *,
                 sample_window: int | None = None,
                 model_prefetchers: bool = True) -> None:
        self.machine = machine
        self.sample_window = sample_window
        self.model_prefetchers = model_prefetchers
        fast = machine.fast_cache
        self.l1 = make_cache(machine.l1d, name="l1", fast=fast)
        self.l2 = make_cache(machine.l2, name="l2", fast=fast)
        # The LLC is shared; with all cores running the same kernel on
        # disjoint row ranges, contention is symmetric, so one core sees
        # the full LLC for its share of the data.
        self.llc = make_cache(machine.llc, name="llc", fast=fast)

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.llc.reset()

    def profile_stream(self, stream: AccessStream) -> StreamProfile:
        """Walk one stream through the hierarchy."""
        lines = to_lines(stream.addresses, self.machine.l1d.line_bytes)
        lines = dedup_consecutive(lines)
        total = lines.size
        scale = 1.0
        if self.sample_window and total > self.sample_window:
            lines = lines[: self.sample_window]
            scale = total / lines.size

        l1_hit = self.l1.lookup_lines(lines) if lines.size else np.zeros(
            0, dtype=bool)
        l1_misses = lines[~l1_hit]
        l2_hit = self.l2.lookup_lines(l1_misses) if l1_misses.size else (
            np.zeros(0, dtype=bool))
        l2_misses = l1_misses[~l2_hit]
        llc_hit = self.llc.lookup_lines(l2_misses) if l2_misses.size else (
            np.zeros(0, dtype=bool))
        mem = int((~llc_hit).sum())

        coverage = 0.0
        if self.model_prefetchers and not stream.dependent:
            # Stride/best-offset prefetchers cover sequential streams,
            # but imperfectly: late prefetches and stream restarts leave
            # about a quarter of the latency exposed.
            coverage = sequentiality(lines) * 0.75

        return StreamProfile(
            label=stream.label,
            kind=stream.kind,
            dependent=stream.dependent,
            gather=stream.gather,
            accesses=int(total * scale) if total else 0,
            bytes=int(stream.bytes),
            l1_hits=int(l1_hit.sum() * scale),
            l2_hits=int(l2_hit.sum() * scale),
            llc_hits=int(llc_hit.sum() * scale),
            mem_accesses=int(mem * scale),
            prefetch_coverage=coverage,
        )

    def profile(self, trace: KernelTrace) -> AccessProfile:
        """Walk all streams of a kernel trace (in declaration order)."""
        self.reset()
        profile = AccessProfile(line_bytes=self.machine.l1d.line_bytes)
        tracer = obs.tracer()
        with obs.timer("sim.memsys.profile"):
            for stream in trace.streams:
                sp = self.profile_stream(stream)
                profile.streams.append(sp)
                if tracer.enabled:
                    start = tracer.alloc(sp.accesses)
                    tracer.span("sim.memsys", sp.label or "stream", start,
                                sp.accesses, {
                                    "accesses": sp.accesses,
                                    "l1_hits": sp.l1_hits,
                                    "mem_lines": sp.mem_accesses,
                                })
        if obs.enabled():
            view = obs.active().prefixed("sim.memsys")
            view.counter("profiles").add()
            view.counter("streams").add(len(profile.streams))
            view.counter("mem_lines").add(profile.mem_lines)
            for level, cache in (("l1", self.l1), ("l2", self.l2),
                                 ("llc", self.llc)):
                view.gauge(f"{level}.hit_rate").set(cache.stats.hit_rate)
        return profile


def llc_only_profile(machine: MachineConfig, streams: list[AccessStream],
                     *, sample_window: int | None = None) -> AccessProfile:
    """Profile streams against the LLC alone — the TMU's view of the
    hierarchy (it reads directly from the LLC, Section 5.6)."""
    llc = make_cache(machine.llc, name="tmu_llc", fast=machine.fast_cache)
    profile = AccessProfile(line_bytes=machine.llc.line_bytes)
    for stream in streams:
        lines = to_lines(stream.addresses, machine.llc.line_bytes)
        lines = dedup_consecutive(lines)
        total = lines.size
        scale = 1.0
        if sample_window and total > sample_window:
            lines = lines[:sample_window]
            scale = total / lines.size
        hit = llc.lookup_lines(lines) if lines.size else np.zeros(0, bool)
        profile.streams.append(StreamProfile(
            label=stream.label,
            kind=stream.kind,
            dependent=stream.dependent,
            gather=stream.gather,
            accesses=int(total * scale),
            bytes=int(stream.bytes),
            l1_hits=0,
            l2_hits=0,
            llc_hits=int(hit.sum() * scale),
            mem_accesses=int((~hit).sum() * scale),
            prefetch_coverage=0.0,
        ))
    return profile
