"""Memory hierarchy composition and access profiling.

:class:`MemoryHierarchy` feeds a kernel's address streams through the
L1D → L2 → LLC chain and produces an :class:`AccessProfile`: per-level
hit counts, off-chip bytes, and the average load-to-use latency — the
inputs of the interval core model and the roofline analysis.

Modeling notes (vs. gem5):

* Streams are filtered per level; one level's misses are replayed into
  the next, which is exact for an exclusive-of-nothing composition and
  a good approximation of the paper's mostly-exclusive LLC.
* Long streams are optionally *window-sampled*: a prefix window of each
  stream is simulated and the hit rates extrapolated.  Sampling is off
  by default at the suite's default scale.
* Hardware prefetchers (L1 stride / L2 best-offset) are modeled as a
  coverage factor on sequential streams, computed from each stream's
  measured sequentiality.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from .. import obs
from ..config import CacheConfig, MachineConfig
from . import stackdist
from .cache import Cache, _CacheTelemetry, _publish, dedup_consecutive, \
    settle_lookup, to_lines
from .fastcache import FastCache
from .trace import AccessStream, KernelTrace


def make_cache(config: CacheConfig, name: str = "", *, fast: bool = True):
    """One cache level in the selected model: the vectorized
    :class:`~repro.sim.fastcache.FastCache` (default) or the
    golden-reference :class:`~repro.sim.cache.Cache`.  Both are
    bit-for-bit hit/miss-equivalent; ``MachineConfig.fast_cache``
    (``--fast`` / ``--reference`` on the CLI) picks one."""
    cls = FastCache if fast else Cache
    return cls(config, name=name)


@dataclass
class StreamProfile:
    """Per-stream outcome of the hierarchy walk."""

    label: str
    kind: str
    dependent: bool
    gather: bool = False
    accesses: int = 0
    bytes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    mem_accesses: int = 0
    prefetch_coverage: float = 0.0


@dataclass
class AccessProfile:
    """Aggregate memory behaviour of one kernel run on one core."""

    streams: list[StreamProfile] = field(default_factory=list)
    line_bytes: int = 64

    @property
    def loads(self) -> int:
        return sum(s.accesses for s in self.streams if s.kind == "read")

    def total(self, attr: str, kind: str | None = None) -> int:
        return sum(getattr(s, attr) for s in self.streams
                   if kind is None or s.kind == kind)

    @property
    def mem_lines(self) -> int:
        return self.total("mem_accesses")

    @property
    def mem_bytes(self) -> int:
        """Off-chip traffic (cache-line granular)."""
        return self.mem_lines * self.line_bytes

    def average_load_latency(self, machine: MachineConfig) -> float:
        """Mean load-to-use latency in cycles, weighted by access counts
        (reads only), after prefetch coverage."""
        l1 = machine.l1d.latency
        l2 = machine.l2.latency
        llc = machine.llc.latency + machine.noc.average_latency() / 2
        mem = machine.memory_latency_cycles()
        total_lat = 0.0
        total_cnt = 0
        for s in self.streams:
            if s.kind != "read" or s.accesses == 0:
                continue
            covered = s.prefetch_coverage
            # Prefetched lines are served at ~L2 latency.
            miss_lat = covered * l2 + (1 - covered) * mem
            llc_lat = covered * l2 + (1 - covered) * llc
            total_lat += (
                s.l1_hits * l1
                + s.l2_hits * l2
                + s.llc_hits * llc_lat
                + s.mem_accesses * miss_lat
            )
            total_cnt += s.accesses
        return total_lat / total_cnt if total_cnt else 0.0


#: Schema tag of serialized walk records.  Bump whenever the walk's
#: observable outcome for a given (geometry, stream content) pair can
#: change — a stale on-disk record must miss, never poison a result.
WALK_SCHEMA = "repro.walk/1"


def _stream_fingerprint(s: AccessStream) -> tuple:
    a = s.addresses
    n = a.size
    return (s.label, s.kind, s.dependent, s.gather, int(s.bytes), n,
            int(a[0]) if n else 0, int(a[-1]) if n else 0,
            int(a[:: max(1, n >> 4)].sum()) if n else 0)


def _streams_equal(stored: list[np.ndarray],
                   streams: list[AccessStream]) -> bool:
    return len(stored) == len(streams) and all(
        a is s.addresses or np.array_equal(a, s.addresses)
        for a, s in zip(stored, streams))


#: Per-array content digests, LRU over array identity.  The same
#: address arrays are digested for the hierarchy walk, the LLC-only
#: walk, and again on the post-miss ``put`` — hashing each one once
#: turns the sha256 over multi-million-entry streams from the dominant
#: disk-tier cost into a per-session constant.  Entries hold a strong
#: reference to the array, so a memoized id can never be recycled by a
#: new object while its entry lives (and the arrays are the very ones
#: the memory tier pins anyway).  Trace arrays are immutable once
#: built (the memory tier's identity short-circuit already relies on
#: this), so identity implies unchanged content.
_ARRAY_DIGESTS: OrderedDict = OrderedDict()
_ARRAY_DIGESTS_CAP = 1024


def _array_digest(a: np.ndarray) -> str:
    token = id(a)
    hit = _ARRAY_DIGESTS.get(token)
    if hit is not None:
        _ARRAY_DIGESTS.move_to_end(token)
        return hit[1]
    c = a if a.flags.c_contiguous else np.ascontiguousarray(a)
    h = hashlib.sha256()
    h.update(str(c.dtype).encode())
    h.update(c.data)
    d = h.hexdigest()
    while len(_ARRAY_DIGESTS) >= _ARRAY_DIGESTS_CAP:
        _ARRAY_DIGESTS.popitem(last=False)
    _ARRAY_DIGESTS[token] = (a, d)
    return d


def _walk_digest(key: tuple, streams: list[AccessStream]) -> str:
    """Content address of one walk: sha256 over the cache geometry /
    sampling key and the full stream contents (dtype + raw bytes,
    folded in as per-array content digests)."""
    h = hashlib.sha256()
    h.update(repr((WALK_SCHEMA, key)).encode())
    for s in streams:
        h.update(_array_digest(s.addresses).encode())
    return h.hexdigest()


def _encode_walk(value) -> dict:
    """Walk value -> JSON-able payload for the disk tier."""
    profiles, levels = value
    return {"schema": WALK_SCHEMA,
            "profiles": [dict(vars(sp)) for sp in profiles],
            "levels": [[int(a), int(hits)] for a, hits in levels]}


def _decode_walk(payload: dict):
    """Disk payload -> walk value, or None when unusable."""
    if not isinstance(payload, dict) or payload.get(
            "schema") != WALK_SCHEMA:
        return None
    try:
        profiles = [StreamProfile(**p) for p in payload["profiles"]]
        levels = [(int(a), int(hits)) for a, hits in payload["levels"]]
    except (KeyError, TypeError, ValueError):
        return None
    return profiles, levels


class WalkCache:
    """Two-tier memo of hierarchy walks.

    Architecture sweeps re-profile identical (geometry, stream content)
    pairs — core-side variants leave the cache hierarchy untouched —
    and the walk is a pure function of both, so its result can be
    reused freely:

    * **memory tier**: an in-process LRU over cheap fingerprint keys;
      every hit is *verified* against the stored address arrays with
      ``array_equal``, so a fingerprint collision can never change
      results.  At capacity the least-recently-used entry is evicted
      (an eviction only costs a recompute, never correctness).
    * **disk tier** (optional, installed by the runtime beside the
      result cache): records keyed by a sha256 over the geometry key
      and the full stream bytes, shared across ProcessPool workers,
      server jobs and sessions.  A disk hit is promoted into the
      memory tier.

    Replaying a cached walk reproduces the walk's observable side
    effects (per-level counters and stats) exactly, keeping telemetry
    identical to an unmemoized run.  Lookup/store traffic is published
    under ``sim.memsys.walk_cache.*`` when telemetry is enabled.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, list] = OrderedDict()
        self._lock = threading.Lock()
        self.store = None  # disk tier (duck-typed: load/save)
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------ telemetry

    def _tele(self, counter: str, n: int = 1) -> None:
        if obs.enabled():
            view = obs.active().prefixed("sim.memsys.walk_cache")
            view.counter(counter).add(n)
            lookups = self.hits + self.disk_hits + self.misses
            if lookups and counter in ("mem_hits", "disk_hits", "misses"):
                view.gauge("hit_rate").set(
                    (self.hits + self.disk_hits) / lookups)

    # ------------------------------------------------------------- lookups

    def lookup(self, key: tuple, streams: list[AccessStream]):
        """The cached walk for ``key``/``streams``, or None.  Checks
        the memory tier (verified), then the disk tier (content-
        addressed, so trusted by construction)."""
        with self._lock:
            entries = self._entries.get(key)
            if entries is not None:
                self._entries.move_to_end(key)
                entries = list(entries)
        if entries is not None:
            for stored, value in entries:
                if _streams_equal(stored, streams):
                    self.hits += 1
                    self._tele("mem_hits")
                    return value
        if self.store is not None:
            payload, nbytes = self.store.load(_walk_digest(key, streams))
            if payload is not None:
                value = _decode_walk(payload)
                if value is not None:
                    self.disk_hits += 1
                    self._tele("disk_hits")
                    self._tele("disk_bytes_read", nbytes)
                    self._install(key, streams, value)
                    return value
        self.misses += 1
        self._tele("misses")
        return None

    def put(self, key: tuple, streams: list[AccessStream], value) -> None:
        self._install(key, streams, value)
        self._tele("stores")
        if self.store is not None:
            nbytes = self.store.save(_walk_digest(key, streams),
                                     _encode_walk(value))
            self._tele("disk_bytes_written", nbytes)

    def _install(self, key: tuple, streams: list[AccessStream],
                 value) -> None:
        arrays = [s.addresses for s in streams]
        with self._lock:
            evicted = 0
            while len(self._entries) >= self.capacity and self._entries:
                self._entries.popitem(last=False)
                evicted += 1
            self._entries.setdefault(key, []).append((arrays, value))
            self._entries.move_to_end(key)
        if evicted:
            self.evictions += evicted
            self._tele("evictions", evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_WALK_CACHE = WalkCache()


def walk_cache() -> WalkCache:
    """The process-wide walk cache (memory tier always on)."""
    return _WALK_CACHE


def configure_walk_store(store) -> None:
    """Install (or remove, with ``None``) the on-disk walk tier.  The
    runtime wires this to a ``walks/`` directory beside the result
    cache — in the driver process and in every ProcessPool worker."""
    _WALK_CACHE.store = store


def prepare_lines(stream: AccessStream, line_bytes: int,
                  sample_window: int | None
                  ) -> tuple[np.ndarray, int, float]:
    """One stream's line sequence after dedup and window sampling,
    plus the pre-sampling size and the extrapolation factor — the
    shared prep step of the hierarchy walk and the LLC-only walk."""
    lines = dedup_consecutive(to_lines(stream.addresses, line_bytes))
    total = lines.size
    scale = 1.0
    if sample_window and total > sample_window:
        lines = lines[:sample_window]
        scale = total / lines.size
    return lines, total, scale


def _walk_level(cache, lines: np.ndarray) -> np.ndarray:
    """Classify one level's line stream in a single-shot batched walk.

    The fast model routes through the stateless stack-distance pass
    (:mod:`repro.sim.stackdist`): the walk starts from a reset cache
    and sees the level's whole stream in one call, which is exactly
    the cold-start whole-stream case the offline model computes — so
    the mask, stats and published telemetry are bit-identical to
    driving ``FastCache.lookup_lines`` (the fuzz harness in
    ``tests/test_stackdist_equiv.py`` holds all three models to the
    same answers).  The reference model keeps its stateful walk.
    """
    if lines.size == 0:
        return np.zeros(0, dtype=bool)
    if isinstance(cache, FastCache):
        hits = stackdist.hit_mask(lines, cache.num_sets, cache.ways)
        settle_lookup(cache, lines.size, int(hits.sum()))
        return hits
    return cache.lookup_lines(lines)


def sequentiality(lines: np.ndarray) -> float:
    """Fraction of accesses whose line is within +-2 lines of the
    previous access — the streams a stride/best-offset prefetcher
    covers."""
    if lines.size < 2:
        return 0.0
    deltas = np.abs(np.diff(lines))
    return float(np.mean(deltas <= 2))


class MemoryHierarchy:
    """L1D → L2 → LLC slice chain for one core."""

    def __init__(self, machine: MachineConfig, *,
                 sample_window: int | None = None,
                 model_prefetchers: bool = True) -> None:
        self.machine = machine
        self.sample_window = sample_window
        self.model_prefetchers = model_prefetchers
        fast = machine.fast_cache
        self.l1 = make_cache(machine.l1d, name="l1", fast=fast)
        self.l2 = make_cache(machine.l2, name="l2", fast=fast)
        # The LLC is shared; with all cores running the same kernel on
        # disjoint row ranges, contention is symmetric, so one core sees
        # the full LLC for its share of the data.
        self.llc = make_cache(machine.llc, name="llc", fast=fast)

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.llc.reset()

    def _memo_key(self, streams: list[AccessStream]) -> tuple:
        m = self.machine
        geom = tuple((c.size_bytes, c.line_bytes, c.ways, c.latency,
                      c.mshrs) for c in (m.l1d, m.l2, m.llc))
        return (geom, m.fast_cache, self.sample_window,
                self.model_prefetchers,
                tuple(_stream_fingerprint(s) for s in streams))

    def _prepared_lines(self, stream: AccessStream
                        ) -> tuple[np.ndarray, int, float]:
        return prepare_lines(stream, self.machine.l1d.line_bytes,
                             self.sample_window)

    def _coverage(self, stream: AccessStream, lines: np.ndarray) -> float:
        if self.model_prefetchers and not stream.dependent:
            # Stride/best-offset prefetchers cover sequential streams,
            # but imperfectly: late prefetches and stream restarts leave
            # about a quarter of the latency exposed.
            return sequentiality(lines) * 0.75
        return 0.0

    def profile_stream(self, stream: AccessStream) -> StreamProfile:
        """Walk one stream through the hierarchy."""
        lines, total, scale = self._prepared_lines(stream)

        l1_hit = self.l1.lookup_lines(lines) if lines.size else np.zeros(
            0, dtype=bool)
        l1_misses = lines[~l1_hit]
        l2_hit = self.l2.lookup_lines(l1_misses) if l1_misses.size else (
            np.zeros(0, dtype=bool))
        l2_misses = l1_misses[~l2_hit]
        llc_hit = self.llc.lookup_lines(l2_misses) if l2_misses.size else (
            np.zeros(0, dtype=bool))
        mem = int((~llc_hit).sum())

        coverage = self._coverage(stream, lines)

        return StreamProfile(
            label=stream.label,
            kind=stream.kind,
            dependent=stream.dependent,
            gather=stream.gather,
            accesses=int(total * scale) if total else 0,
            bytes=int(stream.bytes),
            l1_hits=int(l1_hit.sum() * scale),
            l2_hits=int(l2_hit.sum() * scale),
            llc_hits=int(llc_hit.sum() * scale),
            mem_accesses=int(mem * scale),
            prefetch_coverage=coverage,
        )

    def profile(self, trace: KernelTrace) -> AccessProfile:
        """Walk all streams of a kernel trace (in declaration order)."""
        self.reset()
        profile = AccessProfile(line_bytes=self.machine.l1d.line_bytes)
        tracer = obs.tracer()
        with obs.timer("sim.memsys.profile"):
            if tracer.enabled:
                # Reference walk: one hierarchy pass per stream, so the
                # trace carries per-stream cache events in program order.
                for stream in trace.streams:
                    sp = self.profile_stream(stream)
                    profile.streams.append(sp)
                    start = tracer.alloc(sp.accesses)
                    tracer.span("sim.memsys", sp.label or "stream", start,
                                sp.accesses, {
                                    "accesses": sp.accesses,
                                    "l1_hits": sp.l1_hits,
                                    "mem_lines": sp.mem_accesses,
                                })
            else:
                key = self._memo_key(trace.streams)
                value = _WALK_CACHE.lookup(key, trace.streams)
                if value is None:
                    sps = self._profile_batched(trace.streams)
                    levels = [(c.stats.accesses, c.stats.hits)
                              for c in (self.l1, self.l2, self.llc)]
                    _WALK_CACHE.put(key, trace.streams,
                                    ([replace(sp) for sp in sps], levels))
                else:
                    stored, levels = value
                    sps = [replace(sp) for sp in stored]
                    # Replay the walk's side effects: the caches were
                    # reset above, so stats and published counters end
                    # up identical to the unmemoized walk.
                    for cache, (acc, hits) in zip(
                            (self.l1, self.l2, self.llc), levels):
                        cache.stats.accesses += acc
                        cache.stats.hits += hits
                        if acc and cache.name:
                            _publish(cache._tele.refresh(cache.name),
                                     cache.name, acc, hits)
                profile.streams.extend(sps)
        if obs.enabled():
            view = obs.active().prefixed("sim.memsys")
            view.counter("profiles").add()
            view.counter("streams").add(len(profile.streams))
            view.counter("mem_lines").add(profile.mem_lines)
            for level, cache in (("l1", self.l1), ("l2", self.l2),
                                 ("llc", self.llc)):
                view.gauge(f"{level}.hit_rate").set(cache.stats.hit_rate)
        return profile

    def _profile_batched(self, streams: list[AccessStream]
                         ) -> list[StreamProfile]:
        """The hierarchy walk with one ``lookup_lines`` call per level.

        Exactly equivalent to the per-stream reference walk: each cache
        level's state depends only on the lookups *it* serves, and the
        concatenated per-level access order (stream 0's lines, then
        stream 1's, ...) is identical to the order the sequential walk
        produces — batching only moves the call boundaries, which both
        cache models compose across exactly.  Per-stream attribution
        falls out of a segment-id ``bincount`` on each level's hit mask.
        """
        prepared = [self._prepared_lines(s) for s in streams]
        num = len(prepared)
        sizes = [lines.size for lines, _, _ in prepared]
        seg = np.repeat(np.arange(num, dtype=np.int64), sizes)
        all_lines = (np.concatenate([p[0] for p in prepared])
                     if seg.size else np.zeros(0, dtype=np.int64))

        l1_hit = _walk_level(self.l1, all_lines)
        l2_lines, l2_seg = all_lines[~l1_hit], seg[~l1_hit]
        l2_hit = _walk_level(self.l2, l2_lines)
        llc_lines, llc_seg = l2_lines[~l2_hit], l2_seg[~l2_hit]
        llc_hit = _walk_level(self.llc, llc_lines)

        l1_hits = np.bincount(seg[l1_hit], minlength=num)
        l2_hits = np.bincount(l2_seg[l2_hit], minlength=num)
        llc_hits = np.bincount(llc_seg[llc_hit], minlength=num)
        mem = np.bincount(llc_seg[~llc_hit], minlength=num)

        return [
            StreamProfile(
                label=stream.label,
                kind=stream.kind,
                dependent=stream.dependent,
                gather=stream.gather,
                accesses=int(total * scale) if total else 0,
                bytes=int(stream.bytes),
                l1_hits=int(l1_hits[i] * scale),
                l2_hits=int(l2_hits[i] * scale),
                llc_hits=int(llc_hits[i] * scale),
                mem_accesses=int(mem[i] * scale),
                prefetch_coverage=self._coverage(stream, lines),
            )
            for i, (stream, (lines, total, scale))
            in enumerate(zip(streams, prepared))
        ]


#: telemetry handle for replayed llc_only walks (the cache object that
#: produced the memoized walk is long gone; counters are additive, so
#: publishing the stored totals through a module handle is identical).
_LLC_REPLAY_TELE = _CacheTelemetry()


def llc_only_profile(machine: MachineConfig, streams: list[AccessStream],
                     *, sample_window: int | None = None) -> AccessProfile:
    """Profile streams against the LLC alone — the TMU's view of the
    hierarchy (it reads directly from the LLC, Section 5.6)."""
    c = machine.llc
    memo_key = None
    if not obs.tracer().enabled:
        memo_key = ("llc_only", (c.size_bytes, c.line_bytes, c.ways,
                                 c.latency, c.mshrs), machine.fast_cache,
                    sample_window,
                    tuple(_stream_fingerprint(s) for s in streams))
        value = _WALK_CACHE.lookup(memo_key, streams)
        if value is not None:
            stored, ((acc, hit_count),) = value
            out = AccessProfile(line_bytes=c.line_bytes)
            out.streams.extend(replace(sp) for sp in stored)
            if acc:
                _publish(_LLC_REPLAY_TELE.refresh("tmu_llc"), "tmu_llc",
                         acc, hit_count)
            return out
    llc = make_cache(machine.llc, name="tmu_llc", fast=machine.fast_cache)
    profile = AccessProfile(line_bytes=machine.llc.line_bytes)
    prepared = [prepare_lines(s, machine.llc.line_bytes, sample_window)
                for s in streams]
    # One walk over the concatenation (exact: single level, order
    # preserved), attributed back per stream by segment id.
    num = len(prepared)
    seg = np.repeat(np.arange(num, dtype=np.int64),
                    [p[0].size for p in prepared])
    all_lines = (np.concatenate([p[0] for p in prepared])
                 if seg.size else np.zeros(0, dtype=np.int64))
    hit = _walk_level(llc, all_lines)
    hits = np.bincount(seg[hit], minlength=num)
    misses = np.bincount(seg[~hit], minlength=num)
    for i, (stream, (lines, total, scale)) in enumerate(
            zip(streams, prepared)):
        profile.streams.append(StreamProfile(
            label=stream.label,
            kind=stream.kind,
            dependent=stream.dependent,
            gather=stream.gather,
            accesses=int(total * scale),
            bytes=int(stream.bytes),
            l1_hits=0,
            l2_hits=0,
            llc_hits=int(hits[i] * scale),
            mem_accesses=int(misses[i] * scale),
            prefetch_coverage=0.0,
        ))
    if memo_key is not None:
        _WALK_CACHE.put(memo_key, streams,
                        ([replace(sp) for sp in profile.streams],
                         [(llc.stats.accesses, llc.stats.hits)]))
    return profile
