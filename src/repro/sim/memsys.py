"""Memory hierarchy composition and access profiling.

:class:`MemoryHierarchy` feeds a kernel's address streams through the
L1D → L2 → LLC chain and produces an :class:`AccessProfile`: per-level
hit counts, off-chip bytes, and the average load-to-use latency — the
inputs of the interval core model and the roofline analysis.

Modeling notes (vs. gem5):

* Streams are filtered per level; one level's misses are replayed into
  the next, which is exact for an exclusive-of-nothing composition and
  a good approximation of the paper's mostly-exclusive LLC.
* Long streams are optionally *window-sampled*: a prefix window of each
  stream is simulated and the hit rates extrapolated.  Sampling is off
  by default at the suite's default scale.
* Hardware prefetchers (L1 stride / L2 best-offset) are modeled as a
  coverage factor on sequential streams, computed from each stream's
  measured sequentiality.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .. import obs
from ..config import CacheConfig, MachineConfig
from .cache import Cache, _CacheTelemetry, _publish, dedup_consecutive, \
    to_lines
from .fastcache import FastCache
from .trace import AccessStream, KernelTrace


def make_cache(config: CacheConfig, name: str = "", *, fast: bool = True):
    """One cache level in the selected model: the vectorized
    :class:`~repro.sim.fastcache.FastCache` (default) or the
    golden-reference :class:`~repro.sim.cache.Cache`.  Both are
    bit-for-bit hit/miss-equivalent; ``MachineConfig.fast_cache``
    (``--fast`` / ``--reference`` on the CLI) picks one."""
    cls = FastCache if fast else Cache
    return cls(config, name=name)


@dataclass
class StreamProfile:
    """Per-stream outcome of the hierarchy walk."""

    label: str
    kind: str
    dependent: bool
    gather: bool = False
    accesses: int = 0
    bytes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_hits: int = 0
    mem_accesses: int = 0
    prefetch_coverage: float = 0.0


@dataclass
class AccessProfile:
    """Aggregate memory behaviour of one kernel run on one core."""

    streams: list[StreamProfile] = field(default_factory=list)
    line_bytes: int = 64

    @property
    def loads(self) -> int:
        return sum(s.accesses for s in self.streams if s.kind == "read")

    def total(self, attr: str, kind: str | None = None) -> int:
        return sum(getattr(s, attr) for s in self.streams
                   if kind is None or s.kind == kind)

    @property
    def mem_lines(self) -> int:
        return self.total("mem_accesses")

    @property
    def mem_bytes(self) -> int:
        """Off-chip traffic (cache-line granular)."""
        return self.mem_lines * self.line_bytes

    def average_load_latency(self, machine: MachineConfig) -> float:
        """Mean load-to-use latency in cycles, weighted by access counts
        (reads only), after prefetch coverage."""
        l1 = machine.l1d.latency
        l2 = machine.l2.latency
        llc = machine.llc.latency + machine.noc.average_latency() / 2
        mem = machine.memory_latency_cycles()
        total_lat = 0.0
        total_cnt = 0
        for s in self.streams:
            if s.kind != "read" or s.accesses == 0:
                continue
            covered = s.prefetch_coverage
            # Prefetched lines are served at ~L2 latency.
            miss_lat = covered * l2 + (1 - covered) * mem
            llc_lat = covered * l2 + (1 - covered) * llc
            total_lat += (
                s.l1_hits * l1
                + s.l2_hits * l2
                + s.llc_hits * llc_lat
                + s.mem_accesses * miss_lat
            )
            total_cnt += s.accesses
        return total_lat / total_cnt if total_cnt else 0.0


#: Memoized hierarchy walks.  Architecture sweeps re-profile identical
#: (geometry, stream content) pairs — e.g. core-side variants that
#: leave the cache hierarchy untouched — and the walk is a pure
#: function of both.  Keys are cheap fingerprints; every hit is
#: *verified* against the stored address arrays with ``array_equal``
#: before replay, so a fingerprint collision can never change results.
#: Replay reproduces the walk's observable side effects (per-level
#: counters and stats) exactly, keeping telemetry identical to an
#: unmemoized run.
_WALK_MEMO: dict[tuple, list] = {}
_WALK_MEMO_CAP = 512


def _stream_fingerprint(s: AccessStream) -> tuple:
    a = s.addresses
    n = a.size
    return (s.label, s.kind, s.dependent, s.gather, int(s.bytes), n,
            int(a[0]) if n else 0, int(a[-1]) if n else 0,
            int(a[:: max(1, n >> 4)].sum()) if n else 0)


def _memo_lookup(key: tuple, streams: list[AccessStream]):
    """Return the memoized walk for ``key`` whose stored streams are
    content-equal to ``streams``, or None."""
    for stored, value in _WALK_MEMO.get(key, ()):
        if len(stored) == len(streams) and all(
                a is s.addresses or np.array_equal(a, s.addresses)
                for a, s in zip(stored, streams)):
            return value
    return None


def _memo_store(key: tuple, streams: list[AccessStream], value) -> None:
    if len(_WALK_MEMO) >= _WALK_MEMO_CAP:
        _WALK_MEMO.clear()
    _WALK_MEMO.setdefault(key, []).append(
        ([s.addresses for s in streams], value))


def sequentiality(lines: np.ndarray) -> float:
    """Fraction of accesses whose line is within +-2 lines of the
    previous access — the streams a stride/best-offset prefetcher
    covers."""
    if lines.size < 2:
        return 0.0
    deltas = np.abs(np.diff(lines))
    return float(np.mean(deltas <= 2))


class MemoryHierarchy:
    """L1D → L2 → LLC slice chain for one core."""

    def __init__(self, machine: MachineConfig, *,
                 sample_window: int | None = None,
                 model_prefetchers: bool = True) -> None:
        self.machine = machine
        self.sample_window = sample_window
        self.model_prefetchers = model_prefetchers
        fast = machine.fast_cache
        self.l1 = make_cache(machine.l1d, name="l1", fast=fast)
        self.l2 = make_cache(machine.l2, name="l2", fast=fast)
        # The LLC is shared; with all cores running the same kernel on
        # disjoint row ranges, contention is symmetric, so one core sees
        # the full LLC for its share of the data.
        self.llc = make_cache(machine.llc, name="llc", fast=fast)

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.llc.reset()

    def _memo_key(self, streams: list[AccessStream]) -> tuple:
        m = self.machine
        geom = tuple((c.size_bytes, c.line_bytes, c.ways, c.latency,
                      c.mshrs) for c in (m.l1d, m.l2, m.llc))
        return (geom, m.fast_cache, self.sample_window,
                self.model_prefetchers,
                tuple(_stream_fingerprint(s) for s in streams))

    def _prepared_lines(self, stream: AccessStream
                        ) -> tuple[np.ndarray, int, float]:
        """One stream's line sequence after dedup and window sampling,
        plus the pre-sampling size and the extrapolation factor."""
        lines = to_lines(stream.addresses, self.machine.l1d.line_bytes)
        lines = dedup_consecutive(lines)
        total = lines.size
        scale = 1.0
        if self.sample_window and total > self.sample_window:
            lines = lines[: self.sample_window]
            scale = total / lines.size
        return lines, total, scale

    def _coverage(self, stream: AccessStream, lines: np.ndarray) -> float:
        if self.model_prefetchers and not stream.dependent:
            # Stride/best-offset prefetchers cover sequential streams,
            # but imperfectly: late prefetches and stream restarts leave
            # about a quarter of the latency exposed.
            return sequentiality(lines) * 0.75
        return 0.0

    def profile_stream(self, stream: AccessStream) -> StreamProfile:
        """Walk one stream through the hierarchy."""
        lines, total, scale = self._prepared_lines(stream)

        l1_hit = self.l1.lookup_lines(lines) if lines.size else np.zeros(
            0, dtype=bool)
        l1_misses = lines[~l1_hit]
        l2_hit = self.l2.lookup_lines(l1_misses) if l1_misses.size else (
            np.zeros(0, dtype=bool))
        l2_misses = l1_misses[~l2_hit]
        llc_hit = self.llc.lookup_lines(l2_misses) if l2_misses.size else (
            np.zeros(0, dtype=bool))
        mem = int((~llc_hit).sum())

        coverage = self._coverage(stream, lines)

        return StreamProfile(
            label=stream.label,
            kind=stream.kind,
            dependent=stream.dependent,
            gather=stream.gather,
            accesses=int(total * scale) if total else 0,
            bytes=int(stream.bytes),
            l1_hits=int(l1_hit.sum() * scale),
            l2_hits=int(l2_hit.sum() * scale),
            llc_hits=int(llc_hit.sum() * scale),
            mem_accesses=int(mem * scale),
            prefetch_coverage=coverage,
        )

    def profile(self, trace: KernelTrace) -> AccessProfile:
        """Walk all streams of a kernel trace (in declaration order)."""
        self.reset()
        profile = AccessProfile(line_bytes=self.machine.l1d.line_bytes)
        tracer = obs.tracer()
        with obs.timer("sim.memsys.profile"):
            if tracer.enabled:
                # Reference walk: one hierarchy pass per stream, so the
                # trace carries per-stream cache events in program order.
                for stream in trace.streams:
                    sp = self.profile_stream(stream)
                    profile.streams.append(sp)
                    start = tracer.alloc(sp.accesses)
                    tracer.span("sim.memsys", sp.label or "stream", start,
                                sp.accesses, {
                                    "accesses": sp.accesses,
                                    "l1_hits": sp.l1_hits,
                                    "mem_lines": sp.mem_accesses,
                                })
            else:
                key = self._memo_key(trace.streams)
                value = _memo_lookup(key, trace.streams)
                if value is None:
                    sps = self._profile_batched(trace.streams)
                    levels = [(c.stats.accesses, c.stats.hits)
                              for c in (self.l1, self.l2, self.llc)]
                    _memo_store(key, trace.streams,
                                ([replace(sp) for sp in sps], levels))
                else:
                    stored, levels = value
                    sps = [replace(sp) for sp in stored]
                    # Replay the walk's side effects: the caches were
                    # reset above, so stats and published counters end
                    # up identical to the unmemoized walk.
                    for cache, (acc, hits) in zip(
                            (self.l1, self.l2, self.llc), levels):
                        cache.stats.accesses += acc
                        cache.stats.hits += hits
                        if acc and cache.name:
                            _publish(cache._tele.refresh(cache.name),
                                     cache.name, acc, hits)
                profile.streams.extend(sps)
        if obs.enabled():
            view = obs.active().prefixed("sim.memsys")
            view.counter("profiles").add()
            view.counter("streams").add(len(profile.streams))
            view.counter("mem_lines").add(profile.mem_lines)
            for level, cache in (("l1", self.l1), ("l2", self.l2),
                                 ("llc", self.llc)):
                view.gauge(f"{level}.hit_rate").set(cache.stats.hit_rate)
        return profile

    def _profile_batched(self, streams: list[AccessStream]
                         ) -> list[StreamProfile]:
        """The hierarchy walk with one ``lookup_lines`` call per level.

        Exactly equivalent to the per-stream reference walk: each cache
        level's state depends only on the lookups *it* serves, and the
        concatenated per-level access order (stream 0's lines, then
        stream 1's, ...) is identical to the order the sequential walk
        produces — batching only moves the call boundaries, which both
        cache models compose across exactly.  Per-stream attribution
        falls out of a segment-id ``bincount`` on each level's hit mask.
        """
        prepared = [self._prepared_lines(s) for s in streams]
        num = len(prepared)
        sizes = [lines.size for lines, _, _ in prepared]
        seg = np.repeat(np.arange(num, dtype=np.int64), sizes)
        all_lines = (np.concatenate([p[0] for p in prepared])
                     if seg.size else np.zeros(0, dtype=np.int64))

        l1_hit = self.l1.lookup_lines(all_lines) if all_lines.size else (
            np.zeros(0, dtype=bool))
        l2_lines, l2_seg = all_lines[~l1_hit], seg[~l1_hit]
        l2_hit = self.l2.lookup_lines(l2_lines) if l2_lines.size else (
            np.zeros(0, dtype=bool))
        llc_lines, llc_seg = l2_lines[~l2_hit], l2_seg[~l2_hit]
        llc_hit = self.llc.lookup_lines(llc_lines) if llc_lines.size else (
            np.zeros(0, dtype=bool))

        l1_hits = np.bincount(seg[l1_hit], minlength=num)
        l2_hits = np.bincount(l2_seg[l2_hit], minlength=num)
        llc_hits = np.bincount(llc_seg[llc_hit], minlength=num)
        mem = np.bincount(llc_seg[~llc_hit], minlength=num)

        return [
            StreamProfile(
                label=stream.label,
                kind=stream.kind,
                dependent=stream.dependent,
                gather=stream.gather,
                accesses=int(total * scale) if total else 0,
                bytes=int(stream.bytes),
                l1_hits=int(l1_hits[i] * scale),
                l2_hits=int(l2_hits[i] * scale),
                llc_hits=int(llc_hits[i] * scale),
                mem_accesses=int(mem[i] * scale),
                prefetch_coverage=self._coverage(stream, lines),
            )
            for i, (stream, (lines, total, scale))
            in enumerate(zip(streams, prepared))
        ]


#: telemetry handle for replayed llc_only walks (the cache object that
#: produced the memoized walk is long gone; counters are additive, so
#: publishing the stored totals through a module handle is identical).
_LLC_REPLAY_TELE = _CacheTelemetry()


def llc_only_profile(machine: MachineConfig, streams: list[AccessStream],
                     *, sample_window: int | None = None) -> AccessProfile:
    """Profile streams against the LLC alone — the TMU's view of the
    hierarchy (it reads directly from the LLC, Section 5.6)."""
    c = machine.llc
    memo_key = None
    if not obs.tracer().enabled:
        memo_key = ("llc_only", (c.size_bytes, c.line_bytes, c.ways,
                                 c.latency, c.mshrs), machine.fast_cache,
                    sample_window,
                    tuple(_stream_fingerprint(s) for s in streams))
        value = _memo_lookup(memo_key, streams)
        if value is not None:
            stored, (acc, hit_count) = value
            out = AccessProfile(line_bytes=c.line_bytes)
            out.streams.extend(replace(sp) for sp in stored)
            if acc:
                _publish(_LLC_REPLAY_TELE.refresh("tmu_llc"), "tmu_llc",
                         acc, hit_count)
            return out
    llc = make_cache(machine.llc, name="tmu_llc", fast=machine.fast_cache)
    profile = AccessProfile(line_bytes=machine.llc.line_bytes)
    prepared = []
    for stream in streams:
        lines = to_lines(stream.addresses, machine.llc.line_bytes)
        lines = dedup_consecutive(lines)
        total = lines.size
        scale = 1.0
        if sample_window and total > sample_window:
            lines = lines[:sample_window]
            scale = total / lines.size
        prepared.append((lines, total, scale))
    # One lookup over the concatenation (exact: single level, order
    # preserved), attributed back per stream by segment id.
    num = len(prepared)
    seg = np.repeat(np.arange(num, dtype=np.int64),
                    [p[0].size for p in prepared])
    all_lines = (np.concatenate([p[0] for p in prepared])
                 if seg.size else np.zeros(0, dtype=np.int64))
    hit = llc.lookup_lines(all_lines) if all_lines.size else np.zeros(
        0, dtype=bool)
    hits = np.bincount(seg[hit], minlength=num)
    misses = np.bincount(seg[~hit], minlength=num)
    for i, (stream, (lines, total, scale)) in enumerate(
            zip(streams, prepared)):
        profile.streams.append(StreamProfile(
            label=stream.label,
            kind=stream.kind,
            dependent=stream.dependent,
            gather=stream.gather,
            accesses=int(total * scale),
            bytes=int(stream.bytes),
            l1_hits=0,
            l2_hits=0,
            llc_hits=int(hits[i] * scale),
            mem_accesses=int(misses[i] * scale),
            prefetch_coverage=0.0,
        ))
    if memo_key is not None:
        _memo_store(memo_key, streams,
                    ([replace(sp) for sp in profile.streams],
                     (llc.stats.accesses, llc.stats.hits)))
    return profile
