"""Chunk-level pipeline simulation of the decoupled TMU/core pair.

:func:`repro.sim.machine.run_tmu` composes producer and consumer with a
closed-form ``max(...) + fill`` — exact when chunk times are uniform.
This module simulates the double-buffered outQ *per chunk* (paper
Section 5.3: "the TMU populates another outQ chunk, overlapping data
loading and computation"), which additionally captures:

* irregular chunk times (e.g. a power-law matrix whose heavy rows make
  some chunks much more expensive than others);
* producer stalls when both buffers are full (the core is behind);
* consumer stalls when no chunk is ready (the engine is behind).

It is used by the pipeline tests, the ablation bench and the
`outq_pipeline` example; the closed-form stays the default for sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SimulationError


@dataclass
class PipelineResult:
    """Timeline summary of one producer/consumer run."""

    total_cycles: float
    producer_busy: float
    consumer_busy: float
    producer_stalled: float      # waiting for a free buffer
    consumer_stalled: float      # waiting for a ready chunk
    chunk_completions: list[float]

    @property
    def producer_utilization(self) -> float:
        return self.producer_busy / self.total_cycles if (
            self.total_cycles) else 0.0

    @property
    def consumer_utilization(self) -> float:
        return self.consumer_busy / self.total_cycles if (
            self.total_cycles) else 0.0

    @property
    def read_to_write(self) -> float:
        """Mean consume time / mean produce time — Figure 13's metric,
        measured instead of assumed."""
        return self.consumer_busy / self.producer_busy if (
            self.producer_busy) else float("inf")


def simulate_outq_pipeline(produce_cycles: Sequence[float],
                           consume_cycles: Sequence[float], *,
                           buffers: int = 2) -> PipelineResult:
    """Simulate a producer filling chunks and a consumer draining them
    through ``buffers`` outQ slots (2 = the paper's double buffering).

    ``produce_cycles[k]`` / ``consume_cycles[k]`` are the times to
    write / process chunk k.  Returns the full timeline summary.
    """
    produce = np.asarray(produce_cycles, dtype=np.float64)
    consume = np.asarray(consume_cycles, dtype=np.float64)
    if produce.shape != consume.shape:
        raise SimulationError("chunk arrays must align")
    if np.any(produce < 0) or np.any(consume < 0):
        raise SimulationError("chunk times must be non-negative")
    if buffers < 1:
        raise SimulationError("need at least one outQ buffer")
    n = produce.size
    if n == 0:
        return PipelineResult(0.0, 0.0, 0.0, 0.0, 0.0, [])

    # produce_done[k]: when chunk k is fully written.
    # consume_done[k]: when the core finishes processing it.
    produce_done = np.zeros(n)
    consume_done = np.zeros(n)
    producer_stall = 0.0
    consumer_stall = 0.0
    for k in range(n):
        # The producer may start chunk k once it finished k-1 AND a
        # buffer is free, i.e. chunk k - buffers has been consumed.
        start = produce_done[k - 1] if k else 0.0
        if k >= buffers:
            freed = consume_done[k - buffers]
            producer_stall += max(0.0, freed - start)
            start = max(start, freed)
        produce_done[k] = start + produce[k]

        # The consumer starts chunk k when it is written and the core
        # finished the previous chunk.
        ready = produce_done[k]
        prev = consume_done[k - 1] if k else 0.0
        consumer_stall += max(0.0, ready - prev)
        consume_done[k] = max(ready, prev) + consume[k]

    return PipelineResult(
        total_cycles=float(consume_done[-1]),
        producer_busy=float(produce.sum()),
        consumer_busy=float(consume.sum()),
        producer_stalled=float(producer_stall),
        consumer_stalled=float(consumer_stall),
        chunk_completions=consume_done.tolist(),
    )


def chunk_times_from_totals(total_produce: float, total_consume: float,
                            num_chunks: int, *,
                            cv: float = 0.0,
                            seed: int = 0) -> tuple[np.ndarray,
                                                    np.ndarray]:
    """Split aggregate producer/consumer times into per-chunk times
    with coefficient of variation ``cv`` (0 = uniform) — the bridge
    from the closed-form model's aggregates to the per-chunk
    simulation."""
    if num_chunks < 1:
        raise SimulationError("need at least one chunk")
    if cv < 0:
        raise SimulationError("cv must be non-negative")
    rng = np.random.default_rng(seed)

    def split(total: float) -> np.ndarray:
        if cv == 0.0 or num_chunks == 1:
            return np.full(num_chunks, total / num_chunks)
        mean = total / num_chunks
        sigma = np.sqrt(np.log(1.0 + cv * cv))
        mu = np.log(mean) - sigma * sigma / 2.0
        raw = rng.lognormal(mu, sigma, num_chunks)
        return raw * (total / raw.sum())

    return split(total_produce), split(total_consume)
