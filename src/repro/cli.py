"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro fig10 [--scale small|medium|paper] [--jobs 4]
    python -m repro all --scale small --cache-dir .repro-cache
    python -m repro fig10 --workloads spmv,spkadd --jobs 2 --no-cache
    python -m repro fig13 --telemetry run.json   # write a perf snapshot
    python -m repro stats dump run.json          # inspect a snapshot
    python -m repro stats diff base.json run.json --max-regression 0.2
    python -m repro fig13 --trace trace.json     # record an event timeline
    python -m repro trace record fig13 --out trace.json --sample 4
    python -m repro trace export trace.json      # Perfetto-loadable JSON
    python -m repro trace report trace.json      # stall attribution
    python -m repro fig13 --profile 20    # cProfile bottleneck dump
    python -m repro fig13 --walk-cache off    # skip the walk cache
    python -m repro cache-gc          # reclaim stale cache entries
    python -m repro serve --port 8321            # simulation job service
    python -m repro submit --workloads spmv,spkadd --wait
    python -m repro jobs                         # list service jobs
    python -m repro fetch <job-id> --out results.json
    python -m repro fig13 --store results.sqlite # auto-ingest the run
    python -m repro ingest BENCH_*.json --store results.sqlite
    python -m repro query cells-per-sec --by rev --store results.sqlite
    python -m repro query regressions --bound 0.2 --store results.sqlite
    python -m repro report --store results.sqlite --out report.html
    tmu-repro table6

Simulation cells are executed through :mod:`repro.runtime`: results
are cached content-addressed under ``--cache-dir`` (default
``.repro-cache``), ``--jobs N`` fans cache misses out over N worker
processes, and every invocation writes a run manifest (task hashes,
wall times, cache hits, failures) next to the cache.

``--telemetry PATH`` enables the :mod:`repro.obs` layer for the run and
writes a schema-versioned perf snapshot to PATH; ``stats`` dumps,
diffs, and regression-gates such snapshots (the ``bench-smoke`` CI job
is built from exactly these two pieces).

``--trace [PATH]`` additionally records an event timeline
(:mod:`repro.obs.tracing`) and writes a ``repro.trace/1`` JSON file;
``trace export`` converts it to Perfetto-loadable JSON and ``trace
report`` folds it into a per-component stall/cycle decomposition.

``serve`` runs the long-lived simulation job service
(:mod:`repro.serve`); ``submit``, ``jobs`` and ``fetch`` talk to it
over HTTP — submit a declarative sweep, watch its progress, fetch its
content-addressed results.

``--store PATH`` auto-ingests a run's manifests (and its telemetry
snapshot / trace, when recorded) into the queryable experiment
database (:mod:`repro.store`); ``ingest`` feeds it existing result
files and ``query`` runs cross-run analytics over it — including the
``regressions`` gate the ``store-smoke`` CI job exits on.

``report`` renders that database as a self-contained HTML flight
recorder (:mod:`repro.obs.report`): inline SVG charts for cells/sec
by rev and per-layer stall shares, plus run/cell/span tables — one
file with no external assets, built from the same query functions as
``repro query`` so the numbers always agree.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
import time
from pathlib import Path

from . import obs, runtime
from .config import set_default_fast
from .errors import ReproError
from .eval import experiments as ex
from .runtime.manifest import RunManifest

#: name -> callable(scale, workloads); drivers without a workload
#: filter ignore the second argument.
_COMMANDS = {
    "fig03": lambda scale, w: ex.render_fig03(ex.fig03_motivation(scale)),
    "fig10": lambda scale, w: ex.render_fig10(
        ex.fig10_speedups(scale, workloads=w or ex.FIG10_WORKLOADS)),
    "fig11": lambda scale, w: ex.render_fig11(
        ex.fig11_breakdown(scale, workloads=w or ex.FIG10_WORKLOADS)),
    "fig12": lambda scale, w: ex.render_fig12(ex.fig12_roofline(scale)),
    "fig13": lambda scale, w: ex.render_fig13(
        ex.fig13_read_to_write(scale, workloads=w or ex.FIG10_WORKLOADS)),
    "fig14": lambda scale, w: ex.render_fig14(
        ex.fig14_sensitivity(scale,
                             workloads=w or ("spmv", "spmspm"))),
    "fig15": lambda scale, w: ex.render_fig15(
        ex.fig15_state_of_the_art(scale)),
    "table5": lambda scale, w: ex.render_table5(
        ex.table5_parameters(scale)),
    "table6": lambda scale, w: ex.render_table6(ex.table6_inputs(scale)),
    "area": lambda scale, w: ex.render_area(ex.area_results()),
}

_CACHE_COMMANDS = ("cache-gc", "cache-clear")


def _pipe_safe(fn):
    """Exit cleanly when stdout's pipe closes mid-print (``| head``):
    the reader got everything it asked for, which is success."""
    @functools.wraps(fn)
    def wrapped(argv):
        try:
            return fn(argv)
        except BrokenPipeError:
            sys.stderr.close()  # suppress the interpreter's epilogue
            return 0
    return wrapped


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tmu-repro",
        description=(
            "Regenerate the tables and figures of 'A Tensor Marshaling "
            "Unit for Sparse Tensor Algebra on General-Purpose "
            "Processors' (MICRO 2023)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"] + list(_CACHE_COMMANDS),
        help="which artifact to regenerate (or a cache maintenance "
             "action: cache-gc reclaims entries from older code "
             "versions, cache-clear drops everything)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("small", "medium", "paper"),
        help="input/cache scale preset (default: small)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write each artifact to DIR/<name>.txt",
    )
    parser.add_argument(
        "--jobs", "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulation cells (default: 1, "
             "serial in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=runtime.DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="content-addressed result cache location (default: "
             f"{runtime.DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    parser.add_argument(
        "--walk-cache",
        default="auto",
        metavar="DIR|off",
        help="persistent hierarchy walk cache: 'auto' (default) keeps "
             "it at <cache-dir>/walks, a path pins it elsewhere, 'off' "
             "disables it; the REPRO_WALK_CACHE env var overrides",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        type=int,
        const=25,
        default=None,
        metavar="N",
        help="wrap the run in cProfile and print the top N functions "
             "by cumulative time to stderr (default N: 25)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        metavar="W1,W2",
        help="comma-separated workload filter for fig10/fig11/fig13/"
             "fig14 (e.g. spmv,spkadd)",
    )
    cache_model = parser.add_mutually_exclusive_group()
    cache_model.add_argument(
        "--fast",
        dest="cache_model",
        action="store_const",
        const="fast",
        default="fast",
        help="simulate with the vectorized cache model and the "
             "structure-of-arrays TMU lane engine (default)",
    )
    cache_model.add_argument(
        "--reference",
        dest="cache_model",
        action="store_const",
        const="reference",
        help="simulate with the golden-reference models (slow; "
             "bit-for-bit equivalent to --fast: same cache hit masks, "
             "same outQ records and RunStats).  The choice is part of "
             "each cell's content hash, so cached results from the two "
             "model families never collide",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="per-cell timeout in seconds (enforced in --jobs>1 mode)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="retry budget per failed cell (default: 1)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the run manifest to PATH (default: "
             "<cache-dir>/manifests/run-<timestamp>.json when caching "
             "is enabled)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="enable the repro.obs telemetry layer for this run and "
             "write a perf snapshot (JSON) to PATH; inspect it with "
             "'tmu-repro stats'",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="trace.json",
        default=None,
        metavar="PATH",
        help="enable event tracing for this run and write a "
             "repro.trace timeline (JSON) to PATH (default: "
             "trace.json); consume it with 'tmu-repro trace'",
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=65536,
        metavar="N",
        help="trace ring-buffer capacity in events; the oldest "
             "fine-grained events are dropped beyond it (default: "
             "65536)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="keep every Nth instant/counter trace event (spans are "
             "always kept; default: 1 = everything)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="auto-ingest this run (manifests, and the --telemetry "
             "snapshot / --trace timeline when recorded) into the "
             "experiment database at DB; analyze it with "
             "'tmu-repro query'",
    )
    return parser


# ------------------------------------------------------------------- trace

def _build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tmu-repro trace",
        description="Record, export and analyze repro.trace event "
                    "timelines.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    record = sub.add_parser(
        "record",
        help="run an experiment with tracing enabled (shorthand for "
             "'<experiment> --trace PATH --no-cache'; the cache is "
             "bypassed so every cell is actually simulated)")
    record.add_argument("experiment", choices=sorted(_COMMANDS),
                        help="experiment to trace")
    record.add_argument("--out", default="trace.json", metavar="PATH",
                        help="trace output path (default: trace.json)")
    record.add_argument("--scale", default="small",
                        choices=("small", "medium", "paper"))
    record.add_argument("--workloads", default=None, metavar="W1,W2",
                        help="comma-separated workload filter")
    record.add_argument("--jobs", "-j", type=int, default=1, metavar="N")
    record.add_argument("--sample", type=int, default=1, metavar="N",
                        help="keep every Nth instant/counter event")
    record.add_argument("--capacity", type=int, default=65536,
                        metavar="N", help="ring-buffer capacity")
    record.add_argument("--reference", action="store_true",
                        help="trace the golden-reference cache model "
                             "instead of the vectorized one")

    export = sub.add_parser(
        "export", help="validate a trace and export Perfetto-loadable "
                       "JSON (open it at https://ui.perfetto.dev)")
    export.add_argument("trace", help="repro.trace JSON file")
    export.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: "
                             "<trace>.perfetto.json)")

    report = sub.add_parser(
        "report", help="fold a trace into the per-component "
                       "stall/cycle decomposition")
    report.add_argument("trace", help="repro.trace JSON file")
    return parser


def _trace_main(argv: list[str]) -> int:
    args = _build_trace_parser().parse_args(argv)
    try:
        if args.action == "record":
            forwarded = [args.experiment, "--scale", args.scale,
                         "--jobs", str(args.jobs), "--no-cache",
                         "--trace", args.out,
                         "--trace-sample", str(args.sample),
                         "--trace-capacity", str(args.capacity)]
            if args.workloads:
                forwarded += ["--workloads", args.workloads]
            if args.reference:
                forwarded.append("--reference")
            return main(forwarded)
        trace = obs.load_trace(args.trace)
        if args.action == "export":
            out = args.out
            if out is None:
                out = str(Path(args.trace).with_suffix("")) + (
                    ".perfetto.json")
            path = obs.write_perfetto(trace, out)
            print(f"perfetto export: {path} "
                  f"({len(trace['events'])} events)")
            return 0
        print(obs.stall_report(trace))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        sys.stderr.close()
        return 0


# ------------------------------------------------------------------- stats

def _build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tmu-repro stats",
        description="Dump, diff and regression-gate repro.obs perf "
                    "snapshots.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    dump = sub.add_parser(
        "dump", help="validate a snapshot and print its metrics")
    dump.add_argument("snapshot", help="snapshot JSON file")
    dump.add_argument("--json", action="store_true",
                      help="re-emit the validated snapshot as JSON")

    diff = sub.add_parser(
        "diff", help="compare two snapshots metric by metric "
                     "(A = baseline, B = run)")
    diff.add_argument("baseline", help="baseline snapshot JSON file")
    diff.add_argument("run", help="run snapshot JSON file")
    diff.add_argument("--changed-only", action="store_true",
                      help="hide metrics with a zero delta")
    diff.add_argument(
        "--metric",
        default="runtime.executor.cells_per_sec",
        metavar="NAME",
        help="headline metric for --max-regression (default: "
             "runtime.executor.cells_per_sec)",
    )
    diff.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="FRAC",
        help="exit non-zero if the run's --metric regressed vs the "
             "baseline by more than FRAC (e.g. 0.2 = 20%%)",
    )
    diff.add_argument(
        "--lower-is-better",
        action="store_true",
        help="treat increases of --metric as regressions (cycle or "
             "byte counts rather than rates)",
    )
    return parser


def _stats_main(argv: list[str]) -> int:
    args = _build_stats_parser().parse_args(argv)
    try:
        if args.action == "dump":
            snap = obs.load_snapshot(args.snapshot)
            if args.json:
                print(json.dumps(snap, indent=2, sort_keys=True))
            else:
                print(obs.render_snapshot(snap))
            return 0
        baseline = obs.load_snapshot(args.baseline)
        run = obs.load_snapshot(args.run)
        print(obs.render_diff(obs.diff_snapshots(baseline, run),
                              changed_only=args.changed_only))
        if args.max_regression is not None:
            ok, message = obs.check_regression(
                run, baseline,
                metric=args.metric,
                max_regression=args.max_regression,
                higher_is_better=not args.lower_is_better,
            )
            print(message)
            if not ok:
                return 1
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `stats dump ... | head`);
        # suppress the traceback and exit quietly like a good filter.
        sys.stderr.close()
        return 0


# ------------------------------------------------------------------- store

def _build_ingest_parser() -> argparse.ArgumentParser:
    from .store import DEFAULT_STORE_PATH

    parser = argparse.ArgumentParser(
        prog="tmu-repro ingest",
        description="Ingest result files into the experiment database: "
                    "run manifests, repro.obs snapshots (including "
                    "BENCH_<rev>.json trajectory points), serve-job "
                    "journals and repro.trace timelines.  Directories "
                    "are walked for *.json; ingest is idempotent "
                    "(content-addressed run keys).",
    )
    parser.add_argument("paths", nargs="+", metavar="PATH",
                        help="result files or directories (e.g. "
                             "BENCH_*.json, .repro-cache/manifests, "
                             ".repro-serve/jobs)")
    parser.add_argument("--store", default=DEFAULT_STORE_PATH,
                        metavar="DB",
                        help="experiment database (default: "
                             f"{DEFAULT_STORE_PATH})")
    parser.add_argument("--rev", default=None, metavar="REV",
                        help="file sources missing a rev under this "
                             "label (default: whatever the file "
                             "carries)")
    return parser


def _build_query_parser() -> argparse.ArgumentParser:
    from .store import DEFAULT_STORE_PATH, FORMATS, HEADLINE_METRIC

    parser = argparse.ArgumentParser(
        prog="tmu-repro query",
        description="Cross-run analytics over the experiment database "
                    "(see 'tmu-repro ingest').",
    )
    parser.add_argument("--store", default=DEFAULT_STORE_PATH,
                        metavar="DB",
                        help="experiment database (default: "
                             f"{DEFAULT_STORE_PATH})")
    parser.add_argument("--format", default="table", choices=FORMATS,
                        help="output rendering (default: table)")
    # the same flags are accepted after the subcommand too
    # (SUPPRESS keeps the subparser from clobbering the defaults above)
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--store", default=argparse.SUPPRESS,
                        metavar="DB", help=argparse.SUPPRESS)
    common.add_argument("--format", default=argparse.SUPPRESS,
                        choices=FORMATS, help=argparse.SUPPRESS)
    sub = parser.add_subparsers(dest="action", required=True)

    sub.add_parser("runs", parents=[common],
                   help="every ingested run with its "
                        "aggregate stats, oldest first")

    cps = sub.add_parser(
        "cells-per-sec", parents=[common],
        help="the headline throughput metric across history")
    cps.add_argument("--by", default="rev", choices=("rev", "run"),
                     help="group by git rev or list every run "
                          "(default: rev)")

    metric = sub.add_parser(
        "metric", parents=[common],
        help="any snapshot metric across history")
    metric.add_argument("name", help="dotted metric name (e.g. "
                                     "sim.core.mlp)")
    metric.add_argument("--by", default="rev", choices=("rev", "run"))

    cells = sub.add_parser(
        "cells", parents=[common],
        help="per-workload cell outcome aggregates")
    cells.add_argument("--workload", default=None, metavar="W",
                       help="restrict to one workload")

    stalls = sub.add_parser(
        "stalls", parents=[common],
        help="TMU merge-stall shares from ingested traces")
    stalls.add_argument("--by", default="layer",
                        choices=("layer", "rev", "workload"),
                        help="group by TG layer, git rev, or the "
                             "trace's workload filter (default: "
                             "layer)")

    reg = sub.add_parser(
        "regressions", parents=[common],
        help="gate every run's headline metric against a baseline "
             "run; exits 1 when the latest run regressed beyond "
             "--bound (the store-smoke CI gate)")
    reg.add_argument("--metric", default=HEADLINE_METRIC, metavar="NAME",
                     help=f"metric to gate on (default: "
                          f"{HEADLINE_METRIC})")
    reg.add_argument("--baseline", default=None, metavar="REV",
                     help="baseline rev ('best' picks the best run; "
                          "default: the oldest run)")
    reg.add_argument("--bound", type=float, default=0.2, metavar="FRAC",
                     help="tolerated regression fraction "
                          "(default: 0.2 = 20%%)")
    reg.add_argument("--lower-is-better", action="store_true",
                     help="treat increases as regressions (cycle or "
                          "byte counts rather than rates)")
    return parser


@_pipe_safe
def _ingest_main(argv: list[str]) -> int:
    from . import store as st

    args = _build_ingest_parser().parse_args(argv)
    try:
        with st.ExperimentStore(args.store) as db:
            results = st.ingest_paths(db, args.paths, rev=args.rev)
            counts = db.counts()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    created = sum(1 for r in results if r["created"])
    by_kind: dict[str, int] = {}
    for r in results:
        by_kind[r["kind"]] = by_kind.get(r["kind"], 0) + 1
    kinds = ", ".join(f"{n} {kind}" for kind, n in sorted(by_kind.items()))
    print(f"ingest: {len(results)} sources ({created} new, "
          f"{len(results) - created} already ingested"
          + (f"; {kinds}" if kinds else "") + ")")
    print(f"store: {args.store} — {counts['runs']} runs, "
          f"{counts['cells']} cells, {counts['metrics']} metrics, "
          f"{counts['trace_summaries']} trace summaries")
    return 0


def _query_main(argv: list[str]) -> int:
    from . import store as st

    args = _build_query_parser().parse_args(argv)
    gate_ok = True
    try:
        with st.ExperimentStore(args.store) as db:
            if args.action == "runs":
                rows, columns = st.runs_overview(db)
            elif args.action == "cells-per-sec":
                rows, columns = st.cells_per_sec(db, by=args.by)
            elif args.action == "metric":
                rows, columns = st.metric_history(db, args.name,
                                                  by=args.by)
            elif args.action == "cells":
                rows, columns = st.cell_outcomes(db, args.workload)
            elif args.action == "stalls":
                rows, columns = st.stall_shares(db, by=args.by)
            else:  # regressions
                rows, columns, gate_ok = st.regressions(
                    db, metric=args.metric, baseline=args.baseline,
                    bound=args.bound,
                    lower_is_better=args.lower_is_better)
            print(st.render_rows(rows, columns, args.format))
            if args.action == "regressions" and args.format == "table":
                latest = rows[-1]
                if latest["status"] == "baseline":
                    print(f"ok {args.metric}: latest run is the "
                          f"baseline, nothing to gate")
                elif latest["change"] is None:
                    print(f"ok {args.metric}: baseline is 0, "
                          f"nothing to gate")
                else:
                    verdict = "ok" if gate_ok else "REGRESSION"
                    print(f"{verdict} {args.metric}: "
                          f"latest={_fmt_cli(latest['value'])} "
                          f"change={latest['change']:+.1%} vs baseline "
                          f"(limit -{args.bound:.0%})")
        return 0 if gate_ok else 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        sys.stderr.close()
        return 0


def _fmt_cli(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(value)


# ------------------------------------------------------------------ report

def _build_report_parser() -> argparse.ArgumentParser:
    from .store import DEFAULT_STORE_PATH as default_store

    parser = argparse.ArgumentParser(
        prog="tmu-repro report",
        description="Render the experiment database as a self-"
                    "contained HTML flight recorder (inline SVG "
                    "charts, no external assets).",
    )
    parser.add_argument("--store", default=default_store, metavar="DB",
                        help="experiment database to render "
                             f"(default: {default_store})")
    parser.add_argument("--out", default="report.html", metavar="PATH",
                        help="output HTML file (default: report.html)")
    parser.add_argument("--title", default="repro flight recorder",
                        metavar="TITLE", help="page title")
    return parser


@_pipe_safe
def _report_main(argv: list[str]) -> int:
    from .obs.report import write_report
    from .store import ExperimentStore

    args = _build_report_parser().parse_args(argv)
    if not Path(args.store).exists():
        # opening would silently create an empty database; a report
        # over nothing is a typo'd path, not a request
        print(f"error: no experiment database at {args.store}",
              file=sys.stderr)
        return 2
    try:
        with ExperimentStore(args.store) as db:
            runs = db.counts()["runs"]
            path = write_report(db, args.out, title=args.title)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"report: {path} ({runs} runs from {args.store})")
    return 0


# ------------------------------------------------------------------- serve

def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tmu-repro serve",
        description="Run the simulation job service: accepts sweep "
                    "submissions over HTTP, executes them through the "
                    "experiment runtime, serves results by content "
                    "hash.",
    )
    from .serve import DEFAULT_HOST, DEFAULT_PORT, DEFAULT_STATE_DIR

    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default: {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port, 0 for ephemeral (default: "
                             f"{DEFAULT_PORT})")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port to PATH once "
                             "listening (handy with --port 0)")
    parser.add_argument("--state-dir", default=DEFAULT_STATE_DIR,
                        metavar="DIR",
                        help="job journal location (default: "
                             f"{DEFAULT_STATE_DIR})")
    parser.add_argument("--cache-dir", default=runtime.DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="content-addressed result cache (default: "
                             f"{runtime.DEFAULT_CACHE_DIR})")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        metavar="N",
                        help="worker processes per executor batch "
                             "(default: 1)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="concurrent jobs (scheduler worker "
                             "threads; default: 1)")
    parser.add_argument("--quota", type=int, default=8, metavar="N",
                        help="max active jobs per client (default: 8)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SEC", help="per-cell timeout")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="retry budget per failed cell "
                             "(default: 1)")
    parser.add_argument("--batch-size", type=int, default=None,
                        metavar="N",
                        help="cells per executor batch (cancel/"
                             "journal granularity; default: 8)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="skip the repro.obs service gauges")
    parser.add_argument("--store", default=None, metavar="DB",
                        help="auto-ingest every finished job's journal "
                             "into the experiment database at DB")
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="structured JSON log level on stderr "
                             "(default: info)")
    return parser


def _build_submit_parser() -> argparse.ArgumentParser:
    from .serve import DEFAULT_URL

    parser = argparse.ArgumentParser(
        prog="tmu-repro submit",
        description="Submit a declarative sweep to a running "
                    "simulation service.",
    )
    parser.add_argument("--url", default=DEFAULT_URL,
                        help=f"service URL (default: {DEFAULT_URL})")
    parser.add_argument("--workloads", required=True, metavar="W1,W2",
                        help="comma-separated workloads to sweep")
    parser.add_argument("--inputs", default=None, metavar="I1,I2",
                        help="comma-separated inputs (default: each "
                             "workload's full suite)")
    parser.add_argument("--scale", default="small",
                        choices=("small", "medium", "paper"))
    parser.add_argument("--variants", default="baseline,tmu",
                        metavar="V1,V2",
                        help="system variants per cell (default: "
                             "baseline,tmu)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--client", default="cli",
                        help="client id for quota accounting "
                             "(default: cli)")
    parser.add_argument("--priority", type=int, default=0,
                        help="higher runs sooner (default: 0)")
    parser.add_argument("--wait", action="store_true",
                        help="poll until the job finishes, printing "
                             "progress events")
    parser.add_argument("--json", action="store_true",
                        help="print the raw job record as JSON")
    return parser


def _build_fetch_parser() -> argparse.ArgumentParser:
    from .serve import DEFAULT_URL

    parser = argparse.ArgumentParser(
        prog="tmu-repro fetch",
        description="Fetch a service job's result records (waits for "
                    "completion with --wait).",
    )
    parser.add_argument("job", help="job id (from 'repro submit')")
    parser.add_argument("--url", default=DEFAULT_URL)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the result JSON to PATH instead "
                             "of stdout")
    parser.add_argument("--wait", action="store_true",
                        help="poll until the job reaches a terminal "
                             "state first")
    return parser


def _build_jobs_parser() -> argparse.ArgumentParser:
    from .serve import DEFAULT_URL

    parser = argparse.ArgumentParser(
        prog="tmu-repro jobs",
        description="List the jobs of a running simulation service.",
    )
    parser.add_argument("--url", default=DEFAULT_URL)
    parser.add_argument("--json", action="store_true",
                        help="print raw job records as JSON")
    return parser


def _serve_main(argv: list[str]) -> int:
    import logging as pylog

    from .serve import SimService, make_server

    args = _build_serve_parser().parse_args(argv)
    # the service logs structured JSON to stderr — one object per
    # line, every record carrying its correlation context.
    obs.configure_logging(level=args.log_level)
    log = obs.get_logger("serve")
    try:
        service = SimService(
            state_dir=args.state_dir, cache_dir=args.cache_dir,
            jobs=args.jobs, workers=args.workers, quota=args.quota,
            timeout=args.timeout, retries=args.retries,
            batch_size=args.batch_size,
            telemetry=not args.no_telemetry,
            store_path=args.store)
        recovered = service.start()
        server = make_server(service, host=args.host, port=args.port)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    port = server.server_address[1]
    if args.port_file:
        Path(args.port_file).write_text(str(port), encoding="utf-8")
    obs.log_event(log, pylog.INFO, "listening",
                  url=f"http://{args.host}:{port}",
                  state_dir=str(args.state_dir),
                  cache_dir=str(args.cache_dir),
                  workers=args.workers, jobs=args.jobs,
                  recovered=recovered)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        obs.log_event(log, pylog.INFO, "shutting down")
    finally:
        server.shutdown()
        service.stop()
    return 0


@_pipe_safe
def _submit_main(argv: list[str]) -> int:
    from .serve import ServeClient, make_sweep

    args = _build_submit_parser().parse_args(argv)

    def split(s: str) -> tuple[str, ...]:
        return tuple(x.strip() for x in s.split(",") if x.strip())

    sweep = make_sweep(
        workloads=split(args.workloads),
        inputs=split(args.inputs) if args.inputs else None,
        scale=args.scale, variants=split(args.variants),
        seed=args.seed)
    client = ServeClient(args.url)
    try:
        job = client.submit(sweep, client=args.client,
                            priority=args.priority)
        created = job.get("_created", True)
        if args.wait:
            job = client.wait(
                job["id"],
                on_event=lambda e: print(
                    e.get("message", e["event"]), file=sys.stderr))
            job["_created"] = created
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        print(f"job {job['id']}")
        print(f"  state: {job['state']}"
              + ("" if job.get("_created", True) else
                 " (deduplicated onto an existing job)"))
        print(f"  cells: {job['total']} "
              f"(completed {job['completed']}, cached {job['cached']}, "
              f"simulated {job['simulated']}, failed {job['failed']})")
    return 0 if job["state"] in ("pending", "running", "done") else 1


@_pipe_safe
def _jobs_main(argv: list[str]) -> int:
    args = _build_jobs_parser().parse_args(argv)
    from .serve import ServeClient

    try:
        jobs = ServeClient(args.url).jobs()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    print(f"{'job':12}  {'state':9}  {'client':10}  "
          f"{'cells':>5}  {'done':>4}  {'cached':>6}  workloads")
    for job in jobs:
        print(f"{job['id'][:12]}  {job['state']:9}  "
              f"{job['client'][:10]:10}  {job['total']:>5}  "
              f"{job['completed']:>4}  {job['cached']:>6}  "
              f"{','.join(job['sweep'].get('workloads', []))}")
    return 0


@_pipe_safe
def _fetch_main(argv: list[str]) -> int:
    args = _build_fetch_parser().parse_args(argv)
    from .serve import ServeClient

    client = ServeClient(args.url)
    try:
        if args.wait:
            client.wait(args.job)
        result = client.result(args.job)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rendered = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"results: {args.out} ({len(result['records'])} records, "
              f"{result['missing']} missing)", file=sys.stderr)
    else:
        print(rendered)
    return 0 if result["job"]["state"] == "done" else 1


_SERVICE_COMMANDS = {
    "serve": _serve_main,
    "submit": _submit_main,
    "jobs": _jobs_main,
    "fetch": _fetch_main,
}


def _combined_manifest(rt: runtime.Runtime) -> RunManifest | None:
    """Merge the manifests of every executor batch this invocation ran
    into one provenance record."""
    if not rt.manifests:
        return None
    combined = RunManifest(
        jobs=rt.jobs,
        mode=rt.manifests[-1].mode,
        created_at=rt.manifests[0].created_at,
        wall_time=sum(m.wall_time for m in rt.manifests),
        entries=[e for m in rt.manifests for e in m.entries],
        rev=rt.manifests[0].rev,
    )
    return combined


def _run_cache_command(action: str, args) -> int:
    if args.no_cache:
        print("cache maintenance requires the cache; drop --no-cache",
              file=sys.stderr)
        return 2
    cache = runtime.ResultCache(Path(args.cache_dir))
    if action == "cache-gc":
        removed = cache.gc()
        print(f"cache-gc: reclaimed {removed} stale entries from "
              f"{cache.root} ({len(cache)} live)")
    else:
        removed = cache.invalidate()
        print(f"cache-clear: removed {removed} entries from {cache.root}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "ingest":
        return _ingest_main(argv[1:])
    if argv and argv[0] == "query":
        return _query_main(argv[1:])
    if argv and argv[0] == "report":
        return _report_main(argv[1:])
    if argv and argv[0] in _SERVICE_COMMANDS:
        return _SERVICE_COMMANDS[argv[0]](argv[1:])
    args = _build_parser().parse_args(argv)

    if args.experiment in _CACHE_COMMANDS:
        return _run_cache_command(args.experiment, args)

    if args.telemetry is not None:
        obs.enable()
    if args.trace is not None:
        try:
            obs.enable_tracing(capacity=args.trace_capacity,
                               sample_every=args.trace_sample)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    workloads = None
    if args.workloads:
        workloads = tuple(w.strip() for w in args.workloads.split(",")
                          if w.strip())

    try:
        rt = runtime.configure(
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            timeout=args.timeout,
            retries=args.retries,
            progress=lambda msg: print(msg, file=sys.stderr),
            store=args.store,
            walk_cache=args.walk_cache,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out_dir = None
    if args.output is not None:
        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)

    names = sorted(_COMMANDS) if args.experiment == "all" else [
        args.experiment]
    # Model selection (cache model + TMU engine) applies to every
    # machine the drivers build; restored afterwards so embedded callers
    # (tests, notebooks) see the default again.
    set_default_fast(args.cache_model != "reference")
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for name in names:
            rendered = _COMMANDS[name](args.scale, workloads)
            print(rendered)
            print()
            if out_dir is not None:
                (out_dir / f"{name}.txt").write_text(rendered + "\n",
                                                     encoding="utf-8")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        obs.disable()
        obs.disable_tracing()
        return 1
    except BrokenPipeError:
        sys.stderr.close()
        obs.disable()
        obs.disable_tracing()
        return 0
    finally:
        set_default_fast(True)
        if profiler is not None:
            import io
            import pstats

            profiler.disable()
            buf = io.StringIO()
            stats = pstats.Stats(profiler, stream=buf)
            stats.sort_stats("cumulative").print_stats(args.profile)
            print(buf.getvalue(), file=sys.stderr)

    snap = trace = None
    if args.telemetry is not None:
        snap = obs.snapshot(meta={
            "experiments": ",".join(names),
            "scale": args.scale,
            "jobs": args.jobs,
            "workloads": args.workloads or "all",
            "cache_model": args.cache_model,
        })
        path = obs.write_snapshot(snap, args.telemetry)
        obs.disable()
        print(f"telemetry snapshot: {path}", file=sys.stderr)

    if args.trace is not None:
        trace = obs.trace_snapshot(meta={
            "experiments": ",".join(names),
            "scale": args.scale,
            "jobs": args.jobs,
            "workloads": args.workloads or "all",
        })
        obs.disable_tracing()
        path = obs.write_trace(trace, args.trace)
        print(f"trace: {path} ({len(trace['events'])} events, "
              f"{trace['ticks']} ticks, {trace['dropped']} dropped)",
              file=sys.stderr)

    if args.store is not None and (snap is not None
                                   or trace is not None):
        # manifests were auto-ingested per batch by the runtime; the
        # snapshot and trace ride in alongside them under the same rev.
        from .runtime.manifest import manifest_rev
        from .store import ExperimentStore, ingest_snapshot, ingest_trace

        try:
            with ExperimentStore(args.store) as db:
                if snap is not None:
                    ingest_snapshot(db, snap, source=args.telemetry)
                if trace is not None:
                    ingest_trace(db, trace, source=args.trace,
                                 rev=manifest_rev())
            print(f"store: ingested run into {args.store}",
                  file=sys.stderr)
        except ReproError as exc:
            print(f"store ingest failed: {exc}", file=sys.stderr)

    manifest = _combined_manifest(rt)
    if manifest is not None:
        print(manifest.summary(), file=sys.stderr)
        manifest_path = args.manifest
        if manifest_path is None and not args.no_cache:
            # millisecond stamp + pid so back-to-back invocations never
            # overwrite each other's provenance
            manifest_path = (
                Path(args.cache_dir) / "manifests" /
                f"run-{int(time.time() * 1000)}-{os.getpid()}.json")
        if manifest_path is not None:
            path = manifest.write(manifest_path)
            print(f"manifest: {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
