"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro fig10 [--scale small|medium|paper]
    python -m repro all --scale small
    tmu-repro table6
"""

from __future__ import annotations

import argparse
import sys

from .eval import experiments as ex

_COMMANDS = {
    "fig03": lambda scale: ex.render_fig03(ex.fig03_motivation(scale)),
    "fig10": lambda scale: ex.render_fig10(ex.fig10_speedups(scale)),
    "fig11": lambda scale: ex.render_fig11(ex.fig11_breakdown(scale)),
    "fig12": lambda scale: ex.render_fig12(ex.fig12_roofline(scale)),
    "fig13": lambda scale: ex.render_fig13(
        ex.fig13_read_to_write(scale)),
    "fig14": lambda scale: ex.render_fig14(ex.fig14_sensitivity(scale)),
    "fig15": lambda scale: ex.render_fig15(
        ex.fig15_state_of_the_art(scale)),
    "table5": lambda scale: ex.render_table5(
        ex.table5_parameters(scale)),
    "table6": lambda scale: ex.render_table6(ex.table6_inputs(scale)),
    "area": lambda scale: ex.render_area(ex.area_results()),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tmu-repro",
        description=(
            "Regenerate the tables and figures of 'A Tensor Marshaling "
            "Unit for Sparse Tensor Algebra on General-Purpose "
            "Processors' (MICRO 2023)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("small", "medium", "paper"),
        help="input/cache scale preset (default: small)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write each artifact to DIR/<name>.txt",
    )
    args = parser.parse_args(argv)

    out_dir = None
    if args.output is not None:
        from pathlib import Path

        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)

    names = sorted(_COMMANDS) if args.experiment == "all" else [
        args.experiment]
    for name in names:
        rendered = _COMMANDS[name](args.scale)
        print(rendered)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(rendered + "\n",
                                                 encoding="utf-8")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
