"""Reproduction of "A Tensor Marshaling Unit for Sparse Tensor Algebra
on General-Purpose Processors" (MICRO 2023).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.formats`    -- COO/CSR/DCSR/CSF + the level abstraction
* :mod:`repro.fibers`     -- fiber traversal and merging
* :mod:`repro.generators` -- the synthetic input suite (Table 6)
* :mod:`repro.kernels`    -- software baseline kernels
* :mod:`repro.tmu`        -- the TMU functional model (the contribution)
* :mod:`repro.programs`   -- Table 4 kernel-to-TMU mappings
* :mod:`repro.sim`        -- the multicore timing model
* :mod:`repro.eval`       -- experiment drivers for every table/figure
"""

from .config import (
    MachineConfig,
    TMUConfig,
    a64fx_like,
    default_machine,
    experiment_machine,
    graviton3_like,
)
from .errors import (
    FiberError,
    FormatError,
    ReproError,
    SimulationError,
    TMUConfigError,
    TMURuntimeError,
    WorkloadError,
)
from .formats import CooMatrix, CooTensor, CsfTensor, CsrMatrix, DcsrMatrix
from .tmu import Event, LayerMode, Program, TmuEngine

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "TMUConfig",
    "default_machine",
    "experiment_machine",
    "a64fx_like",
    "graviton3_like",
    "ReproError",
    "FormatError",
    "FiberError",
    "TMUConfigError",
    "TMURuntimeError",
    "SimulationError",
    "WorkloadError",
    "CooMatrix",
    "CooTensor",
    "CsrMatrix",
    "DcsrMatrix",
    "CsfTensor",
    "Program",
    "TmuEngine",
    "Event",
    "LayerMode",
    "__version__",
]
