"""The TMU memory arbiter (paper Section 5.4).

The TMU issues memory requests at cache-line granularity.  Each cycle
it picks the next line to request with a fixed hierarchy: leftmost
layers (outer loops) first, TUs within a layer round-robin, streams
within a TU in configuration order, requests within a stream in order.

The functional model records every element *touch* and coalesces
consecutive same-line touches per stream into line *requests* — exactly
what the sequential queues of the hardware produce.  The ordered
request streams are exported as :class:`repro.sim.trace.AccessStream`
objects so the timing model can replay them against the LLC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import TMUConfigError
from ..sim.trace import AccessStream
from .streams import Stream
from .tu import TraversalUnit

LINE_BYTES = 64


@dataclass
class StreamRequestLog:
    """Per-stream request bookkeeping."""

    layer: int
    lane: int
    config_order: int
    label: str
    touches: int = 0
    last_line: int = -1
    lines: list[int] = field(default_factory=list)

    def record(self, address: int) -> bool:
        """Log one element touch; True when it opened a new line
        request (an arbiter grant)."""
        self.touches += 1
        line = address // LINE_BYTES
        if line != self.last_line:
            self.lines.append(line)
            self.last_line = line
            return True
        return False

    def record_batch(self, addresses: list[int]) -> None:
        """Log a fiber's worth of touches at once.

        Equivalent to calling :meth:`record` per address (consecutive
        same-line dedup included) — only the bookkeeping is vectorized;
        per-stream touch order, the sole ordering the request streams
        depend on, is preserved."""
        n = len(addresses)
        if n == 0:
            return
        self.touches += n
        if n >= 32:
            lines = np.asarray(addresses, dtype=np.int64) // LINE_BYTES
            keep = np.empty(n, dtype=bool)
            keep[0] = lines[0] != self.last_line
            np.not_equal(lines[1:], lines[:-1], out=keep[1:])
            kept = lines[keep]
            if kept.size:
                self.lines.extend(kept.tolist())
                self.last_line = int(kept[-1])
            return
        last = self.last_line
        lines_out = self.lines
        for address in addresses:
            line = address // LINE_BYTES
            if line != last:
                lines_out.append(line)
                last = line
        self.last_line = last


class MemoryArbiter:
    """Collects and orders the TMU's memory requests."""

    def __init__(self) -> None:
        self._logs: dict[Stream, StreamRequestLog] = {}
        self._observed: dict[str, int] = {}  # telemetry deltas
        self.tracer = None  # set by the engine while tracing is on

    def register(self, tu: TraversalUnit, stream: Stream) -> None:
        if stream in self._logs:
            raise TMUConfigError(f"stream {stream.name} registered twice")
        self._logs[stream] = StreamRequestLog(
            layer=tu.layer,
            lane=tu.lane,
            config_order=stream.index_in_tu,
            label=stream.name,
        )

    def record_touch(self, tu: TraversalUnit, stream: Stream,
                     address: int) -> None:
        log = self._logs.get(stream)
        if log is None:
            self.register(tu, stream)
            log = self._logs[stream]
        granted = log.record(address)
        if granted and self.tracer is not None:
            self.tracer.instant("tmu.arbiter", "grant", args={
                "stream": log.label,
                "layer": log.layer,
                "lane": log.lane,
            })

    def record_touches(self, tu: TraversalUnit, stream: Stream,
                       addresses: list[int]) -> None:
        """Batched :meth:`record_touch`: one fiber's addresses for one
        stream.  Used on the untraced fast path (per-grant trace
        instants need the per-touch entry point)."""
        log = self._logs.get(stream)
        if log is None:
            self.register(tu, stream)
            log = self._logs[stream]
        log.record_batch(addresses)

    # -- reporting ----------------------------------------------------

    def priority_order(self) -> list[StreamRequestLog]:
        """Logs sorted by the arbiter's selection hierarchy."""
        return sorted(
            self._logs.values(),
            key=lambda log: (log.layer, log.lane, log.config_order),
        )

    @property
    def total_touches(self) -> int:
        return sum(log.touches for log in self._logs.values())

    @property
    def total_line_requests(self) -> int:
        return sum(len(log.lines) for log in self._logs.values())

    def total_bytes(self) -> int:
        return self.total_line_requests * LINE_BYTES

    def access_streams(self) -> list[AccessStream]:
        """Export ordered line-request streams for the timing model,
        in arbiter priority order."""
        streams = []
        for log in self.priority_order():
            streams.append(AccessStream(
                addresses=np.asarray(log.lines, dtype=np.int64) * LINE_BYTES,
                elem_bytes=LINE_BYTES,
                kind="read",
                label=log.label,
            ))
        return streams

    def per_layer_lines(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for log in self._logs.values():
            out[log.layer] = out.get(log.layer, 0) + len(log.lines)
        return out

    def grant_distribution(self) -> list[tuple[str, int]]:
        """(stream label, line requests granted) in priority order —
        how the fixed-hierarchy arbiter divided the request bandwidth."""
        return [(log.label, len(log.lines))
                for log in self.priority_order()]

    def observe(self, view) -> None:
        """Publish request totals and the per-(layer, lane) grant
        distribution into a telemetry registry view."""
        from ..obs import add_deltas

        totals = {
            "touches": self.total_touches,
            "lines": self.total_line_requests,
            "bytes": self.total_bytes(),
        }
        for log in self.priority_order():
            key = f"layer{log.layer}.lane{log.lane}.lines"
            totals[key] = totals.get(key, 0) + len(log.lines)
        add_deltas(view, totals, self._observed)
        view.gauge("streams").set(len(self._logs))
