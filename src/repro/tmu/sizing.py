"""TU queue sizing (paper Section 5.5).

All TUs of a lane share that lane's storage (2 KB in the evaluated
configuration); queues are allocated at configuration time with an
analytical model that gives each layer space proportional to the data
volume it will load — rightmost layers traverse more elements than
leftmost ones, so they get deeper queues.

The volume estimate comes from the program's per-layer element hints
(e.g. ``num_rows`` for an outer dense layer, ``nnz`` for an inner
compressed layer), which the paper derives "from the number of nnzs per
fiber of the tensor".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TMUConfigError

#: bytes one queue entry occupies (an 8-byte element)
ENTRY_BYTES = 8
#: minimum depth for any allocated queue (double buffering floor)
MIN_ENTRIES = 2


@dataclass(frozen=True)
class QueueSizing:
    """Result of the allocation: queue depth per layer (identical for
    every lane and every stream of a layer, Section 5.5)."""

    entries_per_layer: tuple[int, ...]
    per_lane_bytes_used: int
    per_lane_bytes_available: int

    @property
    def utilization(self) -> float:
        if not self.per_lane_bytes_available:
            return 0.0
        return self.per_lane_bytes_used / self.per_lane_bytes_available

    def entries(self, layer: int) -> int:
        return self.entries_per_layer[layer]


def size_queues(streams_per_layer: list[int],
                volume_per_layer: list[float],
                per_lane_storage_bytes: int) -> QueueSizing:
    """Allocate per-lane storage across layers.

    Parameters
    ----------
    streams_per_layer:
        How many data streams each layer's TU instantiates (all TUs of
        a layer instantiate the same streams).
    volume_per_layer:
        Estimated elements each layer loads over the run (the analytic
        weight); zeros are allowed for unused layers.
    per_lane_storage_bytes:
        The lane's storage budget (2048 in Table 5).
    """
    if len(streams_per_layer) != len(volume_per_layer):
        raise TMUConfigError("layer stream/volume hints must align")
    if per_lane_storage_bytes <= 0:
        raise TMUConfigError("per-lane storage must be positive")

    active = [k for k, s in enumerate(streams_per_layer) if s > 0]
    if not active:
        raise TMUConfigError("no active layers to size")

    # Floor allocation first.
    entries = [0] * len(streams_per_layer)
    used = 0
    for k in active:
        entries[k] = MIN_ENTRIES
        used += MIN_ENTRIES * streams_per_layer[k] * ENTRY_BYTES
    if used > per_lane_storage_bytes:
        raise TMUConfigError(
            f"program needs {used} B/lane just for minimum queues, "
            f"only {per_lane_storage_bytes} B available"
        )

    # Distribute the remainder proportionally to load volume.
    remaining = per_lane_storage_bytes - used
    total_volume = sum(max(0.0, volume_per_layer[k]) for k in active)
    if total_volume > 0:
        for k in active:
            weight = max(0.0, volume_per_layer[k]) / total_volume
            budget = int(remaining * weight)
            extra = budget // (streams_per_layer[k] * ENTRY_BYTES)
            entries[k] += extra
    else:
        share = remaining // len(active)
        for k in active:
            entries[k] += share // (streams_per_layer[k] * ENTRY_BYTES)

    used = sum(entries[k] * streams_per_layer[k] * ENTRY_BYTES
               for k in active)
    return QueueSizing(
        entries_per_layer=tuple(entries),
        per_lane_bytes_used=used,
        per_lane_bytes_available=per_lane_storage_bytes,
    )
