"""The Tensor Marshaling Unit: a faithful functional model.

The TMU is a matrix of Traversal Units (TUs): rows are *lanes* (used
for parallel loading and merging), columns are *layers* (one per loop
of the tensor expression's loop nest), each layer co-ordinated by a
Traversal Group (TG) and feeding the next through inter-layer
configurations (Table 3).  Aggregated operands are marshaled into the
host core through a memory-mapped output queue (outQ) that triggers
registered callbacks.

Package layout (paper section in parentheses):

* :mod:`repro.tmu.streams`   — data streams: mem/ite/lin/map/ldr/fwd/msk (Table 2)
* :mod:`repro.tmu.tu`        — TU FSM + traversal primitives (Table 1, §5.1)
* :mod:`repro.tmu.tg`        — TG FSM + merge/co-iteration modes (Table 3, §5.2)
* :mod:`repro.tmu.outq`      — outQ chunk construction (§5.3)
* :mod:`repro.tmu.arbiter`   — cacheline request arbitration (§5.4)
* :mod:`repro.tmu.sizing`    — per-lane storage allocation model (§5.5)
* :mod:`repro.tmu.program`   — the programming API of Figure 8 (§4.4)
* :mod:`repro.tmu.engine`    — execution engine + statistics
* :mod:`repro.tmu.context`   — context save/restore (§5.6)
* :mod:`repro.tmu.area`      — area model from the RTL prototype (§6)
"""

from .program import (
    Event,
    LayerMode,
    Program,
)
from .engine import TmuEngine, RunStats
from .outq import OutQueue, OutQueueRecord
from .area import TmuAreaModel
from .context import TmuContext, save_context, restore_context
from .sizing import QueueSizing, size_queues

__all__ = [
    "Event",
    "LayerMode",
    "Program",
    "TmuEngine",
    "RunStats",
    "OutQueue",
    "OutQueueRecord",
    "TmuAreaModel",
    "TmuContext",
    "save_context",
    "restore_context",
    "QueueSizing",
    "size_queues",
]
