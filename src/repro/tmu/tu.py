"""Traversal Units: the per-fiber iteration FSM (paper Section 5.1).

A TU iterates one fiber::

    for (i = beg; i < end; i += stride)

with ``beg``/``end`` either configuration constants (``DnsFbrT``) or
read from a leftward TU's streams (``RngFbrT``/``IdxFbrT``, Table 1).
Each ``fite`` step pushes one element into every data stream of the TU
(all queues advance together) and a ``0`` token into the binary control
sequence; exhaustion pushes a ``1`` token (``fend``) and re-arms the
FSM (``fbeg``).

The functional model exposes the FSM through ``begin`` / ``peek`` /
``consume``: the TG peeks lane heads to merge, then consumes the lanes
its predicate selects — the queue hand-off of the hardware collapsed to
a one-slot buffer, which is exact for functional purposes (queue depth
only affects timing, handled in :mod:`repro.sim.machine`).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from .. import obs
from ..errors import TMUConfigError, TMURuntimeError
from .streams import (
    FwdStream,
    IteStream,
    LdrStream,
    LinStream,
    MapStream,
    MemoryArray,
    MemStream,
    Stream,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import TmuEngine


class PrimitiveKind(enum.Enum):
    """Traversal primitives of Table 1."""

    DENSE = "DnsFbrT"
    RANGE = "RngFbrT"
    INDEX = "IdxFbrT"


class TuState(enum.Enum):
    """TU FSM states (Section 5.1)."""

    FBEG = "fbeg"
    FITE = "fite"
    FEND = "fend"


class Slot:
    """One queue entry: the values of every stream for one iteration.

    Values are stored positionally (``values[stream.index_in_tu]``)
    instead of in a per-iteration dict; ``slot[stream]`` keeps the
    mapping-style access the TGs, the engine and the callbacks use, and
    ``items()`` iterates ``(stream, value)`` pairs.  Slots are pooled:
    the engine returns consumed slots to their TU's free list once a
    step's values have been marshaled, so steady-state iteration
    allocates nothing.  Callers outside the engine (tests draining a
    fiber by hand) simply never release slots and may hold them freely.
    """

    __slots__ = ("streams", "values")

    def __init__(self, streams: list[Stream], values: list) -> None:
        self.streams = streams
        self.values = values

    def __getitem__(self, stream: Stream):
        return self.values[stream.index_in_tu]

    def items(self):
        return zip(self.streams, self.values)

    def __repr__(self) -> str:
        pairs = {s.name: v for s, v in self.items()}
        return f"Slot({pairs!r})"


#: precompiled per-stream opcodes (see ``TraversalUnit._build_plan``)
_OP_FWD, _OP_ITE, _OP_LOCAL, _OP_REMOTE = range(4)


class TraversalUnit:
    """One TU: iteration logic plus its tree of data streams."""

    def __init__(self, layer: int, lane: int, kind: PrimitiveKind, *,
                 beg=0, end=None, size=None, offset: int = 0,
                 stride: int = 1, name: str = "") -> None:
        if stride == 0:
            raise TMUConfigError("TU stride must be non-zero")
        self.layer = layer
        self.lane = lane
        self.kind = kind
        self.beg = beg
        self.end = end
        self.size = size
        self.offset = offset
        self.stride = stride
        self.name = name or f"TU[{layer},{lane}]"

        self.ite = IteStream(f"{self.name}.ite")
        self.streams: list[Stream] = [self.ite]
        self._attach(self.ite)
        self.merge_key: Stream = self.ite

        self._validate_bounds()

        # runtime state
        self.state = TuState.FBEG
        self._cur = 0
        self._end = 0
        self._fwd_values: dict[Stream, object] = {}
        self._head: Slot | None = None
        # precompiled per-stream derivation plan + pooled slots
        self._plan: list[tuple] | None = None
        self._plan_len = 0
        self._free: list[Slot] = []
        self._touch_entries: list[tuple[Stream, list[int]]] = []
        self.iterations = 0
        self.fiber_count = 0
        self.control_tokens: int = 0  # total tokens emitted (0s and 1s)
        self._observed: dict[str, int] = {}  # telemetry deltas
        self._trace_track = f"tmu.tu.layer{layer}.lane{lane}"
        self._trace_t0: int | None = None  # fiber start (virtual ticks)
        self._trace_it0 = 0

    # -- configuration -------------------------------------------------

    def _validate_bounds(self) -> None:
        if self.kind is PrimitiveKind.DENSE:
            if not isinstance(self.beg, int) or not isinstance(self.end, int):
                raise TMUConfigError("DnsFbrT needs constant beg/end")
        elif self.kind is PrimitiveKind.RANGE:
            if not isinstance(self.beg, Stream) or not isinstance(
                    self.end, Stream):
                raise TMUConfigError("RngFbrT needs stream beg/end")
        elif self.kind is PrimitiveKind.INDEX:
            if not isinstance(self.beg, Stream):
                raise TMUConfigError("IdxFbrT needs a stream beg")
            if not isinstance(self.size, int):
                raise TMUConfigError("IdxFbrT needs a constant size")

    def _attach(self, stream: Stream) -> None:
        stream.tu = self
        stream.index_in_tu = len(self.streams) - 1

    def add_mem_stream(self, array: MemoryArray, parent: Stream | None = None,
                       offset: int = 0, name: str = "") -> MemStream:
        """``add_mem_str``: load ``array`` at the parent stream's value
        (default parent: this TU's ``ite``)."""
        stream = MemStream(array, parent or self.ite, offset, name)
        self._check_parent(stream.parent)
        self.streams.append(stream)
        self._attach(stream)
        return stream

    def add_lin_stream(self, a: float, b: float,
                       parent: Stream | None = None,
                       name: str = "") -> LinStream:
        stream = LinStream(a, b, parent or self.ite, name)
        self._check_parent(stream.parent)
        self.streams.append(stream)
        self._attach(stream)
        return stream

    def add_map_stream(self, table, parent: Stream | None = None,
                       name: str = "") -> MapStream:
        stream = MapStream(table, parent or self.ite, name)
        self._check_parent(stream.parent)
        self.streams.append(stream)
        self._attach(stream)
        return stream

    def add_ldr_stream(self, array: MemoryArray,
                       parent: Stream | None = None,
                       name: str = "") -> LdrStream:
        stream = LdrStream(array, parent or self.ite, name)
        self._check_parent(stream.parent)
        self.streams.append(stream)
        self._attach(stream)
        return stream

    def add_fwd_stream(self, source: Stream, name: str = "") -> FwdStream:
        """Forward a leftward TU's stream into this layer."""
        if source.tu is None or source.tu.layer >= self.layer:
            raise TMUConfigError(
                "fwd streams must forward from a leftward (lower) layer"
            )
        stream = FwdStream(source, name)
        self.streams.append(stream)
        self._attach(stream)
        return stream

    def _check_parent(self, parent: Stream) -> None:
        if parent.tu is not self and parent.tu is not None:
            if parent.tu.layer >= self.layer:
                raise TMUConfigError(
                    f"{self.name}: stream parents must live in this TU "
                    "or a leftward layer"
                )

    def set_merge_key(self, stream: Stream) -> None:
        """Designate the stream holding the fiber's coordinate (used by
        merging TGs to sort lanes).  Defaults to ``ite``."""
        if stream not in self.streams:
            raise TMUConfigError("merge key must be one of this TU's streams")
        self.merge_key = stream

    # -- runtime --------------------------------------------------------

    def _build_plan(self) -> None:
        """Compile the stream tree into a flat per-stream plan.

        ``peek`` resolves each non-ite stream through one precompiled
        ``(op, stream, src, touch_buf)`` tuple instead of re-walking the
        isinstance ladder every iteration.  ``touch_buf`` is a per-stream
        address buffer (non-None only for streams that touch memory) the
        engine drains per fiber via :meth:`flush_touches`."""
        plan: list[tuple] = []
        self._touch_entries = []
        for stream in self.streams[1:]:
            if isinstance(stream, FwdStream):
                op, src = _OP_FWD, stream.source
            elif isinstance(stream, IteStream):
                op, src = _OP_ITE, None
            else:
                parent = stream.parent  # type: ignore[attr-defined]
                if parent.tu is self:
                    op, src = _OP_LOCAL, parent.index_in_tu
                else:
                    op, src = _OP_REMOTE, parent
            buf: list[int] | None = None
            if type(stream).touched_address is not Stream.touched_address:
                buf = []
                self._touch_entries.append((stream, buf))
            plan.append((op, stream, src, buf))
        self._plan = plan
        self._plan_len = len(self.streams)
        self._free.clear()  # pooled slots are sized for the old plan

    def release(self, slot: Slot) -> None:
        """Return a consumed slot to the pool for reuse (engine only)."""
        if slot.streams is self.streams and len(slot.values) == \
                self._plan_len:
            self._free.append(slot)

    def flush_touches(self, engine: "TmuEngine") -> None:
        """Hand the buffered per-stream memory touches to the engine."""
        for stream, buf in self._touch_entries:
            if buf:
                engine.record_touch_batch(self, stream, buf)
                buf.clear()

    def begin(self, beg_value: int, end_value: int,
              fwd_values: dict[Stream, object] | None = None) -> None:
        """``fbeg``: latch iteration bounds for a new fiber."""
        if self._plan is None or self._plan_len != len(self.streams):
            self._build_plan()
        self._cur = int(beg_value) + self.offset
        self._end = int(end_value)
        self._head = None
        self._fwd_values = fwd_values or {}
        self.state = TuState.FITE
        self.fiber_count += 1
        tracer = obs.tracer()
        if tracer.enabled:
            self._trace_t0 = tracer.now
            self._trace_it0 = self.iterations
        else:
            self._trace_t0 = None

    def resolve_bounds(self, parent_slot: Slot | None) -> tuple[int, int]:
        """Compute (beg, end) for a new activation given the parent
        layer's current slot (None for constant-bound TUs)."""
        if self.kind is PrimitiveKind.DENSE:
            return int(self.beg), int(self.end)
        if parent_slot is None:
            raise TMURuntimeError(
                f"{self.name}: stream-bound TU activated without a "
                "parent slot"
            )
        beg = int(parent_slot[self.beg])
        if self.kind is PrimitiveKind.RANGE:
            return beg, int(parent_slot[self.end])
        return beg, beg + int(self.size)  # INDEX

    def peek(self, engine: "TmuEngine | None" = None) -> Slot | None:
        """Return the head slot, producing it if needed; None at fiber
        end (after emitting the ``fend`` token)."""
        if self.state is TuState.FBEG:
            raise TMURuntimeError(f"{self.name}: peek before begin")
        if self._head is not None:
            return self._head
        if self.state is TuState.FEND:
            return None
        forward = (self._cur < self._end) if self.stride > 0 else (
            self._cur > self._end)
        if not forward:
            self.state = TuState.FEND
            self.control_tokens += 1  # the `1` end token
            if engine is not None:
                self.flush_touches(engine)
            if self._trace_t0 is not None:
                tracer = obs.tracer()
                fiber_len = self.iterations - self._trace_it0
                tracer.span(self._trace_track, "fiber", self._trace_t0,
                            tracer.now - self._trace_t0,
                            {"iterations": fiber_len})
                tracer.sample(self._trace_track, "fiber_len", fiber_len)
                self._trace_t0 = None
            return None
        if self._plan is None or self._plan_len != len(self.streams):
            self._build_plan()
        cur = self._cur
        free = self._free
        if free:
            slot = free.pop()
            values = slot.values
            values[0] = cur
        else:
            values = [cur] * self._plan_len
            slot = Slot(self.streams, values)
        batch = engine is not None and getattr(
            engine, "batch_touches", False)
        for i, (op, stream, src, buf) in enumerate(self._plan, 1):
            if op == _OP_FWD:
                values[i] = self._fwd_values.get(src)
                continue
            if op == _OP_ITE:
                x = cur
            elif op == _OP_LOCAL:
                x = values[src]
            else:  # _OP_REMOTE
                x = self._fwd_values.get(src)
                if x is None:
                    raise TMURuntimeError(
                        f"{self.name}: parent value for "
                        f"{stream.name} not forwarded"
                    )
            values[i] = stream.derive(x)
            if buf is not None and engine is not None:
                addr = stream.touched_address(x)
                if addr is not None:
                    if batch:
                        buf.append(addr)
                    else:
                        engine.record_memory_touch(self, stream, addr)
        self._head = slot
        self.control_tokens += 1  # the `0` iteration token
        return self._head

    def consume(self) -> Slot:
        """Pop the head slot (the TG selected this lane)."""
        if self._head is None:
            raise TMURuntimeError(f"{self.name}: consume without a head")
        slot = self._head
        self._head = None
        self._cur += self.stride
        self.iterations += 1
        return slot

    def key_of(self, slot: Slot):
        return slot[self.merge_key]

    def observe(self, view) -> None:
        """Publish this TU's counters into a telemetry registry view
        (incremental: safe to call once per engine run)."""
        from ..obs import add_deltas

        add_deltas(view.prefixed(f"lane{self.lane}"), {
            "iterations": self.iterations,
            "fibers": self.fiber_count,
            "control_tokens": self.control_tokens,
        }, self._observed)

    def __repr__(self) -> str:
        return (f"TraversalUnit({self.name}, {self.kind.value}, "
                f"streams={len(self.streams)})")
