"""Traversal Groups: per-layer merge/co-iteration FSMs (Section 5.2).

A TG owns the TUs of one layer and iterates them under one of the
inter-layer configurations of Table 3:

=========  ==========================================================
Single     iterates a single lane
BCast      broadcasts a single lane's data to a parallel group below
Keep       keeps one lane out of a parallel group
DisjMrg    joins (unions) the lanes of the layer
ConjMrg    intersects the lanes of the layer
LockStep   co-iterates the lanes of the layer positionally
=========  ==========================================================

Each ``gite`` produces a :class:`GroupStep` carrying the multi-hot
predicate (the ``msk`` stream) and the consumed lanes' slots; the
hierarchical-evaluation rule of the paper — only lanes active in the
*previous* layer's predicate participate — is implemented by the
``active_mask`` handed down by the engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import obs
from ..errors import TMUConfigError, TMURuntimeError
from .tu import Slot, TraversalUnit


class LayerMode(enum.Enum):
    """Inter-layer configurations (Table 3)."""

    SINGLE = "Single"
    BCAST = "BCast"
    KEEP = "Keep"
    DISJ_MRG = "DisjMrg"
    CONJ_MRG = "ConjMrg"
    LOCKSTEP = "LockStep"


#: modes that merge coordinates (need a merge key per lane)
MERGE_MODES = (LayerMode.DISJ_MRG, LayerMode.CONJ_MRG)


class TgState(enum.Enum):
    """TG FSM states (Section 5.2)."""

    GBEG = "gbeg"
    GITE = "gite"
    GEND = "gend"


@dataclass
class GroupStep:
    """One ``gite`` of a TG.

    Attributes
    ----------
    mask:
        Multi-hot predicate over the layer's lanes (bit k = lane k
        consumed an element this step).
    index:
        The merged coordinate (merge modes) or the step ordinal
        (lockstep/single).
    slots:
        Per-lane consumed slot, ``None`` for lanes outside the mask.
    emitted:
        ConjMrg only: whether this step pushed a 0 token (all-true
        predicate).  Non-emitting steps advance lanes without output.
    """

    mask: int
    index: object
    slots: list[Slot | None]
    emitted: bool = True

    def active_lanes(self) -> list[int]:
        return [k for k in range(len(self.slots)) if self.mask & (1 << k)]


class TraversalGroup:
    """The TG of one TMU layer."""

    def __init__(self, layer: int, mode: LayerMode,
                 tus: list[TraversalUnit],
                 keep_lane: int | None = None) -> None:
        if not tus:
            raise TMUConfigError(f"layer {layer} has no traversal units")
        if mode in (LayerMode.SINGLE, LayerMode.BCAST) and len(tus) != 1:
            raise TMUConfigError(
                f"{mode.value} layers use exactly one lane, got {len(tus)}"
            )
        if keep_lane is not None and not 0 <= keep_lane < len(tus):
            raise TMUConfigError(
                f"keep_lane {keep_lane} outside the layer's {len(tus)} lanes"
            )
        self.layer = layer
        self.mode = mode
        self.tus = tus
        self.keep_lane = keep_lane
        self.state = TgState.GBEG
        self.gite_count = 0
        self.gend_count = 0
        self.merge_steps = 0  # gite steps of merging/co-iterating modes
        self._observed: dict[str, int] = {}  # telemetry deltas

    @property
    def num_lanes(self) -> int:
        return len(self.tus)

    def observe(self, view) -> None:
        """Publish this TG's counters (and its TUs') into a telemetry
        registry view rooted at the layer."""
        from ..obs import add_deltas

        add_deltas(view, {
            "gite": self.gite_count,
            "gend": self.gend_count,
            "merge_steps": self.merge_steps,
        }, self._observed)
        view.gauge("lanes").set(self.num_lanes)
        for tu in self.tus:
            tu.observe(view)

    def recycle(self, step: GroupStep) -> None:
        """Return a fully-consumed step's slots to their TUs' pools.

        Called by the engine once a step's values have been marshaled
        (callbacks fired, child layers done); callers that hold slots
        themselves simply never recycle."""
        for lane, slot in enumerate(step.slots):
            if slot is not None:
                self.tus[lane].release(slot)

    def iterate(self, active_mask: int, engine=None):
        """Generate the :class:`GroupStep` sequence of one activation.

        ``active_mask`` selects which lanes participate (hierarchical
        evaluation); the caller must already have ``begin``-ed those
        lanes' TUs.
        """
        self.state = TgState.GITE
        if self.mode in (LayerMode.SINGLE, LayerMode.BCAST):
            yield from self._iterate_single(active_mask, engine)
        elif self.mode is LayerMode.KEEP:
            yield from self._iterate_keep(active_mask, engine)
        elif self.mode is LayerMode.LOCKSTEP:
            yield from self._iterate_lockstep(active_mask, engine)
        elif self.mode is LayerMode.DISJ_MRG:
            yield from self._iterate_disjunctive(active_mask, engine)
        elif self.mode is LayerMode.CONJ_MRG:
            yield from self._iterate_conjunctive(active_mask, engine)
        else:  # pragma: no cover - exhaustive enum
            raise TMURuntimeError(f"unknown layer mode {self.mode}")
        self.state = TgState.GEND
        self.gend_count += 1

    # -- mode implementations -----------------------------------------

    def _active(self, active_mask: int) -> list[int]:
        lanes = [k for k in range(len(self.tus)) if active_mask & (1 << k)]
        if not lanes:
            raise TMURuntimeError(
                f"layer {self.layer} activated with an empty lane mask"
            )
        return lanes

    def _iterate_single(self, active_mask: int, engine):
        tu = self.tus[0]
        step_no = 0
        while True:
            slot = tu.peek(engine)
            if slot is None:
                return
            tu.consume()
            self.gite_count += 1
            yield GroupStep(mask=1, index=step_no, slots=[slot])
            step_no += 1

    def _iterate_keep(self, active_mask: int, engine):
        """Keep one lane out of a parallel group: iterate only the
        configured (default: lowest active) lane; the others are
        dropped for this layer."""
        if self.keep_lane is not None:
            keep = self.keep_lane
        else:
            keep = self._active(active_mask)[0]
        tu = self.tus[keep]
        step_no = 0
        slots_template: list[Slot | None] = [None] * len(self.tus)
        while True:
            slot = tu.peek(engine)
            if slot is None:
                return
            tu.consume()
            self.gite_count += 1
            slots = list(slots_template)
            slots[keep] = slot
            yield GroupStep(mask=1 << keep, index=step_no, slots=slots)
            step_no += 1

    def _iterate_lockstep(self, active_mask: int, engine):
        """Co-iterate all active lanes; the predicate marks lanes not
        yet done (Section 5.2, lockstep rule)."""
        lanes = self._active(active_mask)
        step_no = 0
        while True:
            mask = 0
            slots: list[Slot | None] = [None] * len(self.tus)
            for k in lanes:
                slot = self.tus[k].peek(engine)
                if slot is not None:
                    mask |= 1 << k
                    slots[k] = self.tus[k].consume()
            if mask == 0:
                return
            self.gite_count += 1
            self.merge_steps += 1
            yield GroupStep(mask=mask, index=step_no, slots=slots)
            step_no += 1

    def _iterate_disjunctive(self, active_mask: int, engine):
        """Union-merge: each gite consumes every active lane holding the
        minimum coordinate and sets its predicate bit.

        The merger assumes sorted fibers (Section 2.4); a coordinate
        regression is a protocol violation and raises instead of
        silently producing an unsorted output.
        """
        lanes = self._active(active_mask)
        last = None
        while True:
            heads: dict[int, Slot] = {}
            for k in lanes:
                slot = self.tus[k].peek(engine)
                if slot is not None:
                    heads[k] = slot
            if not heads:
                return
            current = min(self.tus[k].key_of(s) for k, s in heads.items())
            if last is not None and current < last:
                raise TMURuntimeError(
                    f"layer {self.layer}: unsorted fiber handed to "
                    f"DisjMrg (coordinate {current} after {last})"
                )
            last = current
            mask = 0
            slots: list[Slot | None] = [None] * len(self.tus)
            for k, slot in heads.items():
                if self.tus[k].key_of(slot) == current:
                    mask |= 1 << k
                    slots[k] = self.tus[k].consume()
            self.gite_count += 1
            self.merge_steps += 1
            yield GroupStep(mask=mask, index=current, slots=slots)

    def _iterate_conjunctive(self, active_mask: int, engine):
        """Intersection-merge: lanes holding the minimum coordinate are
        consumed every cycle, but a step is *emitted* (0 token) only on
        an all-true predicate; the merge ends when any active lane is
        exhausted."""
        lanes = self._active(active_mask)
        full = 0
        for k in lanes:
            full |= 1 << k
        tracer = obs.tracer()
        tracing = tracer.enabled
        track = f"tmu.tg.layer{self.layer}" if tracing else ""
        while True:
            heads: dict[int, Slot] = {}
            for k in lanes:
                slot = self.tus[k].peek(engine)
                if slot is None:
                    return  # any lane exhausted ends a conjunction
                heads[k] = slot
            current = min(self.tus[k].key_of(s) for k, s in heads.items())
            mask = 0
            slots: list[Slot | None] = [None] * len(self.tus)
            for k, slot in heads.items():
                if self.tus[k].key_of(slot) == current:
                    mask |= 1 << k
                    slots[k] = self.tus[k].consume()
            self.merge_steps += 1
            if mask == full:
                self.gite_count += 1
                yield GroupStep(mask=mask, index=current, slots=slots)
            elif tracing:
                # non-emitting advance: hardware pushes no token — this
                # is the conjunctive merge's stall signal
                tracer.instant(track, "stall_advance", args={"mask": mask})
