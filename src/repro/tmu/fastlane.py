"""Structure-of-arrays TMU lane engine (the fast execution path).

The scalar engine in :mod:`.engine` advances one TU event at a time:
each ``gite`` peeks lane heads, derives every data stream of the
consumed slots, and fires callbacks — interpreted Python per element.
This module re-executes the same program activation by activation, but
inside one activation every lane's whole fiber is materialized as
NumPy columns: iteration indices, derived stream values (via the SoA
views in :mod:`.streams`), merge keys and arbiter addresses are
computed as array ops, the merge front of a disjunctive/conjunctive
group is enumerated with a single lexsort, and outQ records append in
bulk (:meth:`~repro.tmu.outq.OutQueue.push_many`).

Counters are written into the *same* TU/TG objects the scalar loop
mutates, so ``RunStats``, ``observe()`` telemetry and the differential
parity harness see identical numbers, and callbacks fire in exactly
the loop-nest order of the scalar engine.

Exactness guardrails:

- stream values and touches are only accounted for the *produced*
  prefix of a fiber — what the scalar engine actually peeks — derived
  from the merge-front enumeration (a conjunctive merge cuts fibers
  short exactly like the scalar FSM);
- an activation whose merge keys are unsorted, whose streams lack SoA
  views, or whose derivations would raise (out-of-bounds loads,
  missing forwards) falls back to the scalar
  :meth:`~repro.tmu.tg.TraversalGroup.iterate` path *before any side
  effect*, which preserves reference semantics — including the DisjMrg
  unsorted-fiber protocol error — bit for bit;
- the fast path is disabled entirely while tracing, where per-event
  instants need the scalar loop (mirroring ``batch_touches``).
"""

from __future__ import annotations

import numpy as np

from ..errors import TMURuntimeError
from .outq import MaskValue, OutQueueRecord
from .program import IndexOperand, MaskOperand, ScalarOperand, VectorOperand
from .tg import MERGE_MODES, GroupStep, LayerMode, TgState
from .tu import _OP_FWD, _OP_ITE, _OP_LOCAL, TuState

#: parent modes that hand the same slot to every child lane
_BROADCAST_LIKE = (None, LayerMode.SINGLE, LayerMode.BCAST, LayerMode.KEEP)


def run_layers(engine, root_envs) -> None:
    """Execute ``engine``'s program through the SoA lane engine."""
    _run_layer(engine, 0, None, None, root_envs)


# ---------------------------------------------------------------- contexts

class _FastCtx:
    """What a child activation reads from its parent's current step
    when the parent ran on the fast path: the step mask, the first
    active lane, and the parent slot values as column reads."""

    __slots__ = ("mask", "first_active", "t", "streams_by_lane",
                 "col_lists", "sels")

    def __init__(self, streams_by_lane, col_lists, sels):
        self.streams_by_lane = streams_by_lane
        self.col_lists = col_lists
        self.sels = sels
        self.mask = 0
        self.first_active = 0
        self.t = 0

    def items_for(self, lane):
        sel = self.sels[lane]
        if sel is None:
            return None
        e = sel[self.t]
        if e < 0:
            return None
        cols = self.col_lists[lane]
        return zip(self.streams_by_lane[lane],
                   [c[e] for c in cols])


class _StepCtx:
    """The same view over a scalar :class:`GroupStep` (used when an
    activation fell back to the reference path but its children can
    still run fast)."""

    __slots__ = ("mask", "_step")

    def __init__(self, step: GroupStep):
        self.mask = step.mask
        self._step = step

    @property
    def first_active(self):
        m = self.mask
        return (m & -m).bit_length() - 1

    def items_for(self, lane):
        slot = self._step.slots[lane]
        return slot.items() if slot is not None else None


# ------------------------------------------------------------- lane fibers

class _LaneFiber:
    """One lane's materialized fiber: full-length value columns for
    every stream, plus the produced/consumed accounting filled in by
    the mode enumeration."""

    __slots__ = ("tu", "start", "end", "stride", "n", "cols",
                 "consumed", "produced", "fend", "sel")

    def __init__(self, tu, start, end, stride, n, cols):
        self.tu = tu
        self.start = start
        self.end = end
        self.stride = stride
        self.n = n
        self.cols = cols
        self.consumed = 0
        self.produced = 0
        self.fend = False
        self.sel = None


def _materialize(tu, beg, end, env):
    """Derive every stream column of one fiber, or None when the
    activation must fall back to the scalar path (a stream without an
    SoA view, an out-of-bounds derivation, a missing forward)."""
    if tu._plan is None or tu._plan_len != len(tu.streams):
        tu._build_plan()
    start = int(beg) + tu.offset
    end_i = int(end)
    stride = tu.stride
    if stride > 0:
        n = max(0, -((start - end_i) // stride))
    else:
        n = max(0, -((end_i - start) // -stride))
    idx = start + stride * np.arange(n, dtype=np.int64)
    cols: list = [idx]
    for op, stream, src, _buf in tu._plan:
        if op == _OP_FWD:
            cols.append(np.full(n, env.get(src)))
            continue
        if op == _OP_ITE:
            x = idx
        elif op == _OP_LOCAL:
            x = cols[src]
        else:  # _OP_REMOTE
            xv = env.get(src)
            if xv is None:
                # the scalar path raises on the first produced element;
                # with an empty fiber it silently never derives
                if n == 0:
                    cols.append(np.zeros(0))
                    continue
                return None
            try:
                cols.append(np.full(n, stream.derive(xv)))
            except Exception:
                return None
            continue
        if stream.block_oob_index(x) is not None:
            return None
        col = stream.derive_block(x)
        if col is None:
            return None
        cols.append(col)
    return _LaneFiber(tu, start, end_i, stride, n, cols)


# --------------------------------------------------------- merge-front math

def _merge_fronts(fibers: dict[int, _LaneFiber]):
    """Enumerate the merge-step sequence of sorted lanes.

    Returns ``(n_steps, step_mask, step_index, step_of)`` where
    ``step_of[lane]`` maps each element of that lane to the step (==
    cycle, for merging modes) at which it is consumed.  Duplicate keys
    within a lane occupy distinct consecutive steps; lanes consume
    together exactly when they hold the same (key, occurrence) pair —
    the array form of "every lane holding the minimum consumes".
    """
    parts_key, parts_occ, parts_bit, lanes_order = [], [], [], []
    step_of: dict[int, np.ndarray] = {}
    for lane, fib in fibers.items():
        keys = np.asarray(fib.cols[fib.tu.merge_key.index_in_tu])
        m = keys.size
        if m == 0:
            step_of[lane] = np.zeros(0, dtype=np.int64)
            continue
        occ = np.arange(m, dtype=np.int64) - np.searchsorted(keys, keys)
        parts_key.append(keys)
        parts_occ.append(occ)
        parts_bit.append(np.full(m, 1 << lane, dtype=np.int64))
        lanes_order.append((lane, m))
    if not parts_key:
        return 0, np.zeros(0, np.int64), np.zeros(0, np.int64), step_of
    allk = np.concatenate(parts_key)
    allo = np.concatenate(parts_occ)
    allb = np.concatenate(parts_bit)
    order = np.lexsort((allo, allk))
    sk = allk[order]
    so = allo[order]
    new = np.empty(order.size, dtype=bool)
    new[0] = True
    new[1:] = (sk[1:] != sk[:-1]) | (so[1:] != so[:-1])
    sid = np.cumsum(new) - 1
    n_steps = int(sid[-1]) + 1
    step_mask = np.bincount(
        sid, weights=allb[order].astype(np.float64), minlength=n_steps
    ).astype(np.int64)
    step_index = sk[new]
    elem_step = np.empty(order.size, dtype=np.int64)
    elem_step[order] = sid
    off = 0
    for lane, m in lanes_order:
        step_of[lane] = elem_step[off:off + m]
        off += m
    return n_steps, step_mask, step_index, step_of


def _sorted_keys(fibers: dict[int, _LaneFiber]) -> bool:
    """Are every lane's merge keys non-decreasing (and numeric)?"""
    for fib in fibers.values():
        keys = np.asarray(fib.cols[fib.tu.merge_key.index_in_tu])
        if keys.dtype == object:
            return False
        if keys.size > 1 and not bool(np.all(keys[1:] >= keys[:-1])):
            return False
    return True


# ------------------------------------------------------------- layer runner

def _child_mask(engine, layer_idx, parent_mode, ctx):
    layer = engine.program.layers[layer_idx]
    configured = (1 << len(layer.tus)) - 1
    if layer.mode in (LayerMode.SINGLE, LayerMode.BCAST):
        return 1
    if parent_mode in _BROADCAST_LIKE or ctx is None:
        return configured
    mask = ctx.mask & configured
    if mask == 0:
        raise TMURuntimeError(
            f"layer {layer_idx}: no active lanes after hierarchical "
            "predicate"
        )
    return mask


def _parent_lane_for(child_lane, parent_mode, ctx):
    if ctx is None:
        return None
    if parent_mode in (LayerMode.SINGLE, LayerMode.BCAST):
        return 0
    if parent_mode is LayerMode.KEEP:
        return ctx.first_active
    return child_lane


def _run_layer(engine, layer_idx, parent_mode, parent_ctx,
               parent_envs) -> None:
    program = engine.program
    layer = program.layers[layer_idx]
    group = engine.groups[layer_idx]
    mask = _child_mask(engine, layer_idx, parent_mode, parent_ctx)
    engine._stats.layer_activations[layer_idx] += 1

    envs: list[dict] = [dict() for _ in range(program.lanes)]
    bounds: dict[int, tuple[int, int]] = {}
    for lane in range(len(layer.tus)):
        if not mask & (1 << lane):
            continue
        parent_lane = _parent_lane_for(lane, parent_mode, parent_ctx)
        env = dict(parent_envs[parent_lane or 0])
        if parent_ctx is not None and parent_lane is not None:
            items = parent_ctx.items_for(parent_lane)
            if items is not None:
                env.update(items)
        envs[lane] = env
        tu = layer.tus[lane]
        if tu.kind.name == "DENSE":
            beg, end = int(tu.beg), int(tu.end)
        else:
            beg = engine._resolve_bound(tu, tu.beg, env)
            if tu.kind.name == "RANGE":
                end = engine._resolve_bound(tu, tu.end, env)
            else:  # INDEX
                end = beg + int(tu.size)
        bounds[lane] = (beg, end)

    gbeg_cbs, _gite_cbs, gend_cbs = engine._layer_callbacks[layer_idx]
    for cb, res in gbeg_cbs:
        engine._fire(cb, layer_idx, None, envs, mask, res)

    _run_activation(engine, layer_idx, layer, group, mask, envs, bounds)

    for cb, res in gend_cbs:
        engine._fire(cb, layer_idx, None, envs, mask, res)


def _scalar_activation(engine, layer_idx, layer, group, mask, envs,
                       bounds) -> None:
    """Reference-path activation: exact scalar semantics for this
    activation (its children still take the fast path when they can)."""
    for lane, (beg, end) in bounds.items():
        layer.tus[lane].begin(beg, end, fwd_values=envs[lane])
    _, gite_cbs, _ = engine._layer_callbacks[layer_idx]
    last = layer_idx == len(engine.program.layers) - 1
    for step in group.iterate(mask, engine=engine):
        for cb, res in gite_cbs:
            engine._fire(cb, layer_idx, step, envs, mask, res)
        if not last:
            _run_layer(engine, layer_idx + 1, layer.mode, _StepCtx(step),
                       envs)
        group.recycle(step)


def _run_activation(engine, layer_idx, layer, group, mask, envs,
                    bounds) -> None:
    mode = layer.mode
    begun = [k for k in range(len(layer.tus)) if mask >> k & 1]
    if not begun:
        raise TMURuntimeError(
            f"layer {layer_idx} activated with an empty lane mask"
        )
    if mode in (LayerMode.SINGLE, LayerMode.BCAST):
        iter_lanes = [0]
    elif mode is LayerMode.KEEP:
        keep = group.keep_lane if group.keep_lane is not None else begun[0]
        iter_lanes = [keep]
    else:
        iter_lanes = begun

    fibers: dict[int, _LaneFiber] = {}
    for k in iter_lanes:
        beg, end = bounds[k]
        fib = _materialize(layer.tus[k], beg, end, envs[k])
        if fib is None:
            _scalar_activation(engine, layer_idx, layer, group, mask,
                               envs, bounds)
            return
        fibers[k] = fib

    merge_inc = 0
    if mode in MERGE_MODES:
        if not _sorted_keys(fibers):
            _scalar_activation(engine, layer_idx, layer, group, mask,
                               envs, bounds)
            return
        n_steps, step_mask, step_index, step_of = _merge_fronts(fibers)
        if mode is LayerMode.DISJ_MRG:
            merge_inc = n_steps
            mask_list = step_mask.tolist()
            index_list = step_index.tolist()
            for k, fib in fibers.items():
                fib.consumed = fib.produced = fib.n
                fib.fend = True
                sel = np.full(n_steps, -1, dtype=np.int64)
                sel[step_of[k]] = np.arange(fib.n, dtype=np.int64)
                fib.sel = sel.tolist()
        else:  # CONJ_MRG
            full = 0
            for k in fibers:
                full |= 1 << k
            exhaust = {
                k: (int(step_of[k][-1]) + 1 if fib.n else 0)
                for k, fib in fibers.items()
            }
            big_t = min(exhaust.values())
            merge_inc = big_t
            # e: the first lane (ascending) whose peek finds the fiber
            # exhausted — it alone emits the fend token this activation
            e = min(k for k in fibers if exhaust[k] == big_t)
            emitted = np.flatnonzero(step_mask[:big_t] == full)
            mask_list = [full] * emitted.size
            index_list = step_index[emitted].tolist()
            for k, fib in fibers.items():
                consumed = int(np.searchsorted(step_of[k], big_t))
                fib.consumed = consumed
                if k == e:
                    fib.produced = fib.n
                    fib.fend = True
                elif k < e:
                    fib.produced = consumed + 1
                else:
                    parted = consumed >= 1 and (
                        int(step_of[k][consumed - 1]) == big_t - 1)
                    fib.produced = consumed if parted else (
                        consumed + 1 if big_t > 0 else 0)
                fib.sel = np.searchsorted(step_of[k], emitted).tolist()
    elif mode is LayerMode.LOCKSTEP:
        n_steps = max(fib.n for fib in fibers.values())
        merge_inc = n_steps
        edges = np.zeros(n_steps + 1, dtype=np.int64)
        for k, fib in fibers.items():
            fib.consumed = fib.produced = fib.n
            fib.fend = True
            fib.sel = list(range(fib.n)) + [-1] * (n_steps - fib.n)
            if fib.n:
                edges[0] += 1 << k
                edges[fib.n] -= 1 << k
        mask_list = np.cumsum(edges[:-1]).tolist()
        index_list = list(range(n_steps))
    else:  # SINGLE / BCAST / KEEP: one iterated lane
        k, fib = next(iter(fibers.items()))
        n_steps = fib.n
        fib.consumed = fib.produced = fib.n
        fib.fend = True
        fib.sel = list(range(fib.n))
        mask_list = [1 << k] * n_steps
        index_list = list(range(n_steps))

    # ---- bulk side effects: begin/iterate/fend accounting + touches
    for k in begun:
        tu = layer.tus[k]
        tu.fiber_count += 1
        if k not in fibers:
            # begun but never iterated (Keep's dropped lanes): the
            # scalar engine leaves them armed mid-fiber
            tu.state = TuState.FITE
            beg, end = bounds[k]
            tu._cur = int(beg) + tu.offset
            tu._end = int(end)
            tu._head = None
            tu._fwd_values = envs[k]
    for k, fib in fibers.items():
        tu = fib.tu
        tu.iterations += fib.consumed
        tu.control_tokens += fib.produced + (1 if fib.fend else 0)
        tu.state = TuState.FEND if fib.fend else TuState.FITE
        tu._cur = fib.start + fib.consumed * fib.stride
        tu._end = fib.end
        tu._head = None
        tu._fwd_values = envs[k]
        if fib.produced:
            # a prior scalar-path activation of this TU may hold
            # buffered touches (conjunctive cut-short fibers flush at
            # the *next* fend); drain them first to keep the arbiter's
            # per-stream order chronological
            tu.flush_touches(engine)
            for op, stream, src, buf in tu._plan:
                if buf is None:
                    continue
                if op == _OP_LOCAL:
                    x = fib.cols[src][:fib.produced]
                elif op == _OP_ITE:
                    x = fib.cols[0][:fib.produced]
                else:  # _OP_REMOTE: constant parent value
                    addr = stream.touched_address(envs[k][src])
                    engine.record_touch_batch(
                        tu, stream, [addr] * fib.produced)
                    continue
                addresses = stream.touched_addresses(x)
                if addresses is not None:
                    engine.record_touch_batch(tu, stream,
                                              addresses.tolist())
    group.state = TgState.GEND
    group.gite_count += len(mask_list)
    group.gend_count += 1
    group.merge_steps += merge_inc

    # ---- fire gite callbacks / recurse, in loop-nest order
    n_act = len(mask_list)
    last = layer_idx == len(engine.program.layers) - 1
    num_lanes = len(layer.tus)
    col_lists: list = [None] * num_lanes
    sels: list = [None] * num_lanes
    _, gite_cbs, _ = engine._layer_callbacks[layer_idx]
    if n_act == 0:
        return
    needed = _needed_columns(layer, gite_cbs, last, fibers)
    for k, fib in fibers.items():
        sels[k] = fib.sel
        lists = [None] * len(fib.cols)
        for vi in (range(len(fib.cols)) if needed is None
                   else needed.get(k, ())):
            col = fib.cols[vi]
            lists[vi] = col.tolist() if isinstance(col, np.ndarray) \
                else list(col)
        col_lists[k] = lists

    first = (mask & -mask).bit_length() - 1
    fire = []
    for cb, _res in gite_cbs:
        tuples = _operand_tuples(cb, layer_idx, envs, first, col_lists,
                                 sels, mask_list, index_list, n_act)
        fire.append((
            cb.callback_id, tuples,
            engine._handlers.get(cb.callback_id, engine._default_handler),
        ))

    outq = engine.outq
    counts = engine._stats.callback_counts
    collect = engine.collect_records
    if last and len(fire) == 1:
        cb_id, tuples, handler = fire[0]
        records = [
            OutQueueRecord(cb_id, ops, m, layer_idx)
            for ops, m in zip(tuples, mask_list)
        ]
        outq.push_many(records)
        if not collect:
            outq.records.clear()
        counts[cb_id] = counts.get(cb_id, 0) + n_act
        if handler is not None:
            for record in records:
                handler(record)
        return

    ctx = None
    if not last:
        streams_by_lane = [tu.streams for tu in layer.tus]
        ctx = _FastCtx(streams_by_lane, col_lists, sels)
    for t in range(n_act):
        m = mask_list[t]
        for cb_id, tuples, handler in fire:
            record = OutQueueRecord(cb_id, tuples[t], m, layer_idx)
            outq.push(record)
            if not collect:
                outq.records.clear()
            counts[cb_id] = counts.get(cb_id, 0) + 1
            if handler is not None:
                handler(record)
        if ctx is not None:
            ctx.mask = m
            ctx.first_active = (m & -m).bit_length() - 1
            ctx.t = t
            _run_layer(engine, layer_idx + 1, mode, ctx, envs)


# -------------------------------------------------------- operand columns

def _needed_columns(layer, gite_cbs, last, fibers):
    """Which (lane, stream-index) columns the step loop will read as
    Python values.  Non-leaf layers need every column (children consume
    whole slots into their envs); leaf layers only the operand reads.
    Returns None for "all"."""
    if not last:
        return None
    needed: dict[int, set] = {k: set() for k in fibers}
    for cb, _res in gite_cbs:
        for operand in cb.operands:
            if isinstance(operand, ScalarOperand):
                s = operand.stream
                if s.tu is not None and s.tu.layer == layer.tus[0].layer:
                    needed.setdefault(s.tu.lane, set()).add(s.index_in_tu)
            elif isinstance(operand, VectorOperand):
                for s in operand.streams:
                    lane = s.tu.lane if s.tu else 0
                    needed.setdefault(lane, set()).add(s.index_in_tu)
    return needed


def _lane_column(lane, vi, col_lists, sels, n):
    """Per-step values of one same-layer stream (0.0 outside the
    mask, like the scalar ``slot is None`` read)."""
    cols = col_lists[lane] if lane < len(col_lists) else None
    col = cols[vi] if cols is not None else None
    sel = sels[lane] if lane < len(sels) else None
    if col is None or sel is None:
        return [0.0] * n
    return [col[e] if e >= 0 else 0.0 for e in sel]


def _operand_tuples(cb, layer_idx, envs, first, col_lists, sels,
                    mask_list, index_list, n):
    """The per-step operand tuples of one callback, built column-wise
    (the SoA counterpart of the engine's compiled resolvers)."""
    parts = []
    for operand in cb.operands:
        if isinstance(operand, MaskOperand):
            parts.append([MaskValue(m) for m in mask_list])
        elif isinstance(operand, IndexOperand):
            parts.append(index_list)
        elif isinstance(operand, VectorOperand):
            lanes_vi = [(s.tu.lane if s.tu else 0, s.index_in_tu)
                        for s in operand.streams]
            vec_parts = [_lane_column(lane, vi, col_lists, sels, n)
                         for lane, vi in lanes_vi]
            parts.append([tuple(vals) for vals in zip(*vec_parts)])
        elif isinstance(operand, ScalarOperand):
            s = operand.stream
            if s.tu is not None and s.tu.layer == layer_idx:
                parts.append(_lane_column(s.tu.lane, s.index_in_tu,
                                          col_lists, sels, n))
            else:
                env = envs[first] if envs else {}
                if s not in env:
                    raise TMURuntimeError(
                        f"operand {s.name} not available at layer "
                        f"{layer_idx}"
                    )
                parts.append([env[s]] * n)
        else:  # pragma: no cover - exhaustive
            raise TMURuntimeError(f"unknown operand {operand!r}")
    if not parts:
        return [()] * n
    if len(parts) == 1:
        return [(v,) for v in parts[0]]
    return list(zip(*parts))
