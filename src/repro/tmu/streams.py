"""TU data streams (paper Table 2).

Every Traversal Unit owns a tree of data streams rooted at its ``ite``
stream (the loop induction variable).  When the TU's FSM executes an
``fite`` step, each stream derives one element from its parent's new
element:

=======  ==========================================================
``ite``  the iteration index itself
``mem``  ``p[x]`` — loads array ``p`` at the parent element ``x``
``lin``  ``a·x + b`` — linear transform of the parent element
``map``  ``a[x]`` — 16-entry lookup table indexed by the parent
``ldr``  ``&p[x]`` — the *address* of element ``x`` of array ``p``
``fwd``  forwards a leftward TU's stream value to this layer
``msk``  the layer predicate (produced by the TG, not by a TU)
=======  ==========================================================

Streams are implemented as bounded circular queues; all queues of one
TU advance together (single push/pull command, Section 5.1), so the
queue storage lives in the TU and streams only define *how an element
is generated*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import TMUConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tu import TraversalUnit

#: maximum entries of a `map` stream's lookup table (Table 2: "a small
#: map a={v1, ..., v16}")
MAP_TABLE_SIZE = 16


@dataclass(frozen=True)
class MemoryArray:
    """An operand array in simulated memory: numpy data plus the byte
    address the arbiter sees."""

    data: np.ndarray
    base_address: int
    elem_bytes: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.data.ndim != 1:
            raise TMUConfigError("TMU memory arrays must be 1-D")

    def address_of(self, index: int) -> int:
        return self.base_address + int(index) * self.elem_bytes

    def load(self, index: int):
        if not 0 <= index < self.data.size:
            raise TMUConfigError(
                f"out-of-bounds TMU load: {self.name}[{index}] "
                f"(size {self.data.size})"
            )
        return self.data[index]


class Stream:
    """Base class of all TU data streams.

    ``derive(x)`` computes this stream's element from the parent's new
    element ``x``; memory-backed streams additionally report the byte
    address they touch so the engine can drive the arbiter.  A stream
    that overrides :meth:`touched_address` (today only ``MemStream``)
    is detected structurally by the TU's precompiled plan, which gives
    it a per-fiber touch buffer — overriding on a subclass is all it
    takes to join the batched arbiter path.

    ``index_in_tu`` is the stream's position in its TU's stream list,
    assigned at attach time; it doubles as the positional key into
    :class:`~repro.tmu.tu.Slot` values, so it must never change after
    slots have been produced.
    """

    kind = "abstract"

    def __init__(self, name: str = "") -> None:
        self.name = name or self.kind
        self.tu: "TraversalUnit | None" = None
        self.index_in_tu: int = -1

    def derive(self, x):
        raise NotImplementedError

    def touched_address(self, x) -> int | None:
        """Byte address read by deriving from ``x`` (None = no access)."""
        return None

    # -- SoA views (structure-of-arrays fast path) ---------------------
    #
    # ``derive_block``/``touched_addresses`` are the whole-fiber
    # counterparts of ``derive``/``touched_address``: given the parent
    # stream's values for every produced element of a fiber, return the
    # corresponding value/address columns in one vectorized operation.
    # ``block_oob_index`` reports the first element whose derivation
    # would raise, *without* raising — the fast lane engine checks it
    # up front and falls back to the exact scalar path on any hit, so
    # ``derive_block`` may assume in-bounds inputs.  A stream that
    # returns ``None`` from ``derive_block`` has no SoA view and forces
    # the scalar path for any activation it participates in.

    def derive_block(self, x: np.ndarray):
        """Vectorized ``derive`` over a block of parent elements, or
        ``None`` when this stream has no SoA view."""
        return None

    def block_oob_index(self, x: np.ndarray) -> int | None:
        """Index of the first element of ``x`` whose scalar ``derive``
        would raise (None = all in bounds)."""
        return None

    def touched_addresses(self, x: np.ndarray) -> np.ndarray | None:
        """Vectorized ``touched_address`` (None = no memory access)."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class IteStream(Stream):
    """The root stream: the TU's current iteration index."""

    kind = "ite"

    def derive(self, x):
        return x

    def derive_block(self, x):
        return np.asarray(x)


class MemStream(Stream):
    """``p[x]``: loads array ``p`` at the parent element."""

    kind = "mem"

    def __init__(self, array: MemoryArray, parent: Stream,
                 offset: int = 0, name: str = "") -> None:
        super().__init__(name or f"mem:{array.name}")
        self.array = array
        self.parent = parent
        self.offset = offset

    def derive(self, x):
        return self.array.load(int(x) + self.offset)

    def touched_address(self, x) -> int:
        return self.array.address_of(int(x) + self.offset)

    def derive_block(self, x):
        idx = np.asarray(x).astype(np.int64) + self.offset
        return self.array.data[idx]

    def block_oob_index(self, x) -> int | None:
        idx = np.asarray(x).astype(np.int64) + self.offset
        bad = (idx < 0) | (idx >= self.array.data.size)
        return int(np.argmax(bad)) if bad.any() else None

    def touched_addresses(self, x) -> np.ndarray:
        idx = np.asarray(x).astype(np.int64) + self.offset
        return self.array.base_address + idx * self.array.elem_bytes


class LinStream(Stream):
    """``a·x + b``: linear transform of the parent element."""

    kind = "lin"

    def __init__(self, a: float, b: float, parent: Stream,
                 name: str = "") -> None:
        super().__init__(name)
        self.a = a
        self.b = b
        self.parent = parent

    def derive(self, x):
        return self.a * x + self.b

    def derive_block(self, x):
        return self.a * np.asarray(x) + self.b


class MapStream(Stream):
    """``a[x]``: small lookup table (at most 16 entries)."""

    kind = "map"

    def __init__(self, table, parent: Stream, name: str = "") -> None:
        super().__init__(name)
        table = list(table)
        if not 0 < len(table) <= MAP_TABLE_SIZE:
            raise TMUConfigError(
                f"map stream table must have 1..{MAP_TABLE_SIZE} entries"
            )
        self.table = table
        self.parent = parent

    def derive(self, x):
        xi = int(x)
        if not 0 <= xi < len(self.table):
            raise TMUConfigError(
                f"map stream index {xi} outside table of "
                f"{len(self.table)} entries"
            )
        return self.table[xi]

    def derive_block(self, x):
        idx = np.asarray(x).astype(np.int64)
        table = self.table
        return [table[i] for i in idx.tolist()]

    def block_oob_index(self, x) -> int | None:
        idx = np.asarray(x).astype(np.int64)
        bad = (idx < 0) | (idx >= len(self.table))
        return int(np.argmax(bad)) if bad.any() else None


class LdrStream(Stream):
    """``&p[x]``: the address of element ``x`` of array ``p`` — used to
    hand the core pointers into operand arrays (e.g. MTTKRP P2 output
    rows)."""

    kind = "ldr"

    def __init__(self, array: MemoryArray, parent: Stream,
                 name: str = "") -> None:
        super().__init__(name or f"ldr:{array.name}")
        self.array = array
        self.parent = parent

    def derive(self, x):
        return self.array.address_of(int(x))

    def derive_block(self, x):
        idx = np.asarray(x).astype(np.int64)
        return self.array.base_address + idx * self.array.elem_bytes


class FwdStream(Stream):
    """Forwards a leftward TU's stream to this layer: the element is the
    *parent layer's* current value of ``source``, held constant for the
    whole child fiber."""

    kind = "fwd"

    def __init__(self, source: Stream, name: str = "") -> None:
        super().__init__(name or f"fwd:{source.name}")
        self.source = source

    def derive(self, x):
        # Resolution happens in the engine, which snapshots the parent
        # slot; `derive` is never called directly for fwd streams.
        raise TMUConfigError("fwd streams are resolved by the engine")
