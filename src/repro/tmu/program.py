"""The TMU programming API (paper Figure 8 and Section 4.4).

A :class:`Program` declares, layer by layer, the traversal units, data
streams, inter-layer configuration, marshaled operands and callbacks of
one tensor expression.  The SpMV P1 configuration of Figure 8 reads::

    prog = Program("spmv_p1", lanes=2)
    ptrs = prog.place_array(a.ptrs, 4, "a->ptrs")
    idxs = prog.place_array(a.idxs, 4, "a->idxs")
    vals = prog.place_array(a.vals, 8, "a->vals")
    bvec = prog.place_array(b, 8, "b")

    l0 = prog.add_layer(LayerMode.BCAST)           # BCast(row_fbrt)
    row = l0.dns_fbrt(beg=0, end=a.num_rows)
    ptbs = row.add_mem_stream(ptrs)                # row_ptbs
    ptes = row.add_mem_stream(ptrs, offset=1)      # row_ptes

    l1 = prog.add_layer(LayerMode.LOCKSTEP)        # LockStep(col0, col1)
    streams = []
    for lane in range(2):
        col = l1.rng_fbrt(beg=ptbs, end=ptes, offset=lane, stride=2)
        ci = col.add_mem_stream(idxs)
        nv = col.add_mem_stream(vals)
        vv = col.add_mem_stream(bvec, parent=ci)   # b[a->idxs[p]]
        streams.append((nv, vv))
    nnz_vals = l1.vec_operand([s[0] for s in streams])
    vec_vals = l1.vec_operand([s[1] for s in streams])
    l1.add_callback(Event.GITE, "ri", [nnz_vals, vec_vals])
    l1.add_callback(Event.GEND, "re", [])
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import TMUConfigError
from ..sim.trace import AddressSpace
from .streams import MemoryArray, Stream
from .tg import LayerMode, MERGE_MODES, TraversalGroup
from .tu import PrimitiveKind, TraversalUnit

__all__ = ["Event", "LayerMode", "Program", "Layer", "ScalarOperand",
           "VectorOperand", "MaskOperand", "Callback"]


class Event(enum.Enum):
    """Traversal/merging events callbacks can register on (§4.3):
    begin, iteration, and end of a layer's group."""

    GBEG = "gbeg"
    GITE = "gite"
    GEND = "gend"


@dataclass(frozen=True)
class ScalarOperand:
    """One lane's stream value at the current step."""

    stream: Stream

    def label(self) -> str:
        return self.stream.name


@dataclass(frozen=True)
class VectorOperand:
    """Values of corresponding streams across a layer's lanes,
    marshaled as one vector register (``add_vec_str``)."""

    streams: tuple[Stream, ...]

    def label(self) -> str:
        return "vec(" + ",".join(s.name for s in self.streams) + ")"


@dataclass(frozen=True)
class MaskOperand:
    """The layer's multi-hot predicate (the ``msk`` stream)."""

    def label(self) -> str:
        return "msk"


@dataclass(frozen=True)
class IndexOperand:
    """The layer's current merged coordinate (merge modes) or step
    ordinal (lockstep) — the value the TG's sorter produced."""

    def label(self) -> str:
        return "idx"


Operand = ScalarOperand | VectorOperand | MaskOperand | IndexOperand


@dataclass(frozen=True)
class Callback:
    """A registered callback: ``add_callback(event, id, args)``."""

    event: Event
    callback_id: str
    operands: tuple[Operand, ...]


class Layer:
    """One TMU layer: TUs on lanes, a group mode, and callbacks."""

    def __init__(self, program: "Program", index: int,
                 mode: LayerMode) -> None:
        self.program = program
        self.index = index
        self.mode = mode
        self.tus: list[TraversalUnit] = []
        self.callbacks: list[Callback] = []
        self.vec_operands: list[VectorOperand] = []
        #: analytic element-volume hint for queue sizing (Section 5.5)
        self.volume_hint: float = 0.0
        #: Keep mode: which lane to keep (None = lowest active)
        self.keep_lane: int | None = None

    # -- TU declaration ------------------------------------------------

    def _next_lane(self, lane: int | None) -> int:
        if lane is None:
            lane = len(self.tus)
        if lane != len(self.tus):
            raise TMUConfigError(
                f"layer {self.index}: declare lanes in order "
                f"(expected lane {len(self.tus)}, got {lane})"
            )
        if lane >= self.program.lanes:
            raise TMUConfigError(
                f"layer {self.index}: lane {lane} exceeds the "
                f"{self.program.lanes}-lane engine"
            )
        return lane

    def dns_fbrt(self, beg: int, end: int, stride: int = 1,
                 lane: int | None = None) -> TraversalUnit:
        """``DnsFbrT(int beg, int end, int stride=1)``."""
        tu = TraversalUnit(self.index, self._next_lane(lane),
                           PrimitiveKind.DENSE, beg=beg, end=end,
                           stride=stride)
        self.tus.append(tu)
        return tu

    def rng_fbrt(self, beg: Stream, end: Stream, offset: int = 0,
                 stride: int = 1, lane: int | None = None) -> TraversalUnit:
        """``RngFbrT(stream beg, stream end, int offset=0, int stride=1)``."""
        tu = TraversalUnit(self.index, self._next_lane(lane),
                           PrimitiveKind.RANGE, beg=beg, end=end,
                           offset=offset, stride=stride)
        self.tus.append(tu)
        return tu

    def idx_fbrt(self, beg: Stream, size: int, offset: int = 0,
                 stride: int = 1, lane: int | None = None) -> TraversalUnit:
        """``IdxFbrT(stream beg, int size, int offset=0, int stride=1)``."""
        tu = TraversalUnit(self.index, self._next_lane(lane),
                           PrimitiveKind.INDEX, beg=beg, size=size,
                           offset=offset, stride=stride)
        self.tus.append(tu)
        return tu

    # -- operands and callbacks -----------------------------------------

    def vec_operand(self, streams) -> VectorOperand:
        """``add_vec_str``: marshal one stream per lane into a vector."""
        streams = tuple(streams)
        if not streams:
            raise TMUConfigError("a vector operand needs >= 1 stream")
        for s in streams:
            if s.tu is None or s.tu.layer != self.index:
                raise TMUConfigError(
                    "vector operands marshal streams of this layer only"
                )
        operand = VectorOperand(streams)
        self.vec_operands.append(operand)
        return operand

    def mask_operand(self) -> MaskOperand:
        """Marshal this layer's predicate (``msk``) to the core."""
        return MaskOperand()

    def index_operand(self) -> IndexOperand:
        """Marshal this layer's merged coordinate to the core."""
        return IndexOperand()

    def add_callback(self, event: Event, callback_id: str,
                     operands=()) -> None:
        """``add_callback(event, callback_id, args_list)`` (§4.3)."""
        if not isinstance(event, Event):
            raise TMUConfigError(f"unknown event {event!r}")
        self.callbacks.append(Callback(event, callback_id,
                                       tuple(operands)))

    def callbacks_for(self, event: Event) -> list[Callback]:
        return [cb for cb in self.callbacks if cb.event is event]

    def set_volume_hint(self, elements: float) -> None:
        """Expected number of elements this layer loads (queue sizing)."""
        self.volume_hint = float(elements)

    # -- finalization ----------------------------------------------------

    def build_group(self) -> TraversalGroup:
        group = TraversalGroup(self.index, self.mode, self.tus,
                               keep_lane=self.keep_lane)
        if self.mode in MERGE_MODES:
            for tu in self.tus:
                if tu.merge_key is tu.ite and tu.kind is (
                        PrimitiveKind.RANGE):
                    raise TMUConfigError(
                        f"{tu.name}: merging a compressed fiber requires "
                        "set_merge_key(<coordinate stream>)"
                    )
        return group


class Program:
    """A complete TMU configuration for one tensor expression."""

    def __init__(self, name: str, lanes: int = 8,
                 max_layers: int = 4) -> None:
        if lanes < 1:
            raise TMUConfigError("a program needs at least one lane")
        self.name = name
        self.lanes = lanes
        self.max_layers = max_layers
        self.layers: list[Layer] = []
        self._space = AddressSpace()
        self.arrays: list[MemoryArray] = []

    def place_array(self, data, elem_bytes: int,
                    name: str = "") -> MemoryArray:
        """Register an operand array: the engine loads from it and the
        arbiter sees its (virtual) addresses."""
        data = np.ascontiguousarray(data)
        base = self._space.place(data.size * elem_bytes)
        array = MemoryArray(data=data, base_address=base,
                            elem_bytes=elem_bytes, name=name)
        self.arrays.append(array)
        return array

    def add_layer(self, mode: LayerMode) -> Layer:
        if len(self.layers) >= self.max_layers:
            raise TMUConfigError(
                f"program exceeds the {self.max_layers}-layer engine"
            )
        layer = Layer(self, len(self.layers), mode)
        self.layers.append(layer)
        return layer

    def validate(self) -> None:
        """Configuration-time checks the hardware would reject."""
        if not self.layers:
            raise TMUConfigError("program has no layers")
        for layer in self.layers:
            if not layer.tus:
                raise TMUConfigError(f"layer {layer.index} has no TUs")
            n_streams = len(layer.tus[0].streams)
            for tu in layer.tus[1:]:
                if len(tu.streams) != n_streams:
                    raise TMUConfigError(
                        f"layer {layer.index}: all TUs of a layer must "
                        "instantiate the same streams (Section 5.5)"
                    )
            layer.build_group()  # raises on merge-key issues
        first = self.layers[0]
        if first.mode in MERGE_MODES or first.mode is LayerMode.LOCKSTEP:
            pass  # parallel root layers are fine (all lanes start active)
        for layer in self.layers[1:]:
            for tu in layer.tus:
                for bound in (tu.beg, tu.end):
                    if isinstance(bound, Stream) and bound.tu is not None:
                        if bound.tu.layer >= layer.index:
                            raise TMUConfigError(
                                f"{tu.name}: bounds must come from a "
                                "leftward layer"
                            )

    def streams_per_layer(self) -> list[int]:
        return [len(layer.tus[0].streams) if layer.tus else 0
                for layer in self.layers]

    def volume_hints(self) -> list[float]:
        return [layer.volume_hint for layer in self.layers]
