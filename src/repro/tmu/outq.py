"""Output queue construction (paper Section 5.3).

The TMU pushes ``(callback id, operands)`` records into the current
outQ chunk; when a chunk fills, the core starts processing it while the
TMU populates the next one (double buffering).  outQ generation is
serialized across TGs in loop-nest order so the core observes callbacks
exactly as the equivalent software loop would fire them — the recursive
execution of :mod:`repro.tmu.engine` produces that order by
construction, and this module accounts for the chunking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import TMUConfigError

#: bytes of a record header (callback ID + operand count)
RECORD_HEADER_BYTES = 4
#: bytes of one scalar operand (double / pointer)
SCALAR_BYTES = 8
#: bytes of one marshaled predicate (multi-hot lane mask)
MASK_BYTES = 2


class MaskValue(int):
    """A multi-hot lane predicate marshaled as an operand (2 bytes on
    the wire instead of a full scalar)."""


@dataclass(frozen=True)
class OutQueueRecord:
    """One outQ entry the core will process."""

    callback_id: str
    operands: tuple
    mask: int
    layer: int

    def nbytes(self) -> int:
        total = RECORD_HEADER_BYTES
        for operand in self.operands:
            if isinstance(operand, tuple):
                total += SCALAR_BYTES * len(operand)
            elif isinstance(operand, MaskValue):
                total += MASK_BYTES
            else:
                total += SCALAR_BYTES
        return total


class OutQueue:
    """The memory-mapped, chunked, double-buffered output queue."""

    def __init__(self, chunk_bytes: int = 4096) -> None:
        if chunk_bytes < RECORD_HEADER_BYTES + SCALAR_BYTES:
            raise TMUConfigError("outQ chunks must fit at least one record")
        self.chunk_bytes = chunk_bytes
        self.records: list[OutQueueRecord] = []
        self.total_bytes = 0
        self._current_chunk_fill = 0
        self.chunks_completed = 0
        self.max_record_bytes = 0
        self.max_chunk_fill = 0  # high-water mark of the filling chunk
        self.records_pushed = 0  # monotonic (records may be drained)
        self._observed: dict[str, int] = {}  # telemetry deltas
        self.tracer = None  # set by the engine while tracing is on

    def push(self, record: OutQueueRecord) -> None:
        size = record.nbytes()
        self.records.append(record)
        self.records_pushed += 1
        self.total_bytes += size
        self.max_record_bytes = max(self.max_record_bytes, size)
        self._current_chunk_fill += size
        if self._current_chunk_fill > self.max_chunk_fill:
            self.max_chunk_fill = min(self._current_chunk_fill,
                                      self.chunk_bytes)
        tracer = self.tracer
        while self._current_chunk_fill >= self.chunk_bytes:
            self._current_chunk_fill -= self.chunk_bytes
            self.chunks_completed += 1
            if tracer is not None:
                tracer.instant("tmu.outq", "chunk_complete",
                               args={"bytes": self.chunk_bytes})
        if tracer is not None:
            tracer.sample("tmu.outq", "chunk_fill", self._current_chunk_fill)

    def push_many(self, records: list[OutQueueRecord]) -> None:
        """Bulk append for the fast lane engine: all records must come
        from one callback (equal ``nbytes``), which lets the chunk
        accounting run in closed form instead of per record.  The
        resulting counters are identical to repeated :meth:`push`."""
        if not records:
            return
        if self.tracer is not None:
            for record in records:
                self.push(record)
            return
        size = records[0].nbytes()
        n = len(records)
        self.records.extend(records)
        self.records_pushed += n
        self.total_bytes += size * n
        if size > self.max_record_bytes:
            self.max_record_bytes = size
        fill = self._current_chunk_fill + size * n
        crossed = fill // self.chunk_bytes
        if crossed:
            self.chunks_completed += crossed
            self.max_chunk_fill = self.chunk_bytes
            fill -= crossed * self.chunk_bytes
        elif fill > self.max_chunk_fill:
            self.max_chunk_fill = fill
        self._current_chunk_fill = fill

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def num_chunks(self) -> int:
        """Chunks produced, counting the trailing partial chunk."""
        partial = 1 if self._current_chunk_fill > 0 else 0
        return self.chunks_completed + partial

    def __iter__(self) -> Iterator[OutQueueRecord]:
        return iter(self.records)

    def drain(self) -> list[OutQueueRecord]:
        """Remove and return all buffered records (the core's read)."""
        out, self.records = self.records, []
        return out

    def observe(self, view) -> None:
        """Publish traffic counters and fill high-water marks into a
        telemetry registry view."""
        from ..obs import add_deltas

        add_deltas(view, {
            "records": self.records_pushed,
            "bytes": self.total_bytes,
            "chunks": self.num_chunks,
        }, self._observed)
        view.gauge("max_record_bytes").set(self.max_record_bytes)
        view.gauge("max_chunk_fill").set(self.max_chunk_fill)
