"""TMU context switching (paper Section 5.6).

When the OS deschedules a thread using the TMU, it quiesces the engine,
saves the architectural state, and restores it on reschedule.  The
minimum context is: the initial configuration (queue types and sizes,
``beg``/``end`` iteration boundaries), the head of each TU's ``ite``
stream, and the control registers (outQ base address and write offset).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TMURuntimeError
from .engine import TmuEngine
from .tu import TuState


@dataclass(frozen=True)
class TuContext:
    """Saved per-TU state."""

    layer: int
    lane: int
    state: str
    current_index: int
    end_index: int
    iterations: int
    fiber_count: int


@dataclass(frozen=True)
class TmuContext:
    """The architectural state saved on a context switch."""

    program_name: str
    queue_entries_per_layer: tuple[int, ...]
    tu_contexts: tuple[TuContext, ...] = field(default_factory=tuple)
    outq_write_offset: int = 0
    outq_chunks_completed: int = 0


def save_context(engine: TmuEngine) -> TmuContext:
    """Quiesce and capture the engine's architectural state."""
    tus = []
    for group in engine.groups:
        for tu in group.tus:
            tus.append(TuContext(
                layer=tu.layer,
                lane=tu.lane,
                state=tu.state.value,
                current_index=tu._cur,
                end_index=tu._end,
                iterations=tu.iterations,
                fiber_count=tu.fiber_count,
            ))
    return TmuContext(
        program_name=engine.program.name,
        queue_entries_per_layer=engine.sizing.entries_per_layer,
        tu_contexts=tuple(tus),
        outq_write_offset=engine.outq.total_bytes,
        outq_chunks_completed=engine.outq.chunks_completed,
    )


def restore_context(engine: TmuEngine, context: TmuContext) -> None:
    """Restore previously saved state into a (re-configured) engine.

    The engine must have been programmed with the same configuration —
    restoring into a different program is a protocol violation, as it
    would be in hardware.
    """
    if engine.program.name != context.program_name:
        raise TMURuntimeError(
            f"context of program {context.program_name!r} cannot be "
            f"restored into {engine.program.name!r}"
        )
    if engine.sizing.entries_per_layer != context.queue_entries_per_layer:
        raise TMURuntimeError("queue configuration mismatch on restore")
    tus = [tu for group in engine.groups for tu in group.tus]
    if len(tus) != len(context.tu_contexts):
        raise TMURuntimeError("TU count mismatch on restore")
    for tu, saved in zip(tus, context.tu_contexts):
        if (tu.layer, tu.lane) != (saved.layer, saved.lane):
            raise TMURuntimeError("TU placement mismatch on restore")
        tu._cur = saved.current_index
        tu._end = saved.end_index
        tu.iterations = saved.iterations
        tu.fiber_count = saved.fiber_count
        tu.state = TuState(saved.state)
