"""TMU area model, calibrated to the paper's RTL prototype (Section 6).

The authors synthesized the TMU in GlobalFoundries 22 nm FD-SOI
(Cadence Genus/Innovus): the 8-lane, 2 KB/lane configuration occupies
0.0704 mm², each lane 0.0080 mm², and the whole engine costs 1.52 % of
a Neoverse N1 core scaled to the same node.

This analytic model decomposes the published totals into a per-lane
component (TU logic + the lane's share of queue SRAM) and a shared
component (TGs/mergers, arbiter, outQ control), so it extrapolates to
the lane/storage sweeps of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TMUConfigError

#: published totals (GF 22FDSOI)
PAPER_TOTAL_MM2 = 0.0704
PAPER_LANE_MM2 = 0.0080
PAPER_LANES = 8
PAPER_PER_LANE_STORAGE = 2048
PAPER_CORE_FRACTION = 0.0152

#: SRAM density at the prototype node, derived from the lane area split
#: (about half a lane is queue storage).
_SRAM_MM2_PER_KB = (PAPER_LANE_MM2 * 0.5) / (PAPER_PER_LANE_STORAGE / 1024)
_LANE_LOGIC_MM2 = PAPER_LANE_MM2 * 0.5
_SHARED_MM2 = PAPER_TOTAL_MM2 - PAPER_LANES * PAPER_LANE_MM2


@dataclass(frozen=True)
class TmuAreaModel:
    """Area estimate for an arbitrary TMU configuration."""

    lanes: int = PAPER_LANES
    per_lane_storage_bytes: int = PAPER_PER_LANE_STORAGE

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise TMUConfigError("area model needs >= 1 lane")
        if self.per_lane_storage_bytes < 0:
            raise TMUConfigError("storage must be non-negative")

    def lane_mm2(self) -> float:
        """One lane: TU logic plus its queue SRAM."""
        sram = (self.per_lane_storage_bytes / 1024) * _SRAM_MM2_PER_KB
        return _LANE_LOGIC_MM2 + sram

    def shared_mm2(self) -> float:
        """Mergers, arbiter and outQ control, scaled by lane count
        (mergers grow with the lanes they sort)."""
        return _SHARED_MM2 * (self.lanes / PAPER_LANES)

    def total_mm2(self) -> float:
        return self.lanes * self.lane_mm2() + self.shared_mm2()

    def core_fraction(self, core_mm2: float | None = None) -> float:
        """Fraction of a Neoverse-N1-class core this engine costs."""
        if core_mm2 is None:
            core_mm2 = PAPER_TOTAL_MM2 / PAPER_CORE_FRACTION
        return self.total_mm2() / core_mm2


def paper_configuration() -> TmuAreaModel:
    """The evaluated 8-lane, 2 KB/lane design."""
    return TmuAreaModel()
