"""The TMU execution engine.

Runs a :class:`repro.tmu.program.Program` exactly: the loop nest is
executed layer by layer (recursively — outQ serialization across TGs in
loop-nest order falls out by construction, Section 5.3), TUs produce
stream slots, TGs merge/co-iterate lanes, callbacks fire in program
order with their marshaled operands, and the arbiter logs every memory
touch at cache-line granularity.

The engine is the golden reference for the fast analytic models in
:mod:`repro.programs`: tests assert that iteration counts, merge steps,
outQ records and traversal bytes agree between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..config import TMUConfig, default_fast_engine
from ..errors import TMUConfigError, TMURuntimeError
from ..sim.trace import AccessStream
from .arbiter import MemoryArbiter
from .outq import MaskValue, OutQueue, OutQueueRecord
from .program import (
    Callback,
    Event,
    IndexOperand,
    MaskOperand,
    Program,
    ScalarOperand,
    VectorOperand,
)
from .sizing import QueueSizing, size_queues
from .streams import Stream
from .tg import GroupStep, LayerMode, TraversalGroup
from .tu import TraversalUnit

#: parent modes that hand the same slot to every child lane
_BROADCAST_LIKE = (None, LayerMode.SINGLE, LayerMode.BCAST, LayerMode.KEEP)

Handler = Callable[[OutQueueRecord], None]


@dataclass
class RunStats:
    """Everything a run measured."""

    layer_iterations: list[int] = field(default_factory=list)
    layer_merge_steps: list[int] = field(default_factory=list)
    layer_activations: list[int] = field(default_factory=list)
    outq_records: int = 0
    outq_bytes: int = 0
    outq_chunks: int = 0
    memory_touches: int = 0
    memory_lines: int = 0
    memory_bytes: int = 0
    callback_counts: dict[str, int] = field(default_factory=dict)
    queue_sizing: QueueSizing | None = None

    @property
    def total_iterations(self) -> int:
        return sum(self.layer_iterations)


class TmuEngine:
    """Execute a TMU program functionally, collecting statistics."""

    def __init__(self, program: Program,
                 config: TMUConfig | None = None,
                 *, collect_records: bool = True,
                 fast: bool | None = None) -> None:
        program.validate()
        self.program = program
        self.config = config or TMUConfig()
        if program.lanes > self.config.lanes:
            raise TMUConfigError(
                f"program uses {program.lanes} lanes but the engine has "
                f"{self.config.lanes}"
            )
        if len(program.layers) > self.config.layers:
            raise TMUConfigError(
                f"program uses {len(program.layers)} layers but the "
                f"engine has {self.config.layers}"
            )
        volumes = program.volume_hints()
        if not any(volumes):
            # Fall back to a geometric guess: each layer loads 8x its
            # parent (the paper sizes from per-fiber nnz counts).
            volumes = [8.0 ** k for k in range(len(program.layers))]
        self.sizing = size_queues(program.streams_per_layer(), volumes,
                                  self.config.per_lane_storage_bytes)
        self.arbiter = MemoryArbiter()
        self.outq = OutQueue(self.config.outq_chunk_bytes)
        self.collect_records = collect_records
        self.groups: list[TraversalGroup] = [
            layer.build_group() for layer in program.layers
        ]
        self._handlers: dict[str, Handler] = {}
        self._default_handler: Handler | None = None
        self._tracer = obs.NULL_TRACER
        self._tracing = False
        self._trace_run_start = 0
        #: TUs buffer touches per fiber and flush them in batches when
        #: set; ``run()`` derives it from ``batch_touches_enabled``,
        #: clearing it while tracing (per-grant instants need the
        #: per-touch path).  Flip ``batch_touches_enabled`` off to force
        #: the per-touch reference path (equivalence tests, benchmarks).
        self.batch_touches = True
        self.batch_touches_enabled = True
        #: engine selection: True runs activations through the
        #: structure-of-arrays lane engine (:mod:`.fastlane`), False
        #: the scalar reference loop.  ``None`` at construction picks
        #: the process default (the CLI's ``--fast``/``--reference``
        #: switch); ``run()`` always uses the scalar path while tracing
        #: or when ``batch_touches_enabled`` is off, so per-event
        #: instants and per-touch comparisons keep their semantics.
        self.fast = default_fast_engine() if fast is None else bool(fast)
        self._resolvers: dict[tuple[int, int], Callable] = {}
        self._layer_callbacks: list[tuple[list, list, list]] = []

    # -- hooks -----------------------------------------------------------

    def record_memory_touch(self, tu: TraversalUnit, stream: Stream,
                            address: int) -> None:
        self.arbiter.record_touch(tu, stream, address)

    def record_touch_batch(self, tu: TraversalUnit, stream: Stream,
                           addresses: list[int]) -> None:
        self.arbiter.record_touches(tu, stream, addresses)

    # -- operand resolution ------------------------------------------------

    def _resolve_operands(self, callback: Callback, layer_idx: int,
                          step: GroupStep | None,
                          envs: list[dict[Stream, object]],
                          active_mask: int) -> tuple:
        resolved = []
        first_lane = (active_mask & -active_mask).bit_length() - 1
        for operand in callback.operands:
            if isinstance(operand, MaskOperand):
                resolved.append(MaskValue(step.mask if step else 0))
            elif isinstance(operand, IndexOperand):
                resolved.append(step.index if step else -1)
            elif isinstance(operand, VectorOperand):
                values = []
                for s in operand.streams:
                    lane = s.tu.lane if s.tu else 0
                    slot = step.slots[lane] if step else None
                    values.append(slot[s] if slot is not None else 0.0)
                resolved.append(tuple(values))
            elif isinstance(operand, ScalarOperand):
                s = operand.stream
                if s.tu is not None and s.tu.layer == layer_idx and step:
                    slot = step.slots[s.tu.lane]
                    resolved.append(slot[s] if slot is not None else 0.0)
                else:
                    env = envs[first_lane] if envs else {}
                    if s not in env:
                        raise TMURuntimeError(
                            f"operand {s.name} not available at layer "
                            f"{layer_idx}"
                        )
                    resolved.append(env[s])
            else:  # pragma: no cover - exhaustive
                raise TMURuntimeError(f"unknown operand {operand!r}")
        return tuple(resolved)

    def _compile_operand(self, operand, layer_idx: int) -> Callable:
        """One closure computing this operand from (step, envs, first
        active lane) — the per-``_fire`` isinstance ladder of
        :meth:`_resolve_operands` hoisted to ``run()`` time."""
        if isinstance(operand, MaskOperand):
            return lambda step, envs, first: MaskValue(
                step.mask if step is not None else 0)
        if isinstance(operand, IndexOperand):
            return lambda step, envs, first: (
                step.index if step is not None else -1)
        if isinstance(operand, VectorOperand):
            # (lane, value index) pairs; index_in_tu is frozen once the
            # program is built, so the positional read is safe to bind
            pairs = tuple((s.tu.lane if s.tu else 0, s.index_in_tu)
                          for s in operand.streams)
            zeros = (0.0,) * len(pairs)

            def vector(step, envs, first, pairs=pairs, zeros=zeros):
                if step is None:
                    return zeros
                slots = step.slots
                return tuple([
                    slots[lane].values[vi] if slots[lane] is not None
                    else 0.0
                    for lane, vi in pairs])
            return vector
        if isinstance(operand, ScalarOperand):
            s = operand.stream
            same_layer = s.tu is not None and s.tu.layer == layer_idx
            lane = s.tu.lane if same_layer else 0
            vi = s.index_in_tu

            def scalar(step, envs, first, s=s, lane=lane, vi=vi,
                       same_layer=same_layer, layer_idx=layer_idx):
                if same_layer and step is not None:
                    slot = step.slots[lane]
                    return slot.values[vi] if slot is not None else 0.0
                env = envs[first] if envs else {}
                try:
                    return env[s]
                except KeyError:
                    raise TMURuntimeError(
                        f"operand {s.name} not available at layer "
                        f"{layer_idx}"
                    ) from None
            return scalar
        raise TMURuntimeError(  # pragma: no cover - exhaustive
            f"unknown operand {operand!r}")

    def _compile_callback(self, callback: Callback,
                          layer_idx: int) -> Callable:
        """One resolver per (layer, callback): ``(step, envs, first
        active lane) -> operand tuple``, with the common arities
        unrolled so a fire costs one call per operand and no generator
        machinery."""
        parts = [self._compile_operand(op, layer_idx)
                 for op in callback.operands]
        if not parts:
            return lambda step, envs, first: ()
        if len(parts) == 1:
            p0, = parts
            return lambda step, envs, first: (p0(step, envs, first),)
        if len(parts) == 2:
            p0, p1 = parts
            return lambda step, envs, first: (
                p0(step, envs, first), p1(step, envs, first))
        if len(parts) == 3:
            p0, p1, p2 = parts
            return lambda step, envs, first: (
                p0(step, envs, first), p1(step, envs, first),
                p2(step, envs, first))
        return lambda step, envs, first, parts=tuple(parts): tuple(
            [p(step, envs, first) for p in parts])

    def _compile_resolvers(self) -> None:
        """Precompile one operand-resolver per (layer, callback) so
        ``_fire`` runs a flat tuple build instead of re-dispatching on
        operand types every record; also snapshot the per-event callback
        lists ``Layer.callbacks_for`` would otherwise rebuild per
        activation, pairing each callback with its resolver."""
        self._resolvers = {}
        self._layer_callbacks = []
        for layer_idx, layer in enumerate(self.program.layers):
            per_event = []
            for event in (Event.GBEG, Event.GITE, Event.GEND):
                pairs = []
                for cb in layer.callbacks_for(event):
                    resolver = self._compile_callback(cb, layer_idx)
                    self._resolvers[(layer_idx, id(cb))] = resolver
                    pairs.append((cb, resolver))
                per_event.append(pairs)
            self._layer_callbacks.append(tuple(per_event))

    def _fire(self, callback: Callback, layer_idx: int,
              step: GroupStep | None,
              envs: list[dict[Stream, object]], active_mask: int,
              resolver: Callable | None = None) -> None:
        if resolver is None:
            resolver = self._resolvers.get((layer_idx, id(callback)))
        if resolver is not None:
            first = (active_mask & -active_mask).bit_length() - 1
            operands = resolver(step, envs, first)
        else:  # direct _fire outside run(): reference resolution
            operands = self._resolve_operands(callback, layer_idx, step,
                                              envs, active_mask)
        record = OutQueueRecord(
            callback_id=callback.callback_id,
            operands=operands,
            mask=step.mask if step else 0,
            layer=layer_idx,
        )
        self.outq.push(record)
        if not self.collect_records:
            self.outq.records.clear()
        self._stats.callback_counts[callback.callback_id] = (
            self._stats.callback_counts.get(callback.callback_id, 0) + 1
        )
        handler = self._handlers.get(callback.callback_id,
                                     self._default_handler)
        if handler is not None:
            handler(record)

    # -- execution -----------------------------------------------------------

    def run(self, handlers: dict[str, Handler] | Handler | None = None
            ) -> RunStats:
        """Execute the program.

        ``handlers`` maps callback IDs to callables receiving each
        :class:`OutQueueRecord` (the "core" side); a single callable
        handles every callback; ``None`` just fills the outQ.
        """
        if callable(handlers):
            self._default_handler = handlers
            self._handlers = {}
        else:
            self._handlers = dict(handlers or {})
            self._default_handler = None

        self._stats = RunStats(
            layer_iterations=[0] * len(self.groups),
            layer_merge_steps=[0] * len(self.groups),
            layer_activations=[0] * len(self.groups),
            queue_sizing=self.sizing,
        )
        # One virtual-clock tick per TG gite step; components hold the
        # tracer (or None) so dormant hooks cost one attribute read.
        tracer = obs.tracer()
        self._tracer = tracer
        self._tracing = tracer.enabled
        self._trace_run_start = tracer.now
        self.arbiter.tracer = tracer if self._tracing else None
        self.outq.tracer = tracer if self._tracing else None
        self.batch_touches = self.batch_touches_enabled and not (
            self._tracing)
        self._compile_resolvers()
        root_envs = [dict() for _ in range(self.program.lanes)]
        if self.fast and self.batch_touches:
            from .fastlane import run_layers
            run_layers(self, root_envs)
        else:
            self._run_layer(0, None, None, root_envs)
        # fibers cut short (conjunctive early end) never reach fend,
        # so their buffered touches drain here
        for group in self.groups:
            for tu in group.tus:
                tu.flush_touches(self)

        stats = self._stats
        for idx, group in enumerate(self.groups):
            stats.layer_iterations[idx] = sum(
                tu.iterations for tu in group.tus)
            stats.layer_merge_steps[idx] = group.merge_steps
        stats.outq_records = self.outq.num_records if (
            self.collect_records) else sum(stats.callback_counts.values())
        stats.outq_bytes = self.outq.total_bytes
        stats.outq_chunks = self.outq.num_chunks
        stats.memory_touches = self.arbiter.total_touches
        stats.memory_lines = self.arbiter.total_line_requests
        stats.memory_bytes = self.arbiter.total_bytes()
        if self._tracing:
            self._trace_summaries(stats)
        if obs.enabled():
            self.publish_telemetry()
        return stats

    def _trace_summaries(self, stats: RunStats) -> None:
        """Emit end-of-run summary spans whose args come from the same
        counters as :class:`RunStats` — the stall report folds these, so
        its engine totals agree with the returned stats by construction
        (and, being last into the ring buffer, they survive capacity
        pressure)."""
        tracer = self._tracer
        start = self._trace_run_start
        dur = tracer.now - start
        for idx, group in enumerate(self.groups):
            stall = max(0, group.merge_steps - group.gite_count)
            tracer.span(f"tmu.tg.layer{idx}", "layer_summary", start, dur, {
                "layer": idx,
                "lanes": group.num_lanes,
                "activations": stats.layer_activations[idx],
                "iterations": stats.layer_iterations[idx],
                "merge_steps": stats.layer_merge_steps[idx],
                "stall_advances": stall,
            })
        tracer.span("tmu.arbiter", "summary", start, dur, {
            "touches": stats.memory_touches,
            "lines": stats.memory_lines,
            "bytes": stats.memory_bytes,
        })
        tracer.span("tmu.outq", "summary", start, dur, {
            "records": stats.outq_records,
            "bytes": stats.outq_bytes,
            "chunks": stats.outq_chunks,
        })
        tracer.span("tmu.engine", "run", start, dur, {
            "iterations": stats.total_iterations,
            "records": stats.outq_records,
            "memory_lines": stats.memory_lines,
        })

    def publish_telemetry(self) -> None:
        """Push this run's per-component event counts into the active
        :mod:`repro.obs` registry (no-op when telemetry is disabled)."""
        registry = obs.active()
        if registry is None:
            return
        engine = registry.prefixed("tmu.engine")
        engine.counter("runs").add()
        for cb_id, count in self._stats.callback_counts.items():
            engine.counter(f"callbacks.{cb_id}").add(count)
        for idx, group in enumerate(self.groups):
            layer = registry.prefixed(f"tmu.tg.layer{idx}")
            group.observe(layer)
            layer.gauge("queue_entries").set(self.sizing.entries(idx))
        engine.gauge("queue_utilization").set(self.sizing.utilization)
        self.arbiter.observe(registry.prefixed("tmu.arbiter"))
        self.outq.observe(registry.prefixed("tmu.outq"))

    def _child_mask(self, layer_idx: int,
                    parent_mode: LayerMode | None,
                    parent_step: GroupStep | None) -> int:
        layer = self.program.layers[layer_idx]
        configured = (1 << len(layer.tus)) - 1
        if layer.mode in (LayerMode.SINGLE, LayerMode.BCAST):
            return 1
        if parent_mode in _BROADCAST_LIKE or parent_step is None:
            return configured
        mask = parent_step.mask & configured
        if mask == 0:
            raise TMURuntimeError(
                f"layer {layer_idx}: no active lanes after hierarchical "
                "predicate"
            )
        return mask

    def _parent_lane_for(self, child_lane: int,
                         parent_mode: LayerMode | None,
                         parent_step: GroupStep | None) -> int | None:
        if parent_step is None:
            return None
        if parent_mode in (LayerMode.SINGLE, LayerMode.BCAST):
            return 0
        if parent_mode is LayerMode.KEEP:
            return parent_step.active_lanes()[0]
        return child_lane

    def _resolve_bound(self, tu: TraversalUnit, bound,
                       env: dict[Stream, object]):
        if isinstance(bound, Stream):
            if bound not in env:
                raise TMURuntimeError(
                    f"{tu.name}: bound stream {bound.name} not produced "
                    "by an ancestor layer"
                )
            return int(env[bound])
        return int(bound)

    def _run_layer(self, layer_idx: int, parent_mode: LayerMode | None,
                   parent_step: GroupStep | None,
                   parent_envs: list[dict[Stream, object]]) -> None:
        layer = self.program.layers[layer_idx]
        group = self.groups[layer_idx]
        mask = self._child_mask(layer_idx, parent_mode, parent_step)
        self._stats.layer_activations[layer_idx] += 1

        envs: list[dict[Stream, object]] = [dict() for _ in (
            range(self.program.lanes))]
        for lane in range(len(layer.tus)):
            if not mask & (1 << lane):
                continue
            parent_lane = self._parent_lane_for(lane, parent_mode,
                                                parent_step)
            env = dict(parent_envs[parent_lane or 0])
            if parent_step is not None and parent_lane is not None:
                slot = parent_step.slots[parent_lane]
                if slot is not None:
                    env.update(slot.items())
            envs[lane] = env
            tu = layer.tus[lane]
            if tu.kind.name == "DENSE":
                beg, end = int(tu.beg), int(tu.end)
            else:
                beg = self._resolve_bound(tu, tu.beg, env)
                if tu.kind.name == "RANGE":
                    end = self._resolve_bound(tu, tu.end, env)
                else:  # INDEX
                    end = beg + int(tu.size)
            tu.begin(beg, end, fwd_values=env)

        gbeg_cbs, gite_cbs, gend_cbs = self._layer_callbacks[layer_idx]
        for cb, res in gbeg_cbs:
            self._fire(cb, layer_idx, None, envs, mask, res)

        tracing = self._tracing
        if tracing:
            tracer = self._tracer
            track = f"tmu.tg.layer{layer_idx}"
            t0 = tracer.now

        last = layer_idx == len(self.program.layers) - 1
        for step in group.iterate(mask, engine=self):
            if tracing:
                tracer.tick()
                tracer.instant(track, "gite", args={"mask": step.mask})
            for cb, res in gite_cbs:
                self._fire(cb, layer_idx, step, envs, mask, res)
            if not last:
                self._run_layer(layer_idx + 1, layer.mode, step, envs)
            group.recycle(step)

        for cb, res in gend_cbs:
            self._fire(cb, layer_idx, None, envs, mask, res)

        if tracing:
            tracer.span(track, "activation", t0, tracer.now - t0)

    # -- exported traces ------------------------------------------------------

    def access_streams(self) -> list[AccessStream]:
        """Ordered line-request streams for the timing model."""
        return self.arbiter.access_streams()
