"""SpTC on the TMU (Table 4 row "SpTC").

``Z_ij = A_ikl B_lkj``: the contraction modes of each ``i`` slice of
``A`` are intersected (``ConjMrg``) against ``B``'s fiber directory,
and every match streams the corresponding ``j`` fiber.  To fit the
engine's four layers, the two contraction levels are co-iterated over a
*linearized composite key* ``k·L + l`` — a flattened view of the CSF
levels that the format abstraction permits (a fused compressed level),
matching how Sparta's hash directory exposes (l, k) fibers.

Only the symbolic phase is computed (as in the paper's evaluation): the
core counts distinct ``j`` hits per output row.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.csf import CsfTensor
from ..kernels.sptc import match_b_fibers
from ..sim.machine import TmuWorkloadModel
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..tmu.program import Event, LayerMode, Program, ScalarOperand
from ..types import INDEX_BYTES
from .common import BuiltProgram, record_bytes, write_stream


def _linearize_contraction(a: CsfTensor) -> tuple[np.ndarray, np.ndarray,
                                                  np.ndarray]:
    """Per-root-slice flattened (k, l) composite keys of ``A_ikl``.

    Returns (leaf_beg, leaf_end, keys): leaf position ranges per root
    node, and the composite key ``k·L + l`` for every leaf.
    """
    big_l = a.shape[2]
    k_of_leaf = np.repeat(a.idxs[1], np.diff(a.ptrs[2]))
    keys = k_of_leaf * big_l + a.idxs[2]
    # leaf range per root node: compose ptrs[1] and ptrs[2]
    leaf_beg = a.ptrs[2][a.ptrs[1][:-1]]
    leaf_end = a.ptrs[2][a.ptrs[1][1:]]
    return leaf_beg, leaf_end, keys


def _directory(b: CsfTensor) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """B's fiber directory sorted by the same composite key: for each
    (l, k) fiber of ``B_lkj``, its key ``k·L + l`` and j-fiber bounds."""
    big_l = b.shape[0]
    l_of_node = np.repeat(b.idxs[0], np.diff(b.ptrs[1]))
    keys = b.idxs[1] * big_l + l_of_node
    order = np.argsort(keys, kind="stable")
    return (keys[order], b.ptrs[2][:-1][order], b.ptrs[2][1:][order])


def build_sptc_program(a: CsfTensor, b: CsfTensor,
                       name: str = "sptc") -> BuiltProgram:
    """Build the runnable SpTC (symbolic) program."""
    if a.ndim != 3 or b.ndim != 3:
        raise WorkloadError("the SpTC program expects order-3 CSF tensors")
    if a.shape[1] != b.shape[1] or a.shape[2] != b.shape[0]:
        raise WorkloadError("contraction dimensions of A and B must match")
    leaf_beg, leaf_end, a_keys = _linearize_contraction(a)
    dir_keys, dir_jbeg, dir_jend = _directory(b)

    prog = Program(name, lanes=2, max_layers=4)
    a_i = prog.place_array(a.idxs[0], INDEX_BYTES, "A->idxs0")
    a_lb = prog.place_array(leaf_beg, INDEX_BYTES, "A->leaf_beg")
    a_le = prog.place_array(leaf_end, INDEX_BYTES, "A->leaf_end")
    a_key = prog.place_array(a_keys, INDEX_BYTES, "A->kl_keys")
    d_key = prog.place_array(dir_keys, INDEX_BYTES, "B->dir_keys")
    d_jb = prog.place_array(dir_jbeg, INDEX_BYTES, "B->dir_jbeg")
    d_je = prog.place_array(dir_jend, INDEX_BYTES, "B->dir_jend")
    b_j = prog.place_array(b.idxs[2], INDEX_BYTES, "B->idxs2")

    l0 = prog.add_layer(LayerMode.BCAST)
    root = l0.dns_fbrt(beg=0, end=int(a.idxs[0].size))
    i_coord = root.add_mem_stream(a_i, name="i")
    lb = root.add_mem_stream(a_lb, name="kl_beg")
    le = root.add_mem_stream(a_le, name="kl_end")
    l0.add_callback(Event.GBEG, "sb", [])
    l0.set_volume_hint(a.idxs[0].size)

    l1 = prog.add_layer(LayerMode.CONJ_MRG)
    a_fib = l1.rng_fbrt(beg=lb, end=le)
    a_k = a_fib.add_mem_stream(a_key, name="a_kl")
    a_fib.set_merge_key(a_k)
    # Pad lane 0 to the directory lane's stream count: all TUs of a
    # layer instantiate the same streams (Section 5.5).
    a_fib.add_lin_stream(0, 0, name="pad0")
    a_fib.add_lin_stream(0, 0, name="pad1")
    dir_fib = l1.dns_fbrt(beg=0, end=int(dir_keys.size))
    d_k = dir_fib.add_mem_stream(d_key, name="d_kl")
    jb = dir_fib.add_mem_stream(d_jb, name="j_beg")
    je = dir_fib.add_mem_stream(d_je, name="j_end")
    dir_fib.set_merge_key(d_k)
    l1.set_volume_hint(a.nnz + a.idxs[0].size * max(1, dir_keys.size))

    l2 = prog.add_layer(LayerMode.KEEP)
    l2.keep_lane = 1                           # keep the B-side lane
    pad = l2.rng_fbrt(beg=lb, end=lb)          # lane 0: A side has no j
    pad.add_mem_stream(b_j, name="pad")
    jfib = l2.rng_fbrt(beg=jb, end=je)         # lane 1: B's j fiber
    j_coord = jfib.add_mem_stream(b_j, name="j")
    l2.add_callback(Event.GITE, "hit", [ScalarOperand(i_coord),
                                        ScalarOperand(j_coord)])
    l2.set_volume_hint(b.nnz)

    rows: dict[int, set[int]] = {}

    def sb(record):
        pass  # slice begin: nothing to do in the symbolic phase

    def hit(record):
        i, j = record.operands
        rows.setdefault(int(i), set()).add(int(j))

    def result():
        counts = np.zeros(int(a.idxs[0].size), dtype=np.int64)
        order = {int(c): n for n, c in enumerate(a.idxs[0])}
        for i, js in rows.items():
            counts[order[i]] = len(js)
        return counts

    return BuiltProgram(
        program=prog,
        handlers={"sb": sb, "hit": hit},
        result=result,
        description="SpTC symbolic: ConjMrg over linearized (k,l) keys",
    )


def sptc_timing_model(a: CsfTensor, b: CsfTensor,
                      machine: MachineConfig, *,
                      name: str = "sptc") -> TmuWorkloadModel:
    """Analytic TMU workload model for the SpTC symbolic phase.

    Timing follows the scan-and-lookup mapping the evaluation needs on
    hypersparse tensors: a dense auxiliary index over ``l`` (the
    symbolic phase materializes one, as Sparta's directory does) gives
    ``B_l``'s k-fiber bounds in O(1), and only the k-fiber is merged
    conjunctively against the single current ``k`` — so merge work is
    ``Σ |B_l k-fiber|/2`` over A's leaves, not a directory rescan per
    slice.  The runnable program in :func:`build_sptc_program` uses the
    simpler (but rescan-heavy) linearized-directory formulation, which
    is exact functionally.
    """
    # Per A leaf (k, l): probe the dense l-index, then walk half of
    # B_l's k-fiber on average; on a k match, stream the j fiber.
    # All three tallies vectorize: the l probes are one searchsorted
    # against B's (sorted) root coordinates, and the (l, k) matches use
    # the shared packed-key probe.
    num_l = int(b.idxs[0].size)
    k_of_leaf = np.repeat(a.idxs[1], np.diff(a.ptrs[2]))
    if num_l and a.nnz:
        l_node = np.searchsorted(b.idxs[0], a.idxs[2])
        safe = np.minimum(l_node, num_l - 1)
        l_found = (l_node < num_l) & (b.idxs[0][safe] == a.idxs[2])
        fibers = (b.ptrs[1][1:] - b.ptrs[1][:-1])[safe[l_found]]
        merge_elements = int(np.maximum(1, fibers // 2).sum()
                             + np.count_nonzero(~l_found))
    else:
        merge_elements = int(a.nnz)
    pos, hit = match_b_fibers(b, a.idxs[2], k_of_leaf)
    matches = int(hit.sum())
    j_scanned = int((b.ptrs[2][pos[hit] + 1] - b.ptrs[2][pos[hit]]).sum())

    space = AddressSpace()
    a_key_base = space.place(max(1, a.nnz) * INDEX_BYTES)
    l_index_base = space.place(max(1, b.shape[0]) * INDEX_BYTES)
    k_scan_base = space.place(max(1, b.idxs[1].size) * INDEX_BYTES)
    b_j_base = space.place(max(1, b.nnz) * INDEX_BYTES)

    a_leaf_scan = np.arange(a.nnz, dtype=np.int64)
    l_probes = a.idxs[2]                    # dense-index probes at l
    k_scan = np.arange(merge_elements, dtype=np.int64) % max(
        1, b.idxs[1].size)
    j_positions = np.arange(j_scanned, dtype=np.int64) % max(1, b.nnz)

    streams = [
        AccessStream(a_key_base + a_leaf_scan * INDEX_BYTES,
                     INDEX_BYTES, "read", "A kl leaves"),
        AccessStream(l_index_base + l_probes * INDEX_BYTES, INDEX_BYTES,
                     "read", "B l-index", dependent=True),
        AccessStream(k_scan_base + k_scan * INDEX_BYTES, INDEX_BYTES,
                     "read", "B k fibers", dependent=True),
        AccessStream(b_j_base + j_positions * INDEX_BYTES, INDEX_BYTES,
                     "read", "B j fibers", dependent=True),
    ]
    outq_bytes = (j_scanned * record_bytes(0, 0, num_scalar_operands=2)
                  + matches * 4)
    core_trace = KernelTrace(
        name=f"{name}-callbacks",
        # the symbolic set insertion per streamed j is the same work the
        # baseline does: hash, probe, insert
        scalar_ops=5 * j_scanned + 2 * matches,
        vector_ops=0,
        loads=2 * j_scanned,
        stores=j_scanned,
        branches=j_scanned + matches,
        datadep_branches=j_scanned // 4,
        flops=0.0,
        streams=[write_stream(space, max(1, matches), "Z symbolic",
                              INDEX_BYTES)],
        dependent_load_fraction=0.1,
        parallel_units=int(a.idxs[0].size),
    )
    return TmuWorkloadModel(
        name=name,
        tmu_streams=streams,
        layer_elements=[int(a.idxs[0].size), merge_elements, j_scanned],
        layer_lanes=[1, 2, 2],
        merge_steps=int(merge_elements / 1.6),
        outq_records=j_scanned + matches,
        outq_bytes=outq_bytes,
        core_trace=core_trace,
    )
