"""TMU programs: the Table 4 kernel-to-hardware mappings.

Each module provides up to two entry points per kernel variant:

* ``build_*_program(...)`` — an exact, runnable
  :class:`repro.tmu.program.Program` for the functional engine,
  together with the core-side callback closures needed to compute the
  kernel.  These power the Table 4 completeness tests and the examples.
* ``*_timing_model(...)`` — a fast, vectorized
  :class:`repro.sim.machine.TmuWorkloadModel` describing the same
  workload's TMU/core split for the interval timing model.  Tests
  cross-check the analytic counts against the functional engine on
  small inputs.

The registry at the bottom maps Table 4 row names to builders.
"""

from .spmv import build_spmv_program, spmv_timing_model
from .spmspv import build_spmspv_program
from .spmm import build_spmm_program
from .spmspm import build_spmspm_program, spmspm_timing_model
from .spkadd import build_spkadd_program, spkadd_timing_model
from .pagerank import pagerank_timing_model
from .triangle import build_triangle_program, triangle_timing_model
from .mttkrp import build_mttkrp_program, mttkrp_timing_model
from .cpals import cpals_timing_model
from .sptc import build_sptc_program, sptc_timing_model
from .spttv import build_spttv_program
from .spttm import build_spttm_program

#: Table 4 rows → functional program builders (arguments differ per
#: kernel; see each builder's docstring).
TABLE4_BUILDERS = {
    "SpMV P0": build_spmv_program,
    "SpMV P1": build_spmv_program,
    "SpMSpV": build_spmspv_program,
    "SpMM P0": build_spmm_program,
    "SpMM P1": build_spmm_program,
    "SpMM P2": build_spmm_program,
    "SpMSpM P0": build_spmspm_program,
    "SpMSpM P2": build_spmspm_program,
    "SpKAdd": build_spkadd_program,
    "PageRank": build_spmv_program,   # PR's accelerated part is SpMV
    "TriangleCount": build_triangle_program,
    "MTTKRP P1": build_mttkrp_program,
    "MTTKRP P2": build_mttkrp_program,
    "SpTC": build_sptc_program,
    "SpTTV": build_spttv_program,
    "SpTTM": build_spttm_program,
}

__all__ = [
    "TABLE4_BUILDERS",
    "build_spmv_program",
    "spmv_timing_model",
    "build_spmspv_program",
    "build_spmm_program",
    "build_spmspm_program",
    "spmspm_timing_model",
    "build_spkadd_program",
    "spkadd_timing_model",
    "pagerank_timing_model",
    "build_triangle_program",
    "triangle_timing_model",
    "build_mttkrp_program",
    "mttkrp_timing_model",
    "cpals_timing_model",
    "build_sptc_program",
    "sptc_timing_model",
    "build_spttv_program",
    "build_spttm_program",
]
