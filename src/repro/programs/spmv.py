"""SpMV on the TMU (Table 4 rows "SpMV P0"/"SpMV P1", Figures 8 & 9).

Two layers: a dense traversal over row pointers, then a compressed
traversal of each row co-iterated across lanes in lockstep, each lane
loading column indexes, values, and the gathered vector elements at a
different offset.  ``ri`` fires per lockstep step with two vector
operands; ``re`` fires at each row's end.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..formats.csr import CsrMatrix
from ..sim.machine import TmuWorkloadModel
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import (
    BuiltProgram,
    csr_tmu_streams,
    record_bytes,
    sve_lanes_of,
    write_stream,
)


def build_spmv_program(a: CsrMatrix, b, *, lanes: int = 2,
                       name: str = "spmv") -> BuiltProgram:
    """Build the runnable SpMV program (P1 when ``lanes > 1``, P0 when
    ``lanes == 1``) plus its core callbacks."""
    b = np.asarray(b, dtype=np.float64)
    prog = Program(name, lanes=max(1, lanes))
    ptrs = prog.place_array(a.ptrs, INDEX_BYTES, "a->ptrs")
    idxs = prog.place_array(a.idxs, INDEX_BYTES, "a->idxs")
    vals = prog.place_array(a.vals, VALUE_BYTES, "a->vals")
    bvec = prog.place_array(b, VALUE_BYTES, "b")

    mode0 = LayerMode.BCAST if lanes > 1 else LayerMode.SINGLE
    l0 = prog.add_layer(mode0)
    row = l0.dns_fbrt(beg=0, end=a.num_rows)
    ptbs = row.add_mem_stream(ptrs, name="row_ptbs")
    ptes = row.add_mem_stream(ptrs, offset=1, name="row_ptes")
    l0.set_volume_hint(a.num_rows)

    mode1 = LayerMode.LOCKSTEP if lanes > 1 else LayerMode.SINGLE
    l1 = prog.add_layer(mode1)
    nnz_streams, vec_streams = [], []
    for lane in range(lanes):
        col = l1.rng_fbrt(beg=ptbs, end=ptes, offset=lane, stride=lanes)
        ci = col.add_mem_stream(idxs, name=f"col_idxs{lane}")
        nnz_streams.append(col.add_mem_stream(vals, name=f"nnz_vals{lane}"))
        vec_streams.append(col.add_mem_stream(bvec, parent=ci,
                                              name=f"vec_vals{lane}"))
    nnz_vals = l1.vec_operand(nnz_streams)
    vec_vals = l1.vec_operand(vec_streams)
    l1.add_callback(Event.GITE, "ri", [nnz_vals, vec_vals,
                                       l1.mask_operand()])
    l1.add_callback(Event.GEND, "re", [])
    l1.set_volume_hint(a.nnz)

    out = np.zeros(a.num_rows)
    state = {"sum": 0.0, "row": 0}

    def ri(record):
        nv, vv, mask = record.operands
        acc = 0.0
        for k in range(len(nv)):
            if mask & (1 << k):
                acc += nv[k] * vv[k]
        state["sum"] += acc

    def re(record):
        out[state["row"]] = state["sum"]
        state["sum"] = 0.0
        state["row"] += 1

    return BuiltProgram(
        program=prog,
        handlers={"ri": ri, "re": re},
        result=lambda: out.copy(),
        description="SpMV CSR, inner-loop (column) vectorization",
    )


def spmv_timing_model(a: CsrMatrix, machine: MachineConfig,
                      *, name: str = "spmv") -> TmuWorkloadModel:
    """Analytic TMU workload model for SpMV P1."""
    lanes = sve_lanes_of(machine)
    rows, nnz = a.num_rows, a.nnz
    row_nnz = a.row_nnz()
    steps = int(np.sum(-(-row_nnz // lanes)))  # lockstep gites

    space = AddressSpace()
    streams, bases = csr_tmu_streams(a, space)
    b_base = space.place(a.num_cols * VALUE_BYTES)
    streams.append(AccessStream(
        b_base + a.idxs * VALUE_BYTES, VALUE_BYTES, "read", "b[idx]",
        dependent=True))

    ri_bytes = record_bytes(2, lanes, with_mask=True)
    re_bytes = record_bytes(0, 0)
    outq_bytes = steps * ri_bytes + rows * re_bytes

    core_trace = KernelTrace(
        name=f"{name}-callbacks",
        scalar_ops=3 * rows,              # result store bookkeeping
        vector_ops=3 * steps,             # mul + reduce (2 uops)
        loads=2 * steps,                  # two vector operands per ri
        stores=rows,
        branches=steps + rows,            # outQ dispatch, predictable
        datadep_branches=0,
        flops=2.0 * nnz,
        streams=[write_stream(space, rows, "x[i]")],
        dependent_load_fraction=0.0,
        parallel_units=rows,
    )
    return TmuWorkloadModel(
        name=name,
        tmu_streams=streams,
        layer_elements=[rows, nnz],
        layer_lanes=[1, lanes],
        merge_steps=0,
        outq_records=steps + rows,
        outq_bytes=outq_bytes,
        core_trace=core_trace,
    )
