"""SpTTV on the TMU (Table 4 row "SpTTV").

``Z_ij = A_ijk B_k`` over a CSF tensor: three compressed layers walk
the CSF tree (i → j → k); the leaf layer loads values and the gathered
vector elements; ``re`` fires per (i, j) fiber with the leftward
coordinates marshaled as scalar operands.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..formats.csf import CsfTensor
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import BuiltProgram


def build_spttv_program(a: CsfTensor, b,
                        name: str = "spttv") -> BuiltProgram:
    """Build the runnable SpTTV program."""
    if a.ndim != 3:
        raise WorkloadError("the SpTTV program expects an order-3 CSF")
    b = np.asarray(b, dtype=np.float64)

    prog = Program(name, lanes=1)
    idx0 = prog.place_array(a.idxs[0], INDEX_BYTES, "A->idxs0")
    ptr1 = prog.place_array(a.ptrs[1], INDEX_BYTES, "A->ptrs1")
    idx1 = prog.place_array(a.idxs[1], INDEX_BYTES, "A->idxs1")
    ptr2 = prog.place_array(a.ptrs[2], INDEX_BYTES, "A->ptrs2")
    idx2 = prog.place_array(a.idxs[2], INDEX_BYTES, "A->idxs2")
    vals = prog.place_array(a.vals, VALUE_BYTES, "A->vals")
    bvec = prog.place_array(b, VALUE_BYTES, "b")

    l0 = prog.add_layer(LayerMode.SINGLE)
    root = l0.dns_fbrt(beg=0, end=int(a.idxs[0].size))
    i_coord = root.add_mem_stream(idx0, name="i")
    jb = root.add_mem_stream(ptr1, name="j_beg")
    je = root.add_mem_stream(ptr1, offset=1, name="j_end")
    l0.set_volume_hint(a.idxs[0].size)

    l1 = prog.add_layer(LayerMode.SINGLE)
    jfib = l1.rng_fbrt(beg=jb, end=je)
    j_coord = jfib.add_mem_stream(idx1, name="j")
    kb = jfib.add_mem_stream(ptr2, name="k_beg")
    ke = jfib.add_mem_stream(ptr2, offset=1, name="k_end")
    l1.set_volume_hint(a.idxs[1].size)

    l2 = prog.add_layer(LayerMode.SINGLE)
    kfib = l2.rng_fbrt(beg=kb, end=ke)
    k_coord = kfib.add_mem_stream(idx2, name="k")
    a_val = kfib.add_mem_stream(vals, name="a_val")
    b_val = kfib.add_mem_stream(bvec, parent=k_coord, name="b[k]")
    l2.add_callback(Event.GITE, "ri", [l2.vec_operand([a_val]),
                                       l2.vec_operand([b_val])])
    from ..tmu.program import ScalarOperand

    l2.add_callback(Event.GEND, "re", [ScalarOperand(i_coord),
                                       ScalarOperand(j_coord)])
    l2.set_volume_hint(a.nnz)

    out: dict[tuple[int, int], float] = {}
    state = {"sum": 0.0}

    def ri(record):
        (av,), (bv,) = record.operands
        state["sum"] += av * bv

    def re(record):
        i, j = record.operands
        out[(int(i), int(j))] = state["sum"]
        state["sum"] = 0.0

    return BuiltProgram(
        program=prog,
        handlers={"ri": ri, "re": re},
        result=lambda: dict(out),
        description="SpTTV: CSF walk with leaf gather of the vector",
    )
