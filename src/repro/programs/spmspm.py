"""Gustavson SpMSpM on the TMU (Table 4 rows "SpMSpM P0/P2").

``Z_ij = A_ik B_kj`` with both operands CSR.  Three layers: the row
traversal (i), the compressed traversal of A's row (k) loading A's
values and B's row bounds, and the scan of row ``B_k*`` (j)
parallelized across lanes.  The core performs the reduction into a
dense accumulator and assembles the compressed output row at ``re`` —
the partial-result flexibility the paper argues for keeping on the
core.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..formats.csr import CsrMatrix
from ..sim.machine import TmuWorkloadModel
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import (
    BuiltProgram,
    csr_tmu_streams,
    record_bytes,
    sve_lanes_of,
    write_stream,
)


def build_spmspm_program(a: CsrMatrix, b: CsrMatrix, *, lanes: int = 2,
                         name: str = "spmspm") -> BuiltProgram:
    """Build the runnable SpMSpM program (P2: j-level parallelism)."""
    prog = Program(name, lanes=max(1, lanes))
    a_ptrs = prog.place_array(a.ptrs, INDEX_BYTES, "a->ptrs")
    a_idxs = prog.place_array(a.idxs, INDEX_BYTES, "a->idxs")
    a_vals = prog.place_array(a.vals, VALUE_BYTES, "a->vals")
    b_ptrs = prog.place_array(b.ptrs, INDEX_BYTES, "b->ptrs")
    b_idxs = prog.place_array(b.idxs, INDEX_BYTES, "b->idxs")
    b_vals = prog.place_array(b.vals, VALUE_BYTES, "b->vals")

    l0 = prog.add_layer(LayerMode.SINGLE)
    row = l0.dns_fbrt(beg=0, end=a.num_rows)
    ptbs = row.add_mem_stream(a_ptrs, name="a_row_beg")
    ptes = row.add_mem_stream(a_ptrs, offset=1, name="a_row_end")
    l0.set_volume_hint(a.num_rows)

    l1 = prog.add_layer(LayerMode.BCAST)
    kk = l1.rng_fbrt(beg=ptbs, end=ptes)
    k_idx = kk.add_mem_stream(a_idxs, name="k_idx")
    a_val = kk.add_mem_stream(a_vals, name="a_val")
    kb = kk.add_mem_stream(b_ptrs, parent=k_idx, name="b_row_beg")
    ke = kk.add_mem_stream(b_ptrs, parent=k_idx, offset=1,
                           name="b_row_end")
    l1.add_callback(Event.GITE, "ki", [l1.vec_operand([a_val])])
    l1.set_volume_hint(a.nnz)

    mode2 = LayerMode.LOCKSTEP if lanes > 1 else LayerMode.SINGLE
    l2 = prog.add_layer(mode2)
    j_streams, v_streams = [], []
    for lane in range(lanes):
        jj = l2.rng_fbrt(beg=kb, end=ke, offset=lane, stride=lanes)
        j_streams.append(jj.add_mem_stream(b_idxs, name=f"b_col{lane}"))
        v_streams.append(jj.add_mem_stream(b_vals, name=f"b_val{lane}"))
    b_cols = l2.vec_operand(j_streams)
    b_valv = l2.vec_operand(v_streams)
    l2.add_callback(Event.GITE, "ji", [b_cols, b_valv,
                                       l2.mask_operand()])
    l0.add_callback(Event.GITE, "rb", [])
    l2.set_volume_hint(4.0 * a.nnz)

    # Core side: dense accumulator + touched list per output row.
    acc = np.zeros(b.num_cols)
    touched: list[int] = []
    rows_out: list[tuple[np.ndarray, np.ndarray]] = []
    state = {"a_val": 0.0, "pending": False}

    def rb(record):
        # row begin: flush the previous row's accumulator
        if state["pending"]:
            _flush()
        state["pending"] = True

    def _flush():
        cols = np.unique(np.asarray(touched, dtype=np.int64))
        rows_out.append((cols, acc[cols].copy()))
        acc[cols] = 0.0
        touched.clear()

    def ki(record):
        state["a_val"] = record.operands[0][0]

    def ji(record):
        cols, vals_, mask = record.operands
        for k in range(len(cols)):
            if mask & (1 << k):
                c = int(cols[k])
                acc[c] += state["a_val"] * vals_[k]
                touched.append(c)

    def result():
        if state["pending"]:
            _flush()
            state["pending"] = False
        ptrs_out = np.zeros(a.num_rows + 1, dtype=np.int64)
        idx_parts, val_parts = [], []
        for i, (cols, vals_) in enumerate(rows_out):
            ptrs_out[i + 1] = ptrs_out[i] + cols.size
            idx_parts.append(cols)
            val_parts.append(vals_)
        return CsrMatrix(
            (a.num_rows, b.num_cols), ptrs_out,
            np.concatenate(idx_parts) if idx_parts else np.zeros(0,
                                                                 np.int64),
            np.concatenate(val_parts) if val_parts else np.zeros(0),
            validate=False)

    return BuiltProgram(
        program=prog,
        handlers={"rb": rb, "ki": ki, "ji": ji},
        result=result,
        description="Gustavson SpMSpM, B-row scan vectorized",
    )


def spmspm_timing_model(a: CsrMatrix, b: CsrMatrix,
                        machine: MachineConfig, *,
                        name: str = "spmspm") -> TmuWorkloadModel:
    """Analytic TMU workload model for SpMSpM P2 (``Z = A B``)."""
    lanes = sve_lanes_of(machine)
    rows, nnz_a = a.num_rows, a.nnz
    b_row_nnz = np.diff(b.ptrs)
    scanned = b_row_nnz[a.idxs] if nnz_a else np.zeros(0, dtype=np.int64)
    total_scanned = int(scanned.sum())
    steps = int(np.sum(-(-scanned // lanes))) if nnz_a else 0

    space = AddressSpace()
    streams, _ = csr_tmu_streams(a, space, "A")
    b_ptr_base = space.place((b.num_rows + 1) * INDEX_BYTES)
    b_idx_base = space.place(max(1, b.nnz) * INDEX_BYTES)
    b_val_base = space.place(max(1, b.nnz) * VALUE_BYTES)
    streams.append(AccessStream(
        b_ptr_base + a.idxs * INDEX_BYTES, INDEX_BYTES, "read",
        "B ptrs lookup", dependent=True))
    from ..kernels.spmspm import scan_arrays

    scan_positions, _ = scan_arrays(a, b)
    streams.append(AccessStream(
        b_idx_base + scan_positions * INDEX_BYTES, INDEX_BYTES, "read",
        "B idxs scan", dependent=True))
    streams.append(AccessStream(
        b_val_base + scan_positions * VALUE_BYTES, VALUE_BYTES, "read",
        "B vals scan", dependent=True))

    # Output size for the core-side assembly cost.
    from ..kernels.spmspm import _symbolic_counts_fast

    nnz_out = int(_symbolic_counts_fast(a, b).sum())

    ji_bytes = record_bytes(2, lanes, with_mask=True)
    ki_bytes = record_bytes(1, 1)
    outq_bytes = steps * ji_bytes + nnz_a * ki_bytes + rows * 4

    core_trace = KernelTrace(
        name=f"{name}-callbacks",
        # accumulator scatter-gather + row assembly (sort-free gather)
        scalar_ops=2 * nnz_a + 6 * rows + 6 * nnz_out,
        vector_ops=4 * steps,            # gather acc, fma, scatter acc
        loads=3 * steps + nnz_a + 2 * nnz_out,
        stores=steps + 2 * nnz_out,
        branches=steps + nnz_a + rows + nnz_out,
        datadep_branches=nnz_out // 8,   # touched-list dedup
        flops=2.0 * total_scanned,
        streams=[
            write_stream(space, nnz_out, "Z idxs", INDEX_BYTES),
            write_stream(space, nnz_out, "Z vals", VALUE_BYTES),
        ],
        dependent_load_fraction=0.3,     # accumulator gathers
        parallel_units=rows,
    )
    return TmuWorkloadModel(
        name=name,
        tmu_streams=streams,
        layer_elements=[rows, nnz_a, total_scanned],
        layer_lanes=[1, 1, lanes],
        merge_steps=0,
        outq_records=steps + nnz_a + rows,
        outq_bytes=outq_bytes,
        core_trace=core_trace,
    )
