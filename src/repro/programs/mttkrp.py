"""MTTKRP on the TMU (Table 4 rows "MTTKRP P1/P2").

The COO tensor is scanned with a singleton traversal (one TU loading
all coordinate arrays and values); ``lin`` streams turn the k/l
coordinates into factor-row base positions, and an ``IdxFbrT`` layer
scans ``B[k, :]`` and ``C[l, :]`` in lockstep — one lane group per
factor — marshaling aligned (b, c) element pairs the core multiplies
and accumulates into ``Z[i, :]``.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.coo import CooTensor
from ..sim.machine import TmuWorkloadModel
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import BuiltProgram, record_bytes, sve_lanes_of, write_stream


def build_mttkrp_program(tensor: CooTensor, b, c,
                         name: str = "mttkrp") -> BuiltProgram:
    """Build the runnable MTTKRP program (mode-0 output).

    Uses two lanes — one scanning the ``B[k, :]`` fiber, one scanning
    ``C[l, :]`` — in lockstep, the P1 ("mode") scheme with the factor
    dimension marshaled pairwise.
    """
    if tensor.ndim != 3:
        raise WorkloadError("the MTTKRP program expects an order-3 tensor")
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if b.shape[1] != c.shape[1]:
        raise WorkloadError("factor ranks must agree")
    rank = b.shape[1]
    b_flat = np.ascontiguousarray(b.reshape(-1))
    c_flat = np.ascontiguousarray(c.reshape(-1))

    prog = Program(name, lanes=2)
    i_arr = prog.place_array(tensor.coords[0], INDEX_BYTES, "A->i")
    k_arr = prog.place_array(tensor.coords[1], INDEX_BYTES, "A->k")
    l_arr = prog.place_array(tensor.coords[2], INDEX_BYTES, "A->l")
    v_arr = prog.place_array(tensor.values, VALUE_BYTES, "A->vals")
    b_arr = prog.place_array(b_flat, VALUE_BYTES, "B")
    c_arr = prog.place_array(c_flat, VALUE_BYTES, "C")

    l0 = prog.add_layer(LayerMode.BCAST)
    nz = l0.dns_fbrt(beg=0, end=tensor.nnz)
    nz.add_mem_stream(i_arr, name="i")
    k_str = nz.add_mem_stream(k_arr, name="k")
    l_str = nz.add_mem_stream(l_arr, name="l")
    nz.add_mem_stream(v_arr, name="val")
    b_beg = nz.add_lin_stream(rank, 0, parent=k_str, name="b_row_beg")
    c_beg = nz.add_lin_stream(rank, 0, parent=l_str, name="c_row_beg")
    l0.add_callback(Event.GITE, "nb", [])
    l0.set_volume_hint(tensor.nnz)

    l1 = prog.add_layer(LayerMode.LOCKSTEP)
    b_tu = l1.idx_fbrt(beg=b_beg, size=rank)
    b_val = b_tu.add_mem_stream(b_arr, name="b_val")
    c_tu = l1.idx_fbrt(beg=c_beg, size=rank)
    c_val = c_tu.add_mem_stream(c_arr, name="c_val")
    factors = l1.vec_operand([b_val, c_val])
    l1.add_callback(Event.GITE, "ri", [factors])
    l1.set_volume_hint(2.0 * tensor.nnz * rank)

    out = np.zeros((tensor.shape[0], rank))
    state = {"i": 0, "val": 0.0, "j": 0, "nnz_pos": 0}
    coords_i = tensor.coords[0]
    values = tensor.values

    def nb(record):
        pos = state["nnz_pos"]
        state["i"] = int(coords_i[pos])
        state["val"] = float(values[pos])
        state["j"] = 0
        state["nnz_pos"] += 1

    def ri(record):
        bv, cv = record.operands[0]
        out[state["i"], state["j"]] += state["val"] * bv * cv
        state["j"] += 1

    return BuiltProgram(
        program=prog,
        handlers={"nb": nb, "ri": ri},
        result=lambda: out.copy(),
        description="MTTKRP COO, factor rows scanned in lockstep",
    )


def mttkrp_timing_model(tensor: CooTensor, rank: int,
                        machine: MachineConfig, *,
                        parallel: str = "mode",
                        name: str | None = None) -> TmuWorkloadModel:
    """Analytic TMU workload model for MTTKRP.

    ``parallel='mode'`` (P1) splits lanes across the two factors;
    ``parallel='rank'`` (P2) dedicates all lanes to rank-dimension
    chunks — same traffic, different lane occupancy and outQ layout.
    """
    if tensor.ndim != 3:
        raise WorkloadError("mttkrp_timing_model expects an order-3 tensor")
    if parallel not in ("mode", "rank"):
        raise WorkloadError(f"unknown parallel scheme {parallel!r}")
    lanes = sve_lanes_of(machine)
    nnz = tensor.nnz
    name = name or f"mttkrp_{parallel}"

    space = AddressSpace()
    bases = [space.place(nnz * INDEX_BYTES) for _ in range(3)]
    val_base = space.place(nnz * VALUE_BYTES)
    b_base = space.place(tensor.shape[1] * rank * VALUE_BYTES)
    c_base = space.place(tensor.shape[2] * rank * VALUE_BYTES)
    seq = np.arange(nnz, dtype=np.int64)

    # Factor-row element traffic: rank elements per factor per nnz.
    rank_off = np.arange(rank, dtype=np.int64)
    b_elems = (np.repeat(tensor.coords[1] * rank, rank)
               + np.tile(rank_off, nnz)) if nnz else seq
    c_elems = (np.repeat(tensor.coords[2] * rank, rank)
               + np.tile(rank_off, nnz)) if nnz else seq

    streams = [
        AccessStream(bases[0] + seq * INDEX_BYTES, INDEX_BYTES, "read",
                     "coords i"),
        AccessStream(bases[1] + seq * INDEX_BYTES, INDEX_BYTES, "read",
                     "coords k"),
        AccessStream(bases[2] + seq * INDEX_BYTES, INDEX_BYTES, "read",
                     "coords l"),
        AccessStream(val_base + seq * VALUE_BYTES, VALUE_BYTES, "read",
                     "A vals"),
        AccessStream(b_base + b_elems * VALUE_BYTES, VALUE_BYTES, "read",
                     "B[k,:]", dependent=True),
        AccessStream(c_base + c_elems * VALUE_BYTES, VALUE_BYTES, "read",
                     "C[l,:]", dependent=True),
    ]

    if parallel == "mode":
        # lanes split across the two factors: rank scanned in
        # lanes/2-wide steps per factor.
        per_factor = max(1, lanes // 2)
        steps = nnz * (-(-rank // per_factor))
    else:
        # rank-parallel: all lanes on one factor at a time.
        steps = 2 * nnz * (-(-rank // lanes))

    ri_bytes = record_bytes(2, lanes // 2 if parallel == "mode" else lanes)
    outq_bytes = steps * ri_bytes + nnz * record_bytes(0, 0,
                                                       num_scalar_operands=2)
    if parallel == "rank":
        # P2 marshals full-width factor chunks with ldr-provided output
        # pointers: one fused multiply per step and less bookkeeping.
        vec_per_step, scalar_per_nnz = 2, 2
    else:
        vec_per_step, scalar_per_nnz = 3, 4
    core_trace = KernelTrace(
        name=f"{name}-callbacks",
        scalar_ops=scalar_per_nnz * nnz,
        vector_ops=vec_per_step * steps,
        loads=2 * steps + nnz,
        stores=steps,
        branches=steps + nnz,
        datadep_branches=0,
        flops=3.0 * nnz * rank,
        streams=[write_stream(space, tensor.shape[0] * rank, "Z")],
        dependent_load_fraction=0.0,
        parallel_units=int(tensor.shape[0]),
    )
    return TmuWorkloadModel(
        name=name,
        tmu_streams=streams,
        layer_elements=[nnz, 2 * nnz * rank],
        layer_lanes=[1, lanes],
        merge_steps=0,
        outq_records=steps + nnz,
        outq_bytes=outq_bytes,
        core_trace=core_trace,
    )
