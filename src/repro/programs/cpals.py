"""CP-ALS on the TMU.

Each ALS sweep runs three TMU-accelerated MTTKRPs (one per mode) while
the Gram-matrix products, the solve, the column normalization and the
fit evaluation stay on the core — the partial-result evaluation pattern
that motivates near-core (rather than discrete-accelerator) integration
in the paper.

Because the dense phase is *identical* in both systems, CP-ALS is
modeled compositionally: per sweep, three MTTKRP phase results (each
with its own memory-level-parallelism regime) plus one shared dense
phase result.  :func:`cpals_runs` returns the composed (baseline, TMU)
pair; :func:`cpals_timing_model` is kept for callers that need a single
:class:`TmuWorkloadModel` view (sensitivity sweeps).
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.coo import CooTensor
from ..sim.machine import (
    SystemResult,
    TmuWorkloadModel,
    run_baseline,
    run_tmu,
)
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..types import VALUE_BYTES
from .mttkrp import mttkrp_timing_model


def cpals_dense_trace(tensor: CooTensor, rank: int) -> KernelTrace:
    """The per-sweep dense phase shared by both systems: Gram products,
    pinv solve, column normalization, and the per-non-zero fit
    evaluation (GenTen computes the residual at every stored entry).
    It runs on the core either way, at a fraction of peak SIMD
    throughput (small Gram matrices, a serial pinv, strided columns)."""
    n_rows = sum(tensor.shape)
    dense_flops = (2.0 * n_rows * rank * rank + 6.0 * rank ** 3
                   + 2.0 * tensor.nnz * rank)
    vec_ops = int(dense_flops / 8)
    space = AddressSpace()
    streams = []
    for mode, extent in enumerate(tensor.shape):
        base = space.place(extent * rank * VALUE_BYTES)
        seq = np.arange(extent * rank, dtype=np.int64) * VALUE_BYTES
        streams.append(AccessStream(base + seq, VALUE_BYTES, "read",
                                    f"factor{mode}"))
    return KernelTrace(
        name="cpals-dense",
        scalar_ops=vec_ops // 4,
        vector_ops=vec_ops,
        loads=vec_ops // 2,
        stores=vec_ops // 4,
        branches=vec_ops // 8,
        datadep_branches=0,
        flops=dense_flops,
        streams=streams,
        dependent_load_fraction=0.0,
        parallel_units=rank,
    )


def _combine(name: str, parts: list[tuple[float, SystemResult]],
             read_to_write: float | None = None) -> SystemResult:
    """Weighted-sum composition of phase results into one run."""
    from ..sim.core import CycleBreakdown

    cycles = sum(w * p.cycles for w, p in parts)
    committing = sum(w * p.breakdown.committing for w, p in parts)
    frontend = sum(w * p.breakdown.frontend for w, p in parts)
    backend = cycles - committing - frontend
    l2u = sum(w * p.cycles * p.breakdown.load_to_use for w, p in parts
              ) / max(1e-9, cycles)
    return SystemResult(
        name=name,
        cycles=cycles,
        breakdown=CycleBreakdown(
            committing=committing,
            frontend=frontend,
            backend=max(0.0, backend),
            load_to_use=l2u,
            mem_bytes=int(sum(w * p.breakdown.mem_bytes for w, p in parts)),
            flops=sum(w * p.breakdown.flops for w, p in parts),
        ),
        read_to_write=read_to_write,
        tmu_cycles=sum(w * p.tmu_cycles for w, p in parts),
        core_cycles=sum(w * p.core_cycles for w, p in parts),
    )


def cpals_runs(tensor: CooTensor, rank: int, machine: MachineConfig, *,
               sample_window: int | None = None
               ) -> tuple[SystemResult, SystemResult]:
    """Composite CP-ALS sweep: three MTTKRPs (accelerated or not) plus
    the shared dense phase.  Returns (baseline, tmu) system results."""
    from ..kernels.mttkrp import characterize_mttkrp

    if tensor.ndim != 3:
        raise WorkloadError("cpals_runs expects an order-3 tensor")
    mtt_trace = characterize_mttkrp(tensor, rank, machine)
    mtt_base = run_baseline(mtt_trace, machine,
                            sample_window=sample_window)
    dense = run_baseline(cpals_dense_trace(tensor, rank), machine,
                         sample_window=sample_window)
    baseline = _combine("cpals/baseline",
                        [(3.0, mtt_base), (1.0, dense)])

    mtt_model = mttkrp_timing_model(tensor, rank, machine,
                                    parallel="mode", name="cpals")
    mtt_tmu = run_tmu(mtt_model, machine, sample_window=sample_window)
    core_time = 3.0 * mtt_tmu.core_cycles + dense.cycles
    tmu_time = 3.0 * mtt_tmu.tmu_cycles
    r2w = core_time / tmu_time if tmu_time else float("inf")
    tmu = _combine("cpals/tmu", [(3.0, mtt_tmu), (1.0, dense)],
                   read_to_write=r2w)
    return baseline, tmu


def cpals_timing_model(tensor: CooTensor, rank: int,
                       machine: MachineConfig, *,
                       name: str = "cpals") -> TmuWorkloadModel:
    """Single-model view of one CP-ALS sweep (3x MTTKRP on the TMU plus
    the dense phase folded into the core trace) — used by sensitivity
    sweeps; Figure 10/11 use the composite :func:`cpals_runs`."""
    if tensor.ndim != 3:
        raise WorkloadError("cpals_timing_model expects an order-3 tensor")
    base = mttkrp_timing_model(tensor, rank, machine, parallel="mode",
                               name=name)
    dense = cpals_dense_trace(tensor, rank)
    t = base.core_trace
    core_trace = KernelTrace(
        name=f"{name}-callbacks",
        scalar_ops=3 * t.scalar_ops + dense.scalar_ops,
        vector_ops=3 * t.vector_ops + dense.vector_ops,
        loads=3 * t.loads + dense.loads,
        stores=3 * t.stores + dense.stores,
        branches=3 * t.branches + dense.branches,
        datadep_branches=3 * t.datadep_branches,
        flops=3.0 * t.flops + dense.flops,
        streams=t.streams * 3,
        dependent_load_fraction=t.dependent_load_fraction,
        parallel_units=t.parallel_units,
    )
    return TmuWorkloadModel(
        name=name,
        tmu_streams=base.tmu_streams * 3,
        layer_elements=[3 * e for e in base.layer_elements],
        layer_lanes=base.layer_lanes,
        merge_steps=0,
        outq_records=3 * base.outq_records,
        outq_bytes=3 * base.outq_bytes,
        core_trace=core_trace,
    )
