"""PageRank on the TMU (Table 4 row "PageRank").

The accelerated part is the gather SpMV (``Z_i = A_ij X_j Y_i``); the
damping/weight update is regular streaming compute that stays on the
core un-accelerated — the paper notes this is why PR's speedup trails
SpMV's.  The functional program is :func:`repro.programs.spmv.
build_spmv_program` applied to the contribution vector; this module
provides the timing model that adds the un-accelerated update.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..formats.csr import CsrMatrix
from ..sim.machine import TmuWorkloadModel
from ..sim.trace import AccessStream, AddressSpace
from ..types import VALUE_BYTES
from .common import sve_lanes_of
from .spmv import spmv_timing_model


def pagerank_timing_model(adj: CsrMatrix, machine: MachineConfig, *,
                          name: str = "pagerank") -> TmuWorkloadModel:
    """One PR iteration: TMU-accelerated SpMV plus the core-side
    contribution/damping updates."""
    model = spmv_timing_model(adj, machine, name=name)
    n = adj.num_rows
    lanes = sve_lanes_of(machine)
    chunks = -(-n // lanes)

    space = AddressSpace()
    ranks_base = space.place(n * VALUE_BYTES)
    deg_base = space.place(n * VALUE_BYTES)
    seq = np.arange(n, dtype=np.int64) * VALUE_BYTES

    trace = model.core_trace
    # contribution divide, damping fma, delta abs/reduce, convergence
    # bookkeeping — GAP PR touches the rank arrays twice per iteration
    trace.vector_ops += 8 * chunks
    trace.loads += 4 * chunks
    trace.stores += 2 * chunks
    trace.branches += chunks
    trace.flops += 4.0 * n
    trace.streams = trace.streams + [
        AccessStream(ranks_base + seq, VALUE_BYTES, "read", "ranks"),
        AccessStream(deg_base + seq, VALUE_BYTES, "read", "out_deg"),
    ]
    model.core_trace = trace
    model.name = name
    return model
