"""SpTTM on the TMU (Table 4 row "SpTTM").

``Z_ijr = A_ijk B_kr``: the CSF walk of SpTTV plus an innermost dense
layer scanning row ``B[k, :]`` per leaf — four layers, the engine's
full depth.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..formats.csf import CsfTensor
from ..tmu.program import Event, LayerMode, Program, ScalarOperand
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import BuiltProgram


def build_spttm_program(a: CsfTensor, b,
                        name: str = "spttm") -> BuiltProgram:
    """Build the runnable SpTTM program (rank loop on layer 3)."""
    if a.ndim != 3:
        raise WorkloadError("the SpTTM program expects an order-3 CSF")
    b = np.asarray(b, dtype=np.float64)
    rank = b.shape[1]
    b_flat = np.ascontiguousarray(b.reshape(-1))

    prog = Program(name, lanes=1, max_layers=4)
    idx0 = prog.place_array(a.idxs[0], INDEX_BYTES, "A->idxs0")
    ptr1 = prog.place_array(a.ptrs[1], INDEX_BYTES, "A->ptrs1")
    idx1 = prog.place_array(a.idxs[1], INDEX_BYTES, "A->idxs1")
    ptr2 = prog.place_array(a.ptrs[2], INDEX_BYTES, "A->ptrs2")
    idx2 = prog.place_array(a.idxs[2], INDEX_BYTES, "A->idxs2")
    vals = prog.place_array(a.vals, VALUE_BYTES, "A->vals")
    bmat = prog.place_array(b_flat, VALUE_BYTES, "B")

    l0 = prog.add_layer(LayerMode.SINGLE)
    root = l0.dns_fbrt(beg=0, end=int(a.idxs[0].size))
    i_coord = root.add_mem_stream(idx0, name="i")
    jb = root.add_mem_stream(ptr1, name="j_beg")
    je = root.add_mem_stream(ptr1, offset=1, name="j_end")
    l0.set_volume_hint(a.idxs[0].size)

    l1 = prog.add_layer(LayerMode.SINGLE)
    jfib = l1.rng_fbrt(beg=jb, end=je)
    j_coord = jfib.add_mem_stream(idx1, name="j")
    kb = jfib.add_mem_stream(ptr2, name="k_beg")
    ke = jfib.add_mem_stream(ptr2, offset=1, name="k_end")
    l1.set_volume_hint(a.idxs[1].size)

    l2 = prog.add_layer(LayerMode.SINGLE)
    kfib = l2.rng_fbrt(beg=kb, end=ke)
    k_coord = kfib.add_mem_stream(idx2, name="k")
    a_val = kfib.add_mem_stream(vals, name="a_val")
    b_row = kfib.add_lin_stream(rank, 0, parent=k_coord, name="b_row")
    l2.add_callback(Event.GITE, "kb", [l2.vec_operand([a_val])])
    l2.set_volume_hint(a.nnz)

    l3 = prog.add_layer(LayerMode.SINGLE)
    rfib = l3.idx_fbrt(beg=b_row, size=rank)
    b_val = rfib.add_mem_stream(bmat, name="b_val")
    l3.add_callback(Event.GITE, "ri", [l3.vec_operand([b_val])])
    l1.add_callback(Event.GITE, "jb", [ScalarOperand(i_coord),
                                       ScalarOperand(j_coord)])
    l3.set_volume_hint(a.nnz * rank)

    out: dict[tuple[int, int], np.ndarray] = {}
    state = {"key": (0, 0), "a_val": 0.0, "r": 0}

    def jb_cb(record):
        i, j = record.operands
        state["key"] = (int(i), int(j))
        out[state["key"]] = np.zeros(rank)

    def kb_cb(record):
        state["a_val"] = record.operands[0][0]
        state["r"] = 0

    def ri(record):
        out[state["key"]][state["r"]] += state["a_val"] * (
            record.operands[0][0])
        state["r"] += 1

    return BuiltProgram(
        program=prog,
        handlers={"jb": jb_cb, "kb": kb_cb, "ri": ri},
        result=lambda: {k: v.copy() for k, v in out.items()},
        description="SpTTM: CSF walk + dense rank scan per leaf",
    )
