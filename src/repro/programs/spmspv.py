"""SpMSpV on the TMU (Table 4 row "SpMSpV").

The sparse vector is loaded in one lane and each matrix row in another;
a ``ConjMrg`` layer intersects them, so ``ri`` fires only on matching
coordinates with both values marshaled.  The vector lane is a dense
scan over the vector's compressed storage, re-armed for every row.
"""

from __future__ import annotations

import numpy as np

from ..fibers.fiber import Fiber
from ..formats.csr import CsrMatrix
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import BuiltProgram


def build_spmspv_program(a: CsrMatrix, b: Fiber,
                         name: str = "spmspv") -> BuiltProgram:
    """Z_i = A_ij B_j with a sparse B, via conjunctive merging."""
    prog = Program(name, lanes=2)
    ptrs = prog.place_array(a.ptrs, INDEX_BYTES, "a->ptrs")
    idxs = prog.place_array(a.idxs, INDEX_BYTES, "a->idxs")
    vals = prog.place_array(a.vals, VALUE_BYTES, "a->vals")
    b_idx = prog.place_array(b.indices, INDEX_BYTES, "b->idxs")
    b_val = prog.place_array(b.values, VALUE_BYTES, "b->vals")

    l0 = prog.add_layer(LayerMode.BCAST)
    row = l0.dns_fbrt(beg=0, end=a.num_rows)
    ptbs = row.add_mem_stream(ptrs, name="row_ptbs")
    ptes = row.add_mem_stream(ptrs, offset=1, name="row_ptes")
    l0.set_volume_hint(a.num_rows)

    l1 = prog.add_layer(LayerMode.CONJ_MRG)
    mat = l1.rng_fbrt(beg=ptbs, end=ptes)
    mat_idx = mat.add_mem_stream(idxs, name="a_col")
    mat_val = mat.add_mem_stream(vals, name="a_val")
    mat.set_merge_key(mat_idx)

    vec = l1.dns_fbrt(beg=0, end=b.nnz)
    vec_idx = vec.add_mem_stream(b_idx, name="b_idx")
    vec_val = vec.add_mem_stream(b_val, name="b_val")
    vec.set_merge_key(vec_idx)

    vals_vec = l1.vec_operand([mat_val, vec_val])
    l1.add_callback(Event.GITE, "ri", [vals_vec])
    l1.add_callback(Event.GEND, "re", [])
    l1.set_volume_hint(a.nnz + a.num_rows * max(1, b.nnz))

    out = np.zeros(a.num_rows)
    state = {"sum": 0.0, "row": 0}

    def ri(record):
        mv, bv = record.operands[0]
        state["sum"] += mv * bv

    def re(record):
        out[state["row"]] = state["sum"]
        state["sum"] = 0.0
        state["row"] += 1

    return BuiltProgram(
        program=prog,
        handlers={"ri": ri, "re": re},
        result=lambda: out.copy(),
        description="SpMSpV: conjunctive merge of row and sparse vector",
    )
