"""Triangle counting on the TMU (Table 4 row "TriangleCount").

``c = Σ (L·Lᵀ).*L``: for every edge (i, j) of the lower-triangular
adjacency ``L``, the TMU conjunctively merges neighbour lists ``L_i``
and ``L_j`` and marshals only the intersection hits; the core simply
counts.  Three layers: the row scan (i), the edge traversal (j, which
also looks up row j's bounds), and the ``ConjMrg`` of the two rows.
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..formats.csr import CsrMatrix
from ..sim.machine import TmuWorkloadModel
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES
from .common import BuiltProgram, record_bytes


def build_triangle_program(l_mat: CsrMatrix,
                           name: str = "triangle") -> BuiltProgram:
    """Build the runnable TC program: count via conjunctive merges."""
    prog = Program(name, lanes=2)
    ptrs = prog.place_array(l_mat.ptrs, INDEX_BYTES, "L->ptrs")
    idxs = prog.place_array(l_mat.idxs, INDEX_BYTES, "L->idxs")

    l0 = prog.add_layer(LayerMode.BCAST)
    row = l0.dns_fbrt(beg=0, end=l_mat.num_rows)
    ib = row.add_mem_stream(ptrs, name="row_i_beg")
    ie = row.add_mem_stream(ptrs, offset=1, name="row_i_end")
    l0.set_volume_hint(l_mat.num_rows)

    # Layer 1: traverse row i's edges; each edge j yields row j's bounds.
    l1 = prog.add_layer(LayerMode.BCAST)
    edge = l1.rng_fbrt(beg=ib, end=ie)
    j_idx = edge.add_mem_stream(idxs, name="j")
    jb = edge.add_mem_stream(ptrs, parent=j_idx, name="row_j_beg")
    je = edge.add_mem_stream(ptrs, parent=j_idx, offset=1,
                             name="row_j_end")
    l1.set_volume_hint(l_mat.nnz)

    # Layer 2: conjunctive merge of L_i and L_j.
    l2 = prog.add_layer(LayerMode.CONJ_MRG)
    row_i = l2.rng_fbrt(beg=ib, end=ie)
    ki = row_i.add_mem_stream(idxs, name="L_i")
    row_i.set_merge_key(ki)
    row_j = l2.rng_fbrt(beg=jb, end=je)
    kj = row_j.add_mem_stream(idxs, name="L_j")
    row_j.set_merge_key(kj)
    l2.add_callback(Event.GITE, "hit", [])
    l2.set_volume_hint(2.0 * l_mat.nnz * max(
        1.0, l_mat.nnz / max(1, l_mat.num_rows)))

    count = {"triangles": 0}

    def hit(record):
        count["triangles"] += 1

    return BuiltProgram(
        program=prog,
        handlers={"hit": hit},
        result=lambda: count["triangles"],
        description="TC: per-edge conjunctive merge of neighbour lists",
    )


def triangle_timing_model(l_mat: CsrMatrix, machine: MachineConfig, *,
                          name: str = "triangle") -> TmuWorkloadModel:
    """Analytic TMU workload model for TC."""
    rows = l_mat.num_rows
    row_nnz = np.diff(l_mat.ptrs)
    # merge work: |L_i| + |L_j| advances per edge; hits = triangles.
    scan_j = row_nnz[l_mat.idxs] if l_mat.nnz else np.zeros(0, np.int64)
    rescan_i = np.repeat(row_nnz, row_nnz) if l_mat.nnz else scan_j
    merge_elements = int(scan_j.sum() + rescan_i.sum())
    from ..kernels.triangle import triangle_count

    hits = triangle_count(l_mat)

    space = AddressSpace()
    ptr_base = space.place((rows + 1) * INDEX_BYTES)
    idx_base = space.place(max(1, l_mat.nnz) * INDEX_BYTES)
    streams = [
        AccessStream(ptr_base + np.arange(rows + 1, dtype=np.int64)
                     * INDEX_BYTES, INDEX_BYTES, "read", "L ptrs"),
        AccessStream(idx_base + np.arange(l_mat.nnz, dtype=np.int64)
                     * INDEX_BYTES, INDEX_BYTES, "read", "L_i idxs"),
    ]
    from ..kernels.spmspm import scan_arrays

    scan_positions, _ = scan_arrays(l_mat, l_mat)
    streams.append(AccessStream(
        idx_base + scan_positions * INDEX_BYTES, INDEX_BYTES, "read",
        "L_j idxs", dependent=True))

    outq_bytes = hits * record_bytes(0, 0, with_mask=True) + (
        l_mat.nnz * 4)
    core_trace = KernelTrace(
        name=f"{name}-callbacks",
        scalar_ops=2 * hits + l_mat.nnz,
        vector_ops=0,
        loads=hits,
        stores=rows,
        branches=hits + l_mat.nnz,
        datadep_branches=0,
        flops=0.0,
        streams=[],
        dependent_load_fraction=0.0,
        parallel_units=rows,
    )
    # The merge advances every min-coordinate lane per gite: with two
    # fibers, each step consumes ~1.6 elements on average.  The layer's
    # single merge network serializes gites, so independent edges do
    # not overlap.
    return TmuWorkloadModel(
        name=name,
        tmu_streams=streams,
        layer_elements=[rows, l_mat.nnz, merge_elements],
        layer_lanes=[1, 1, 2],
        merge_steps=int(merge_elements / 1.6),
        outq_records=hits + l_mat.nnz,
        outq_bytes=outq_bytes,
        core_trace=core_trace,
    )
