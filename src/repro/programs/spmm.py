"""SpMM on the TMU (Table 4 rows "SpMM P0/P1/P2").

``Z_ij = A_ik B_kj`` with CSR ``A`` and dense row-major ``B``: the
compressed ``k`` traversal loads A's column indexes, a ``lin`` stream
turns each index into the base position of row ``B[k, :]``, and an
``IdxFbrT`` layer scans that row, parallelized across lanes (the P2
scheme: rank/column-level parallelism)."""

from __future__ import annotations

import numpy as np

from ..formats.csr import CsrMatrix
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import BuiltProgram


def build_spmm_program(a: CsrMatrix, b, *, lanes: int = 2,
                       name: str = "spmm") -> BuiltProgram:
    """Build the runnable SpMM program (inner j-loop parallelized)."""
    b = np.asarray(b, dtype=np.float64)
    num_cols_b = b.shape[1]
    b_flat = np.ascontiguousarray(b.reshape(-1))

    prog = Program(name, lanes=max(1, lanes))
    ptrs = prog.place_array(a.ptrs, INDEX_BYTES, "a->ptrs")
    idxs = prog.place_array(a.idxs, INDEX_BYTES, "a->idxs")
    vals = prog.place_array(a.vals, VALUE_BYTES, "a->vals")
    bmat = prog.place_array(b_flat, VALUE_BYTES, "B")

    l0 = prog.add_layer(LayerMode.BCAST)
    row = l0.dns_fbrt(beg=0, end=a.num_rows)
    ptbs = row.add_mem_stream(ptrs, name="row_ptbs")
    ptes = row.add_mem_stream(ptrs, offset=1, name="row_ptes")
    l0.set_volume_hint(a.num_rows)

    l1 = prog.add_layer(LayerMode.BCAST)
    kk = l1.rng_fbrt(beg=ptbs, end=ptes)
    k_idx = kk.add_mem_stream(idxs, name="k_idx")
    a_val = kk.add_mem_stream(vals, name="a_val")
    # base position of row B[k, :] in the flattened matrix
    b_row_beg = kk.add_lin_stream(num_cols_b, 0, parent=k_idx,
                                  name="b_row_beg")
    l1.set_volume_hint(a.nnz)

    mode2 = LayerMode.LOCKSTEP if lanes > 1 else LayerMode.SINGLE
    l2 = prog.add_layer(mode2)
    b_streams = []
    for lane in range(lanes):
        jj = l2.idx_fbrt(beg=b_row_beg, size=num_cols_b, offset=lane,
                         stride=lanes)
        b_streams.append(jj.add_mem_stream(bmat, name=f"b_val{lane}"))
    b_vals = l2.vec_operand(b_streams)
    l2.add_callback(Event.GITE, "ji", [b_vals, l2.mask_operand()])
    l1.add_callback(Event.GITE, "ki", [l1.vec_operand([a_val])])
    l1.add_callback(Event.GEND, "ke", [])
    l2.set_volume_hint(a.nnz * num_cols_b)

    out = np.zeros((a.num_rows, num_cols_b))
    state = {"row": 0, "a_val": 0.0, "j": 0}

    def ki(record):
        state["a_val"] = record.operands[0][0]
        state["j"] = 0

    def ji(record):
        bv, mask = record.operands
        for k in range(len(bv)):
            if mask & (1 << k):
                out[state["row"], state["j"] + k] += state["a_val"] * bv[k]
        state["j"] += len(bv)

    def ke(record):
        state["row"] += 1

    return BuiltProgram(
        program=prog,
        handlers={"ki": ki, "ji": ji, "ke": ke},
        result=lambda: out.copy(),
        description="SpMM CSR x dense, inner-column vectorization",
    )
