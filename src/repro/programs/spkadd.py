"""SpKAdd on the TMU (Table 4 row "SpKAdd").

K DCSR matrices are mapped to K lanes and merged hierarchically with
``DisjMrg`` layers (Section 4.2): the first layer joins the compressed
*row* dimensions — its predicate marks which matrices have the current
row — and the second layer joins the *column* fibers of exactly those
active lanes.  Each merged point marshals a K-wide value vector the
core reduces with one SIMD operation (Figure 7's callback).
"""

from __future__ import annotations

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.dcsr import DcsrMatrix
from ..kernels.spkadd import merged_output_points
from ..sim.machine import TmuWorkloadModel
from ..sim.trace import AccessStream, AddressSpace, KernelTrace
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES, VALUE_BYTES
from .common import BuiltProgram, record_bytes, write_stream


def build_spkadd_program(matrices: list[DcsrMatrix],
                         name: str = "spkadd") -> BuiltProgram:
    """Build the runnable SpKAdd program for K DCSR inputs."""
    if not matrices:
        raise WorkloadError("spkadd needs at least one matrix")
    shape = matrices[0].shape
    if any(m.shape != shape for m in matrices):
        raise WorkloadError("spkadd inputs must share one shape")
    k = len(matrices)

    prog = Program(name, lanes=k)
    arrays = []
    for x, m in enumerate(matrices):
        arrays.append({
            "rows": prog.place_array(m.row_idxs, INDEX_BYTES,
                                     f"A{x}->row_idxs"),
            "ptrb": prog.place_array(m.ptrs, INDEX_BYTES, f"A{x}->ptrs"),
            "idxs": prog.place_array(m.idxs, INDEX_BYTES, f"A{x}->idxs"),
            "vals": prog.place_array(m.vals, VALUE_BYTES, f"A{x}->vals"),
        })

    # Layer 0: disjunctive merge of the compressed row dimension.
    l0 = prog.add_layer(LayerMode.DISJ_MRG)
    row_begs, row_ends = [], []
    row_idx_streams = []
    for x, m in enumerate(matrices):
        tu = l0.dns_fbrt(beg=0, end=m.num_nonempty_rows)
        ridx = tu.add_mem_stream(arrays[x]["rows"], name=f"row_idx{x}")
        rb = tu.add_mem_stream(arrays[x]["ptrb"], name=f"row_beg{x}")
        re_ = tu.add_mem_stream(arrays[x]["ptrb"], offset=1,
                                name=f"row_end{x}")
        tu.set_merge_key(ridx)
        row_begs.append(rb)
        row_ends.append(re_)
        row_idx_streams.append(ridx)
    l0.set_volume_hint(sum(m.num_nonempty_rows for m in matrices))

    # Layer 1: disjunctive merge of the active lanes' column fibers.
    l1 = prog.add_layer(LayerMode.DISJ_MRG)
    val_streams = []
    for x in range(k):
        tu = l1.rng_fbrt(beg=row_begs[x], end=row_ends[x])
        cidx = tu.add_mem_stream(arrays[x]["idxs"], name=f"col{x}")
        val_streams.append(tu.add_mem_stream(arrays[x]["vals"],
                                             name=f"val{x}"))
        tu.set_merge_key(cidx)
    nnz_els = l1.vec_operand(val_streams)
    l1.add_callback(Event.GITE, "ri", [nnz_els, l1.mask_operand(),
                                       l1.index_operand()])
    l0.add_callback(Event.GITE, "rb", [l0.index_operand()])
    l1.set_volume_hint(sum(m.nnz for m in matrices))

    # Core side: one vec_reduce per merged point (Figure 7's callback),
    # assembling the compressed output as rows complete.
    out_rows: list[tuple[int, list[int], list[float]]] = []

    def rb(record):
        row_index = int(record.operands[0])
        out_rows.append((row_index, [], []))

    def ri(record):
        vals, mask, col = record.operands
        total = 0.0
        for lane in range(len(vals)):
            if mask & (1 << lane):
                total += vals[lane]
        _row, cols, rowvals = out_rows[-1]
        cols.append(int(col))
        rowvals.append(total)

    def result():
        from ..formats.csr import CsrMatrix

        ptrs = np.zeros(rows + 1, dtype=np.int64)
        idx_parts, val_parts = [], []
        by_row = {r: (c, v) for r, c, v in out_rows}
        total = 0
        for i in range(rows):
            if i in by_row:
                cols, vals_ = by_row[i]
                total += len(cols)
                idx_parts.append(np.asarray(cols, dtype=np.int64))
                val_parts.append(np.asarray(vals_))
            ptrs[i + 1] = total
        return CsrMatrix(
            shape, ptrs,
            np.concatenate(idx_parts) if idx_parts else np.zeros(0,
                                                                 np.int64),
            np.concatenate(val_parts) if val_parts else np.zeros(0),
            validate=False)

    rows = shape[0]
    return BuiltProgram(
        program=prog,
        handlers={"rb": rb, "ri": ri},
        result=result,
        description="SpKAdd: hierarchical K-way disjunctive merge",
    )


def spkadd_timing_model(matrices: list[DcsrMatrix],
                        machine: MachineConfig, *,
                        name: str = "spkadd") -> TmuWorkloadModel:
    """Analytic TMU workload model for SpKAdd (K-way DisjMrg)."""
    k = len(matrices)
    total_nnz = sum(m.nnz for m in matrices)
    total_rows = sum(m.num_nonempty_rows for m in matrices)
    rows = matrices[0].num_rows if matrices else 0

    # Merged output points (union sizes), one vectorized pass.
    row_points, nnz_out = merged_output_points(matrices)

    space = AddressSpace()
    streams: list[AccessStream] = []
    for x, m in enumerate(matrices):
        rbase = space.place(max(1, m.num_nonempty_rows) * INDEX_BYTES)
        pbase = space.place((m.num_nonempty_rows + 1) * INDEX_BYTES)
        ibase = space.place(max(1, m.nnz) * INDEX_BYTES)
        vbase = space.place(max(1, m.nnz) * VALUE_BYTES)
        nr = np.arange(m.num_nonempty_rows, dtype=np.int64)
        nz = np.arange(m.nnz, dtype=np.int64)
        streams.extend([
            AccessStream(rbase + nr * INDEX_BYTES, INDEX_BYTES, "read",
                         f"A{x} row_idxs"),
            AccessStream(pbase + nr * INDEX_BYTES, INDEX_BYTES, "read",
                         f"A{x} ptrs"),
            AccessStream(ibase + nz * INDEX_BYTES, INDEX_BYTES, "read",
                         f"A{x} idxs"),
            AccessStream(vbase + nz * VALUE_BYTES, VALUE_BYTES, "read",
                         f"A{x} vals"),
        ])

    ri_bytes = record_bytes(1, k, with_mask=True)
    outq_bytes = nnz_out * ri_bytes + row_points * record_bytes(
        0, 0, with_mask=True)

    core_trace = KernelTrace(
        name=f"{name}-callbacks",
        scalar_ops=3 * row_points + 2 * nnz_out,
        vector_ops=2 * nnz_out,          # one vec_reduce (2 uops)
        loads=nnz_out,
        stores=2 * nnz_out,              # Z idx + Z val
        branches=nnz_out + row_points,
        datadep_branches=0,
        flops=float(total_nnz - nnz_out),
        streams=[
            write_stream(space, nnz_out, "Z idxs", INDEX_BYTES),
            write_stream(space, nnz_out, "Z vals", VALUE_BYTES),
        ],
        dependent_load_fraction=0.0,
        parallel_units=rows,
    )
    return TmuWorkloadModel(
        name=name,
        tmu_streams=streams,
        layer_elements=[total_rows, total_nnz],
        layer_lanes=[k, k],
        merge_steps=nnz_out + row_points,
        outq_records=nnz_out + row_points,
        outq_bytes=outq_bytes,
        core_trace=core_trace,
    )
