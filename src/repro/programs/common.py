"""Shared helpers for TMU program builders and timing models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..config import MachineConfig
from ..formats.csr import CsrMatrix
from ..sim.trace import AccessStream, AddressSpace
from ..types import INDEX_BYTES, VALUE_BYTES
from ..tmu.outq import MASK_BYTES, RECORD_HEADER_BYTES, SCALAR_BYTES


@dataclass
class BuiltProgram:
    """A functional program plus the callback closures that complete it.

    ``handlers`` maps callback IDs to closures; ``result`` is a callable
    returning the computed output after the engine ran.
    """

    program: object
    handlers: dict[str, Callable]
    result: Callable[[], object]
    description: str = ""


def record_bytes(num_vec_operands: int, lanes: int,
                 num_scalar_operands: int = 0, with_mask: bool = False
                 ) -> int:
    """Wire size of one outQ record with the given operand shape."""
    total = RECORD_HEADER_BYTES
    total += num_vec_operands * lanes * SCALAR_BYTES
    total += num_scalar_operands * SCALAR_BYTES
    if with_mask:
        total += MASK_BYTES
    return total


def csr_tmu_streams(a: CsrMatrix, space: AddressSpace, prefix: str = "A",
                    *, with_ptrs: bool = True) -> tuple[list[AccessStream],
                                                        dict[str, int]]:
    """The traversal streams the TMU issues to walk a CSR matrix row by
    row, plus the base addresses for further gathers."""
    bases = {
        "ptrs": space.place((a.num_rows + 1) * INDEX_BYTES),
        "idxs": space.place(max(1, a.nnz) * INDEX_BYTES),
        "vals": space.place(max(1, a.nnz) * VALUE_BYTES),
    }
    streams = []
    if with_ptrs:
        streams.append(AccessStream(
            bases["ptrs"] + np.arange(a.num_rows + 1, dtype=np.int64)
            * INDEX_BYTES, INDEX_BYTES, "read", f"{prefix} ptrs"))
    nnzidx = np.arange(a.nnz, dtype=np.int64)
    streams.append(AccessStream(
        bases["idxs"] + nnzidx * INDEX_BYTES, INDEX_BYTES, "read",
        f"{prefix} idxs"))
    streams.append(AccessStream(
        bases["vals"] + nnzidx * VALUE_BYTES, VALUE_BYTES, "read",
        f"{prefix} vals"))
    return streams, bases


def write_stream(space: AddressSpace, num_elems: int, label: str,
                 elem_bytes: int = VALUE_BYTES) -> AccessStream:
    base = space.place(max(1, num_elems) * elem_bytes)
    return AccessStream(
        base + np.arange(num_elems, dtype=np.int64) * elem_bytes,
        elem_bytes, "write", label)


def sve_lanes_of(machine: MachineConfig) -> int:
    """TMU lane count tied to the SVE width (Section 7.2: 512-bit SVE ↔
    8 lanes, 256-bit ↔ 4 lanes)."""
    return max(1, machine.core.vector_bits // 64)
