"""Experiment drivers: one function per paper table/figure.

Every driver returns a plain data structure (dict / list of rows) plus
a ``render_*`` companion that formats it as text, so the benchmark
harness, the CLI and the tests all share one implementation.

Drivers do not simulate directly: each declares its (workload × input
× machine-variant) sweep as :class:`~repro.runtime.SimTask` cells and
submits the whole batch through the active :mod:`repro.runtime`
executor, which layers content-addressed result caching and process-
pool parallelism (``--jobs``) under every figure uniformly.
"""

from __future__ import annotations

import numpy as np

from ..config import (
    a64fx_like,
    experiment_machine,
    graviton3_like,
    scale_caches,
    CACHE_SCALE_DIVISOR,
)
from ..generators.matrices import fixed_nnz_per_row_matrix
from ..generators.suite import MATRIX_SUITE, TENSOR_SUITE, load_matrix, \
    load_tensor, matrix_ids
from ..runtime import SimTask, active_runtime
from ..sim.stats import (
    RooflinePoint,
    nnz_per_row_ceiling,
    peak_bandwidth_gbps,
    peak_gflops,
    roofline_point,
)
from ..tmu.area import paper_configuration
from ..types import geomean
from .reporting import heatmap_table, text_table
from .workloads import (
    WORKLOADS,
    WorkloadRun,
    inputs_for,
)

#: the paper's workload order in Figure 10/11 (linear then tensor)
FIG10_WORKLOADS = ("spmv", "spmspm", "spkadd", "pr", "tc",
                   "mttkrp_mp", "mttkrp_cp", "cpals", "sptc")

#: paper-reported geomean speedups, for EXPERIMENTS.md comparison
PAPER_GEOMEANS = {
    "spmv": 3.32, "spmspm": 2.82, "spkadd": 6.98, "pr": 2.74,
    "tc": 4.56, "mttkrp_mp": 3.76, "mttkrp_cp": 4.01, "cpals": 2.88,
    "sptc": 3.79,
}

PAPER_CATEGORY_GEOMEANS = {"memory": 3.58, "compute": 2.82,
                           "merge": 4.94}


def _submit(tasks: list[SimTask]) -> dict[SimTask, WorkloadRun]:
    """Run a batch of cells through the active experiment runtime."""
    return active_runtime().run_cells(tasks)


def _sweep(scale: str, workloads: tuple[str, ...],
           ) -> dict[tuple[str, str], WorkloadRun]:
    """The standard (workload × suite-input) sweep, keyed by cell."""
    tasks = {
        (workload, input_id): SimTask(workload, input_id, scale=scale)
        for workload in workloads
        for input_id in inputs_for(workload)
    }
    runs = _submit(list(tasks.values()))
    return {cell: runs[task] for cell, task in tasks.items()}


# ---------------------------------------------------------------- Fig. 3

def fig03_motivation(scale: str = "small") -> list[dict]:
    """Frontend/backend stall fractions of SpMV, SpMSpM and SpAdd on
    A64FX-like and Graviton3-like hosts (the motivation study)."""
    divisor = CACHE_SCALE_DIVISOR[scale]
    hosts = {
        "a64fx": scale_caches(a64fx_like(), divisor),
        "graviton3": scale_caches(graviton3_like(), divisor),
    }
    tasks = {
        (host_name, workload, input_id): SimTask(
            workload, input_id, scale=scale, variants=("baseline",),
            machine=machine)
        for host_name, machine in hosts.items()
        for workload in ("spmv", "spmspm", "spadd")
        for input_id in matrix_ids()
    }
    runs = _submit(list(tasks.values()))
    rows = []
    for (host_name, workload, input_id), task in tasks.items():
        commit, fe, be = runs[task].baseline.breakdown.normalized()
        rows.append({
            "host": host_name,
            "workload": workload,
            "input": input_id,
            "committing": commit,
            "frontend": fe,
            "backend": be,
        })
    return rows


def render_fig03(rows: list[dict]) -> str:
    table = [[r["host"], r["workload"], r["input"], r["committing"],
              r["frontend"], r["backend"]] for r in rows]
    return text_table(
        ["host", "workload", "input", "commit", "frontend", "backend"],
        table,
        "Figure 3: normalized cycles spent committing / frontend / "
        "backend stalls",
    )


# --------------------------------------------------------------- Fig. 10

def fig10_speedups(scale: str = "small",
                   workloads: tuple[str, ...] = FIG10_WORKLOADS) -> dict:
    """TMU speedup over the software baseline for every workload and
    input, with per-workload and per-category geomeans."""
    runs = _sweep(scale, workloads)
    per_workload: dict[str, dict[str, float]] = {}
    for workload in workloads:
        per_workload[workload] = {
            input_id: runs[(workload, input_id)].speedup
            for input_id in inputs_for(workload)
        }
    geomeans = {w: geomean(vals.values())
                for w, vals in per_workload.items()}
    categories = {}
    for category in ("memory", "compute", "merge"):
        vals = [s for w in workloads
                if WORKLOADS[w].category == category
                for s in per_workload[w].values()]
        if vals:
            categories[category] = geomean(vals)
    return {"per_workload": per_workload, "geomeans": geomeans,
            "categories": categories}


def render_fig10(data: dict) -> str:
    rows = []
    for workload, vals in data["per_workload"].items():
        for input_id, speedup in vals.items():
            rows.append([workload, input_id, speedup])
        rows.append([workload, "geomean", data["geomeans"][workload]])
    for category, value in data["categories"].items():
        rows.append([f"[{category}-intensive]", "geomean", value])
    return text_table(["workload", "input", "speedup"], rows,
                      "Figure 10: TMU speedup over software baselines")


# --------------------------------------------------------------- Fig. 11

def fig11_breakdown(scale: str = "small",
                    workloads: tuple[str, ...] = FIG10_WORKLOADS,
                    ) -> list[dict]:
    """Cycle breakdowns and load-to-use latency, baseline vs TMU."""
    runs = _sweep(scale, workloads)
    rows = []
    for workload in workloads:
        for input_id in inputs_for(workload):
            run = runs[(workload, input_id)]
            for system, result in (("baseline", run.baseline),
                                   ("tmu", run.tmu)):
                commit, fe, be = result.breakdown.normalized()
                rows.append({
                    "workload": workload,
                    "input": input_id,
                    "system": system,
                    "committing": commit,
                    "frontend": fe,
                    "backend": be,
                    "load_to_use": result.breakdown.load_to_use,
                })
    return rows


def render_fig11(rows: list[dict]) -> str:
    table = [[r["workload"], r["input"], r["system"], r["committing"],
              r["frontend"], r["backend"], r["load_to_use"]]
             for r in rows]
    return text_table(
        ["workload", "input", "system", "commit", "frontend", "backend",
         "load-to-use"],
        table,
        "Figure 11: normalized cycle breakdown and load-to-use latency",
    )


# --------------------------------------------------------------- Fig. 12

def fig12_roofline(scale: str = "small") -> dict:
    """Roofline data: (a) workload geomeans, (b) SpMV, (c) SpMSpM with
    nnz/row ceilings, (d) SpKAdd."""
    machine = experiment_machine(scale)
    runs = _sweep(scale, FIG10_WORKLOADS)
    out: dict = {
        "peak_gflops": peak_gflops(machine),
        "peak_bandwidth_gbps": peak_bandwidth_gbps(machine),
        "panels": {},
    }

    # Panel (a): per-workload geomean points (skip TC integer & SpTC
    # symbolic, as the paper does).
    panel_a: list[RooflinePoint] = []
    for workload in FIG10_WORKLOADS:
        if workload in ("tc", "sptc"):
            continue
        for system in ("baseline", "tmu"):
            ais, gfs, bws = [], [], []
            for input_id in inputs_for(workload):
                run = runs[(workload, input_id)]
                result = run.baseline if system == "baseline" else run.tmu
                point = roofline_point(f"{workload}/{system}",
                                       result.breakdown, machine)
                if point.arithmetic_intensity > 0 and point.gflops > 0:
                    ais.append(point.arithmetic_intensity)
                    gfs.append(point.gflops)
                    bws.append(max(point.bandwidth_gbps, 1e-9))
            if ais:
                panel_a.append(RooflinePoint(
                    f"{workload}/{system}", geomean(ais), geomean(gfs),
                    geomean(bws)))
    out["panels"]["a"] = panel_a

    # Panels (b)-(d): per-input points.
    for panel, workload in (("b", "spmv"), ("c", "spmspm"),
                            ("d", "spkadd")):
        points = []
        for input_id in inputs_for(workload):
            run = runs[(workload, input_id)]
            for system, result in (("baseline", run.baseline),
                                   ("tmu", run.tmu)):
                points.append(roofline_point(
                    f"{workload}/{input_id}/{system}", result.breakdown,
                    machine))
        out["panels"][panel] = points

    # The dashed ceilings of panel (c).
    out["nnz_per_row_ceilings"] = {
        n: nnz_per_row_ceiling(machine, n) for n in (1, 8, 64)
    }
    return out


def fig12_ceiling_matrices(scale: str = "small") -> dict[int, float]:
    """Measured SpMSpM throughput on the synthetic fixed-nnz/row
    matrices that define Figure 12c's dashed ceilings."""
    machine = experiment_machine(scale)
    from ..kernels.spmspm import characterize_spmspm
    from ..sim.machine import run_baseline as _run_baseline

    out = {}
    for n in (1, 8, 64):
        rows = 4096
        matrix = fixed_nnz_per_row_matrix(rows, n, seed=12)
        trace = characterize_spmspm(matrix, matrix, machine)
        result = _run_baseline(trace, machine, sample_window=100_000)
        out[n] = result.breakdown.gflops(machine.core.freq_ghz) * (
            machine.num_cores)
    return out


def render_fig12(data: dict) -> str:
    rows = []
    for panel, points in data["panels"].items():
        for p in points:
            rows.append([panel, p.label, p.arithmetic_intensity,
                         p.gflops, p.bandwidth_gbps])
    ceilings = ", ".join(f"n={n}: {v:.1f} GF/s"
                         for n, v in data["nnz_per_row_ceilings"].items())
    title = (
        "Figure 12: rooflines "
        f"(peak {data['peak_gflops']:.0f} GF/s, "
        f"{data['peak_bandwidth_gbps']:.0f} GB/s; "
        f"SpMSpM ceilings {ceilings})"
    )
    return text_table(["panel", "point", "AI", "GFLOP/s", "GB/s"], rows,
                      title)


# --------------------------------------------------------------- Fig. 13

def fig13_read_to_write(scale: str = "small",
                        workloads: tuple[str, ...] = FIG10_WORKLOADS,
                        ) -> dict[str, float]:
    """Geomean read-to-write ratio per workload."""
    runs = _sweep(scale, workloads)
    out = {}
    for workload in workloads:
        ratios = []
        for input_id in inputs_for(workload):
            run = runs[(workload, input_id)]
            if run.tmu and run.tmu.read_to_write:
                ratios.append(run.tmu.read_to_write)
        out[workload] = geomean(ratios) if ratios else float("nan")
    return out


def render_fig13(data: dict[str, float]) -> str:
    rows = [[w, v] for w, v in data.items()]
    return text_table(["workload", "read-to-write"], rows,
                      "Figure 13: core-read vs TMU-write chunk time")


# --------------------------------------------------------------- Fig. 14

#: engine storage sweep (total KB) and SVE width sweep of Figure 14
FIG14_STORAGE_KB = (4, 8, 16, 32)
FIG14_SVE_BITS = (128, 256, 512)


def fig14_sensitivity(scale: str = "small",
                      workloads: tuple[str, ...] = ("spmv", "spmspm"),
                      ) -> dict[str, np.ndarray]:
    """Normalized TMU-system performance sweeping engine storage x SVE
    width.

    SVE width ties the lane count (512 bits ↔ 8 lanes); each cell is
    the TMU system's absolute performance (inverse cycles) normalized
    to the evaluated (16 KB, 512 bit) configuration, as in the paper's
    heatmap.
    """
    base = experiment_machine(scale)
    # Declare the whole (storage × width × workload × input) sweep up
    # front so the runtime can fan every cell out at once.
    tasks: dict[tuple, SimTask] = {}
    for workload in workloads:
        for kb in FIG14_STORAGE_KB:
            for bits in FIG14_SVE_BITS:
                lanes = max(1, bits // 64)
                machine = base.with_core(vector_bits=bits).with_tmu(
                    lanes=lanes,
                    per_lane_storage_bytes=kb * 1024 // lanes,
                )
                for input_id in inputs_for(workload):
                    tasks[(workload, kb, bits, input_id)] = SimTask(
                        workload, input_id, scale=scale, machine=machine)
    runs = _submit(list(tasks.values()))

    out: dict[str, np.ndarray] = {}
    for workload in workloads:
        grid = np.zeros((len(FIG14_STORAGE_KB), len(FIG14_SVE_BITS)))
        for i, kb in enumerate(FIG14_STORAGE_KB):
            for j, bits in enumerate(FIG14_SVE_BITS):
                inv_cycles = [
                    1.0 / runs[tasks[(workload, kb, bits, input_id)]]
                    .tmu.cycles
                    for input_id in inputs_for(workload)
                ]
                grid[i, j] = geomean(inv_cycles)
        ref = grid[FIG14_STORAGE_KB.index(16),
                   FIG14_SVE_BITS.index(512)]
        out[workload] = grid / ref
    return out


def render_fig14(data: dict[str, np.ndarray]) -> str:
    blocks = []
    for workload, grid in data.items():
        blocks.append(heatmap_table(
            [f"{kb}KB" for kb in FIG14_STORAGE_KB],
            [f"{b}b" for b in FIG14_SVE_BITS],
            grid,
            f"Figure 14 ({workload}): speedup normalized to 16KB/512b",
        ))
    return "\n\n".join(blocks)


# --------------------------------------------------------------- Fig. 15

def fig15_state_of_the_art(scale: str = "small") -> dict:
    """IMP vs Single-Lane vs TMU on SpMV and SpMSpM."""
    tasks = {
        (workload, input_id): SimTask(
            workload, input_id, scale=scale,
            variants=("baseline", "tmu", "single_lane", "imp"))
        for workload in ("spmv", "spmspm")
        for input_id in inputs_for(workload)
    }
    runs = _submit(list(tasks.values()))
    out: dict = {}
    for workload in ("spmv", "spmspm"):
        rows = {}
        for input_id in inputs_for(workload):
            run = runs[tasks[(workload, input_id)]]
            rows[input_id] = {
                "imp": run.baseline.cycles / run.imp.cycles,
                "single_lane": run.baseline.cycles / (
                    run.single_lane.cycles),
                "tmu": run.speedup,
            }
        out[workload] = rows
    return out


def render_fig15(data: dict) -> str:
    rows = []
    for workload, inputs in data.items():
        for input_id, systems in inputs.items():
            rows.append([workload, input_id, systems["imp"],
                         systems["single_lane"], systems["tmu"]])
        rows.append([
            workload, "geomean",
            geomean(s["imp"] for s in inputs.values()),
            geomean(s["single_lane"] for s in inputs.values()),
            geomean(s["tmu"] for s in inputs.values()),
        ])
    return text_table(["workload", "input", "IMP", "Single-Lane", "TMU"],
                      rows, "Figure 15: state-of-the-art comparison")


# --------------------------------------------------------------- Tables

def table5_parameters(scale: str = "small") -> list[tuple[str, str]]:
    """The simulated architecture (Table 5), including the cache scaling
    applied at the given input scale."""
    m = experiment_machine(scale)
    full = experiment_machine("paper")
    return [
        ("Cores", f"{m.num_cores} {m.core.name} at {m.core.freq_ghz}GHz"),
        ("SVE width", f"{m.core.vector_bits} bits"),
        ("Reorder buffer", f"{m.core.rob_entries} entries"),
        ("Load/Store queues",
         f"{m.core.load_queue} entries, {m.core.store_queue} entries"),
        ("Private L1D",
         f"{full.l1d.size_bytes // 1024} KiB/core (scaled: "
         f"{m.l1d.size_bytes} B), {m.l1d.ways}-way, {m.l1d.latency} "
         f"cycles, {m.l1d.mshrs} MSHRs"),
        ("Private L2",
         f"{full.l2.size_bytes // 1024} KiB/core (scaled: "
         f"{m.l2.size_bytes} B), {m.l2.ways}-way, {m.l2.latency} "
         f"cycles, {m.l2.mshrs} MSHRs"),
        ("Shared LLC",
         f"{full.llc.size_bytes // (1024 * 1024)} MiB (scaled: "
         f"{m.llc.size_bytes // 1024} KiB), {m.llc.ways}-way, "
         f"{m.llc.latency} cycles, {m.llc.mshrs} MSHRs"),
        ("Network", f"{m.noc.mesh_x}x{m.noc.mesh_y} 2D mesh, "
         f"{m.noc.router_cycles} cycle routers, {m.noc.link_cycles} "
         "cycle links"),
        ("Memory", f"{m.memory.channels} HBM2e channels, "
         f"{m.memory.channel_gbps}GB/s per channel"),
        ("TMU", f"{m.tmu.per_lane_storage_bytes // 1024}KB per-lane "
         f"storage, {m.tmu.lanes} lanes, {m.tmu.layers} TGs with "
         f"mergers, {m.tmu.outstanding_requests} outstanding requests"),
    ]


def render_table5(rows: list[tuple[str, str]]) -> str:
    return text_table(["parameter", "value"], rows,
                      "Table 5: simulated architectural parameters")


def table6_inputs(scale: str = "small") -> list[dict]:
    """The input suite: paper statistics vs the generated stand-ins."""
    rows = []
    for input_id, spec in MATRIX_SUITE.items():
        matrix = load_matrix(input_id, scale)
        rows.append({
            "id": input_id,
            "source": spec.source_name,
            "domain": spec.domain,
            "paper_nnz": spec.paper_nnz,
            "paper_rows": spec.paper_rows_or_dims,
            "generated_nnz": matrix.nnz,
            "generated_rows": matrix.num_rows,
            "nnz_per_row": matrix.nnz / max(1, matrix.num_rows),
        })
    for input_id, spec in TENSOR_SUITE.items():
        tensor = load_tensor(input_id, scale)
        rows.append({
            "id": input_id,
            "source": spec.source_name,
            "domain": spec.domain,
            "paper_nnz": spec.paper_nnz,
            "paper_rows": spec.paper_rows_or_dims,
            "generated_nnz": tensor.nnz,
            "generated_rows": " x ".join(str(s) for s in tensor.shape),
            "nnz_per_row": float("nan"),
        })
    return rows


def render_table6(rows: list[dict]) -> str:
    table = [[r["id"], r["source"], r["domain"], r["paper_nnz"],
              r["generated_nnz"], r["generated_rows"]] for r in rows]
    return text_table(
        ["id", "source", "domain", "paper nnz", "generated nnz",
         "generated rows/dims"],
        table, "Table 6: inputs (paper vs generated stand-ins)")


def area_results() -> dict:
    """The RTL area results of Section 6, via the analytic model."""
    model = paper_configuration()
    return {
        "total_mm2": model.total_mm2(),
        "lane_mm2": model.lane_mm2(),
        "core_fraction": model.core_fraction(),
        "paper_total_mm2": 0.0704,
        "paper_lane_mm2": 0.0080,
        "paper_core_fraction": 0.0152,
    }


def render_area(data: dict) -> str:
    rows = [
        ["TMU total", f"{data['total_mm2']:.4f} mm2",
         f"{data['paper_total_mm2']:.4f} mm2"],
        ["per lane", f"{data['lane_mm2']:.4f} mm2",
         f"{data['paper_lane_mm2']:.4f} mm2"],
        ["fraction of N1 core", f"{data['core_fraction'] * 100:.2f}%",
         f"{data['paper_core_fraction'] * 100:.2f}%"],
    ]
    return text_table(["quantity", "model", "paper"], rows,
                      "Area (GF 22FDX, Section 6)")
