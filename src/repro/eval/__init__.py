"""Experiment drivers reproducing every table and figure of the paper.

* :mod:`repro.eval.workloads` — the workload registry: for each
  evaluated kernel, how to build its baseline trace and its TMU model
  on a given input, with memoized system runs.
* :mod:`repro.eval.experiments` — one driver per paper artifact
  (Figure 3, Figures 10–15, Tables 4–6, the area results).
* :mod:`repro.eval.reporting` — text-table rendering and CSV export.
"""

from .workloads import (
    WORKLOADS,
    Workload,
    WorkloadRun,
    run_workload,
    workload_ids,
)

__all__ = [
    "WORKLOADS",
    "Workload",
    "WorkloadRun",
    "run_workload",
    "workload_ids",
]
