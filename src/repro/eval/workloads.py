"""The evaluated workload registry (paper Section 6).

Each :class:`Workload` couples one kernel's software-baseline
characterization with its TMU workload model so experiments can run
``baseline``, ``tmu``, ``single-lane`` and ``imp`` variants uniformly.
Runs are memoized per (workload, input, scale, machine) because several
figures reuse the same underlying executions.

Workload categories follow the paper's grouping:

* memory-intensive: SpMV, PR, MTTKRP (both schemes), CP-ALS
* compute-intensive: SpMSpM
* merge-intensive: SpKAdd, TC, SpTC
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from ..config import MachineConfig
from ..errors import WorkloadError
from ..formats.coo import CooTensor
from ..formats.convert import coo_to_csf
from ..generators.suite import load_matrix, load_tensor, matrix_ids, \
    tensor_ids
from ..kernels import split_rows_cyclic
from ..kernels.cpals import characterize_cpals
from ..kernels.mttkrp import characterize_mttkrp
from ..kernels.pagerank import characterize_pagerank
from ..kernels.spadd import characterize_spadd
from ..kernels.spkadd import characterize_spkadd
from ..kernels.spmspm import characterize_spmspm
from ..kernels.spmv import characterize_spmv
from ..kernels.sptc import characterize_sptc
from ..kernels.triangle import characterize_triangle, lower_triangle
from ..programs.cpals import cpals_runs
from ..programs import (
    cpals_timing_model,
    mttkrp_timing_model,
    pagerank_timing_model,
    spkadd_timing_model,
    spmspm_timing_model,
    spmv_timing_model,
    sptc_timing_model,
    triangle_timing_model,
)
from ..sim.machine import (
    SystemResult,
    run_baseline,
    run_imp,
    run_single_lane,
    run_tmu,
)
from ..sim.trace import KernelTrace

#: cache-simulation window per stream, to bound pure-Python cost on the
#: biggest inner-product streams (hit rates are extrapolated).
SAMPLE_WINDOW = 100_000

#: K of the SpKAdd kernel (Section 6: k=8)
SPKADD_K = 8

#: factor-matrix rank for MTTKRP/CP-ALS
FACTOR_RANK = 16


def as_order3(tensor: CooTensor) -> CooTensor:
    """Fold trailing modes so order-n tensors fit the order-3 kernels
    (mode folding is standard practice for MTTKRP evaluations).

    Folded coordinates are relabeled densely — only composite
    coordinates that actually occur get an index — so the folded mode's
    extent stays proportional to the data (a factor matrix over the raw
    cartesian product would be absurd, and real pipelines re-index the
    same way)."""
    if tensor.ndim == 3:
        return tensor
    if tensor.ndim < 3:
        raise WorkloadError("tensor kernels need at least 3 modes")
    rest = tensor.coords[2].copy()
    for d in range(3, tensor.ndim):
        rest = rest * tensor.shape[d] + tensor.coords[d]
    uniq, dense = np.unique(rest, return_inverse=True)
    extent = int(uniq.size) if uniq.size else 1
    return CooTensor(
        (tensor.shape[0], tensor.shape[1], extent),
        [tensor.coords[0], tensor.coords[1], dense],
        tensor.values,
    )


@dataclass(frozen=True)
class Workload:
    """One evaluated kernel: its input kind, intensity category, and
    builder callables."""

    id: str
    label: str
    category: str                 # memory / compute / merge
    input_kind: str               # matrix / tensor
    baseline: Callable[[object, MachineConfig], KernelTrace]
    tmu_model: Callable[[object, MachineConfig], object]
    #: whether the kernel relies on merging (Single-Lane/IMP excluded)
    needs_merge: bool = False
    #: optional composite runner returning (baseline, tmu) directly
    #: (multi-phase applications like CP-ALS)
    composite: Callable[..., tuple] | None = None


def _identity_memo(fn):
    """Memoize a derived-operand builder by input identity — suite
    inputs are themselves memoized, so identities are stable, and
    architecture sweeps (Figure 14) rebuild the same operands dozens of
    times otherwise."""
    memo: dict[tuple, object] = {}

    def wrapper(a):
        key = (id(a), getattr(a, "nnz", None))
        if key not in memo:
            memo[key] = fn(a)
        return memo[key]

    return wrapper


_transposed = _identity_memo(lambda a: a.transpose())
_lower = _identity_memo(lower_triangle)
_split = _identity_memo(lambda a: split_rows_cyclic(a, SPKADD_K))
_csf_ikl = _identity_memo(coo_to_csf)
_csf_lki = _identity_memo(lambda t: coo_to_csf(t, mode_order=(2, 1, 0)))


WORKLOADS: dict[str, Workload] = {
    "spmv": Workload(
        "spmv", "SpMV", "memory", "matrix",
        baseline=lambda a, m: characterize_spmv(a, m),
        tmu_model=lambda a, m: spmv_timing_model(a, m),
    ),
    "spmspm": Workload(
        "spmspm", "SpMSpM", "compute", "matrix",
        baseline=lambda a, m: characterize_spmspm(a, _transposed(a), m),
        tmu_model=lambda a, m: spmspm_timing_model(a, _transposed(a), m),
    ),
    "spkadd": Workload(
        "spkadd", "SpKAdd", "merge", "matrix",
        baseline=lambda a, m: characterize_spkadd(_split(a), m),
        tmu_model=lambda a, m: spkadd_timing_model(_split(a), m),
        needs_merge=True,
    ),
    "pr": Workload(
        "pr", "PR", "memory", "matrix",
        baseline=lambda a, m: characterize_pagerank(a, m),
        tmu_model=lambda a, m: pagerank_timing_model(a, m),
    ),
    "tc": Workload(
        "tc", "TC", "merge", "matrix",
        baseline=lambda a, m: characterize_triangle(_lower(a), m),
        tmu_model=lambda a, m: triangle_timing_model(_lower(a), m),
        needs_merge=True,
    ),
    "mttkrp_mp": Workload(
        "mttkrp_mp", "MTTKRP_MP", "memory", "tensor",
        baseline=lambda t, m: characterize_mttkrp(t, FACTOR_RANK, m,
                                                  "mode"),
        tmu_model=lambda t, m: mttkrp_timing_model(t, FACTOR_RANK, m,
                                                   parallel="mode"),
    ),
    "mttkrp_cp": Workload(
        "mttkrp_cp", "MTTKRP_CP", "memory", "tensor",
        baseline=lambda t, m: characterize_mttkrp(t, FACTOR_RANK, m,
                                                  "rank"),
        tmu_model=lambda t, m: mttkrp_timing_model(t, FACTOR_RANK, m,
                                                   parallel="rank"),
    ),
    "cpals": Workload(
        "cpals", "CP-ALS", "memory", "tensor",
        baseline=lambda t, m: characterize_cpals(t, FACTOR_RANK, m),
        tmu_model=lambda t, m: cpals_timing_model(t, FACTOR_RANK, m),
        composite=lambda t, m, sw: cpals_runs(
            t, FACTOR_RANK, m, sample_window=sw),
    ),
    "sptc": Workload(
        "sptc", "SpTC", "merge", "tensor",
        baseline=lambda t, m: characterize_sptc(
            _csf_ikl(t), _csf_lki(t), m),
        tmu_model=lambda t, m: sptc_timing_model(
            _csf_ikl(t), _csf_lki(t), m),
        needs_merge=True,
    ),
    # SpAdd appears only in the Figure 3 motivation study.
    "spadd": Workload(
        "spadd", "SpAdd", "merge", "matrix",
        baseline=lambda a, m: characterize_spadd(a, a.transpose(), m),
        tmu_model=lambda a, m: None,
        needs_merge=True,
    ),
}


def workload_ids(category: str | None = None) -> list[str]:
    return [w for w, spec in WORKLOADS.items()
            if category is None or spec.category == category]


def inputs_for(workload_id: str) -> list[str]:
    if workload_id not in WORKLOADS:
        raise WorkloadError(
            f"unknown workload {workload_id!r}; known: {sorted(WORKLOADS)}"
        )
    spec = WORKLOADS[workload_id]
    return matrix_ids() if spec.input_kind == "matrix" else tensor_ids()


@dataclass
class WorkloadRun:
    """All system variants of one (workload, input) pair."""

    workload: str
    input_id: str
    baseline: SystemResult
    tmu: SystemResult | None = None
    single_lane: SystemResult | None = None
    imp: SystemResult | None = None

    @property
    def speedup(self) -> float:
        return self.baseline.cycles / self.tmu.cycles if self.tmu else 0.0


@lru_cache(maxsize=None)
def _load_order3(input_id: str, scale: str):
    # Folding an order-n tensor builds a fresh object; memoizing here
    # keeps input identity stable across cells, which the
    # ``_identity_memo`` derived-operand caches above key on.
    return as_order3(load_tensor(input_id, scale))


def _load_input(spec: Workload, input_id: str, scale: str):
    if spec.input_kind == "matrix":
        return load_matrix(input_id, scale)
    return _load_order3(input_id, scale)


@lru_cache(maxsize=None)
def run_workload(workload_id: str, input_id: str,
                 machine: MachineConfig, scale: str = "small", *,
                 variants: tuple[str, ...] = ("baseline", "tmu"),
                 ) -> WorkloadRun:
    """Run one workload on one input under one machine, memoized.

    ``variants`` selects which systems to evaluate: ``baseline``,
    ``tmu``, ``single_lane``, ``imp``.
    """
    if workload_id not in WORKLOADS:
        raise WorkloadError(
            f"unknown workload {workload_id!r}; known: {sorted(WORKLOADS)}"
        )
    spec = WORKLOADS[workload_id]
    data = _load_input(spec, input_id, scale)
    if spec.composite is not None:
        base, tmu = spec.composite(data, machine, SAMPLE_WINDOW)
        run = WorkloadRun(workload=workload_id, input_id=input_id,
                          baseline=base)
        if "tmu" in variants:
            run.tmu = tmu
        return run
    trace = spec.baseline(data, machine)
    run = WorkloadRun(
        workload=workload_id,
        input_id=input_id,
        baseline=run_baseline(trace, machine,
                              sample_window=SAMPLE_WINDOW),
    )
    model = spec.tmu_model(data, machine) if "tmu" in variants or (
        "single_lane" in variants) else None
    if "tmu" in variants and model is not None:
        run.tmu = run_tmu(model, machine, sample_window=SAMPLE_WINDOW)
    if "single_lane" in variants and model is not None:
        run.single_lane = run_single_lane(model, machine,
                                          sample_window=SAMPLE_WINDOW)
    if "imp" in variants:
        run.imp = run_imp(trace, machine, sample_window=SAMPLE_WINDOW)
    return run
