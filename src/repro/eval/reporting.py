"""Plain-text tables and CSV export for experiment results."""

from __future__ import annotations

import csv
import io
from typing import Sequence


def text_table(headers: Sequence[str], rows: Sequence[Sequence],
               title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[k])
                               for k, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def heatmap_table(row_labels: Sequence[str], col_labels: Sequence[str],
                  values, title: str = "") -> str:
    """Render a 2-D sweep (e.g. Figure 14) as a labeled grid."""
    headers = [""] + list(col_labels)
    rows = []
    for label, value_row in zip(row_labels, values):
        rows.append([label] + [f"{v:.2f}" for v in value_row])
    return text_table(headers, rows, title)
