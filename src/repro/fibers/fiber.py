"""The :class:`Fiber` view — a sorted (index, value) sequence.

A fiber is a one-dimensional view of a tensor (Section 2.2): a CSR row,
a CSC column, a CSF sub-fiber, or a dense vector segment.  Mergers
co-iterate fibers; traversals produce them.
"""

from __future__ import annotations

import numpy as np

from ..errors import FiberError
from ..types import as_index_array, as_value_array


class Fiber:
    """An immutable sparse fiber: strictly increasing ``indices`` paired
    with ``values``."""

    __slots__ = ("indices", "values")

    def __init__(self, indices, values, *, validate: bool = True) -> None:
        self.indices = as_index_array(indices)
        self.values = as_value_array(values)
        if validate:
            if self.indices.shape != self.values.shape:
                raise FiberError("indices/values length mismatch")
            if self.indices.size and np.any(np.diff(self.indices) <= 0):
                raise FiberError("fiber indices must be strictly increasing")

    @classmethod
    def from_dense(cls, values) -> "Fiber":
        """Dense segment as a fiber with indices 0..n-1 (zeros kept —
        density is a property of the *format*, not the data)."""
        values = as_value_array(values)
        return cls(np.arange(values.size), values, validate=False)

    @classmethod
    def empty(cls) -> "Fiber":
        return cls(np.zeros(0, np.int64), np.zeros(0), validate=False)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def __len__(self) -> int:
        return self.nnz

    def __iter__(self):
        return zip(self.indices.tolist(), self.values.tolist())

    def __getitem__(self, k: int) -> tuple[int, float]:
        return int(self.indices[k]), float(self.values[k])

    def lookup(self, index: int) -> float:
        """Value at coordinate ``index`` (0.0 if absent) via binary
        search — the software counterpart of scan-and-lookup."""
        pos = int(np.searchsorted(self.indices, index))
        if pos < self.nnz and self.indices[pos] == index:
            return float(self.values[pos])
        return 0.0

    def to_dense(self, size: int) -> np.ndarray:
        if self.nnz and int(self.indices[-1]) >= size:
            raise FiberError("fiber index exceeds requested dense size")
        out = np.zeros(size)
        out[self.indices] = self.values
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Fiber):
            return NotImplemented
        return (
            np.array_equal(self.indices, other.indices)
            and np.allclose(self.values, other.values)
        )

    def __repr__(self) -> str:
        return f"Fiber(nnz={self.nnz})"
