"""Fiber merging: the co-iteration machinery of Section 2.4.

Three merge disciplines, matching the TG configurations of Table 3:

* **Disjunctive** (``DisjMrg``): union of coordinates; at each step the
  fibers holding the minimum coordinate are output and advanced.  Used
  by addition-like kernels (0 + x = x).
* **Conjunctive** (``ConjMrg``): intersection of coordinates; a step is
  output only when *all* active fibers share the minimum coordinate.
  Used by multiplication-like kernels (0 · x = 0).
* **Lockstep** (``LockStep``): positional co-iteration of fibers that
  need no coordinate matching.

All mergers yield :class:`MergePoint` records whose ``mask`` is the
multi-hot predicate the paper pushes into the ``msk`` stream: bit ``k``
set means lane/fiber ``k`` participated in this step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import FiberError
from .fiber import Fiber


@dataclass(frozen=True)
class MergePoint:
    """One output step of a merge.

    Attributes
    ----------
    index:
        The coordinate produced by this step (or the step number for
        lockstep co-iteration).
    mask:
        Multi-hot predicate over the input fibers; bit ``k`` (LSB-first)
        is set when fiber ``k`` contributed an element.
    values:
        One entry per input fiber — the contributed value for fibers in
        the mask, 0.0 for the others (the padding the TMU marshals).
    """

    index: int
    mask: int
    values: tuple[float, ...]

    def active_lanes(self) -> list[int]:
        """Indexes of the fibers that contributed to this point."""
        return [k for k in range(len(self.values)) if self.mask & (1 << k)]


def _check_inputs(fibers: Sequence[Fiber]) -> None:
    if not fibers:
        raise FiberError("merging requires at least one fiber")


def disjunctive_merge(fibers: Sequence[Fiber]) -> Iterator[MergePoint]:
    """Union-merge sorted fibers (Figure 2, left).

    For each step, outputs and advances every fiber whose head holds the
    minimum coordinate.  Matches the TG ``gite`` rule for ``DisjMrg``
    (Section 5.2): predicate = active lanes with minimum index.
    """
    _check_inputs(fibers)
    heads = [0] * len(fibers)
    while True:
        live = [k for k, f in enumerate(fibers) if heads[k] < f.nnz]
        if not live:
            return
        current = min(int(fibers[k].indices[heads[k]]) for k in live)
        mask = 0
        values = [0.0] * len(fibers)
        for k in live:
            if int(fibers[k].indices[heads[k]]) == current:
                mask |= 1 << k
                values[k] = float(fibers[k].values[heads[k]])
                heads[k] += 1
        yield MergePoint(current, mask, tuple(values))


def conjunctive_merge(fibers: Sequence[Fiber]) -> Iterator[MergePoint]:
    """Intersection-merge sorted fibers (Figure 2, right).

    Only coordinates present in *every* fiber are output.  Matches the
    TG ``gite`` rule for ``ConjMrg``: a 0 token is pushed only on an
    all-true predicate, and the merge ends as soon as any fiber is
    exhausted.
    """
    _check_inputs(fibers)
    n = len(fibers)
    heads = [0] * n
    full_mask = (1 << n) - 1
    while all(heads[k] < fibers[k].nnz for k in range(n)):
        current = min(int(fibers[k].indices[heads[k]]) for k in range(n))
        mask = 0
        values = [0.0] * n
        for k in range(n):
            if int(fibers[k].indices[heads[k]]) == current:
                mask |= 1 << k
                values[k] = float(fibers[k].values[heads[k]])
                heads[k] += 1
        if mask == full_mask:
            yield MergePoint(current, mask, tuple(values))


def lockstep_coiterate(fibers: Sequence[Fiber]) -> Iterator[MergePoint]:
    """Positional co-iteration: step all fibers together, padding the
    exhausted ones with zeros, until every fiber is consumed.

    The ``index`` of each point is the step number; per-fiber original
    coordinates are irrelevant for lockstep marshaling (the paper pads
    boundary iterations and marshals the mask alongside).
    """
    _check_inputs(fibers)
    n = len(fibers)
    steps = max(f.nnz for f in fibers)
    for s in range(steps):
        mask = 0
        values = [0.0] * n
        for k in range(n):
            if s < fibers[k].nnz:
                mask |= 1 << k
                values[k] = float(fibers[k].values[s])
        yield MergePoint(s, mask, tuple(values))


def reduce_by_index(indices, values) -> Fiber:
    """Tensor reduction (Section 2.5): collapse a *sorted* stream of
    (index, value) pairs with possibly repeated indices into a fiber
    with unique indices and accumulated values."""
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if indices.size == 0:
        return Fiber.empty()
    if np.any(np.diff(indices) < 0):
        raise FiberError("reduce_by_index requires a sorted index stream")
    boundaries = np.concatenate(([True], indices[1:] != indices[:-1]))
    group = np.cumsum(boundaries) - 1
    out_idx = indices[boundaries]
    out_val = np.zeros(out_idx.size)
    np.add.at(out_val, group, values)
    return Fiber(out_idx, out_val, validate=False)


def merge_to_fiber(points: Iterator[MergePoint], *,
                   combine: str = "sum") -> Fiber:
    """Materialize a merge-point stream into an output fiber.

    ``combine='sum'`` adds contributions (disjunctive semantics, e.g.
    SpAdd); ``combine='prod'`` multiplies the *active* contributions
    (conjunctive semantics, e.g. element-wise multiply).
    """
    idxs: list[int] = []
    vals: list[float] = []
    for point in points:
        if combine == "sum":
            val = sum(point.values)
        elif combine == "prod":
            val = 1.0
            for lane in point.active_lanes():
                val *= point.values[lane]
        else:
            raise FiberError(f"unknown combine rule {combine!r}")
        idxs.append(point.index)
        vals.append(val)
    return Fiber(np.asarray(idxs, dtype=np.int64), np.asarray(vals),
                 validate=False)
