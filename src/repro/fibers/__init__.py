"""Fibers: one-dimensional tensor views, their traversal and merging.

Implements Sections 2.3 (level traversal functions) and 2.4
(disjunctive/conjunctive merging) of the paper as reusable software
building blocks.  These serve both as the golden reference for the TMU
hardware model and as the inner machinery of the software baseline
kernels.
"""

from .fiber import Fiber
from .merge import (
    MergePoint,
    conjunctive_merge,
    disjunctive_merge,
    lockstep_coiterate,
    reduce_by_index,
)
from .traversal import (
    iter_compressed,
    iter_coordinates,
    iter_dense,
    scan_and_lookup,
)

__all__ = [
    "Fiber",
    "MergePoint",
    "conjunctive_merge",
    "disjunctive_merge",
    "lockstep_coiterate",
    "reduce_by_index",
    "iter_compressed",
    "iter_coordinates",
    "iter_dense",
    "scan_and_lookup",
]
