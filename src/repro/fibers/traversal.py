"""The three level traversal functions of Section 2.3.

These generators are the software realization of what a TMU Traversal
Unit does in hardware; each corresponds to one primitive of Table 1:

* :func:`iter_dense`       ↔ ``DnsFbrT`` (dense/singleton fiber scan)
* :func:`iter_compressed`  ↔ ``RngFbrT`` (compressed lookup-and-scan)
* :func:`scan_and_lookup`  ↔ a ``mem`` stream chained off another
  ``mem`` stream (indirect access, ``IdxFbrT`` for whole-fiber scans)
* :func:`iter_coordinates` ↔ singleton-level traversal of COO
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


def iter_dense(vals, beg: int = 0, end: int | None = None,
               stride: int = 1) -> Iterator[tuple[int, float]]:
    """Dense traversal::

        for (idx = beg; idx < end; idx += stride)
            val = vals[idx];
    """
    if end is None:
        end = len(vals)
    for idx in range(beg, end, stride):
        yield idx, vals[idx]


def iter_compressed(ptr, idxs, vals, i: int,
                    stride: int = 1, offset: int = 0
                    ) -> Iterator[tuple[int, float]]:
    """Compressed traversal::

        for (p = ptr[i]; p < ptr[i+1]; p++)
            idx = idxs[p]; val = vals[p];
    """
    for p in range(int(ptr[i]) + offset, int(ptr[i + 1]), stride):
        yield int(idxs[p]), vals[p]


def iter_coordinates(coords: Sequence[np.ndarray], vals
                     ) -> Iterator[tuple[tuple[int, ...], float]]:
    """Coordinate singleton traversal::

        for (p = 0; p < numNnzs; p++)
            idx0 = idxs0[p]; ...; val = vals[p];
    """
    num = len(vals)
    for p in range(num):
        yield tuple(int(c[p]) for c in coords), vals[p]


def scan_and_lookup(ptr, idxs, vals, dense, i: int
                    ) -> Iterator[tuple[int, float, float]]:
    """The SpMV inner loop (Figure 4, lines 5–7): scan row ``i`` of a
    CSR matrix and look up the dense operand at each column index.

    Yields ``(column, nnz_val, dense_val)``.
    """
    for p in range(int(ptr[i]), int(ptr[i + 1])):
        idx = int(idxs[p])
        yield idx, vals[p], dense[idx]
