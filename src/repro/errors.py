"""Exception hierarchy for the TMU reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses partition the failure
modes by subsystem: tensor formats, TMU configuration/execution, and the
timing simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FormatError(ReproError):
    """A tensor/format invariant was violated (bad shape, unsorted
    coordinates, pointer array inconsistencies, ...)."""


class ConversionError(FormatError):
    """A format conversion was requested that is impossible or lossy."""


class FiberError(ReproError):
    """A fiber traversal or merge was driven with inconsistent inputs
    (e.g. unsorted coordinates handed to a merger)."""


class TMUConfigError(ReproError):
    """The TMU was programmed with an invalid configuration (too many
    lanes, storage overflow, dangling stream parents, ...)."""


class TMURuntimeError(ReproError):
    """The TMU engine reached an inconsistent runtime state (deadlock,
    queue protocol violation).  Indicates a bug in a program or engine."""


class SimulationError(ReproError):
    """The timing simulator was driven with inconsistent parameters or
    traces."""


class WorkloadError(ReproError):
    """An experiment/workload registry lookup or execution failed."""


class ExecutorError(ReproError):
    """The experiment runtime could not complete a batch of simulation
    tasks (cells failed beyond the retry budget or timed out)."""


class ObsError(ReproError):
    """The telemetry layer was misused (metric kind mismatch) or a perf
    snapshot violated the schema."""


class ServeError(ReproError):
    """The simulation job service was driven with an invalid request
    (malformed sweep spec, unknown job, illegal state transition) or
    refused one (per-client quota exhausted)."""


class StoreError(ReproError):
    """The experiment database was opened with an incompatible schema
    version, fed a source file it cannot ingest, or queried for
    something it does not hold."""
