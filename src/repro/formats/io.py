"""Text I/O: MatrixMarket coordinate files and FROSTT ``.tns`` tensors.

The paper's inputs come from SuiteSparse (MatrixMarket ``.mtx``) and
FROSTT (``.tns``).  This repo generates synthetic stand-ins, but the
readers/writers let users drop in the real files when they have them.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from ..errors import FormatError
from .coo import CooMatrix, CooTensor


def _open_for_read(source) -> TextIO:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii")
    return source


def read_matrix_market(source) -> CooMatrix:
    """Read a MatrixMarket coordinate file into a :class:`CooMatrix`.

    Supports the ``matrix coordinate real/integer/pattern
    general/symmetric`` subset, which covers SuiteSparse.
    """
    close = isinstance(source, (str, Path))
    fh = _open_for_read(source)
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise FormatError("missing MatrixMarket header")
        fields = header.strip().lower().split()
        if len(fields) < 5 or fields[1] != "matrix" or fields[2] != "coordinate":
            raise FormatError(f"unsupported MatrixMarket header: {header!r}")
        value_type, symmetry = fields[3], fields[4]
        if value_type not in ("real", "integer", "pattern"):
            raise FormatError(f"unsupported value type {value_type!r}")
        if symmetry not in ("general", "symmetric"):
            raise FormatError(f"unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, nnz = (int(tok) for tok in line.split())

        r = np.empty(nnz, dtype=np.int64)
        c = np.empty(nnz, dtype=np.int64)
        v = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            toks = fh.readline().split()
            r[k] = int(toks[0]) - 1
            c[k] = int(toks[1]) - 1
            v[k] = float(toks[2]) if value_type != "pattern" else 1.0

        if symmetry == "symmetric":
            off = r != c
            r = np.concatenate((r, c[off]))
            c = np.concatenate((c, r[: nnz][off]))
            v = np.concatenate((v, v[off]))
        return CooMatrix((rows, cols), r, c, v)
    finally:
        if close:
            fh.close()


def write_matrix_market(matrix: CooMatrix, target) -> None:
    """Write a :class:`CooMatrix` as ``matrix coordinate real general``."""
    close = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="ascii") if close else target
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"{matrix.num_rows} {matrix.num_cols} {matrix.nnz}\n")
        for r, c, v in zip(matrix.rows, matrix.cols, matrix.values):
            fh.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
    finally:
        if close:
            fh.close()


def read_tns(source, shape: tuple[int, ...] | None = None) -> CooTensor:
    """Read a FROSTT ``.tns`` file (1-based coordinates, value last)."""
    close = isinstance(source, (str, Path))
    fh = _open_for_read(source)
    try:
        coords_cols: list[list[int]] = []
        vals: list[float] = []
        ndim = None
        for line in fh:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            toks = line.split()
            if ndim is None:
                ndim = len(toks) - 1
                if ndim < 1:
                    raise FormatError("tns lines need >=1 coordinate + value")
                coords_cols = [[] for _ in range(ndim)]
            if len(toks) != ndim + 1:
                raise FormatError("inconsistent arity in tns file")
            for d in range(ndim):
                coords_cols[d].append(int(toks[d]) - 1)
            vals.append(float(toks[-1]))
        if ndim is None:
            raise FormatError("empty tns file")
        coords = [np.asarray(col, dtype=np.int64) for col in coords_cols]
        if shape is None:
            shape = tuple(int(col.max()) + 1 if col.size else 0
                          for col in coords)
        return CooTensor(shape, coords, np.asarray(vals))
    finally:
        if close:
            fh.close()


def write_tns(tensor: CooTensor, target) -> None:
    """Write a :class:`CooTensor` in FROSTT ``.tns`` format."""
    close = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="ascii") if close else target
    try:
        for k in range(tensor.nnz):
            coords = " ".join(str(int(c[k]) + 1) for c in tensor.coords)
            fh.write(f"{coords} {float(tensor.values[k]):.17g}\n")
    finally:
        if close:
            fh.close()


def matrix_to_string(matrix: CooMatrix) -> str:
    """Render a matrix as MatrixMarket text (round-trips through
    :func:`read_matrix_market`)."""
    buf = io.StringIO()
    write_matrix_market(matrix, buf)
    return buf.getvalue()
