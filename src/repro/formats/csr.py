"""Compressed Sparse Row format (Figure 1b).

CSR replaces the explicit row indexes of COO with a ``ptrs`` array of
``num_rows + 1`` entries where ``ptrs[i] .. ptrs[i+1]`` delimits row
``i``'s slice of the ``idxs``/``vals`` arrays.  Column indexes are sorted
within each row — the invariant the paper's conjunctive/disjunctive
mergers rely on.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES, VALUE_BYTES, as_index_array, as_value_array


class CsrMatrix:
    """A sparse matrix in CSR format.

    Attributes
    ----------
    ptrs:
        ``num_rows + 1`` row pointers into ``idxs``/``vals``.
    idxs:
        Column index of each stored non-zero, sorted within each row.
    vals:
        Value of each stored non-zero.
    """

    def __init__(self, shape, ptrs, idxs, vals, *, validate: bool = True):
        self.shape = (int(shape[0]), int(shape[1]))
        self.ptrs = as_index_array(ptrs)
        self.idxs = as_index_array(idxs)
        self.vals = as_value_array(vals)
        if validate:
            self._validate()

    def _validate(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise FormatError("matrix dimensions must be non-negative")
        if self.ptrs.size != rows + 1:
            raise FormatError(
                f"ptrs must have num_rows+1={rows + 1} entries, "
                f"got {self.ptrs.size}"
            )
        if self.idxs.size != self.vals.size:
            raise FormatError("idxs and vals must be the same length")
        if self.ptrs.size and self.ptrs[0] != 0:
            raise FormatError("ptrs[0] must be 0")
        if np.any(np.diff(self.ptrs) < 0):
            raise FormatError("ptrs must be non-decreasing")
        if self.ptrs.size and self.ptrs[-1] != self.idxs.size:
            raise FormatError("ptrs[-1] must equal the number of non-zeros")
        if self.idxs.size:
            if self.idxs.min() < 0 or self.idxs.max() >= cols:
                raise FormatError("column index out of bounds")
            for i in np.flatnonzero(np.diff(self.ptrs) > 1):
                seg = self.idxs[self.ptrs[i]:self.ptrs[i + 1]]
                if np.any(np.diff(seg) <= 0):
                    raise FormatError(
                        f"row {i} has unsorted or duplicate column indexes"
                    )

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def nbytes(self) -> int:
        """Storage footprint as the simulated machine sees it."""
        return (
            (self.num_rows + 1) * INDEX_BYTES
            + self.nnz * (INDEX_BYTES + VALUE_BYTES)
        )

    def row_slice(self, i: int) -> tuple[int, int]:
        """Return the ``[begin, end)`` positions of row ``i``."""
        return int(self.ptrs[i]), int(self.ptrs[i + 1])

    def row_nnz(self) -> np.ndarray:
        """Non-zeros per row."""
        return np.diff(self.ptrs)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (column indexes, values) of row ``i`` as views."""
        beg, end = self.row_slice(i)
        return self.idxs[beg:end], self.vals[beg:end]

    def transpose(self) -> "CsrMatrix":
        """Return the transpose, also in CSR (i.e. this matrix in CSC)."""
        rows, cols = self.shape
        t_ptrs = np.zeros(cols + 1, dtype=self.ptrs.dtype)
        np.add.at(t_ptrs, self.idxs + 1, 1)
        np.cumsum(t_ptrs, out=t_ptrs)
        row_of = np.repeat(np.arange(rows, dtype=self.idxs.dtype),
                           np.diff(self.ptrs))
        # Stable grouping by column keeps per-row order, i.e. the
        # transposed rows come out with sorted column indexes.
        order = np.argsort(self.idxs, kind="stable")
        return CsrMatrix((cols, rows), t_ptrs, row_of[order],
                         self.vals[order], validate=False)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.vals.dtype)
        row_of = np.repeat(np.arange(self.num_rows), np.diff(self.ptrs))
        dense[row_of, self.idxs] = self.vals
        return dense

    @classmethod
    def from_dense(cls, array) -> "CsrMatrix":
        array = np.asarray(array, dtype=float)
        if array.ndim != 2:
            raise FormatError("CsrMatrix.from_dense needs a 2-D array")
        r, c = np.nonzero(array)
        ptrs = np.zeros(array.shape[0] + 1, dtype=np.int64)
        np.add.at(ptrs, r + 1, 1)
        np.cumsum(ptrs, out=ptrs)
        return cls(array.shape, ptrs, c, array[r, c], validate=False)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CsrMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.ptrs, other.ptrs)
            and np.array_equal(self.idxs, other.idxs)
            and np.allclose(self.vals, other.vals)
        )

    def __repr__(self) -> str:
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"
