"""Conversions between the sparse tensor formats of Figure 1.

All conversions are exact and preserve the sorted-coordinate invariants
the traversal and merge machinery depend on.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConversionError
from .coo import CooMatrix, CooTensor
from .csf import CsfTensor
from .csr import CsrMatrix
from .dcsr import DcsrMatrix


def coo_to_csr(coo: CooMatrix) -> CsrMatrix:
    """COO → CSR.  Worth it when ``nnz > rows + 1`` (Section 2.2)."""
    rows, cols = coo.shape
    ptrs = np.zeros(rows + 1, dtype=np.int64)
    np.add.at(ptrs, coo.rows + 1, 1)
    np.cumsum(ptrs, out=ptrs)
    return CsrMatrix(coo.shape, ptrs, coo.cols.copy(), coo.values.copy(),
                     validate=False)


def csr_to_coo(csr: CsrMatrix) -> CooMatrix:
    """CSR → COO."""
    row_of = np.repeat(np.arange(csr.num_rows, dtype=np.int64),
                       np.diff(csr.ptrs))
    return CooMatrix(csr.shape, row_of, csr.idxs.copy(), csr.vals.copy(),
                     sum_duplicates=False)


def coo_to_dcsr(coo: CooMatrix) -> DcsrMatrix:
    """COO → DCSR.  Worth it when ``rows > 2 x nonempty_rows``."""
    if coo.nnz == 0:
        return DcsrMatrix(coo.shape, [], [0], [], [], validate=False)
    boundaries = np.concatenate(([True], coo.rows[1:] != coo.rows[:-1]))
    row_idxs = coo.rows[boundaries]
    counts = np.diff(np.concatenate((np.flatnonzero(boundaries),
                                     [coo.nnz])))
    ptrs = np.concatenate(([0], np.cumsum(counts)))
    return DcsrMatrix(coo.shape, row_idxs, ptrs, coo.cols.copy(),
                      coo.values.copy(), validate=False)


def dcsr_to_coo(dcsr: DcsrMatrix) -> CooMatrix:
    """DCSR → COO."""
    row_of = np.repeat(dcsr.row_idxs, np.diff(dcsr.ptrs))
    return CooMatrix(dcsr.shape, row_of, dcsr.idxs.copy(), dcsr.vals.copy(),
                     sum_duplicates=False)


def csr_to_dcsr(csr: CsrMatrix) -> DcsrMatrix:
    """CSR → DCSR: drop pointers of empty rows."""
    counts = np.diff(csr.ptrs)
    nonempty = np.flatnonzero(counts)
    ptrs = np.concatenate(([0], np.cumsum(counts[nonempty])))
    return DcsrMatrix(csr.shape, nonempty, ptrs, csr.idxs.copy(),
                      csr.vals.copy(), validate=False)


def dcsr_to_csr(dcsr: DcsrMatrix) -> CsrMatrix:
    """DCSR → CSR: re-materialize pointers for every row."""
    ptrs = np.zeros(dcsr.num_rows + 1, dtype=np.int64)
    counts = np.diff(dcsr.ptrs)
    ptrs[dcsr.row_idxs + 1] = counts
    np.cumsum(ptrs, out=ptrs)
    return CsrMatrix(dcsr.shape, ptrs, dcsr.idxs.copy(), dcsr.vals.copy(),
                     validate=False)


def coo_to_csf(coo: CooTensor, mode_order: tuple[int, ...] | None = None
               ) -> CsfTensor:
    """COO → CSF, optionally permuting the mode order first.

    The CSF tree is built top-down: each level's nodes are the distinct
    coordinate prefixes of that length.
    """
    n = coo.ndim
    if mode_order is None:
        mode_order = tuple(range(n))
    if sorted(mode_order) != list(range(n)):
        raise ConversionError(f"mode_order {mode_order} is not a permutation")
    coords = [np.asarray(coo.coords[m]) for m in mode_order]
    vals = np.asarray(coo.values)
    shape = tuple(coo.shape[m] for m in mode_order)
    if n >= 2 and mode_order != tuple(range(n)):
        order = np.lexsort(tuple(reversed(coords)))
        coords = [c[order] for c in coords]
        vals = vals[order]

    nnz = vals.size
    ptrs: list[np.ndarray] = []
    idxs: list[np.ndarray] = []
    # prefix_id[k] identifies which level-(l-1) node nnz k belongs to.
    prefix_id = np.zeros(nnz, dtype=np.int64)
    num_parents = 1
    for lvl in range(n):
        c = coords[lvl]
        if nnz:
            change = np.concatenate(
                ([True],
                 (prefix_id[1:] != prefix_id[:-1]) | (c[1:] != c[:-1]))
            )
            node_of = np.cumsum(change) - 1
            firsts = np.flatnonzero(change)
            level_idxs = c[firsts]
            node_parents = prefix_id[firsts]
        else:
            node_of = prefix_id
            level_idxs = np.zeros(0, dtype=np.int64)
            node_parents = np.zeros(0, dtype=np.int64)
        level_ptrs = np.zeros(num_parents + 1, dtype=np.int64)
        np.add.at(level_ptrs, node_parents + 1, 1)
        np.cumsum(level_ptrs, out=level_ptrs)
        ptrs.append(level_ptrs)
        idxs.append(level_idxs)
        prefix_id = node_of
        num_parents = level_idxs.size

    out_vals = np.zeros(num_parents, dtype=np.float64)
    if nnz:
        np.add.at(out_vals, prefix_id, vals)
    return CsfTensor(shape, ptrs, idxs, out_vals, validate=False)


def csf_to_coo(csf: CsfTensor) -> CooTensor:
    """CSF → COO."""
    coords, vals = csf.to_coo_arrays()
    return CooTensor(csf.shape, coords, vals, sum_duplicates=False)
