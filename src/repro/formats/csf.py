"""Compressed Sparse Fiber format for order-n tensors (Smith & Karypis).

CSF generalizes DCSR to arbitrary order: every dimension is a compressed
level.  The tensor is a tree — level 0 stores the distinct coordinates of
the first dimension, and each node at level ``l`` points (via
``ptrs[l+1]``) to the slice of its children's coordinates at level
``l+1``.  Values are aligned with the leaf level.

The paper stores SpTC/SpTTV/SpTTM operands in CSF and merges CSF fibers
hierarchically on the TMU.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES, VALUE_BYTES, as_index_array, as_value_array


class CsfTensor:
    """An order-n sparse tensor in CSF format.

    Attributes
    ----------
    idxs:
        ``ndim`` coordinate arrays; ``idxs[l][p]`` is the coordinate of
        tree node ``p`` at level ``l``.
    ptrs:
        ``ndim`` pointer arrays.  ``ptrs[0]`` is ``[0, len(idxs[0])]``
        (a single root fiber); for ``l > 0``, ``ptrs[l][p]..ptrs[l][p+1]``
        delimits the children of node ``p`` of level ``l-1``.
    vals:
        One value per leaf node (``len(idxs[-1])`` entries).
    """

    def __init__(self, shape: Sequence[int], ptrs, idxs, vals, *,
                 validate: bool = True) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.ptrs = [as_index_array(p) for p in ptrs]
        self.idxs = [as_index_array(i) for i in idxs]
        self.vals = as_value_array(vals)
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = len(self.shape)
        if n < 1:
            raise FormatError("CSF tensor must have at least one dimension")
        if len(self.ptrs) != n or len(self.idxs) != n:
            raise FormatError("need one ptrs and one idxs array per level")
        if self.ptrs[0].size != 2 or self.ptrs[0][0] != 0:
            raise FormatError("ptrs[0] must be [0, num_root_nodes]")
        if self.ptrs[0][1] != self.idxs[0].size:
            raise FormatError("ptrs[0][1] must equal len(idxs[0])")
        for lvl in range(1, n):
            if self.ptrs[lvl].size != self.idxs[lvl - 1].size + 1:
                raise FormatError(
                    f"ptrs[{lvl}] must have one entry per level-{lvl - 1} "
                    "node plus one"
                )
            if self.ptrs[lvl].size and self.ptrs[lvl][0] != 0:
                raise FormatError(f"ptrs[{lvl}][0] must be 0")
            if np.any(np.diff(self.ptrs[lvl]) <= 0):
                raise FormatError(
                    f"level {lvl} fibers must be non-empty and pointers "
                    "increasing"
                )
            if self.ptrs[lvl].size and self.ptrs[lvl][-1] != self.idxs[lvl].size:
                raise FormatError(
                    f"ptrs[{lvl}][-1] must equal len(idxs[{lvl}])"
                )
        for lvl in range(n):
            if self.idxs[lvl].size and (
                self.idxs[lvl].min() < 0
                or self.idxs[lvl].max() >= self.shape[lvl]
            ):
                raise FormatError(f"coordinate out of bounds at level {lvl}")
            ptr = self.ptrs[lvl]
            for f in range(ptr.size - 1):
                seg = self.idxs[lvl][ptr[f]:ptr[f + 1]]
                if np.any(np.diff(seg) <= 0):
                    raise FormatError(
                        f"level {lvl} fiber {f} has unsorted or duplicate "
                        "coordinates"
                    )
        if self.vals.size != self.idxs[-1].size:
            raise FormatError("vals must align with the leaf level")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def num_nodes(self, level: int) -> int:
        """Number of tree nodes at ``level``."""
        return int(self.idxs[level].size)

    def nbytes(self) -> int:
        """Storage footprint as the simulated machine sees it."""
        total = self.vals.size * VALUE_BYTES
        for lvl in range(self.ndim):
            total += self.idxs[lvl].size * INDEX_BYTES
            total += self.ptrs[lvl].size * INDEX_BYTES
        return int(total)

    def fiber(self, level: int, parent_pos: int):
        """Return (coords, positions) of the fiber under ``parent_pos``.

        ``positions`` indexes into level ``level``'s node arrays so
        callers can descend further or read leaf values.
        """
        beg = int(self.ptrs[level][parent_pos])
        end = int(self.ptrs[level][parent_pos + 1])
        return self.idxs[level][beg:end], np.arange(beg, end)

    def to_coo_arrays(self) -> tuple[list[np.ndarray], np.ndarray]:
        """Expand the tree back to aligned coordinate arrays + values."""
        n = self.ndim
        coords = [None] * n
        coords[n - 1] = self.idxs[n - 1].copy()
        # Walk upward: repeat each level's coordinates by the sizes of the
        # subtrees hanging off each node.
        reps = np.ones(self.idxs[n - 1].size, dtype=np.int64)
        for lvl in range(n - 2, -1, -1):
            child_sizes = np.diff(self.ptrs[lvl + 1])
            # subtree leaf count per node at `lvl`
            leaf_counts = np.add.reduceat(
                reps, self.ptrs[lvl + 1][:-1]
            ) if reps.size else np.zeros(0, dtype=np.int64)
            coords[lvl] = np.repeat(self.idxs[lvl], leaf_counts)
            reps = leaf_counts
            del child_sizes
        return [np.asarray(c) for c in coords], self.vals.copy()

    def to_dense(self) -> np.ndarray:
        coords, vals = self.to_coo_arrays()
        dense = np.zeros(self.shape, dtype=self.vals.dtype)
        if vals.size:
            dense[tuple(coords)] = vals
        return dense

    def __repr__(self) -> str:
        return f"CsfTensor(shape={self.shape}, nnz={self.nnz})"
