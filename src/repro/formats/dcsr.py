"""Doubly-Compressed Sparse Row format (Figure 1c).

DCSR additionally compresses *empty rows* out of the CSR ``ptrs`` array:
only non-empty rows keep a pointer, and their row indexes are stored
explicitly in ``row_idxs``.  The paper's SpKAdd kernel stores its K input
matrices in DCSR because cyclic row distribution leaves most rows empty.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES, VALUE_BYTES, as_index_array, as_value_array


class DcsrMatrix:
    """A sparse matrix in DCSR format.

    Attributes
    ----------
    row_idxs:
        Sorted indexes of the non-empty rows.
    ptrs:
        ``len(row_idxs) + 1`` pointers delimiting each non-empty row's
        slice of ``idxs``/``vals``.
    idxs, vals:
        Column indexes (sorted within each row) and values.
    """

    def __init__(self, shape, row_idxs, ptrs, idxs, vals, *,
                 validate: bool = True):
        self.shape = (int(shape[0]), int(shape[1]))
        self.row_idxs = as_index_array(row_idxs)
        self.ptrs = as_index_array(ptrs)
        self.idxs = as_index_array(idxs)
        self.vals = as_value_array(vals)
        if validate:
            self._validate()

    def _validate(self) -> None:
        rows, cols = self.shape
        if self.ptrs.size != self.row_idxs.size + 1:
            raise FormatError("ptrs must have len(row_idxs)+1 entries")
        if self.ptrs.size and self.ptrs[0] != 0:
            raise FormatError("ptrs[0] must be 0")
        if np.any(np.diff(self.ptrs) <= 0):
            raise FormatError("DCSR rows must be non-empty and ptrs increasing")
        if self.ptrs.size and self.ptrs[-1] != self.idxs.size:
            raise FormatError("ptrs[-1] must equal the number of non-zeros")
        if self.row_idxs.size:
            if np.any(np.diff(self.row_idxs) <= 0):
                raise FormatError("row_idxs must be strictly increasing")
            if self.row_idxs.min() < 0 or self.row_idxs.max() >= rows:
                raise FormatError("row index out of bounds")
        if self.idxs.size != self.vals.size:
            raise FormatError("idxs and vals must be the same length")
        if self.idxs.size:
            if self.idxs.min() < 0 or self.idxs.max() >= cols:
                raise FormatError("column index out of bounds")
            for k in range(self.row_idxs.size):
                seg = self.idxs[self.ptrs[k]:self.ptrs[k + 1]]
                if np.any(np.diff(seg) <= 0):
                    raise FormatError(
                        f"row {int(self.row_idxs[k])} has unsorted or "
                        "duplicate column indexes"
                    )

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @property
    def num_nonempty_rows(self) -> int:
        return int(self.row_idxs.size)

    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def nbytes(self) -> int:
        """Storage footprint as the simulated machine sees it."""
        return (
            self.num_nonempty_rows * INDEX_BYTES
            + (self.num_nonempty_rows + 1) * INDEX_BYTES
            + self.nnz * (INDEX_BYTES + VALUE_BYTES)
        )

    def nonempty_row(self, k: int) -> tuple[int, np.ndarray, np.ndarray]:
        """Return (row index, column indexes, values) of the ``k``-th
        non-empty row."""
        beg, end = int(self.ptrs[k]), int(self.ptrs[k + 1])
        return int(self.row_idxs[k]), self.idxs[beg:end], self.vals[beg:end]

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.vals.dtype)
        row_of = np.repeat(self.row_idxs, np.diff(self.ptrs))
        dense[row_of, self.idxs] = self.vals
        return dense

    @classmethod
    def from_dense(cls, array) -> "DcsrMatrix":
        from .convert import coo_to_dcsr
        from .coo import CooMatrix

        return coo_to_dcsr(CooMatrix.from_dense(array))

    def __eq__(self, other) -> bool:
        if not isinstance(other, DcsrMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.row_idxs, other.row_idxs)
            and np.array_equal(self.ptrs, other.ptrs)
            and np.array_equal(self.idxs, other.idxs)
            and np.allclose(self.vals, other.vals)
        )

    def __repr__(self) -> str:
        return (
            f"DcsrMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"nonempty_rows={self.num_nonempty_rows})"
        )
