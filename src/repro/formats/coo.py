"""Coordinate (COO) format for matrices and order-n tensors (Figure 1a).

COO explicitly stores every non-zero as an n-dimensional coordinate plus
a value.  Coordinates are kept sorted lexicographically (row-major
multidimensional ordering), the invariant that the paper's merge
machinery and the ``singleton`` level traversal both rely on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES, VALUE_BYTES, as_index_array, as_value_array


def _lexsort_coords(coords: list[np.ndarray], vals: np.ndarray):
    """Sort coordinate arrays lexicographically, first dimension major."""
    order = np.lexsort(tuple(reversed(coords)))
    return [c[order] for c in coords], vals[order]


class CooTensor:
    """An order-n sparse tensor in coordinate format.

    Parameters
    ----------
    shape:
        Extent of each dimension.
    coords:
        One integer array per dimension, all the same length (the number
        of stored non-zeros).
    values:
        The non-zero values, aligned with ``coords``.
    sum_duplicates:
        When true (default), coordinates appearing multiple times are
        collapsed by summing their values, as tensor assembly requires.
    assume_sorted:
        When true the caller guarantees the coordinates are already in
        lexicographic order and the construction-time sort is skipped.
        Filtering an already-sorted tensor preserves the invariant, so
        splitters can rebuild parts without paying a re-sort.
    """

    def __init__(self, shape: Sequence[int], coords, values, *,
                 sum_duplicates: bool = True,
                 assume_sorted: bool = False) -> None:
        self.shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise FormatError("tensor dimensions must be non-negative")
        coords = [as_index_array(c) for c in coords]
        values = as_value_array(values)
        if len(coords) != len(self.shape):
            raise FormatError(
                f"got {len(coords)} coordinate arrays for an order-"
                f"{len(self.shape)} tensor"
            )
        if any(c.shape != values.shape for c in coords):
            raise FormatError("coordinate/value arrays have mismatched length")
        for dim, c in enumerate(coords):
            if c.size and (c.min() < 0 or c.max() >= self.shape[dim]):
                raise FormatError(
                    f"coordinate out of bounds in dimension {dim} "
                    f"(extent {self.shape[dim]})"
                )
        if values.size:
            if not assume_sorted:
                coords, values = _lexsort_coords(coords, values)
            if sum_duplicates:
                coords, values = self._sum_duplicates(coords, values)
        self.coords = coords
        self.values = values

    @staticmethod
    def _sum_duplicates(coords, values):
        stacked = np.stack(coords)
        change = np.any(stacked[:, 1:] != stacked[:, :-1], axis=0)
        boundaries = np.concatenate(([True], change))
        group = np.cumsum(boundaries) - 1
        num_groups = int(group[-1]) + 1
        out_vals = np.zeros(num_groups, dtype=values.dtype)
        np.add.at(out_vals, group, values)
        firsts = np.flatnonzero(boundaries)
        return [c[firsts] for c in coords], out_vals

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def nbytes(self) -> int:
        """Storage footprint as the simulated machine sees it."""
        return self.nnz * (self.ndim * INDEX_BYTES + VALUE_BYTES)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        if self.nnz:
            dense[tuple(self.coords)] = self.values
        return dense

    @classmethod
    def from_dense(cls, array) -> "CooTensor":
        array = np.asarray(array, dtype=float)
        coords = np.nonzero(array)
        return cls(array.shape, [c for c in coords], array[coords])

    def __eq__(self, other) -> bool:
        if not isinstance(other, CooTensor):
            return NotImplemented
        return (
            self.shape == other.shape
            and all(np.array_equal(a, b) for a, b in zip(self.coords, other.coords))
            and np.allclose(self.values, other.values)
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz})"


class CooMatrix(CooTensor):
    """An order-2 :class:`CooTensor` with row/col conveniences."""

    def __init__(self, shape, rows, cols, values, *, sum_duplicates=True,
                 assume_sorted=False):
        if len(shape) != 2:
            raise FormatError("CooMatrix is strictly order-2")
        super().__init__(shape, [rows, cols], values,
                         sum_duplicates=sum_duplicates,
                         assume_sorted=assume_sorted)

    @property
    def rows(self) -> np.ndarray:
        return self.coords[0]

    @property
    def cols(self) -> np.ndarray:
        return self.coords[1]

    @property
    def num_rows(self) -> int:
        return self.shape[0]

    @property
    def num_cols(self) -> int:
        return self.shape[1]

    @classmethod
    def from_dense(cls, array) -> "CooMatrix":
        array = np.asarray(array, dtype=float)
        if array.ndim != 2:
            raise FormatError("CooMatrix.from_dense needs a 2-D array")
        r, c = np.nonzero(array)
        return cls(array.shape, r, c, array[r, c])

    @classmethod
    def from_tensor(cls, tensor: CooTensor) -> "CooMatrix":
        if tensor.ndim != 2:
            raise FormatError("from_tensor needs an order-2 tensor")
        return cls(tensor.shape, tensor.coords[0], tensor.coords[1],
                   tensor.values, sum_duplicates=False)
