"""Hierarchical *level format* abstraction (Chou et al., Section 2.2).

A tensor format is described as a stack of per-dimension levels:

* :class:`DenseLevel` — the dimension is materialized; positions are
  computed arithmetically (``parent_pos * size + idx``).
* :class:`CompressedLevel` — only non-empty coordinates are stored, with
  a pointer array delimiting each parent's fiber.
* :class:`SingletonLevel` — one coordinate per parent position (COO's
  trailing dimensions).

With this vocabulary, CSR is ``(dense, compressed)``, DCSR is
``(compressed, compressed)``, COO is ``(compressed, singleton, ...)``,
and CSF is a stack of compressed levels.  The TMU's traversal primitives
(Table 1) map one-to-one onto these levels: ``DnsFbrT`` traverses dense
levels, ``RngFbrT`` compressed levels, and ``IdxFbrT`` performs the
lookup-and-scan of dense fibers.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES, as_index_array


class Level:
    """Abstract level: maps parent positions to (coordinate, position)
    pairs of this dimension."""

    kind: str = "abstract"

    def fiber_bounds(self, parent_pos: int) -> tuple[int, int]:
        """Position range ``[beg, end)`` of the fiber under
        ``parent_pos``."""
        raise NotImplementedError

    def coordinate(self, pos: int) -> int:
        """Coordinate stored at position ``pos``."""
        raise NotImplementedError

    def iter_fiber(self, parent_pos: int) -> Iterator[tuple[int, int]]:
        """Yield ``(coordinate, position)`` pairs of one fiber."""
        beg, end = self.fiber_bounds(parent_pos)
        for pos in range(beg, end):
            yield self.coordinate(pos), pos

    def num_positions(self) -> int:
        """Total number of positions materialized at this level."""
        raise NotImplementedError

    def nbytes(self) -> int:
        """Metadata storage this level occupies."""
        raise NotImplementedError


class DenseLevel(Level):
    """A fully materialized dimension of extent ``size``."""

    kind = "dense"

    def __init__(self, size: int, parent_positions: int = 1) -> None:
        if size < 0 or parent_positions < 0:
            raise FormatError("dense level extent must be non-negative")
        self.size = int(size)
        self.parent_positions = int(parent_positions)

    def fiber_bounds(self, parent_pos: int) -> tuple[int, int]:
        return parent_pos * self.size, (parent_pos + 1) * self.size

    def coordinate(self, pos: int) -> int:
        return pos % self.size if self.size else 0

    def num_positions(self) -> int:
        return self.parent_positions * self.size

    def nbytes(self) -> int:
        return 0  # dense levels store no metadata


class CompressedLevel(Level):
    """A compressed dimension: ``ptrs`` delimits fibers, ``idxs`` stores
    sorted coordinates."""

    kind = "compressed"

    def __init__(self, ptrs, idxs) -> None:
        self.ptrs = as_index_array(ptrs)
        self.idxs = as_index_array(idxs)
        if self.ptrs.size == 0 or self.ptrs[0] != 0:
            raise FormatError("compressed level ptrs must start at 0")
        if np.any(np.diff(self.ptrs) < 0):
            raise FormatError("compressed level ptrs must be non-decreasing")
        if self.ptrs[-1] != self.idxs.size:
            raise FormatError("compressed level ptrs must cover idxs")

    def fiber_bounds(self, parent_pos: int) -> tuple[int, int]:
        return int(self.ptrs[parent_pos]), int(self.ptrs[parent_pos + 1])

    def coordinate(self, pos: int) -> int:
        return int(self.idxs[pos])

    def num_positions(self) -> int:
        return int(self.idxs.size)

    def nbytes(self) -> int:
        return int((self.ptrs.size + self.idxs.size) * INDEX_BYTES)


class SingletonLevel(Level):
    """One coordinate per parent position (COO trailing dimensions)."""

    kind = "singleton"

    def __init__(self, idxs) -> None:
        self.idxs = as_index_array(idxs)

    def fiber_bounds(self, parent_pos: int) -> tuple[int, int]:
        return parent_pos, parent_pos + 1

    def coordinate(self, pos: int) -> int:
        return int(self.idxs[pos])

    def num_positions(self) -> int:
        return int(self.idxs.size)

    def nbytes(self) -> int:
        return int(self.idxs.size * INDEX_BYTES)


class LevelTensor:
    """A tensor expressed as a stack of levels plus leaf values.

    This is the representation the TMU program builders consume: each
    level tells them which traversal primitive and which data streams to
    instantiate.
    """

    def __init__(self, shape: Sequence[int], levels: Sequence[Level],
                 vals) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.levels = list(levels)
        self.vals = np.asarray(vals, dtype=np.float64)
        if len(self.levels) != len(self.shape):
            raise FormatError("need exactly one level per dimension")
        if self.levels and self.vals.size != self.levels[-1].num_positions():
            raise FormatError("values must align with the leaf level")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def format_spec(self) -> tuple[str, ...]:
        """The per-level kinds, e.g. ``('dense', 'compressed')`` for CSR."""
        return tuple(level.kind for level in self.levels)

    def nbytes(self) -> int:
        return sum(level.nbytes() for level in self.levels) + int(
            self.vals.nbytes
        )

    def iter_nonzeros(self) -> Iterator[tuple[tuple[int, ...], float]]:
        """Yield ``(coords, value)`` in lexicographic order by walking
        the level tree — the reference traversal of Section 2.3."""

        def walk(level_no: int, parent_pos: int, prefix: tuple[int, ...]):
            level = self.levels[level_no]
            for coord, pos in level.iter_fiber(parent_pos):
                coords = prefix + (coord,)
                if level_no == self.ndim - 1:
                    yield coords, float(self.vals[pos])
                else:
                    yield from walk(level_no + 1, pos, coords)

        if self.ndim:
            yield from walk(0, 0, ())

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        for coords, val in self.iter_nonzeros():
            dense[coords] += val
        return dense

    def __repr__(self) -> str:
        return (
            f"LevelTensor(shape={self.shape}, "
            f"format={'/'.join(self.format_spec())}, nnz={self.nnz})"
        )


def build_level_tensor(coo, spec: Sequence[str]) -> LevelTensor:
    """Build a :class:`LevelTensor` with the given per-dimension level
    kinds from a :class:`~repro.formats.coo.CooTensor`.

    Supported kinds: ``dense``, ``compressed``, ``compressed_nonunique``
    and ``singleton``.  ``compressed_nonunique`` keeps duplicate
    coordinates (one entry per stored non-zero) — it is the root level of
    COO-style formats, whose trailing dimensions are ``singleton`` levels
    holding exactly one coordinate per parent position.
    """
    spec = tuple(spec)
    if len(spec) != coo.ndim:
        raise FormatError("spec must name one level kind per dimension")
    known = ("dense", "compressed", "compressed_nonunique", "singleton")
    for kind in spec:
        if kind not in known:
            raise FormatError(f"unknown level kind {kind!r}")

    coords = [np.asarray(c) for c in coo.coords]
    vals = np.asarray(coo.values)
    levels: list[Level] = []
    # `parent_id` assigns each stored nonzero to its parent fiber at the
    # level currently being built.
    parent_id = np.zeros(vals.size, dtype=np.int64)
    num_parents = 1

    for dim, kind in enumerate(spec):
        extent = coo.shape[dim]
        c = coords[dim]
        if kind == "dense":
            levels.append(DenseLevel(extent, num_parents))
            parent_id = parent_id * extent + c
            num_parents *= extent
        elif kind == "singleton":
            if dim == 0 or spec[dim - 1] == "dense":
                raise FormatError(
                    "singleton level requires a compressed/singleton parent"
                )
            if num_parents != vals.size:
                raise FormatError(
                    "singleton level requires one parent position per "
                    "stored non-zero (use compressed_nonunique above it)"
                )
            levels.append(SingletonLevel(c))
            # one child per parent position: ids stay distinct per nnz
            parent_id = np.arange(vals.size, dtype=np.int64)
            num_parents = vals.size
        elif kind == "compressed_nonunique":
            ptrs = np.zeros(num_parents + 1, dtype=np.int64)
            np.add.at(ptrs, parent_id + 1, 1)
            np.cumsum(ptrs, out=ptrs)
            levels.append(CompressedLevel(ptrs, c.copy()))
            parent_id = np.arange(vals.size, dtype=np.int64)
            num_parents = vals.size
        else:  # compressed
            # Group consecutive nonzeros sharing (parent_id, coordinate).
            if vals.size:
                key_change = np.concatenate(
                    ([True],
                     (parent_id[1:] != parent_id[:-1]) | (c[1:] != c[:-1]))
                )
            else:
                key_change = np.zeros(0, dtype=bool)
            node_of_nnz = np.cumsum(key_change) - 1 if vals.size else parent_id
            node_firsts = np.flatnonzero(key_change)
            idxs = c[node_firsts] if vals.size else np.zeros(0, dtype=np.int64)
            node_parents = parent_id[node_firsts] if vals.size else node_firsts
            ptrs = np.zeros(num_parents + 1, dtype=np.int64)
            np.add.at(ptrs, node_parents + 1, 1)
            np.cumsum(ptrs, out=ptrs)
            levels.append(CompressedLevel(ptrs, idxs))
            parent_id = node_of_nnz
            num_parents = idxs.size

    # Accumulate duplicate leaves (can only happen if the last level is
    # dense — compressed/singleton leaves are already unique per parent).
    leaf_positions = (
        levels[-1].num_positions() if levels else 0
    )
    out_vals = np.zeros(leaf_positions, dtype=np.float64)
    if vals.size:
        np.add.at(out_vals, parent_id, vals)
    return LevelTensor(coo.shape, levels, out_vals)
