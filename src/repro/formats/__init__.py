"""Sparse and dense tensor storage formats.

This package implements the storage substrate of the paper:

* :mod:`repro.formats.dense` — dense vectors/matrices/tensors with
  row-major fibers.
* :mod:`repro.formats.coo` — Coordinate format (Figure 1a).
* :mod:`repro.formats.csr` — Compressed Sparse Row (Figure 1b).
* :mod:`repro.formats.dcsr` — Doubly-Compressed Sparse Row (Figure 1c).
* :mod:`repro.formats.csf` — Compressed Sparse Fiber for order-n tensors.
* :mod:`repro.formats.levels` — the hierarchical *level format*
  abstraction of Chou et al. used by the TMU programs (Section 2.2).
* :mod:`repro.formats.convert` — conversions between all of the above.
* :mod:`repro.formats.io` — MatrixMarket- and FROSTT-style text I/O.
"""

from .coo import CooMatrix, CooTensor
from .csf import CsfTensor
from .csr import CsrMatrix
from .dcsr import DcsrMatrix
from .dense import DenseMatrix, DenseVector
from .levels import (
    CompressedLevel,
    DenseLevel,
    LevelTensor,
    SingletonLevel,
    build_level_tensor,
)
from .convert import (
    coo_to_csf,
    coo_to_csr,
    coo_to_dcsr,
    csr_to_coo,
    csr_to_dcsr,
    dcsr_to_coo,
    dcsr_to_csr,
    csf_to_coo,
)

__all__ = [
    "CooMatrix",
    "CooTensor",
    "CsfTensor",
    "CsrMatrix",
    "DcsrMatrix",
    "DenseMatrix",
    "DenseVector",
    "DenseLevel",
    "CompressedLevel",
    "SingletonLevel",
    "LevelTensor",
    "build_level_tensor",
    "coo_to_csr",
    "coo_to_dcsr",
    "coo_to_csf",
    "csr_to_coo",
    "csr_to_dcsr",
    "dcsr_to_csr",
    "dcsr_to_coo",
    "csf_to_coo",
]
