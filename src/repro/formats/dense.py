"""Dense tensor containers.

Dense operands in the paper are the right-hand-side vector of SpMV, the
factor matrices of MTTKRP/CP-ALS, and all kernel outputs whose dimensions
are not compressed.  They are thin, validated wrappers around contiguous
numpy arrays so the rest of the library can reason about *fibers* (the
one-dimensional views of Section 2.2) and byte-accurate addresses.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import FormatError
from ..types import VALUE_DTYPE, as_value_array


class DenseVector:
    """A dense order-1 tensor."""

    def __init__(self, values) -> None:
        values = as_value_array(values)
        if values.ndim != 1:
            raise FormatError(f"DenseVector needs 1-D data, got {values.ndim}-D")
        self.values = values

    @classmethod
    def zeros(cls, size: int) -> "DenseVector":
        if size < 0:
            raise FormatError("vector size must be non-negative")
        return cls(np.zeros(size, dtype=VALUE_DTYPE))

    @property
    def shape(self) -> tuple[int]:
        return (self.values.size,)

    @property
    def size(self) -> int:
        return self.values.size

    def nbytes(self) -> int:
        return int(self.values.nbytes)

    def __len__(self) -> int:
        return self.values.size

    def __getitem__(self, i):
        return self.values[i]

    def __setitem__(self, i, v) -> None:
        self.values[i] = v

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def to_numpy(self) -> np.ndarray:
        return self.values.copy()

    def __repr__(self) -> str:
        return f"DenseVector(size={self.size})"


class DenseMatrix:
    """A dense order-2 tensor stored row-major.

    Row-major storage makes each *row* a contiguous fiber, matching the
    layouts the paper's kernels assume (e.g. the ``B`` operand of SpMM is
    scanned a row at a time by the ``IdxFbrT`` primitive).
    """

    def __init__(self, values) -> None:
        values = np.ascontiguousarray(np.asarray(values, dtype=VALUE_DTYPE))
        if values.ndim != 2:
            raise FormatError(f"DenseMatrix needs 2-D data, got {values.ndim}-D")
        self.values = values

    @classmethod
    def zeros(cls, rows: int, cols: int) -> "DenseMatrix":
        if rows < 0 or cols < 0:
            raise FormatError("matrix dimensions must be non-negative")
        return cls(np.zeros((rows, cols), dtype=VALUE_DTYPE))

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape  # type: ignore[return-value]

    @property
    def num_rows(self) -> int:
        return self.values.shape[0]

    @property
    def num_cols(self) -> int:
        return self.values.shape[1]

    def nbytes(self) -> int:
        return int(self.values.nbytes)

    def row(self, i: int) -> np.ndarray:
        """Return row ``i`` as a fiber (a contiguous view)."""
        return self.values[i]

    def __getitem__(self, key):
        return self.values[key]

    def __setitem__(self, key, v) -> None:
        self.values[key] = v

    def to_numpy(self) -> np.ndarray:
        return self.values.copy()

    def __repr__(self) -> str:
        return f"DenseMatrix(shape={self.shape})"
