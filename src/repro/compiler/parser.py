"""TACO-style tensor-expression parser.

Grammar (whitespace-insensitive)::

    assignment := ref "=" expr
    expr       := ref (("*" | "+") ref)?
    ref        := NAME "(" index ("," index)* ")"
    index      := lowercase letter

Examples: ``Z(i) = A(i,j) * B(j)``, ``Z(i,j) = A(i,j) + B(i,j)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ReproError


class ExpressionError(ReproError):
    """The expression is malformed or outside the supported subset."""


@dataclass(frozen=True)
class TensorRef:
    """One tensor access, e.g. ``A(i,j)``."""

    name: str
    indices: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.name}({','.join(self.indices)})"


@dataclass(frozen=True)
class ParsedExpression:
    """A parsed assignment ``output = lhs op rhs`` (or ``output = lhs``).

    ``op`` is ``'*'``, ``'+'`` or ``None`` (pure copy/traversal).
    """

    output: TensorRef
    lhs: TensorRef
    op: str | None
    rhs: TensorRef | None

    @property
    def operands(self) -> tuple[TensorRef, ...]:
        return (self.lhs,) if self.rhs is None else (self.lhs, self.rhs)

    def index_classes(self) -> dict[str, str]:
        """Classify each index:

        * ``free``        — appears in the output (copied through)
        * ``contracted``  — only in inputs, joined multiplicatively
          (summed out)
        * ``elementwise`` — in the output and in *both* inputs
        """
        out = set(self.output.indices)
        classes: dict[str, str] = {}
        all_input = [set(ref.indices) for ref in self.operands]
        every_input = set.intersection(*all_input) if all_input else set()
        union_input = set.union(*all_input) if all_input else set()
        for idx in sorted(union_input):
            if idx not in out:
                classes[idx] = "contracted"
            elif len(self.operands) == 2 and idx in every_input:
                classes[idx] = "elementwise"
            else:
                classes[idx] = "free"
        return classes


_REF = re.compile(r"\s*([A-Za-z_]\w*)\s*\(\s*([a-z](?:\s*,\s*[a-z])*)\s*\)")


def _parse_ref(text: str, pos: int) -> tuple[TensorRef, int]:
    m = _REF.match(text, pos)
    if not m:
        raise ExpressionError(
            f"expected a tensor reference at ...{text[pos:pos + 20]!r}"
        )
    indices = tuple(tok.strip() for tok in m.group(2).split(","))
    if len(set(indices)) != len(indices):
        raise ExpressionError(
            f"repeated index within one reference: {m.group(0)!r}"
        )
    return TensorRef(m.group(1), indices), m.end()


def parse_expression(text: str) -> ParsedExpression:
    """Parse one assignment of the supported grammar."""
    output, pos = _parse_ref(text, 0)
    rest = text[pos:].lstrip()
    if not rest.startswith("="):
        raise ExpressionError("expected '=' after the output reference")
    pos = text.index("=", pos) + 1

    lhs, pos = _parse_ref(text, pos)
    rest = text[pos:].strip()
    if not rest:
        expr = ParsedExpression(output, lhs, None, None)
    else:
        op = rest[0]
        if op not in "*+":
            raise ExpressionError(f"unsupported operator {op!r}")
        pos = text.index(op, pos) + 1
        rhs, pos = _parse_ref(text, pos)
        if text[pos:].strip():
            raise ExpressionError(
                "only single binary expressions are supported"
            )
        expr = ParsedExpression(output, lhs, op, rhs)

    _validate(expr)
    return expr


def _validate(expr: ParsedExpression) -> None:
    input_indices = set()
    for ref in expr.operands:
        input_indices |= set(ref.indices)
    missing = set(expr.output.indices) - input_indices
    if missing:
        raise ExpressionError(
            f"output indices {sorted(missing)} appear in no input"
        )
    if expr.op == "+":
        shapes = {ref.indices for ref in expr.operands}
        if len(shapes) != 1 or expr.output.indices not in shapes:
            raise ExpressionError(
                "addition requires identically-indexed operands and "
                "output (element-wise join)"
            )
