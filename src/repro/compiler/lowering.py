"""Lowering: from a parsed tensor expression to a runnable TMU program.

The lowering pipeline mirrors what a Custard/SAM-style compiler would
do (paper Section 4.4):

1. classify each index as free / contracted / element-wise;
2. pick the loop schedule (output-major, contraction innermost);
3. select traversal primitives from the operand formats and the
   inter-layer configuration from the index classes (LockStep for
   parallel loads, ConjMrg for multiplicative joins, DisjMrg for
   additive joins);
4. emit the :class:`~repro.tmu.program.Program` plus generic core
   callbacks and a result-assembly closure.
"""

from __future__ import annotations

import numpy as np

from ..fibers.fiber import Fiber
from ..formats.csr import CsrMatrix
from ..programs import (
    build_spmm_program,
    build_spmspm_program,
    build_spmspv_program,
    build_spmv_program,
)
from ..programs.common import BuiltProgram
from ..tmu.program import Event, LayerMode, Program
from ..types import INDEX_BYTES, VALUE_BYTES
from .parser import ExpressionError, ParsedExpression, parse_expression


def compile_expression(expression: str | ParsedExpression,
                       operands: dict, *,
                       lanes: int = 2) -> BuiltProgram:
    """Compile a tensor expression against concrete operands.

    ``operands`` maps tensor names to :class:`CsrMatrix`,
    :class:`Fiber` (sparse vector) or numpy arrays (dense operands).
    Returns a :class:`BuiltProgram`; run it with
    ``TmuEngine(built.program).run(built.handlers)`` and read
    ``built.result()``.
    """
    expr = (parse_expression(expression)
            if isinstance(expression, str) else expression)
    missing = [r.name for r in expr.operands if r.name not in operands]
    if missing:
        raise ExpressionError(f"no operand bound for {missing}")

    if expr.op is None:
        return _lower_copy(expr, operands)
    if expr.op == "+":
        return _lower_elementwise(expr, operands, LayerMode.DISJ_MRG)

    classes = expr.index_classes()
    contracted = [i for i, c in classes.items() if c == "contracted"]
    elementwise = [i for i, c in classes.items() if c == "elementwise"]

    if elementwise and not contracted:
        return _lower_elementwise(expr, operands, LayerMode.CONJ_MRG)
    if len(contracted) == 1 and not elementwise:
        return _lower_contraction(expr, operands, contracted[0],
                                  lanes=lanes)
    raise ExpressionError(
        f"unsupported index structure: contracted={contracted}, "
        f"elementwise={elementwise} (the subset covers single "
        "contractions and pure element-wise joins)"
    )


# ------------------------------------------------------------- patterns

def _require_csr(ref, operand) -> CsrMatrix:
    if not isinstance(operand, CsrMatrix):
        raise ExpressionError(
            f"{ref} must be a CsrMatrix, got {type(operand).__name__}"
        )
    return operand


def _lower_contraction(expr: ParsedExpression, operands: dict,
                       contracted: str, *, lanes: int) -> BuiltProgram:
    """``Z(i[,k]) = A(i,j) * B(j[,k])`` — SpMV / SpMSpV / SpMM /
    SpMSpM, selected by the right operand's type and arity."""
    lhs, rhs = expr.lhs, expr.rhs
    # Normalize so the order-2 operand whose *last* index is contracted
    # drives the row-major traversal (multiplication commutes).
    def _drives(ref) -> bool:
        return len(ref.indices) == 2 and ref.indices[-1] == contracted

    if not _drives(lhs) and rhs is not None and _drives(rhs):
        lhs, rhs = rhs, lhs
    if lhs.indices[-1] != contracted or rhs.indices[0] != contracted:
        raise ExpressionError(
            "the contraction index must close the left operand and "
            "open the right one (row-major x row-major)"
        )
    if len(lhs.indices) != 2:
        raise ExpressionError("left operand must be order-2")
    a = _require_csr(lhs, operands[lhs.name])
    b = operands[rhs.name]

    if len(rhs.indices) == 1:
        if isinstance(b, Fiber):
            return build_spmspv_program(a, b, name="compiled_spmspv")
        return build_spmv_program(a, np.asarray(b, dtype=np.float64),
                                  lanes=lanes, name="compiled_spmv")
    if len(rhs.indices) == 2:
        if isinstance(b, CsrMatrix):
            return build_spmspm_program(a, b, lanes=lanes,
                                        name="compiled_spmspm")
        return build_spmm_program(a, np.asarray(b, dtype=np.float64),
                                  lanes=lanes, name="compiled_spmm")
    raise ExpressionError("right operand must be order-1 or order-2")


def _lower_elementwise(expr: ParsedExpression, operands: dict,
                       mode: LayerMode) -> BuiltProgram:
    """``Z(i,j) = A(i,j) (+|*) B(i,j)`` with CSR operands: co-iterate
    rows in lockstep and join the column fibers with a merging layer."""
    a = _require_csr(expr.lhs, operands[expr.lhs.name])
    if expr.rhs is None:
        raise ExpressionError("element-wise join needs two operands")
    b = _require_csr(expr.rhs, operands[expr.rhs.name])
    if a.shape != b.shape:
        raise ExpressionError(f"shape mismatch {a.shape} vs {b.shape}")
    if expr.lhs.indices != expr.rhs.indices or len(
            expr.lhs.indices) != 2:
        raise ExpressionError(
            "element-wise join needs identically-indexed order-2 "
            "operands"
        )
    combine_add = mode is LayerMode.DISJ_MRG

    prog = Program("compiled_ewise", lanes=2)
    arrays = []
    for tag, m in (("a", a), ("b", b)):
        arrays.append({
            "ptrs": prog.place_array(m.ptrs, INDEX_BYTES, f"{tag}->ptrs"),
            "idxs": prog.place_array(m.idxs, INDEX_BYTES, f"{tag}->idxs"),
            "vals": prog.place_array(m.vals, VALUE_BYTES, f"{tag}->vals"),
        })

    # Layer 0: both row dimensions co-iterate in lockstep.
    l0 = prog.add_layer(LayerMode.LOCKSTEP)
    begs, ends = [], []
    for lane, m in enumerate((a, b)):
        row = l0.dns_fbrt(beg=0, end=m.num_rows)
        begs.append(row.add_mem_stream(arrays[lane]["ptrs"],
                                       name=f"beg{lane}"))
        ends.append(row.add_mem_stream(arrays[lane]["ptrs"], offset=1,
                                       name=f"end{lane}"))
    l0.add_callback(Event.GITE, "row", [l0.index_operand()])
    l0.set_volume_hint(a.num_rows)

    # Layer 1: merge the two column fibers.
    l1 = prog.add_layer(mode)
    val_streams = []
    for lane in range(2):
        col = l1.rng_fbrt(beg=begs[lane], end=ends[lane])
        cidx = col.add_mem_stream(arrays[lane]["idxs"],
                                  name=f"col{lane}")
        val_streams.append(col.add_mem_stream(arrays[lane]["vals"],
                                              name=f"val{lane}"))
        col.set_merge_key(cidx)
    vals_vec = l1.vec_operand(val_streams)
    l1.add_callback(Event.GITE, "point",
                    [vals_vec, l1.mask_operand(), l1.index_operand()])
    l1.set_volume_hint(a.nnz + b.nnz)

    rows_out: list[tuple[list[int], list[float]]] = []

    def row_cb(record):
        rows_out.append(([], []))

    def point_cb(record):
        vals, mask, col = record.operands
        if combine_add:
            value = sum(vals[k] for k in range(2) if mask & (1 << k))
        else:
            value = 1.0
            for k in range(2):
                if mask & (1 << k):
                    value *= vals[k]
        cols, out_vals = rows_out[-1]
        cols.append(int(col))
        out_vals.append(value)

    def result() -> CsrMatrix:
        ptrs = np.zeros(a.num_rows + 1, dtype=np.int64)
        idx_parts, val_parts = [], []
        for i, (cols, vals_) in enumerate(rows_out):
            ptrs[i + 1] = ptrs[i] + len(cols)
            idx_parts.append(np.asarray(cols, dtype=np.int64))
            val_parts.append(np.asarray(vals_))
        return CsrMatrix(
            a.shape, ptrs,
            np.concatenate(idx_parts) if idx_parts else np.zeros(
                0, np.int64),
            np.concatenate(val_parts) if val_parts else np.zeros(0),
            validate=False)

    op_name = "add" if combine_add else "multiply"
    return BuiltProgram(
        program=prog,
        handlers={"row": row_cb, "point": point_cb},
        result=result,
        description=f"compiled element-wise {op_name} "
                    f"({mode.value} join)",
    )


def _lower_copy(expr: ParsedExpression, operands: dict) -> BuiltProgram:
    """``Z(i,j) = A(i,j)``: a pure traversal (format streaming)."""
    a = _require_csr(expr.lhs, operands[expr.lhs.name])
    if expr.output.indices != expr.lhs.indices:
        raise ExpressionError("copy must preserve the index order")

    prog = Program("compiled_copy", lanes=1)
    ptrs = prog.place_array(a.ptrs, INDEX_BYTES, "a->ptrs")
    idxs = prog.place_array(a.idxs, INDEX_BYTES, "a->idxs")
    vals = prog.place_array(a.vals, VALUE_BYTES, "a->vals")

    l0 = prog.add_layer(LayerMode.SINGLE)
    row = l0.dns_fbrt(beg=0, end=a.num_rows)
    beg = row.add_mem_stream(ptrs, name="beg")
    end = row.add_mem_stream(ptrs, offset=1, name="end")
    l0.add_callback(Event.GITE, "row", [])
    l0.set_volume_hint(a.num_rows)

    l1 = prog.add_layer(LayerMode.SINGLE)
    col = l1.rng_fbrt(beg=beg, end=end)
    cidx = col.add_mem_stream(idxs, name="col")
    cval = col.add_mem_stream(vals, name="val")
    l1.add_callback(Event.GITE, "nz", [l1.vec_operand([cidx]),
                                       l1.vec_operand([cval])])
    l1.set_volume_hint(a.nnz)

    rows_out: list[tuple[list[int], list[float]]] = []

    def row_cb(record):
        rows_out.append(([], []))

    def nz_cb(record):
        (col_val,), (val,) = record.operands
        rows_out[-1][0].append(int(col_val))
        rows_out[-1][1].append(float(val))

    def result() -> CsrMatrix:
        ptrs_out = np.zeros(a.num_rows + 1, dtype=np.int64)
        idx_parts, val_parts = [], []
        for i, (cols, vals_) in enumerate(rows_out):
            ptrs_out[i + 1] = ptrs_out[i] + len(cols)
            idx_parts.append(np.asarray(cols, dtype=np.int64))
            val_parts.append(np.asarray(vals_))
        return CsrMatrix(
            a.shape, ptrs_out,
            np.concatenate(idx_parts) if idx_parts else np.zeros(
                0, np.int64),
            np.concatenate(val_parts) if val_parts else np.zeros(0),
            validate=False)

    return BuiltProgram(
        program=prog,
        handlers={"row": row_cb, "nz": nz_cb},
        result=result,
        description="compiled traversal/copy",
    )
