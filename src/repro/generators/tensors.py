"""Synthetic sparse tensor generators (FROSTT stand-ins, Table 6).

The FROSTT tensors the paper uses (Chicago-crime, LBNL-network,
NIPS publications, Uber pickups) are count/measurement tensors whose
modes have wildly different extents and skewed marginal distributions.
The generators reproduce those two properties — per-mode extents and
Zipf-skewed coordinate marginals — at a configurable scale.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import FormatError
from ..formats.coo import CooTensor


def _zipf_coordinates(rng, extent: int, count: int, skew: float) -> np.ndarray:
    """Sample ``count`` coordinates in [0, extent) with a Zipf-like
    marginal of exponent ``skew`` (0 = uniform)."""
    if extent <= 0:
        raise FormatError("mode extent must be positive")
    if skew <= 0:
        return rng.integers(0, extent, size=count)
    # Inverse-CDF sampling over a truncated log-uniform distribution:
    # rank k is hit with probability ~ 1/(k+1), scattered by `perm` below.
    u = rng.random(count) ** (1.0 / skew)
    k = np.exp(u * np.log(extent + 1.0)) - 1.0
    coords = np.clip(k.astype(np.int64), 0, extent - 1)
    # Scatter hubs across the index space deterministically.
    perm = rng.permutation(extent)
    return perm[coords]


def uniform_random_tensor(shape: Sequence[int], nnz: int,
                          seed: int = 0) -> CooTensor:
    """Uniformly random order-n tensor with ~``nnz`` stored entries."""
    rng = np.random.default_rng(seed)
    coords = [rng.integers(0, s, size=nnz) for s in shape]
    vals = rng.uniform(0.5, 1.5, size=nnz)
    return CooTensor(tuple(shape), coords, vals)


def clustered_tensor(shape: Sequence[int], nnz: int, *,
                     skews: Sequence[float] | None = None,
                     seed: int = 0) -> CooTensor:
    """Tensor with Zipf-skewed marginals per mode.

    ``skews[d]`` controls mode ``d``'s skew; real count tensors typically
    have one or two heavily skewed modes (e.g. crime type, network port)
    and more uniform modes (e.g. hour of day).
    """
    shape = tuple(int(s) for s in shape)
    rng = np.random.default_rng(seed)
    if skews is None:
        skews = [1.0] * len(shape)
    if len(skews) != len(shape):
        raise FormatError("need one skew per mode")
    coords = [
        _zipf_coordinates(rng, extent, nnz, skew)
        for extent, skew in zip(shape, skews)
    ]
    vals = rng.uniform(0.5, 1.5, size=nnz)
    return CooTensor(shape, coords, vals)
