"""Synthetic sparse matrix generators.

Each generator mimics the structure of one SuiteSparse *domain* the
paper draws its inputs from (Table 6): banded structural/FEM problems,
3-D fluid-dynamics stencils, power-law circuit netlists, and
low-degree road networks.  What matters for the evaluation is the
nnz-per-row distribution and the column-index locality — both are
reproduced; absolute scale is a free parameter.

All generators are deterministic given ``seed`` and return
:class:`~repro.formats.csr.CsrMatrix`.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..formats.coo import CooMatrix
from ..formats.convert import coo_to_csr
from ..formats.csr import CsrMatrix


def _assemble(rows: int, cols: int, r, c, rng) -> CsrMatrix:
    """Clip, dedupe and assemble coordinate lists into CSR with random
    values in [0.5, 1.5) (well-conditioned, away from zero)."""
    r = np.asarray(r, dtype=np.int64)
    c = np.asarray(c, dtype=np.int64)
    keep = (r >= 0) & (r < rows) & (c >= 0) & (c < cols)
    r, c = r[keep], c[keep]
    vals = rng.uniform(0.5, 1.5, size=r.size)
    coo = CooMatrix((rows, cols), r, c, vals)  # sorts + sums duplicates
    return coo_to_csr(coo)


def uniform_random_matrix(rows: int, cols: int, nnz_per_row: float,
                          seed: int = 0) -> CsrMatrix:
    """Erdős–Rényi-style matrix: every position equally likely."""
    if nnz_per_row <= 0:
        raise FormatError("nnz_per_row must be positive")
    rng = np.random.default_rng(seed)
    total = int(rows * nnz_per_row)
    r = rng.integers(0, rows, size=total)
    c = rng.integers(0, cols, size=total)
    return _assemble(rows, cols, r, c, rng)


def banded_matrix(rows: int, nnz_per_row: int, bandwidth: int,
                  seed: int = 0) -> CsrMatrix:
    """FEM/structural-style matrix: non-zeros clustered in a band around
    the diagonal (mimics af_0_k101/halfb/test1)."""
    rng = np.random.default_rng(seed)
    r = np.repeat(np.arange(rows), nnz_per_row)
    offsets = rng.integers(-bandwidth, bandwidth + 1, size=r.size)
    c = np.clip(r + offsets, 0, rows - 1)
    # Always keep the diagonal, like FEM stiffness matrices do.
    r = np.concatenate((r, np.arange(rows)))
    c = np.concatenate((c, np.arange(rows)))
    return _assemble(rows, rows, r, c, rng)


def stencil_3d_matrix(nx: int, ny: int, nz: int, *, points: int = 7,
                      seed: int = 0) -> CsrMatrix:
    """3-D finite-difference stencil on an nx×ny×nz grid (mimics
    atmosmodm: ~7 nnz/row, perfectly regular structure)."""
    if points not in (7, 27):
        raise FormatError("only 7- and 27-point stencils are supported")
    rng = np.random.default_rng(seed)
    n = nx * ny * nz
    x, y, z = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz),
                          indexing="ij")
    x, y, z = x.ravel(), y.ravel(), z.ravel()
    rows_list, cols_list = [], []
    if points == 7:
        neighbourhood = [(0, 0, 0), (1, 0, 0), (-1, 0, 0), (0, 1, 0),
                         (0, -1, 0), (0, 0, 1), (0, 0, -1)]
    else:
        neighbourhood = [(dx, dy, dz)
                         for dx in (-1, 0, 1)
                         for dy in (-1, 0, 1)
                         for dz in (-1, 0, 1)]
    for dx, dy, dz in neighbourhood:
        nxx, nyy, nzz = x + dx, y + dy, z + dz
        valid = ((nxx >= 0) & (nxx < nx) & (nyy >= 0) & (nyy < ny)
                 & (nzz >= 0) & (nzz < nz))
        rows_list.append((x * ny * nz + y * nz + z)[valid])
        cols_list.append((nxx * ny * nz + nyy * nz + nzz)[valid])
    r = np.concatenate(rows_list)
    c = np.concatenate(cols_list)
    return _assemble(n, n, r, c, rng)


def power_law_matrix(rows: int, nnz_per_row: float, *, alpha: float = 2.1,
                     max_degree: int | None = None,
                     seed: int = 0) -> CsrMatrix:
    """Scale-free matrix: Zipf-distributed row degrees and
    popularity-skewed column targets (mimics Freescale1 and general
    graph/circuit inputs)."""
    rng = np.random.default_rng(seed)
    if max_degree is None:
        # Bounded hubs: circuit matrices are skewed but not scale-free
        # to the point of quadratic A·Aᵀ blow-up.
        max_degree = max(8, int(nnz_per_row * 8))

    def build(target: float) -> CsrMatrix:
        degrees = np.minimum(rng.zipf(alpha, size=rows), max_degree)
        scale = target / max(degrees.mean(), 1e-9)
        degrees = np.maximum(1, np.minimum(
            max_degree, (degrees * scale).astype(np.int64)))
        r = np.repeat(np.arange(rows), degrees)
        # Column targets: a configuration-model shuffle of the same
        # degree multiset (in-degrees follow the same bounded power law
        # as out-degrees, so neither axis blows A·Aᵀ up), with most
        # endpoints rewired near the source row — circuit netlists are
        # strongly clustered, which is what keeps their scans
        # cache-friendly at any scale.
        c = rng.permutation(r)
        local = rng.random(r.size) < 0.7
        jitter = rng.integers(-200, 201, size=r.size)
        c = np.where(local, np.clip(r + jitter, 0, rows - 1), c)
        return _assemble(rows, rows, r, c, rng)

    # Hub collisions collapse duplicates, so one corrective pass
    # rescales the degree target toward the requested density (capped
    # to avoid runaway hub growth).
    matrix = build(nnz_per_row)
    achieved = matrix.nnz / max(1, rows)
    if achieved < 0.8 * nnz_per_row:
        boost = min(2.5, nnz_per_row / max(achieved, 1e-9))
        matrix = build(nnz_per_row * boost)
    return matrix


def road_network_matrix(rows: int, seed: int = 0) -> CsrMatrix:
    """Road-network-style matrix: ~2 nnz/row, near-diagonal chain plus
    sparse shortcuts (mimics gb_osm)."""
    rng = np.random.default_rng(seed)
    # Chain edges: i -> i+1 and i -> i-1 with high probability.
    fwd = np.arange(rows - 1)
    keep_fwd = rng.random(rows - 1) < 0.85
    r = np.concatenate((fwd[keep_fwd], fwd[keep_fwd] + 1))
    c = np.concatenate((fwd[keep_fwd] + 1, fwd[keep_fwd]))
    # Occasional intersections: short jumps within a neighbourhood.
    n_extra = rows // 5
    src = rng.integers(0, rows, size=n_extra)
    dst = np.clip(src + rng.integers(-64, 65, size=n_extra), 0, rows - 1)
    r = np.concatenate((r, src, dst))
    c = np.concatenate((c, dst, src))
    # OSM node numbering does not follow geography: a third of the
    # edges connect far-apart ids, which is what makes gb_osm's gathers
    # cache-hostile in the paper.
    n_far = rows // 3
    fsrc = rng.integers(0, rows, size=n_far)
    fdst = rng.integers(0, rows, size=n_far)
    r = np.concatenate((r, fsrc, fdst))
    c = np.concatenate((c, fdst, fsrc))
    return _assemble(rows, rows, r, c, rng)


def diagonal_block_matrix(rows: int, block: int, fill: float = 0.5,
                          seed: int = 0) -> CsrMatrix:
    """Block-diagonal matrix with dense-ish blocks — high spatial
    locality, used by ablation studies."""
    rng = np.random.default_rng(seed)
    n_blocks = (rows + block - 1) // block
    rs, cs = [], []
    for b in range(n_blocks):
        base = b * block
        size = min(block, rows - base)
        count = int(size * size * fill)
        rs.append(base + rng.integers(0, size, size=count))
        cs.append(base + rng.integers(0, size, size=count))
    return _assemble(rows, rows, np.concatenate(rs), np.concatenate(cs), rng)


def fixed_nnz_per_row_matrix(rows: int, nnz_per_row: int,
                             seed: int = 0) -> CsrMatrix:
    """Every row stores exactly ``nnz_per_row`` non-zeros at columns
    ``0..nnz_per_row-1`` — the synthetic ceiling matrices of Figure 12c
    ("ideal spatio-temporal locality")."""
    if nnz_per_row < 1:
        raise FormatError("nnz_per_row must be >= 1")
    rng = np.random.default_rng(seed)
    ptrs = np.arange(rows + 1, dtype=np.int64) * nnz_per_row
    idxs = np.tile(np.arange(nnz_per_row, dtype=np.int64), rows)
    vals = rng.uniform(0.5, 1.5, size=rows * nnz_per_row)
    cols = max(rows, nnz_per_row)
    return CsrMatrix((rows, cols), ptrs, idxs, vals, validate=False)
