"""The named input suite: M1–M6 matrices and T1–T4 tensors (Table 6).

Each entry records the paper's original dataset, its headline statistics
and its domain, and builds a scaled synthetic stand-in with the same
structure.  Three scale presets are provided:

* ``small`` — default; fast enough for unit tests and CI benchmarks.
* ``medium`` — for local experimentation.
* ``paper`` — the original published sizes (slow in pure Python; only
  use for spot checks).

Inputs are memoized per (id, scale) so experiment sweeps do not pay
generation cost repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from ..errors import WorkloadError
from ..formats.coo import CooTensor
from ..formats.csr import CsrMatrix
from . import matrices as m
from . import tensors as t

SCALES = ("small", "medium", "paper")

#: Row-count divisors per scale preset (paper sizes are O(10M) nnz,
#: far beyond what a pure-Python cycle model can traverse quickly).
_SCALE_DIVISOR = {"small": 256, "medium": 32, "paper": 1}


@dataclass(frozen=True)
class InputSpec:
    """One catalogue entry of Table 6."""

    id: str
    source_name: str
    domain: str
    paper_nnz: int
    paper_rows_or_dims: str
    nnz_per_row: float
    builder: Callable[[str], object]

    def build(self, scale: str = "small"):
        if scale not in SCALES:
            raise WorkloadError(f"unknown scale {scale!r}; pick from {SCALES}")
        return self.builder(scale)


def _scaled(rows: int, scale: str) -> int:
    return max(64, rows // _SCALE_DIVISOR[scale])


def _band(rows: int, paper_rows: int, paper_band: int,
          nnz_per_row: int) -> int:
    """Scale a band width with the row count so the band covers the
    same fraction of the matrix (keeps A·Aᵀ density and gather locality
    comparable), floored so rows still fit their non-zeros."""
    scaled = int(paper_band * rows / paper_rows)
    return max(int(nnz_per_row * 1.5), scaled)


def _m1(scale: str) -> CsrMatrix:
    # af_0_k101: 504K rows, ~35 nnz/row, sheet-metal FEM (banded).
    rows = _scaled(504_000, scale)
    return m.banded_matrix(rows, nnz_per_row=35,
                           bandwidth=_band(rows, 504_000, 600, 35),
                           seed=101)


def _m2(scale: str) -> CsrMatrix:
    # atmosmodm: 1.5M rows, ~7 nnz/row, 3-D atmospheric stencil.
    n = _scaled(1_500_000, scale)
    side = max(8, round(n ** (1.0 / 3.0)))
    return m.stencil_3d_matrix(side, side, side, points=7, seed=102)


def _m3(scale: str) -> CsrMatrix:
    # Freescale1: 3.4M rows, ~5 nnz/row, circuit simulation (power law).
    return m.power_law_matrix(_scaled(3_400_000, scale), nnz_per_row=5.0,
                              seed=103)


def _m4(scale: str) -> CsrMatrix:
    # gb_osm: 7.7M rows, ~2 nnz/row, Great-Britain street network.
    return m.road_network_matrix(_scaled(7_700_000, scale), seed=104)


def _m5(scale: str) -> CsrMatrix:
    # halfb: 225K rows, ~55 nnz/row, structural (wide band).
    rows = _scaled(225_000, scale)
    return m.banded_matrix(rows, nnz_per_row=55,
                           bandwidth=_band(rows, 225_000, 900, 55),
                           seed=105)


def _m6(scale: str) -> CsrMatrix:
    # test1: 393K rows, ~24 nnz/row, semiconductor process simulation.
    rows = _scaled(393_000, scale)
    return m.banded_matrix(rows, nnz_per_row=24,
                           bandwidth=_band(rows, 393_000, 3000, 24),
                           seed=106)


def _tensor_dims(dims: tuple[int, ...], nnz: int, scale: str
                 ) -> tuple[tuple[int, ...], int]:
    div = _SCALE_DIVISOR[scale]
    # Shrink nnz linearly and mode extents by the cube root of the
    # divisor so density profiles stay comparable.
    mode_div = max(1.0, div ** (1.0 / 3.0))
    scaled_dims = tuple(max(8, int(d / mode_div)) for d in dims)
    return scaled_dims, max(512, nnz // div)


def _t1(scale: str) -> CooTensor:
    # Chicago-crime: 6K x 24 x 77 x 32, 5M nnz, count data.
    dims, nnz = _tensor_dims((6_186, 24, 77, 32), 5_000_000, scale)
    return t.clustered_tensor(dims, nnz, skews=[0.5, 0.0, 1.0, 1.5],
                              seed=201)


def _t2(scale: str) -> CooTensor:
    # LBNL-network: 2K x 4K x 2K x 4K x 866K, 2M nnz, network flows.
    dims, nnz = _tensor_dims((1_605, 4_198, 1_631, 4_209, 868_131),
                             1_700_000, scale)
    return t.clustered_tensor(dims, nnz, skews=[1.5, 1.5, 1.5, 1.5, 2.0],
                              seed=202)


def _t3(scale: str) -> CooTensor:
    # NIPS publications: 2.5K x 2.9K x 14K x 17, 3M nnz, text counts.
    dims, nnz = _tensor_dims((2_482, 2_862, 14_036, 17), 3_100_000, scale)
    return t.clustered_tensor(dims, nnz, skews=[0.5, 0.5, 1.5, 0.0],
                              seed=203)


def _t4(scale: str) -> CooTensor:
    # Uber pickups: 183 x 24 x 1140 x 1717, 3M nnz, spatial counts.
    dims, nnz = _tensor_dims((183, 24, 1_140, 1_717), 3_300_000, scale)
    return t.clustered_tensor(dims, nnz, skews=[0.0, 0.0, 1.0, 1.0],
                              seed=204)


MATRIX_SUITE: dict[str, InputSpec] = {
    "M1": InputSpec("M1", "af_0_k101", "structural", 17_600_000,
                    "504K", 35, _m1),
    "M2": InputSpec("M2", "atmosmodm", "fluid dynamics", 10_300_000,
                    "1.5M", 7, _m2),
    "M3": InputSpec("M3", "Freescale1", "circuit simulation", 17_100_000,
                    "3.4M", 5, _m3),
    "M4": InputSpec("M4", "gb_osm", "street network", 13_300_000,
                    "7.7M", 2, _m4),
    "M5": InputSpec("M5", "halfb", "structural", 12_400_000,
                    "225K", 55, _m5),
    "M6": InputSpec("M6", "test1", "semiconductor", 9_400_000,
                    "393K", 24, _m6),
}

TENSOR_SUITE: dict[str, InputSpec] = {
    "T1": InputSpec("T1", "Chicago-crime", "count data", 5_000_000,
                    "6K x 24 x 77 x 32", 0, _t1),
    "T2": InputSpec("T2", "LBNL-network", "network flows", 1_700_000,
                    "2K x 4K x 2K x 4K x 866K", 0, _t2),
    "T3": InputSpec("T3", "NIPS pubs", "text counts", 3_100_000,
                    "3K x 3K x 14K x 17", 0, _t3),
    "T4": InputSpec("T4", "Uber pickups", "spatial counts", 3_300_000,
                    "183 x 24 x 1140 x 1717", 0, _t4),
}


def matrix_ids() -> list[str]:
    return sorted(MATRIX_SUITE)


def tensor_ids() -> list[str]:
    return sorted(TENSOR_SUITE)


@lru_cache(maxsize=None)
def load_matrix(input_id: str, scale: str = "small") -> CsrMatrix:
    """Build (and memoize) one matrix of the suite."""
    if input_id not in MATRIX_SUITE:
        raise WorkloadError(
            f"unknown matrix id {input_id!r}; known: {matrix_ids()}"
        )
    return MATRIX_SUITE[input_id].build(scale)


@lru_cache(maxsize=None)
def load_tensor(input_id: str, scale: str = "small") -> CooTensor:
    """Build (and memoize) one tensor of the suite."""
    if input_id not in TENSOR_SUITE:
        raise WorkloadError(
            f"unknown tensor id {input_id!r}; known: {tensor_ids()}"
        )
    return TENSOR_SUITE[input_id].build(scale)
