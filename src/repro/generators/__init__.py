"""Synthetic input generators reproducing Table 6's workload suite.

The paper evaluates six SuiteSparse matrices (M1–M6) and four FROSTT
tensors (T1–T4).  Distributing those datasets is impractical here, so
:mod:`repro.generators.matrices` and :mod:`repro.generators.tensors`
synthesize structurally equivalent inputs: same domain flavour (banded
FEM, 3-D stencil, power-law circuit, road network, ...), matching
nnz-per-row statistics, scaled to a size a pure-Python simulation can
traverse.  :mod:`repro.generators.suite` registers them under the
paper's M*/T* names.
"""

from .matrices import (
    banded_matrix,
    diagonal_block_matrix,
    fixed_nnz_per_row_matrix,
    power_law_matrix,
    road_network_matrix,
    stencil_3d_matrix,
    uniform_random_matrix,
)
from .tensors import clustered_tensor, uniform_random_tensor
from .suite import (
    InputSpec,
    MATRIX_SUITE,
    TENSOR_SUITE,
    load_matrix,
    load_tensor,
    matrix_ids,
    tensor_ids,
)

__all__ = [
    "banded_matrix",
    "diagonal_block_matrix",
    "fixed_nnz_per_row_matrix",
    "power_law_matrix",
    "road_network_matrix",
    "stencil_3d_matrix",
    "uniform_random_matrix",
    "clustered_tensor",
    "uniform_random_tensor",
    "InputSpec",
    "MATRIX_SUITE",
    "TENSOR_SUITE",
    "load_matrix",
    "load_tensor",
    "matrix_ids",
    "tensor_ids",
]
