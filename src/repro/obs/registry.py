"""The hierarchical metric registry.

Metrics are addressed by dotted paths mirroring the simulator layers
("tmu.engine.outq.records", "sim.cache.l1.hits", ...).  A registry is a
flat name -> instrument map — the hierarchy lives in the names, which
keeps lookups to one dict access and makes snapshots trivially sortable
and diffable by prefix.

Registries from worker processes are folded back into the parent with
:meth:`Registry.merge`, so telemetry survives the process-pool executor.
"""

from __future__ import annotations

from ..errors import ObsError
from .metrics import Counter, Gauge, Histogram, Timer

_KINDS = {
    "counters": Counter,
    "gauges": Gauge,
    "histograms": Histogram,
    "timers": Timer,
}


class Registry:
    """One run's worth of named instruments."""

    def __init__(self, meta: dict | None = None) -> None:
        self.meta: dict = dict(meta or {})
        self._metrics: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ObsError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    # ------------------------------------------------------ serialization

    def as_dict(self) -> dict:
        """The registry body grouped by instrument kind (JSON-able)."""
        body: dict[str, dict] = {kind: {} for kind in _KINDS}
        for name, metric in sorted(self._metrics.items()):
            body[metric.kind + "s"][name] = metric.as_dict()
        return body

    def merge(self, body: dict) -> None:
        """Fold a registry body (from :meth:`as_dict`, e.g. shipped back
        from a worker process) into this registry."""
        for kind, cls in _KINDS.items():
            for name, data in body.get(kind, {}).items():
                self._get(name, cls).merge(data)

    def prefixed(self, prefix: str) -> "PrefixedRegistry":
        """A view that prepends ``prefix.`` to every metric name."""
        return PrefixedRegistry(self, prefix)


def add_deltas(view, values: dict, seen: dict) -> None:
    """Publish cumulative component counters as increments.

    Engine components (TUs, TGs, the arbiter, the outQ) keep lifetime
    totals; re-observing them must not double count, so this helper adds
    only what grew since the last observe and remembers the new totals
    in ``seen`` (a dict the component owns).
    """
    for key, value in values.items():
        view.counter(key).add(value - seen.get(key, 0))
        seen[key] = value


class PrefixedRegistry:
    """A registry view rooted at a dotted-path prefix."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: Registry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._prefix + name)

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._prefix + name)

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(self._prefix + name)

    def timer(self, name: str) -> Timer:
        return self._registry.timer(self._prefix + name)

    def prefixed(self, prefix: str) -> "PrefixedRegistry":
        return PrefixedRegistry(self._registry, self._prefix + prefix)
