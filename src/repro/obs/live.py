"""Live metric exposition: Prometheus text format for any registry.

:func:`to_prometheus` renders a ``repro.obs/1`` snapshot (or a live
:class:`~repro.obs.registry.Registry`) as Prometheus text exposition
(version 0.0.4), so the metrics the simulator already collects become
scrapable the instant a server mounts them — no second metric system,
no translation tables to keep in sync.

Mapping rules, applied uniformly:

* dotted paths become ``repro_``-prefixed underscore names
  (``serve.queue_depth`` → ``repro_serve_queue_depth``); characters
  outside ``[a-zA-Z0-9_]`` are folded to ``_``;
* a few well-known path families carry an identity in one path
  segment — that segment becomes a *label* instead of a name
  fragment, so Prometheus sees one series family with a ``client``,
  ``route``, or ``state`` dimension (see ``LABEL_RULES``);
* counters export their value verbatim; gauges export the value plus a
  ``<name>_high_water`` companion; power-of-two histograms become
  cumulative ``_bucket{le="2^k"}`` series plus ``_sum``/``_count``;
  timers become ``<name>_seconds`` summaries (``_sum``/``_count``).

Label values are escaped per the exposition spec (backslash, double
quote, newline).  Series of one family are emitted under a single
``# TYPE`` header, sorted, so the output is deterministic and
diff-able.
"""

from __future__ import annotations

import math
import re

from .registry import Registry
from .snapshot import make_snapshot

#: the Content-Type a /metrics endpoint must declare
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: path families whose third-ish segment is an identity, not a name:
#: (dotted prefix, label key).  ``serve.client.ci.cells`` renders as
#: ``repro_serve_client_cells{client="ci"}``; a family with nothing
#: after the identity segment (``serve.jobs.done``) renders as
#: ``repro_serve_jobs{state="done"}``.
LABEL_RULES = (
    ("serve.client.", "client"),
    ("serve.http.", "route"),
    ("serve.jobs.", "state"),
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

_KIND_TO_TYPE = {
    "counters": "counter",
    "gauges": "gauge",
    "histograms": "histogram",
    "timers": "summary",
}


def _prom_name(family: str) -> str:
    name = _NAME_OK.sub("_", family.replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return "repro_" + name


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-exposition spec."""
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _split_path(path: str) -> tuple[str, dict[str, str]]:
    """Split a dotted path into (family, labels) via LABEL_RULES."""
    for prefix, key in LABEL_RULES:
        if path.startswith(prefix):
            rest = path[len(prefix):]
            value, _, tail = rest.partition(".")
            if not value:
                break
            family = prefix.rstrip(".") + ("." + tail if tail else "")
            return family, {key: value}
    return path, {}


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _bucket_upper(exponent: int) -> str:
    """The ``le`` bound of power-of-two bucket ``exponent``."""
    return _fmt_value(float(2 ** exponent)) if exponent else "1"


def _series_of(kind: str, name: str, labels: dict, data) -> list[tuple]:
    """Expand one metric into ``(family_suffix, labels, value)`` rows."""
    if kind == "counters":
        return [("", labels, float(data))]
    if kind == "gauges":
        return [("", labels, float(data["value"])),
                ("_high_water", labels, float(data["high_water"]))]
    if kind == "timers":
        return [("_seconds_count", labels, float(data["count"])),
                ("_seconds_sum", labels, float(data["total_s"]))]
    # histograms: cumulative pow2 buckets + +Inf + sum/count
    rows = []
    cumulative = 0
    for exponent in sorted(int(b) for b in data["buckets"]):
        cumulative += data["buckets"][str(exponent)]
        rows.append(("_bucket",
                     {**labels, "le": _bucket_upper(exponent)},
                     float(cumulative)))
    rows.append(("_bucket", {**labels, "le": "+Inf"},
                 float(data["count"])))
    rows.append(("_sum", labels, float(data["total"])))
    rows.append(("_count", labels, float(data["count"])))
    return rows


def to_prometheus(snap: dict | Registry,
                  labels: dict[str, str] | None = None) -> str:
    """Render a snapshot (or live registry) as text exposition.

    ``labels`` (e.g. ``{"job": "repro-serve"}``) are stamped onto
    every emitted series.
    """
    if isinstance(snap, Registry):
        snap = make_snapshot(snap)
    base_labels = dict(labels or {})
    # family name -> (prom type, [(suffix, labels, value), ...])
    families: dict[str, tuple[str, list[tuple]]] = {}
    for kind, prom_type in _KIND_TO_TYPE.items():
        for path, data in snap.get(kind, {}).items():
            family, extracted = _split_path(path)
            merged = {**base_labels, **extracted}
            rows = _series_of(kind, path, merged, data)
            entry = families.setdefault(family, (prom_type, []))
            if entry[0] != prom_type:
                # same family under two kinds: keep them apart by
                # emitting the later one under its full path instead.
                entry = families.setdefault(path, (prom_type, []))
            entry[1].extend(rows)
    lines: list[str] = []
    for family in sorted(families):
        prom_type, rows = families[family]
        name = _prom_name(family)
        lines.append(f"# HELP {name} repro metric {family}")
        lines.append(f"# TYPE {name} {prom_type}")
        for suffix, row_labels, value in rows:
            lines.append(f"{name}{suffix}{_render_labels(row_labels)} "
                         f"{_fmt_value(value)}")
    return "\n".join(lines) + "\n"
