"""Event-level execution tracing: the *when* and *why* behind the metrics.

:mod:`repro.obs` answers "how much" (counters, histograms, cells/sec);
this module records "when": a bounded timeline of **span**, **instant**
and **counter-sample** events addressed by the same dotted paths as the
metric registry ("tmu.tg.layer0", "sim.core", "runtime.executor", ...).

Design points, mirroring the metrics layer:

* a process-wide on/off switch — instrumented call sites ask the module
  for the active :class:`Tracer` and get the shared no-op
  :data:`NULL_TRACER` unless tracing is enabled, so dormant hooks cost
  one attribute read;
* a **bounded ring buffer** (``capacity``) that drops the *oldest*
  fine-grained events under pressure, preserving the end-of-run summary
  spans the stall report folds;
* **sampling** (``sample_every``) applied to instants and counter
  samples only — spans and summaries are always kept — so full figure
  sweeps stay tractable;
* worker :meth:`Tracer.merge` so the process-pool executor can fold
  worker timelines back into the parent, like it does for registries.

Timestamps are *virtual ticks* on a per-tracer monotonic clock: the TMU
engine advances one tick per TG ``gite`` step, the interval core model
allocates its cycle totals, and the executor allocates wall-clock
microseconds.  Each subsystem gets its own process track in the
Perfetto export (:mod:`repro.obs.export`), so units never need to
align across subsystems.

Traces serialize to the versioned ``repro.trace/1`` JSON schema
(:func:`make_trace` / :func:`validate_trace` / :func:`write_trace` /
:func:`load_trace`) consumed by ``repro trace export|report``.
"""

from __future__ import annotations

import json
import platform
import time
from contextlib import contextmanager
from pathlib import Path

from ..errors import ObsError

#: bump on any breaking change to the trace event layout
TRACE_SCHEMA = "repro.trace/1"

#: event phases: complete span, instant, counter sample (Chrome trace
#: phase letters, reused verbatim by the Perfetto exporter)
PHASES = ("X", "i", "C")

#: default ring-buffer capacity (events)
DEFAULT_CAPACITY = 65536


class Tracer:
    """One run's worth of timeline events.

    Events are stored as plain lists ``[ts, dur, phase, track, name,
    args]`` — cheap to append, JSON-able as-is.
    """

    #: real tracers answer True to the ``enabled`` guard at hot sites
    enabled = True

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        sample_every: int = 1,
        meta: dict | None = None,
    ) -> None:
        if capacity < 1:
            raise ObsError(f"trace capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ObsError(f"sample_every must be >= 1, got {sample_every}")
        self.capacity = capacity
        self.sample_every = sample_every
        self.meta: dict = dict(meta or {})
        self.events: list[list] = []
        self.dropped = 0
        self._now = 0
        self._seq = 0

    # ------------------------------------------------------------- clock

    @property
    def now(self) -> int:
        """The current virtual-clock reading (ticks)."""
        return self._now

    def tick(self, n: int = 1) -> int:
        """Advance the virtual clock by ``n`` ticks; returns the new now."""
        self._now += n
        return self._now

    def alloc(self, dur: int) -> int:
        """Reserve ``dur`` ticks on the timeline; returns the start
        timestamp (components with externally computed durations — cycle
        counts, wall-clock — lay their spans out with this)."""
        start = self._now
        self._now += max(0, int(dur))
        return start

    # ------------------------------------------------------------ events

    def _append(self, event: list) -> None:
        if len(self.events) >= self.capacity:
            # ring behaviour: drop the oldest event, keep the newest
            # (summaries are emitted last and must survive)
            del self.events[0]
            self.dropped += 1
        self.events.append(event)

    def span(
        self,
        track: str,
        name: str,
        ts: int,
        dur: int,
        args: dict | None = None,
    ) -> None:
        """A complete span [ts, ts+dur) on ``track`` (never sampled)."""
        self._append([int(ts), max(0, int(dur)), "X", track, name, args])

    def instant(
        self,
        track: str,
        name: str,
        ts: int | None = None,
        args: dict | None = None,
    ) -> None:
        """A point event (subject to ``sample_every`` decimation)."""
        self._seq += 1
        if self._seq % self.sample_every:
            return
        t = self._now if ts is None else int(ts)
        self._append([t, 0, "i", track, name, args])

    def sample(
        self,
        track: str,
        name: str,
        value: float,
        ts: int | None = None,
    ) -> None:
        """A counter sample (queue occupancy, fill level...), decimated
        like instants."""
        self._seq += 1
        if self._seq % self.sample_every:
            return
        t = self._now if ts is None else int(ts)
        self._append([t, 0, "C", track, name, {"value": value}])

    @contextmanager
    def region(self, track: str, name: str, args: dict | None = None):
        """Span context manager measured on the virtual clock; the body
        is expected to advance it (``tick``/``alloc``)."""
        start = self._now
        try:
            yield self
        finally:
            self.span(track, name, start, self._now - start, args)

    # ---------------------------------------------------- (de)serialization

    def as_dict(self) -> dict:
        """The tracer body (JSON-able), shipped back from workers."""
        return {
            "ticks": self._now,
            "dropped": self.dropped,
            "sample_every": self.sample_every,
            "capacity": self.capacity,
            "events": [list(e) for e in self.events],
        }

    def merge(self, body: dict, *, offset: int | None = None) -> None:
        """Fold a tracer body (from :meth:`as_dict`, e.g. a worker's)
        into this tracer, shifting its timeline to start at ``offset``
        (default: this tracer's current now)."""
        at = self._now if offset is None else int(offset)
        for ts, dur, phase, track, name, args in body.get("events", ()):
            self._append([int(ts) + at, dur, phase, track, name, args])
        self.dropped += int(body.get("dropped", 0))
        self._now = max(self._now, at + int(body.get("ticks", 0)))


class _NullTracer:
    """Shared no-op tracer handed out when tracing is disabled."""

    __slots__ = ()

    enabled = False
    now = 0

    def tick(self, n: int = 1) -> int:
        return 0

    def alloc(self, dur: int) -> int:
        return 0

    def span(self, track, name, ts, dur, args=None) -> None:
        pass

    def instant(self, track, name, ts=None, args=None) -> None:
        pass

    def sample(self, track, name, value, ts=None) -> None:
        pass

    @contextmanager
    def region(self, track, name, args=None):
        yield self

    def merge(self, body, *, offset=None) -> None:
        pass


#: the disabled fast path allocates nothing
NULL_TRACER = _NullTracer()

_active: Tracer | None = None


def enable_tracing(
    tracer: Tracer | None = None,
    *,
    capacity: int = DEFAULT_CAPACITY,
    sample_every: int = 1,
) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _active
    if tracer is None:
        tracer = Tracer(capacity=capacity, sample_every=sample_every)
    _active = tracer
    return _active


def disable_tracing() -> None:
    """Turn tracing off; instrumented code reverts to no-ops."""
    global _active
    _active = None


def tracing_enabled() -> bool:
    return _active is not None


def active_tracer() -> Tracer | None:
    """The live tracer, or None when tracing is off."""
    return _active


def tracer():
    """The active tracer (the shared no-op tracer when disabled)."""
    return _active if _active is not None else NULL_TRACER


@contextmanager
def trace_capture(tracer: Tracer | None = None, **kwargs):
    """Scoped tracing: enable for the block, restore the previous state
    after (tests, worker processes)."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else Tracer(**kwargs)
    try:
        yield _active
    finally:
        _active = previous


# ------------------------------------------------------------------ schema

def make_trace(tracer: Tracer | None = None, meta: dict | None = None) -> dict:
    """Serialize a tracer into a schema-versioned trace dict."""
    if tracer is None:
        tracer = Tracer()
    full_meta = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    full_meta.update(tracer.meta)
    full_meta.update(meta or {})
    out = {
        "schema": TRACE_SCHEMA,
        "created_unix": time.time(),
        "meta": full_meta,
    }
    out.update(tracer.as_dict())
    return out


def trace_snapshot(meta: dict | None = None) -> dict:
    """Snapshot the active tracer (an empty tracer when disabled, so
    callers can always write a schema-valid file)."""
    return make_trace(_active, meta)


def validate_trace(trace: object) -> dict:
    """Check a trace against the ``repro.trace/1`` schema; returns it on
    success, raises :class:`~repro.errors.ObsError` on the first
    violation found."""
    if not isinstance(trace, dict):
        raise ObsError(
            f"trace must be a JSON object, got {type(trace).__name__}"
        )
    schema = trace.get("schema")
    if schema != TRACE_SCHEMA:
        raise ObsError(
            f"unsupported trace schema {schema!r}; expected {TRACE_SCHEMA!r}"
        )
    if not isinstance(trace.get("created_unix"), (int, float)):
        raise ObsError("trace is missing a numeric 'created_unix'")
    if not isinstance(trace.get("meta"), dict):
        raise ObsError("trace is missing the 'meta' object")
    for field in ("ticks", "dropped", "sample_every", "capacity"):
        if not isinstance(trace.get(field), int):
            raise ObsError(f"trace is missing the integer {field!r} field")
    events = trace.get("events")
    if not isinstance(events, list):
        raise ObsError("trace is missing the 'events' list")
    for k, event in enumerate(events):
        if not isinstance(event, list) or len(event) != 6:
            raise ObsError(
                f"event {k} must be a [ts, dur, phase, track, name, args] "
                "list"
            )
        ts, dur, phase, track, name, args = event
        if not isinstance(ts, (int, float)) or not isinstance(
            dur, (int, float)
        ):
            raise ObsError(f"event {k} has non-numeric ts/dur")
        if phase not in PHASES:
            raise ObsError(f"event {k} has unknown phase {phase!r}")
        if not isinstance(track, str) or not isinstance(name, str):
            raise ObsError(f"event {k} has non-string track/name")
        if args is not None and not isinstance(args, dict):
            raise ObsError(f"event {k} args must be an object or null")
    return trace


def write_trace(trace: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, sort_keys=True) + "\n")
    return path


def load_trace(path: str | Path) -> dict:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ObsError(f"trace not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ObsError(f"trace {path} is not valid JSON: {exc}") from None
    return validate_trace(data)
