"""``repro.obs`` — the simulator telemetry layer.

Hierarchical named counters, gauges, histograms and wall-clock timers,
with a process-wide on/off switch and near-zero overhead when disabled:
instrumented call sites ask the module for an instrument and get a
shared no-op singleton unless a registry is active.

Usage::

    from repro import obs

    with obs.capture() as registry:          # or obs.enable()
        run_experiments()
        snap = obs.snapshot(meta={"scale": "small"})
    obs.write_snapshot(snap, "run.json")

Instrumented library code stays declarative::

    obs.counter("tmu.engine.runs").add()
    obs.gauge("runtime.executor.cells_per_sec").set(rate)
    with obs.timer("sim.memsys.profile"):
        ...

Snapshots serialize to the stable JSON schema in
:mod:`repro.obs.snapshot`; ``repro stats`` dumps and diffs them, and the
``bench-smoke`` CI job gates on schema validity plus a cells/sec
regression bound.

The metrics answer *how much*; :mod:`repro.obs.tracing` answers *when*:
an event timeline (spans / instants / counter samples on the same
dotted paths) behind its own switch (:func:`enable_tracing` /
:func:`trace_capture`), exported to Perfetto or folded into a stall
report by :mod:`repro.obs.export` and the ``repro trace`` CLI.

The *live* plane renders the same data while a process runs:
:mod:`repro.obs.live` turns any registry into Prometheus text
exposition (mounted at ``GET /metrics`` by ``repro serve``),
:mod:`repro.obs.logging` is the structured JSON log layer with
contextvar correlation ids, and :mod:`repro.obs.report` renders the
experiment store as a self-contained HTML flight recorder (``repro
report``; imported lazily by the CLI, not re-exported here, because it
reads from :mod:`repro.store`).
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
    Counter,
    Gauge,
    Histogram,
    Timer,
)
from .registry import PrefixedRegistry, Registry, add_deltas
from .live import PROM_CONTENT_TYPE, to_prometheus
from .logging import (
    configure as configure_logging,
    correlation,
    get_logger,
    log_event,
)
from .export import (
    fold_trace,
    stall_report,
    to_perfetto,
    write_perfetto,
)
from .tracing import (
    NULL_TRACER,
    TRACE_SCHEMA,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    load_trace,
    make_trace,
    trace_capture,
    trace_snapshot,
    tracer,
    tracing_enabled,
    validate_trace,
    write_trace,
)
from .snapshot import (
    SCHEMA,
    bench_rev,
    check_regression,
    current_rev,
    diff_snapshots,
    load_snapshot,
    make_snapshot,
    render_diff,
    render_snapshot,
    validate_snapshot,
    worktree_dirty,
    write_bench_snapshot,
    write_snapshot,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Registry",
    "PrefixedRegistry",
    "add_deltas",
    "SCHEMA",
    "enable",
    "disable",
    "enabled",
    "active",
    "capture",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "snapshot",
    "make_snapshot",
    "validate_snapshot",
    "load_snapshot",
    "write_snapshot",
    "write_bench_snapshot",
    "diff_snapshots",
    "render_diff",
    "render_snapshot",
    "check_regression",
    "current_rev",
    "bench_rev",
    "worktree_dirty",
    "Tracer",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "active_tracer",
    "tracer",
    "trace_capture",
    "trace_snapshot",
    "make_trace",
    "validate_trace",
    "load_trace",
    "write_trace",
    "to_perfetto",
    "write_perfetto",
    "fold_trace",
    "stall_report",
    "to_prometheus",
    "PROM_CONTENT_TYPE",
    "configure_logging",
    "correlation",
    "get_logger",
    "log_event",
]

_active: Registry | None = None


def enable(registry: Registry | None = None) -> Registry:
    """Install (and return) the process-wide registry."""
    global _active
    _active = registry if registry is not None else Registry()
    return _active


def disable() -> None:
    """Turn telemetry off; instrumented code reverts to no-ops."""
    global _active
    _active = None


def enabled() -> bool:
    return _active is not None


def active() -> Registry | None:
    """The live registry, or None when telemetry is off."""
    return _active


@contextmanager
def capture(registry: Registry | None = None):
    """Scoped telemetry: enable for the block, restore the previous
    state after (tests, the benchmark harness, worker processes)."""
    global _active
    previous = _active
    _active = registry if registry is not None else Registry()
    try:
        yield _active
    finally:
        _active = previous


def counter(name: str):
    """The named counter of the active registry (no-op when disabled)."""
    return _active.counter(name) if _active is not None else NULL_COUNTER


def gauge(name: str):
    return _active.gauge(name) if _active is not None else NULL_GAUGE


def histogram(name: str):
    return _active.histogram(name) if _active is not None else NULL_HISTOGRAM


def timer(name: str):
    return _active.timer(name) if _active is not None else NULL_TIMER


def snapshot(meta: dict | None = None) -> dict:
    """Snapshot the active registry (an empty registry when disabled,
    so callers can always write a schema-valid file)."""
    return make_snapshot(_active if _active is not None else Registry(), meta)
