"""Structured JSON logging with correlation context.

One logger family (``repro.*``), one record shape: every line is a
JSON object with a timestamp, level, logger, message, pid, the
ambient *correlation context* (``run_key``, ``job_id``,
``task_hash``, ``worker_pid``, …), and any per-call fields.  The
correlation context lives in a :class:`contextvars.ContextVar`, so it
follows the control flow — a scheduler thread binds ``job_id`` once
and every record emitted while running that job carries it.

Process pools don't inherit contextvars, so the executor passes the
context dict explicitly to the worker function, which rebinds it with
:func:`correlation` before evaluating the cell; one ``jq 'select(
.job_id=="…")'`` then reconstructs a cell's lifecycle across process
boundaries.

The library stays silent by default (NullHandler).  Entry points that
want logs call :func:`configure`, which installs a single
JSON-formatting stream handler on the ``repro`` root logger.
"""

from __future__ import annotations

import contextlib
import contextvars
import datetime
import io
import json
import logging
import sys
from typing import Any

_context: contextvars.ContextVar[dict[str, Any]] = contextvars.ContextVar(
    "repro_log_context", default={}
)

_ROOT = "repro"

# keep the library quiet unless an entry point opts in
logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def context() -> dict[str, Any]:
    """The current correlation context (a copy)."""
    return dict(_context.get())


@contextlib.contextmanager
def correlation(**fields: Any):
    """Bind correlation fields for the dynamic extent of the block.

    ``None``-valued fields are dropped; nested blocks layer on top of
    the enclosing context and unwind cleanly on exit.
    """
    merged = dict(_context.get())
    merged.update({k: v for k, v in fields.items() if v is not None})
    token = _context.set(merged)
    try:
        yield merged
    finally:
        _context.reset(token)


class JsonFormatter(logging.Formatter):
    """Format records as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = datetime.datetime.fromtimestamp(
            record.created, tz=datetime.timezone.utc
        )
        line: dict[str, Any] = {
            "ts": stamp.isoformat(timespec="milliseconds"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
            "pid": record.process,
        }
        line.update(_context.get())
        fields = getattr(record, "fields", None)
        if fields:
            line.update(fields)
        if record.exc_info and record.exc_info[1] is not None:
            line["error"] = repr(record.exc_info[1])
        return json.dumps(line, default=str, sort_keys=False)


def configure(
    stream: io.TextIOBase | None = None, level: int | str = logging.INFO
) -> logging.Logger:
    """Install the JSON handler on the ``repro`` logger (idempotent).

    Re-invoking replaces the previous stream/level rather than
    stacking handlers, so tests and long-lived processes can
    reconfigure freely.
    """
    root = logging.getLogger(_ROOT)
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    for handler in list(root.handlers):
        if isinstance(handler, _JsonHandler):
            root.removeHandler(handler)
    handler = _JsonHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    return root


class _JsonHandler(logging.StreamHandler):
    """Tagged subclass so :func:`configure` can find its own handler."""


def configured() -> bool:
    """Whether :func:`configure` has installed a JSON handler."""
    return any(
        isinstance(h, _JsonHandler) for h in logging.getLogger(_ROOT).handlers
    )


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def log_event(
    logger: logging.Logger, level: int, message: str, **fields: Any
) -> None:
    """Emit ``message`` with structured ``fields`` riding the record."""
    if logger.isEnabledFor(level):
        logger.log(
            level,
            message,
            extra={"fields": {k: v for k, v in fields.items() if v is not None}},
        )


def worker_context(extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """Context dict to ship across a process boundary.

    The parent calls this to capture its correlation context; the
    worker rebinds it via :func:`correlation`, adding its own
    ``worker_pid=os.getpid()``.
    """
    shipped = context()
    if extra:
        shipped.update({k: v for k, v in extra.items() if v is not None})
    return shipped
