"""Metric primitives of the telemetry layer.

Four instrument kinds cover everything the simulator needs to report:

* :class:`Counter` — monotonically accumulated event counts (iterations,
  outQ records, cache hits).
* :class:`Gauge` — a last-value-wins reading with a high-water mark
  (queue depths, cells/sec of the last batch).
* :class:`Histogram` — power-of-two bucketed distributions (cycle
  counts, record sizes).
* :class:`Timer` — wall-clock accumulation with count/min/max, usable as
  a context manager.

Each kind has a ``Null*`` twin whose mutating methods are no-ops; the
module-level API in :mod:`repro.obs` hands those out whenever telemetry
is disabled, so instrumented call sites pay one attribute call and
nothing else on the disabled path.
"""

from __future__ import annotations

import math
import time


class Counter:
    """A named, monotonically accumulated count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def add(self, n: float = 1) -> None:
        self.value += n

    def as_dict(self) -> float:
        return self.value

    def merge(self, data: float) -> None:
        self.value += data

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-written value plus the high-water mark it ever reached."""

    __slots__ = ("name", "value", "high_water")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.high_water: float = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def as_dict(self) -> dict:
        return {"value": self.value, "high_water": self.high_water}

    def merge(self, data: dict) -> None:
        self.set(data["value"])
        if data["high_water"] > self.high_water:
            self.high_water = data["high_water"]

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value}, hwm={self.high_water})"


class Histogram:
    """A power-of-two bucketed distribution.

    ``record(v)`` files ``v`` under bucket ``ceil(log2(v))`` (bucket 0
    holds values <= 1); count/sum/min/max are tracked exactly, so means
    are exact and only the shape is quantized.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self.buckets: dict[int, int] = {}

    @staticmethod
    def bucket_of(value: float) -> int:
        if value <= 1:
            return 0
        return math.ceil(math.log2(value))

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        b = self.bucket_of(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the bucket
        shape, interpolating linearly inside the winning power-of-two
        bucket and clamping to the exact [min, max] envelope.  Returns
        0.0 for an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for b in sorted(self.buckets):
            n = self.buckets[b]
            if seen + n >= target:
                lo = 0.0 if b == 0 else 2.0 ** (b - 1)
                hi = 1.0 if b == 0 else 2.0**b
                frac = (target - seen) / n
                return min(max(lo + frac * (hi - lo), self.min), self.max)
            seen += n
        return self.max

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }

    def merge(self, data: dict) -> None:
        if not data["count"]:
            return
        self.count += data["count"]
        self.total += data["total"]
        self.min = min(self.min, data["min"])
        self.max = max(self.max, data["max"])
        for b, n in data["buckets"].items():
            b = int(b)
            self.buckets[b] = self.buckets.get(b, 0) + n

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class Timer:
    """Accumulated wall-clock time with count/min/max, in seconds.

    Use as a context manager around the timed region::

        with registry.timer("sim.memsys.profile"):
            ...

    or feed externally measured durations through :meth:`observe`.

    The context manager is exception-safe (elapsed time is recorded even
    when the body raises) and reentrant: nested ``with`` blocks on the
    *same* timer keep their start times on a stack, so each level
    observes its own elapsed interval.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_starts")

    kind = "timer"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._starts: list[float] = []

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc) -> None:
        if self._starts:
            self.observe(time.perf_counter() - self._starts.pop())

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max if self.count else 0.0,
        }

    def merge(self, data: dict) -> None:
        if not data["count"]:
            return
        self.count += data["count"]
        self.total += data["total_s"]
        self.min = min(self.min, data["min_s"])
        self.max = max(self.max, data["max_s"])

    def __repr__(self) -> str:
        return f"Timer({self.name}, n={self.count}, total={self.total:.3g}s)"


class _NullTimer:
    """No-op timer handed out when telemetry is disabled."""

    __slots__ = ()

    def observe(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullCounter:
    __slots__ = ()

    def add(self, n: float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


#: shared no-op instruments (the disabled fast path allocates nothing)
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_TIMER = _NullTimer()
