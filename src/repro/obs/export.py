"""Trace consumers: Perfetto export and stall attribution.

Two ways to look at a ``repro.trace/1`` timeline
(:mod:`repro.obs.tracing`):

* :func:`to_perfetto` / :func:`write_perfetto` — convert to the Chrome
  trace-event JSON that https://ui.perfetto.dev (and ``chrome://tracing``)
  loads directly.  Each top-level dotted prefix becomes a Perfetto
  *process* (``tmu`` ticks, ``sim`` cycles, ``runtime`` microseconds —
  the units never need to align across processes) and each full track
  path becomes a named *thread*, so the timeline shows one swim lane
  per TU lane, TG layer, arbiter, outQ, core and executor.

* :func:`fold_trace` / :func:`stall_report` — collapse the timeline
  into a per-component decomposition: TMU merge-stall shares per layer,
  arbiter and outQ totals, and the interval core's
  committing/frontend/backend cycle split, cross-checkable against the
  paper's Fig. 11 breakdown.  The report folds the *summary* spans the
  engine emits at end of run (sourced from the same counters as
  ``RunStats``, and last to enter the ring buffer so they survive
  capacity pressure), never the sampled instants — so it stays exact
  under sampling and ring-buffer drops.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import Histogram

#: Perfetto process ids per top-level track prefix (with clock units)
_PROCESSES = {
    "tmu": (1, "tmu (ticks)"),
    "sim": (2, "sim (cycles)"),
    "runtime": (3, "runtime (us)"),
}

#: the interval core model's phase spans (paper Fig. 11 decomposition)
CORE_PHASES = ("committing", "frontend", "backend")

#: span names the engine emits as cumulative end-of-run summaries
SUMMARY_NAMES = frozenset({"layer_summary", "summary", "run"})


def _process_of(track: str) -> tuple[int, str]:
    head = track.split(".", 1)[0]
    return _PROCESSES.get(head, (0, head))


def to_perfetto(trace: dict) -> dict:
    """Convert a validated trace to Chrome-trace-event JSON."""
    events: list[dict] = []
    named_processes: set[int] = set()
    threads: dict[str, int] = {}
    for ts, dur, phase, track, name, args in trace["events"]:
        pid, process_name = _process_of(track)
        if pid not in named_processes:
            named_processes.add(pid)
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process_name},
                }
            )
        tid = threads.get(track)
        if tid is None:
            tid = threads[track] = len(threads) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        event = {
            "ph": phase,
            "ts": ts,
            "pid": pid,
            "tid": tid,
            "name": name,
            "cat": track,
        }
        if phase == "X":
            event["dur"] = dur
        elif phase == "i":
            event["s"] = "t"
        if args:
            event["args"] = args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": dict(trace.get("meta", {})),
    }


def write_perfetto(trace: dict, path: str | Path) -> Path:
    """Export a trace as Perfetto-loadable JSON at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_perfetto(trace)) + "\n")
    return path


def fold_trace(trace: dict) -> dict:
    """Aggregate a timeline for reporting.

    Returns ``summaries`` (last-wins args of each named summary span —
    the engine emits them cumulatively, so the freshest one is the
    truth), ``durations`` (a :class:`Histogram` of span lengths per
    (track, name)), and ``core_phases`` (total cycles per interval-model
    phase).
    """
    summaries: dict[tuple[str, str], dict] = {}
    durations: dict[tuple[str, str], Histogram] = {}
    core_phases = dict.fromkeys(CORE_PHASES, 0.0)
    for ts, dur, phase, track, name, args in trace["events"]:
        if phase != "X":
            continue
        key = (track, name)
        hist = durations.get(key)
        if hist is None:
            hist = durations[key] = Histogram(f"{track}/{name}")
        hist.record(dur)
        if args is not None and name in SUMMARY_NAMES:
            summaries[key] = args
        if track == "sim.core" and name in core_phases:
            core_phases[name] += dur
    return {
        "summaries": summaries,
        "durations": durations,
        "core_phases": core_phases,
        "events": len(trace["events"]),
        "dropped": trace["dropped"],
    }


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(c.rjust(widths[k]) for k, c in enumerate(row)).rstrip()
        )
    return lines


def _share(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "-"


def stall_report(trace: dict) -> str:
    """Render the per-component stall/cycle decomposition as text."""
    folded = fold_trace(trace)
    summaries = folded["summaries"]
    lines: list[str] = []
    meta = trace.get("meta", {})
    experiments = meta.get("experiments")
    title = "stall attribution"
    if experiments:
        title += f" · {experiments}"
    lines.append(title)
    lines.append(
        f"events: {folded['events']}  dropped: {folded['dropped']}  "
        f"sample_every: {trace['sample_every']}"
    )

    layers = sorted(
        (args for (t, n), args in summaries.items() if n == "layer_summary"),
        key=lambda a: a.get("layer", 0),
    )
    if layers:
        lines.append("")
        lines.append("TMU pipeline (per TG layer):")
        rows = []
        tot_it = tot_ms = tot_stall = 0
        for args in layers:
            it = int(args.get("iterations", 0))
            ms = int(args.get("merge_steps", 0))
            stall = int(args.get("stall_advances", 0))
            tot_it += it
            tot_ms += ms
            tot_stall += stall
            rows.append(
                [
                    f"layer{args.get('layer', '?')}",
                    str(args.get("lanes", "?")),
                    str(args.get("activations", 0)),
                    str(it),
                    str(ms),
                    str(stall),
                    _share(stall, ms),
                ]
            )
        rows.append(
            [
                "total",
                "",
                "",
                str(tot_it),
                str(tot_ms),
                str(tot_stall),
                _share(tot_stall, tot_ms),
            ]
        )
        headers = [
            "layer",
            "lanes",
            "activations",
            "iterations",
            "merge_steps",
            "stalls",
            "stall%",
        ]
        lines.extend("  " + ln for ln in _table(headers, rows))

    engine = summaries.get(("tmu.engine", "run"))
    if engine:
        lines.append("")
        lines.append(
            "  engine totals: "
            f"iterations={engine.get('iterations')} "
            f"records={engine.get('records')} "
            f"memory_lines={engine.get('memory_lines')}"
        )

    arbiter = summaries.get(("tmu.arbiter", "summary"))
    if arbiter:
        lines.append("")
        lines.append(
            "memory arbiter: "
            f"touches={arbiter.get('touches')} "
            f"lines={arbiter.get('lines')} "
            f"bytes={arbiter.get('bytes')}"
        )
    outq = summaries.get(("tmu.outq", "summary"))
    if outq:
        lines.append(
            "outQ: "
            f"records={outq.get('records')} "
            f"bytes={outq.get('bytes')} "
            f"chunks={outq.get('chunks')}"
        )

    core = folded["core_phases"]
    total_cycles = sum(core.values())
    if total_cycles:
        lines.append("")
        lines.append("core cycle decomposition (Fig. 11):")
        rows = [
            [phase, f"{core[phase]:.0f}", _share(core[phase], total_cycles)]
            for phase in CORE_PHASES
        ]
        rows.append(["total", f"{total_cycles:.0f}", ""])
        lines.extend("  " + ln for ln in _table(["phase", "cycles", "share"], rows))

    spans = [
        (track, name, h)
        for (track, name), h in sorted(folded["durations"].items())
        if h.count and h.max > 0 and (track, name) not in summaries
    ]
    if spans:
        lines.append("")
        lines.append("span durations (virtual ticks):")
        rows = [
            [
                f"{track}/{name}",
                str(h.count),
                f"{h.total:.0f}",
                f"{h.mean:.1f}",
                f"{h.quantile(0.5):.1f}",
                f"{h.quantile(0.95):.1f}",
            ]
            for track, name, h in spans
        ]
        headers = ["span", "count", "total", "mean", "p50", "p95"]
        lines.extend("  " + ln for ln in _table(headers, rows))

    return "\n".join(lines)
