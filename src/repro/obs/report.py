"""The HTML flight recorder: one self-contained file per database.

:func:`render_report` turns an experiment store into a single HTML
document with **no external assets** — inline CSS, inline SVG charts,
no scripts, no fonts, no URLs — so the file can be opened from a CI
artifact tab or mailed around and always renders.

Every number in the report comes from the same :mod:`repro.store.query`
functions that power ``repro query``, formatted through the same
``_fmt`` — the stall-share section is *defined* to match
``repro query stalls`` byte for byte, which the test suite pins.

Charts follow the house dataviz rules: a single-series sparkline for
cells/sec by rev (no legend — the title names the series), horizontal
stall-share bars with values in text ink (never in series color),
recessive gridlines, hover via SVG ``<title>``, and a dark theme
selected via ``prefers-color-scheme`` rather than inverted.
"""

from __future__ import annotations

import datetime
import html
from pathlib import Path

from ..store.query import (
    _fmt,
    cell_outcomes,
    cells_per_sec,
    runs_overview,
    span_percentiles,
    stall_shares,
)
from ..store.store import ExperimentStore

# palette tokens (light, dark) — see the dataviz reference palette
_CSS = """
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --muted: #898781; --grid: #e1e0d9; --series: #2a78d6;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --grid: #2c2c2a; --series: #3987e5;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 2rem 1.5rem 4rem; max-width: 62rem;
  background: var(--surface); color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif;
}
h1 { font-size: 1.4rem; margin: 0 0 0.25rem; }
h2 { font-size: 1.05rem; margin: 2.2rem 0 0.6rem; }
.sub { color: var(--ink-2); margin: 0 0 1.5rem; }
.heroes { display: flex; gap: 2.5rem; flex-wrap: wrap; margin: 1.4rem 0; }
.hero .v { font-size: 1.8rem; font-weight: 600; }
.hero .k { color: var(--ink-2); font-size: 0.85rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.88rem;
        font-variant-numeric: tabular-nums; }
th { text-align: left; color: var(--ink-2); font-weight: 500; }
th, td { padding: 0.3rem 0.9rem 0.3rem 0;
         border-bottom: 1px solid var(--grid); }
td.num, th.num { text-align: right; }
.empty { color: var(--muted); }
svg text { fill: var(--ink-2); font: 11px system-ui, sans-serif; }
svg .val { fill: var(--ink); font-weight: 600; }
"""


def _esc(value) -> str:
    return html.escape(_fmt(value))


def _table(rows: list[dict], columns: list[str],
           empty: str = "no rows") -> str:
    """An HTML table over query rows, numbers right-aligned."""
    if not rows:
        return f'<p class="empty">{html.escape(empty)}</p>'
    numeric = {
        c for c in columns
        if all(isinstance(r.get(c), (int, float)) or r.get(c) is None
               for r in rows)
    }
    out = ["<table><thead><tr>"]
    for c in columns:
        cls = ' class="num"' if c in numeric else ""
        out.append(f"<th{cls}>{html.escape(c)}</th>")
    out.append("</tr></thead><tbody>")
    for r in rows:
        out.append("<tr>")
        for c in columns:
            cls = ' class="num"' if c in numeric else ""
            out.append(f"<td{cls}>{_esc(r.get(c))}</td>")
        out.append("</tr>")
    out.append("</tbody></table>")
    return "".join(out)


def _sparkline(rows: list[dict]) -> str:
    """Cells/sec by rev as an inline SVG sparkline (latest per rev).

    Single series, so no legend; each point carries a ``<title>``
    tooltip and the last point a direct value label.
    """
    points = [(r["rev"], r["latest"]) for r in rows
              if r.get("latest") is not None]
    if not points:
        return '<p class="empty">no throughput history ingested</p>'
    width, height = 640, 150
    left, right, top, bottom = 16, 84, 18, 34
    plot_w, plot_h = width - left - right, height - top - bottom
    top_val = max(v for _, v in points) or 1.0
    n = len(points)
    coords = []
    for i, (_, v) in enumerate(points):
        x = left + (plot_w * i / (n - 1) if n > 1 else plot_w / 2)
        y = top + plot_h * (1.0 - v / top_val)
        coords.append((x, y))
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="cells per second by revision" '
        f'style="max-width:{width}px;width:100%">',
        # baseline + top gridline, recessive
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="var(--grid)"/>',
        f'<line x1="{left}" y1="{top}" x2="{left + plot_w}" y2="{top}" '
        f'stroke="var(--grid)" stroke-dasharray="2,3"/>',
        f'<text x="{left}" y="{top - 6}">{_esc(float(top_val))} '
        f'cells/sec</text>',
    ]
    if n > 1:
        parts.append(
            f'<polyline points="{path}" fill="none" '
            f'stroke="var(--series)" stroke-width="2"/>')
    for (rev, v), (x, y) in zip(points, coords):
        label = html.escape(f"{rev}: {_fmt(v)} cells/sec")
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
            f'fill="var(--series)" stroke="var(--surface)" '
            f'stroke-width="2"><title>{label}</title></circle>')
        parts.append(
            f'<text x="{x:.1f}" y="{height - 12}" '
            f'text-anchor="middle">{html.escape(str(rev)[:9])}</text>')
    lx, ly = coords[-1]
    parts.append(
        f'<text class="val" x="{lx + 10:.1f}" y="{ly + 4:.1f}">'
        f'{_esc(points[-1][1])}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _stall_bars(rows: list[dict]) -> str:
    """Per-layer stall shares as labeled horizontal bars.

    The printed share values are the query rows' values through the
    query formatter — identical to ``repro query stalls``.
    """
    bars = [r for r in rows if r.get("stall_share") is not None]
    if not bars:
        return '<p class="empty">no traces ingested</p>'
    width, row_h = 640, 26
    label_w, value_w = 170, 70
    bar_w = width - label_w - value_w
    height = row_h * len(bars) + 8
    top_share = max(r["stall_share"] for r in bars) or 1.0
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="merge stall share by layer" '
        f'style="max-width:{width}px;width:100%">']
    for i, r in enumerate(bars):
        y = 4 + i * row_h
        w = bar_w * r["stall_share"] / top_share
        tip = html.escape(
            f"{r['layer']}: {_fmt(r['stalls'])} stalls / "
            f"{_fmt(r['merge_steps'])} merge steps")
        parts.append(
            f'<text x="{label_w - 8}" y="{y + 15}" text-anchor="end">'
            f'{html.escape(str(r["layer"]))}</text>')
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{max(w, 1):.1f}" '
            f'height="{row_h - 8}" rx="4" fill="var(--series)">'
            f'<title>{tip}</title></rect>')
        parts.append(
            f'<text class="val" x="{label_w + max(w, 1) + 8:.1f}" '
            f'y="{y + 15}">{_esc(r["stall_share"])}</text>')
    parts.append("</svg>")
    return "".join(parts)


def render_report(store: ExperimentStore,
                  title: str = "repro flight recorder") -> str:
    """Render the whole database as one self-contained HTML page."""
    run_rows, run_cols = runs_overview(store)
    rate_rows, _ = cells_per_sec(store, by="rev")
    cell_rows, cell_cols = cell_outcomes(store)
    stall_rows, stall_cols = stall_shares(store, by="layer")
    span_rows, span_cols = span_percentiles(store)
    latest = next((r["latest"] for r in reversed(rate_rows)
                   if r.get("latest") is not None), None)
    total_cells = sum(int(r.get("cells") or 0) for r in run_rows)
    failed = sum(int(r.get("failed") or 0) for r in run_rows)
    generated = datetime.datetime.now(datetime.timezone.utc) \
        .isoformat(timespec="seconds")
    heroes = [
        ("runs ingested", len(run_rows)),
        ("cells", total_cells),
        ("failed cells", failed),
        ("latest cells/sec", latest),
    ]
    hero_html = "".join(
        f'<div class="hero"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{html.escape(k)}</div></div>'
        for k, v in heroes)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{html.escape(title)}</h1>
<p class="sub">{html.escape(str(store.path))} &middot; generated
{html.escape(generated)}</p>
<div class="heroes">{hero_html}</div>
<h2>Throughput by revision</h2>
{_sparkline(rate_rows)}
<h2>Merge-stall share by layer</h2>
{_stall_bars(stall_rows)}
{_table(stall_rows, stall_cols, "no traces ingested")}
<h2>Runs</h2>
{_table(run_rows, run_cols, "no runs ingested")}
<h2>Cell outcomes by workload</h2>
{_table(cell_rows, cell_cols, "no cells ingested")}
<h2>Span durations (virtual ticks)</h2>
{_table(span_rows, span_cols, "no span histograms ingested")}
</body>
</html>
"""


def write_report(store: ExperimentStore, path: str | Path,
                 title: str = "repro flight recorder") -> Path:
    """Write :func:`render_report` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report(store, title=title), encoding="utf-8")
    return path
