"""Machine-readable perf snapshots: schema, validation, diff, export.

One snapshot captures one run's metrics under a stable, versioned JSON
schema::

    {
      "schema": "repro.obs/1",
      "created_unix": 1722800000.0,
      "meta": {"rev": "1b7acf8", "python": "3.12.3", ...},
      "counters":   {"tmu.engine.outq.records": 123, ...},
      "gauges":     {"runtime.executor.cells_per_sec":
                     {"value": 4.2, "high_water": 4.2}, ...},
      "histograms": {"sim.core.cycles": {"count": ..., "total": ...,
                     "min": ..., "max": ..., "buckets": {"10": 3}}, ...},
      "timers":     {"sim.memsys.profile": {"count": ..., "total_s": ...,
                     "min_s": ..., "max_s": ...}, ...}
    }

Snapshots are what the ``repro stats`` CLI dumps and diffs, what the
``bench-smoke`` CI job gates on, and what the benchmark harness appends
to the repo's perf trajectory as ``BENCH_<rev>.json``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path

from ..errors import ObsError
from .registry import Registry

#: bump on any breaking change to the snapshot layout
SCHEMA = "repro.obs/1"

_BODY_KINDS = ("counters", "gauges", "histograms", "timers")

_REQUIRED_FIELDS = {
    "gauges": ("value", "high_water"),
    "histograms": ("count", "total", "min", "max", "buckets"),
    "timers": ("count", "total_s", "min_s", "max_s"),
}


def current_rev(default: str = "unknown") -> str:
    """The short git revision of the working tree, if available."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        )
        return out.stdout.strip() or default
    except (OSError, subprocess.SubprocessError):
        return default


def worktree_dirty() -> bool:
    """True when the git worktree has uncommitted changes (False when
    git itself is unavailable — an unknown tree is not declared dirty)."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        )
        return bool(out.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        return False


def bench_rev(default: str = "unknown") -> str:
    """The label benchmark snapshots are filed under: the short git rev
    (``default`` when git is unavailable, instead of failing), with a
    ``-dirty`` suffix when the worktree is modified so a perf point is
    never misattributed to a clean commit."""
    rev = current_rev(default)
    if worktree_dirty():
        rev += "-dirty"
    return rev


def make_snapshot(registry: Registry, meta: dict | None = None) -> dict:
    """Serialize a registry into a schema-versioned snapshot dict."""
    full_meta = {
        "rev": current_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    full_meta.update(registry.meta)
    full_meta.update(meta or {})
    snap = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "meta": full_meta,
    }
    snap.update(registry.as_dict())
    return snap


def validate_snapshot(snap: object) -> dict:
    """Check a snapshot against the schema; returns it on success.

    Raises :class:`~repro.errors.ObsError` describing the first
    violation found — this is the check the CI gate fails on.
    """
    if not isinstance(snap, dict):
        raise ObsError(f"snapshot must be a JSON object, got {type(snap).__name__}")
    schema = snap.get("schema")
    if schema != SCHEMA:
        raise ObsError(f"unsupported snapshot schema {schema!r}; expected {SCHEMA!r}")
    if not isinstance(snap.get("created_unix"), (int, float)):
        raise ObsError("snapshot is missing a numeric 'created_unix'")
    if not isinstance(snap.get("meta"), dict):
        raise ObsError("snapshot is missing the 'meta' object")
    for kind in _BODY_KINDS:
        section = snap.get(kind)
        if not isinstance(section, dict):
            raise ObsError(f"snapshot is missing the {kind!r} section")
        for name, data in section.items():
            if kind == "counters":
                if not isinstance(data, (int, float)):
                    raise ObsError(f"counter {name!r} must be a number, got {data!r}")
                continue
            if not isinstance(data, dict):
                raise ObsError(f"{kind[:-1]} {name!r} must be an object")
            missing = [f for f in _REQUIRED_FIELDS[kind] if f not in data]
            if missing:
                raise ObsError(f"{kind[:-1]} {name!r} is missing fields {missing}")
    return snap


def write_snapshot(snap: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: str | Path) -> dict:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ObsError(f"snapshot not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ObsError(f"snapshot {path} is not valid JSON: {exc}") from None
    return validate_snapshot(data)


def write_bench_snapshot(snap: dict, directory: str | Path = ".") -> Path:
    """Append this run to the perf trajectory: ``BENCH_<rev>.json``.

    A rev can be benchmarked more than once (dirty tree, rerun at the
    same commit); rather than silently overwrite the earlier point,
    later runs land next to it as ``BENCH_<rev>-2.json``,
    ``BENCH_<rev>-3.json``, …  so the whole trajectory stays
    ingestable.
    """
    rev = snap.get("meta", {}).get("rev") or bench_rev()
    directory = Path(directory)
    path = directory / f"BENCH_{rev}.json"
    serial = 1
    while path.exists():
        serial += 1
        path = directory / f"BENCH_{rev}-{serial}.json"
    return write_snapshot(snap, path)


# ------------------------------------------------------------------- diff

def _scalar_of(kind: str, data) -> float:
    """The headline scalar of one metric (what diffs compare)."""
    if kind == "counters":
        return float(data)
    if kind == "gauges":
        return float(data["value"])
    if kind == "histograms":
        return data["total"] / data["count"] if data["count"] else 0.0
    return float(data["total_s"])  # timers


#: how the headline scalar of each kind should be read in a diff
_SCALAR_LABEL = {
    "counters": "count",
    "gauges": "value",
    "histograms": "mean",
    "timers": "total_s",
}


def iter_metrics(snap: dict):
    """Yield ``(name, kind, scalar)`` for every metric in a snapshot.

    ``kind`` is the singular form (``counter`` / ``gauge`` / ...) and
    ``scalar`` the same headline number diffs compare — the one shared
    flattening used by ``stats diff`` and the experiment store's
    ingest, so the two layers can never disagree on what a metric's
    value *is*.
    """
    for kind in _BODY_KINDS:
        for name, data in sorted(snap.get(kind, {}).items()):
            yield name, kind[:-1], _scalar_of(kind, data)


def diff_snapshots(a: dict, b: dict) -> list[dict]:
    """Compare two validated snapshots metric by metric.

    Returns one row per metric present in either snapshot:
    ``{"metric", "kind", "scalar", "a", "b", "delta", "ratio"}`` with
    ``a``/``b`` ``None`` for metrics only one side has, and ``ratio`` =
    b/a (``None`` when undefined).
    """
    rows: list[dict] = []
    for kind in _BODY_KINDS:
        names = sorted(set(a.get(kind, {})) | set(b.get(kind, {})))
        for name in names:
            in_a = name in a.get(kind, {})
            in_b = name in b.get(kind, {})
            va = _scalar_of(kind, a[kind][name]) if in_a else None
            vb = _scalar_of(kind, b[kind][name]) if in_b else None
            delta = (vb - va) if (in_a and in_b) else None
            ratio = None
            if in_a and in_b and va:
                ratio = vb / va
            rows.append(
                {
                    "metric": name,
                    "kind": kind[:-1],
                    "scalar": _SCALAR_LABEL[kind],
                    "a": va,
                    "b": vb,
                    "delta": delta,
                    "ratio": ratio,
                }
            )
    return rows


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def render_diff(rows: list[dict], *, changed_only: bool = False) -> str:
    """A diff as an aligned text table."""
    out = []
    header = ("metric", "kind", "a", "b", "delta", "ratio")
    table = [header]
    for row in rows:
        if changed_only and row["delta"] == 0:
            continue
        table.append(
            (
                row["metric"],
                f"{row['kind']}/{row['scalar']}",
                _fmt(row["a"]),
                _fmt(row["b"]),
                _fmt(row["delta"]),
                "-" if row["ratio"] is None else f"{row['ratio']:.3f}",
            )
        )
    widths = [max(len(r[c]) for r in table) for c in range(len(header))]
    for i, row in enumerate(table):
        out.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def render_snapshot(snap: dict) -> str:
    """One snapshot as an aligned text table (``repro stats dump``)."""
    meta = snap.get("meta", {})
    lines = [
        f"schema: {snap['schema']}",
        "meta: "
        + ", ".join(f"{k}={v}" for k, v in sorted(meta.items())),
    ]
    table = [("metric", "kind", "value")]
    for kind in _BODY_KINDS:
        for name, data in sorted(snap.get(kind, {}).items()):
            table.append(
                (
                    name,
                    f"{kind[:-1]}/{_SCALAR_LABEL[kind]}",
                    _fmt(_scalar_of(kind, data)),
                )
            )
    widths = [max(len(r[c]) for r in table) for c in range(3)]
    for i, row in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


# -------------------------------------------------------------- regression

def check_regression(
    run: dict,
    baseline: dict,
    *,
    metric: str,
    max_regression: float,
    higher_is_better: bool = True,
) -> tuple[bool, str]:
    """Gate a run snapshot against a baseline on one headline metric.

    Returns ``(ok, message)``; ``ok`` is False when the run is worse
    than the baseline by more than ``max_regression`` (a fraction, e.g.
    0.2 = 20%).  Missing metrics fail the gate — a silently vanished
    metric is itself a regression.
    """
    found = []
    for snap, label in ((run, "run"), (baseline, "baseline")):
        for kind in _BODY_KINDS:
            if metric in snap.get(kind, {}):
                found.append(_scalar_of(kind, snap[kind][metric]))
                break
        else:
            return False, f"metric {metric!r} missing from the {label} snapshot"
    run_v, base_v = found
    if base_v == 0:
        return True, f"{metric}: baseline is 0, nothing to gate"
    change = (run_v - base_v) / base_v
    regression = -change if higher_is_better else change
    message = (
        f"{metric}: run={run_v:.6g} baseline={base_v:.6g} "
        f"change={change:+.1%} (limit -{max_regression:.0%})"
    )
    if regression > max_regression:
        return False, "REGRESSION " + message
    return True, "ok " + message
