"""Run manifests: the provenance record of one executor invocation.

A manifest captures what was asked (task hashes and labels), what it
cost (per-cell wall time, attempts), and where results came from
(cache hit vs fresh simulation vs failure).  Drivers and the CLI write
it next to the cache so a result directory is self-describing.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path

MANIFEST_SCHEMA_VERSION = 1


@lru_cache(maxsize=1)
def manifest_rev() -> str:
    """The git rev label runs are filed under (``-dirty``-suffixed for
    modified worktrees), resolved once per process — manifests are
    created per executor batch and must not shell out to git each
    time."""
    from ..obs.snapshot import bench_rev

    return bench_rev()


@dataclass
class ManifestEntry:
    """One task's outcome inside a run."""

    hash: str
    workload: str
    input_id: str
    scale: str
    variants: list[str]
    cached: bool
    wall_time: float
    attempts: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class RunManifest:
    """The provenance record of one :meth:`Runtime.run` call."""

    jobs: int
    mode: str                       # serial / process-pool / fallback-serial
    created_at: float = field(default_factory=time.time)
    wall_time: float = 0.0
    entries: list[ManifestEntry] = field(default_factory=list)
    schema: int = MANIFEST_SCHEMA_VERSION
    rev: str | None = None          # git rev the run executed at

    # ------------------------------------------------------------- derived

    @property
    def total(self) -> int:
        return len(self.entries)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.entries if e.cached)

    @property
    def cache_misses(self) -> int:
        return self.total - self.cache_hits

    @property
    def failures(self) -> list[ManifestEntry]:
        return [e for e in self.entries if not e.ok]

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def simulated(self) -> int:
        """Cells that actually ran a simulation (miss and succeeded)."""
        return sum(1 for e in self.entries if not e.cached and e.ok)

    # ------------------------------------------------------------ plumbing

    def to_dict(self) -> dict:
        data = asdict(self)
        data.update(
            total=self.total,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            hit_rate=self.hit_rate,
            failed=len(self.failures),
        )
        return data

    def write(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True),
                        encoding="utf-8")
        return path

    @classmethod
    def load_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output (what the
        experiment store's ingest layer consumes)."""
        entries = [
            ManifestEntry(**{
                k: v for k, v in e.items()
                if k in ManifestEntry.__dataclass_fields__})
            for e in data.get("entries", ())
        ]
        return cls(
            jobs=data["jobs"],
            mode=data["mode"],
            created_at=data.get("created_at", 0.0),
            wall_time=data.get("wall_time", 0.0),
            entries=entries,
            schema=data.get("schema", MANIFEST_SCHEMA_VERSION),
            rev=data.get("rev"),
        )

    @classmethod
    def load(cls, path: Path | str) -> "RunManifest":
        return cls.load_dict(
            json.loads(Path(path).read_text(encoding="utf-8")))

    def summary(self) -> str:
        """One-paragraph human report for the CLI / logs."""
        lines = [
            f"runtime: {self.total} cells in {self.wall_time:.2f}s "
            f"({self.mode}, jobs={self.jobs}): "
            f"{self.cache_hits} cached ({self.hit_rate:.0%}), "
            f"{self.simulated} simulated, {len(self.failures)} failed",
        ]
        for entry in self.failures:
            lines.append(
                f"  FAILED {entry.workload}/{entry.input_id}"
                f"@{entry.scale} after {entry.attempts} attempt(s): "
                f"{entry.error}"
            )
        return "\n".join(lines)
