"""`repro.runtime` — the experiment execution subsystem.

Every figure/table driver declares its sweep as a list of
:class:`SimTask` cells and submits them through the *active runtime*,
which layers three services under the drivers:

* **content-addressed caching** (:class:`ResultCache`): results are
  keyed by a sha256 over the full task spec plus a code-version salt,
  so a warm-cache rerun of the whole evaluation is near-instant and a
  model change never serves stale numbers;
* **parallel fan-out** (:class:`Runtime`): misses run across a process
  pool (``jobs > 1``) with per-cell timeout, bounded retry and a
  serial fallback;
* **provenance** (:class:`RunManifest`): every run records task
  hashes, wall-times, cache hits and failures.

The module-level :func:`configure` / :func:`active_runtime` pair holds
the process-wide runtime the drivers use; the CLI and the benchmark
harness configure it, and tests may swap it via :func:`using`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Callable

from .cache import CacheStats, NullCache, ResultCache, WalkStore
from .executor import ProgressEvent, RunReport, Runtime, TaskOutcome
from .manifest import ManifestEntry, RunManifest
from .task import (
    CODE_SALT,
    RESULT_SCHEMA_VERSION,
    SimTask,
    machine_from_dict,
    machine_to_dict,
    run_from_record,
    task_from_spec,
)

__all__ = [
    "SimTask",
    "Runtime",
    "RunReport",
    "TaskOutcome",
    "ProgressEvent",
    "ResultCache",
    "NullCache",
    "CacheStats",
    "WalkStore",
    "RunManifest",
    "ManifestEntry",
    "CODE_SALT",
    "RESULT_SCHEMA_VERSION",
    "machine_to_dict",
    "machine_from_dict",
    "run_from_record",
    "task_from_spec",
    "configure",
    "active_runtime",
    "reset",
    "using",
]

#: default on-disk cache location (relative to the working directory);
#: the CLI and README document it, .gitignore covers it.
DEFAULT_CACHE_DIR = ".repro-cache"

_active: Runtime | None = None


def _resolve_walk_dir(walk_cache: str | Path | None,
                      cache_dir: str | Path | None) -> Path | None:
    """The on-disk walk-cache directory, or ``None`` when disabled.

    Precedence: the ``REPRO_WALK_CACHE`` environment variable (a
    path, or ``0``/``off`` to disable) overrides the argument;
    ``"auto"`` places the tier at ``<cache_dir>/walks`` and disables
    it when the result cache itself is off.
    """
    env = os.environ.get("REPRO_WALK_CACHE")
    if env is not None:
        walk_cache = env
    if walk_cache is None:
        return None
    text = str(walk_cache).strip()
    if text.lower() in ("", "0", "off", "no", "none", "false"):
        return None
    if text == "auto":
        return Path(cache_dir) / "walks" if cache_dir is not None else None
    return Path(text)


def configure(*, jobs: int = 1,
              cache_dir: str | Path | None = None,
              timeout: float | None = None, retries: int = 1,
              progress: Callable[[ProgressEvent], None] | None = None,
              store: str | Path | None = None,
              walk_cache: str | Path | None = "auto",
              ) -> Runtime:
    """Install (and return) the process-wide runtime.

    ``cache_dir=None`` disables the on-disk cache (results still
    benefit from the library's in-process memoization when running
    serially).  ``store`` names an experiment database
    (:mod:`repro.store`); every batch's manifest is auto-ingested
    into it.  ``walk_cache`` controls the persistent walk-cache tier
    (:class:`WalkStore`): ``"auto"`` (default) keeps it beside the
    result cache at ``<cache_dir>/walks``, a path pins it there, and
    ``None``/``"off"`` disables it; the ``REPRO_WALK_CACHE``
    environment variable overrides all of these.
    """
    global _active
    cache = ResultCache(Path(cache_dir)) if cache_dir is not None \
        else NullCache()
    walk_dir = _resolve_walk_dir(walk_cache, cache_dir)
    # Install the disk tier process-wide: serial runs and the in-pool
    # parent share it here; pool workers install their own copy from
    # the walk_dir shipped with each task.
    from ..sim.memsys import configure_walk_store

    configure_walk_store(WalkStore(walk_dir) if walk_dir is not None
                         else None)
    _active = Runtime(jobs=jobs, cache=cache, timeout=timeout,
                      retries=retries, progress=progress,
                      store=None if store is None else str(store),
                      walk_dir=None if walk_dir is None else str(walk_dir))
    return _active


def active_runtime() -> Runtime:
    """The process-wide runtime; a serial, uncached one by default."""
    global _active
    if _active is None:
        _active = Runtime()
    return _active


def reset() -> None:
    """Drop the process-wide runtime (tests / teardown)."""
    global _active
    _active = None


@contextmanager
def using(runtime: Runtime):
    """Temporarily swap the active runtime (scoped configuration)."""
    global _active
    previous = _active
    _active = runtime
    try:
        yield runtime
    finally:
        _active = previous
