"""`repro.runtime` — the experiment execution subsystem.

Every figure/table driver declares its sweep as a list of
:class:`SimTask` cells and submits them through the *active runtime*,
which layers three services under the drivers:

* **content-addressed caching** (:class:`ResultCache`): results are
  keyed by a sha256 over the full task spec plus a code-version salt,
  so a warm-cache rerun of the whole evaluation is near-instant and a
  model change never serves stale numbers;
* **parallel fan-out** (:class:`Runtime`): misses run across a process
  pool (``jobs > 1``) with per-cell timeout, bounded retry and a
  serial fallback;
* **provenance** (:class:`RunManifest`): every run records task
  hashes, wall-times, cache hits and failures.

The module-level :func:`configure` / :func:`active_runtime` pair holds
the process-wide runtime the drivers use; the CLI and the benchmark
harness configure it, and tests may swap it via :func:`using`.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Callable

from .cache import CacheStats, NullCache, ResultCache
from .executor import ProgressEvent, RunReport, Runtime, TaskOutcome
from .manifest import ManifestEntry, RunManifest
from .task import (
    CODE_SALT,
    RESULT_SCHEMA_VERSION,
    SimTask,
    machine_from_dict,
    machine_to_dict,
    run_from_record,
    task_from_spec,
)

__all__ = [
    "SimTask",
    "Runtime",
    "RunReport",
    "TaskOutcome",
    "ProgressEvent",
    "ResultCache",
    "NullCache",
    "CacheStats",
    "RunManifest",
    "ManifestEntry",
    "CODE_SALT",
    "RESULT_SCHEMA_VERSION",
    "machine_to_dict",
    "machine_from_dict",
    "run_from_record",
    "task_from_spec",
    "configure",
    "active_runtime",
    "reset",
    "using",
]

#: default on-disk cache location (relative to the working directory);
#: the CLI and README document it, .gitignore covers it.
DEFAULT_CACHE_DIR = ".repro-cache"

_active: Runtime | None = None


def configure(*, jobs: int = 1,
              cache_dir: str | Path | None = None,
              timeout: float | None = None, retries: int = 1,
              progress: Callable[[ProgressEvent], None] | None = None,
              store: str | Path | None = None,
              ) -> Runtime:
    """Install (and return) the process-wide runtime.

    ``cache_dir=None`` disables the on-disk cache (results still
    benefit from the library's in-process memoization when running
    serially).  ``store`` names an experiment database
    (:mod:`repro.store`); every batch's manifest is auto-ingested
    into it.
    """
    global _active
    cache = ResultCache(Path(cache_dir)) if cache_dir is not None \
        else NullCache()
    _active = Runtime(jobs=jobs, cache=cache, timeout=timeout,
                      retries=retries, progress=progress,
                      store=None if store is None else str(store))
    return _active


def active_runtime() -> Runtime:
    """The process-wide runtime; a serial, uncached one by default."""
    global _active
    if _active is None:
        _active = Runtime()
    return _active


def reset() -> None:
    """Drop the process-wide runtime (tests / teardown)."""
    global _active
    _active = None


@contextmanager
def using(runtime: Runtime):
    """Temporarily swap the active runtime (scoped configuration)."""
    global _active
    previous = _active
    _active = runtime
    try:
        yield runtime
    finally:
        _active = previous
