"""The experiment executor: cache-aware parallel fan-out over SimTasks.

The :class:`Runtime` takes a batch of :class:`~repro.runtime.task.SimTask`
cells, serves what it can from the result cache, fans the misses out
over a ``ProcessPoolExecutor`` (``jobs > 1``) or runs them in-process
(``jobs <= 1`` — which preserves the library's in-process memoization),
and returns a :class:`RunReport` with per-cell outcomes plus a
provenance :class:`~repro.runtime.manifest.RunManifest`.

Failure policy: each failed cell is retried up to ``retries`` times
with exponential backoff (retries always run in-process, where the
traceback is most useful).  Cells that exceed ``timeout`` seconds in
pool mode are cancelled and *not* retried — a timeout signals a cell
too big for the budget, not a flake.  If the process pool cannot be
created or breaks mid-run (sandboxes without ``/dev/shm``, recursive
workers), the runtime degrades to serial execution instead of failing
the sweep.
"""

from __future__ import annotations

import logging
import os
import time
import uuid
from contextlib import ExitStack
from concurrent.futures import ProcessPoolExecutor, TimeoutError as \
    FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = ["ProgressEvent", "TaskOutcome", "RunReport", "Runtime"]

from .. import obs
from ..errors import ExecutorError, StoreError
from ..obs.logging import (
    correlation,
    get_logger,
    log_event,
    worker_context,
)
from .cache import NullCache, ResultCache
from .manifest import ManifestEntry, RunManifest, manifest_rev
from .task import SimTask, run_from_record

_log = get_logger("runtime.executor")


def _install_walk_store(walk_dir: "str | None") -> None:
    """Attach the on-disk walk-cache tier at ``walk_dir`` (idempotent;
    ``None`` leaves whatever is installed alone).  Pool workers call
    this on every task: the first call in a fresh worker installs the
    tier, later calls are two attribute reads."""
    if walk_dir is None:
        return
    from ..sim.memsys import configure_walk_store, walk_cache

    store = walk_cache().store
    if store is None or str(getattr(store, "root", "")) != walk_dir:
        from .cache import WalkStore

        configure_walk_store(WalkStore(walk_dir))


def _evaluate_task(task: SimTask, capture_telemetry: bool = False,
                   capture_trace: bool = False,
                   log_context: dict | None = None,
                   walk_dir: "str | None" = None) -> dict:
    """Module-level worker entry point (must be picklable).

    ``capture_telemetry`` / ``capture_trace`` are set on process-pool
    submissions when the parent has :mod:`repro.obs` telemetry/tracing
    enabled: the worker records into a fresh registry (and a fresh
    tracer), shipping the bodies back on the record under transient
    ``"telemetry"`` / ``"trace"`` keys the executor strips and merges,
    so per-layer simulator metrics and the event timeline survive the
    process boundary.  In-process evaluation records into the parent
    registry/tracer directly.

    ``log_context`` is the parent's correlation context, shipped
    explicitly because contextvars do not cross the process boundary;
    the worker rebinds it (plus its own pid and the cell's hash) so
    its structured log records carry the same ``run_key``/``job_id``
    as the parent's.

    ``walk_dir`` ships the on-disk walk-cache location into pool
    workers (the parent installs its own tier via
    ``runtime.configure``): hierarchy walks memoized by any worker,
    the parent, a server job or a previous session are then shared.
    """
    _install_walk_store(walk_dir)
    with ExitStack() as stack:
        if log_context is not None:
            stack.enter_context(correlation(
                **log_context, worker_pid=os.getpid(),
                task_hash=task.content_hash()))
        registry = stack.enter_context(obs.capture()) if (
            capture_telemetry) else None
        tracer = stack.enter_context(obs.trace_capture()) if (
            capture_trace) else None
        started = time.perf_counter()
        record = task.evaluate()
        log_event(_log, logging.DEBUG, "cell evaluated",
                  label=getattr(task, "label", None),
                  elapsed=round(time.perf_counter() - started, 6))
    if registry is not None:
        record["telemetry"] = registry.as_dict()
    if tracer is not None:
        record["trace"] = tracer.as_dict()
    return record


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress notification from the executor.

    The CLI renders :attr:`message`; the simulation service journals
    :meth:`as_dict` on the job record — both consume the same stream.

    ``kind`` is one of ``"batch"`` (a batch was accepted: ``done`` of
    ``total`` cells came from cache), ``"cell"`` (one cell finished,
    ``state`` is ``"simulated"`` or ``"failed"``), ``"pool"`` (an
    executor mode change: pool unavailable / broke, serial fallback),
    ``"store"`` (an experiment-store auto-ingest warning) or
    ``"summary"`` (the batch's manifest summary).
    """

    kind: str
    message: str
    task_hash: str | None = None
    label: str | None = None
    state: str | None = None
    attempt: int = 0
    elapsed: float = 0.0
    done: int = 0
    total: int = 0

    def __str__(self) -> str:
        return self.message

    def as_dict(self) -> dict:
        """The event as a plain JSON-able dict (None fields dropped)."""
        data = {
            "kind": self.kind,
            "message": self.message,
            "attempt": self.attempt,
            "elapsed": round(self.elapsed, 6),
            "done": self.done,
            "total": self.total,
        }
        for key in ("task_hash", "label", "state"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data


@dataclass
class TaskOutcome:
    """What happened to one unique cell of a run."""

    task: SimTask
    record: dict | None
    cached: bool
    wall_time: float
    attempts: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.record is not None


@dataclass
class RunReport:
    """Everything a driver needs back from one executor invocation."""

    outcomes: list[TaskOutcome]
    manifest: RunManifest

    @property
    def failures(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def records(self) -> dict[SimTask, dict]:
        return {o.task: o.record for o in self.outcomes if o.ok}

    def runs(self) -> dict[SimTask, object]:
        """Result records rebuilt into driver-facing ``WorkloadRun``s."""
        return {o.task: run_from_record(o.record)
                for o in self.outcomes if o.ok}


class Runtime:
    """Cache-aware executor for batches of simulation cells."""

    def __init__(self, *, jobs: int = 1,
                 cache: ResultCache | NullCache | None = None,
                 timeout: float | None = None, retries: int = 1,
                 backoff: float = 0.25,
                 progress: Callable[[ProgressEvent], None] | None = None,
                 store: "str | None" = None,
                 walk_dir: "str | None" = None,
                 ) -> None:
        if jobs < 1:
            raise ExecutorError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ExecutorError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = cache if cache is not None else NullCache()
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.progress = progress
        self.store_path = store
        #: on-disk walk-cache directory shipped to pool workers (the
        #: parent's own tier is installed by ``runtime.configure``).
        self.walk_dir = walk_dir
        self.last_manifest: RunManifest | None = None
        self.manifests: list[RunManifest] = []
        #: correlation id tying every log record of this runtime's
        #: batches (and its workers') together.
        self.run_key = uuid.uuid4().hex[:12]

    # ------------------------------------------------------------- helpers

    _LOG_LEVELS = {"pool": logging.WARNING, "store": logging.WARNING,
                   "cell": logging.INFO, "batch": logging.INFO,
                   "summary": logging.INFO}

    def _emit(self, kind: str, message: str, **fields) -> None:
        event = ProgressEvent(kind=kind, message=message, **fields)
        log_event(_log, self._LOG_LEVELS.get(kind, logging.INFO),
                  message, **{k: v for k, v in event.as_dict().items()
                              if k != "message"})
        if self.progress is not None:
            self.progress(event)

    def _attempt_serial(self, task: SimTask,
                        first_attempt: int = 1) -> TaskOutcome:
        """Evaluate one cell in-process with the retry/backoff budget,
        starting the attempt counter at ``first_attempt``."""
        start = time.perf_counter()
        attempt = first_attempt
        # Pin the machine before evaluating so the cell runs exactly the
        # configuration its hash was computed from, regardless of any
        # process-wide config defaults (cache-model selection).
        pinned = task.resolved()
        while True:
            try:
                record = _evaluate_task(pinned)
                return TaskOutcome(task, record, cached=False,
                                   wall_time=time.perf_counter() - start,
                                   attempts=attempt)
            except Exception as exc:  # noqa: BLE001 - report, don't die
                if attempt > self.retries:
                    return TaskOutcome(
                        task, None, cached=False,
                        wall_time=time.perf_counter() - start,
                        attempts=attempt,
                        error=f"{type(exc).__name__}: {exc}")
                time.sleep(self.backoff * (2 ** (attempt - 1)))
                attempt += 1

    def _run_serial(self, tasks: Sequence[SimTask]) -> list[TaskOutcome]:
        outcomes = []
        for i, task in enumerate(tasks, 1):
            outcome = self._attempt_serial(task)
            outcomes.append(outcome)
            self._emit("cell",
                       f"[{i}/{len(tasks)}] simulated {task.label} "
                       f"in {outcome.wall_time:.2f}s"
                       + ("" if outcome.ok else f" — {outcome.error}"),
                       task_hash=task.content_hash(), label=task.label,
                       state="simulated" if outcome.ok else "failed",
                       attempt=outcome.attempts,
                       elapsed=outcome.wall_time,
                       done=i, total=len(tasks))
        return outcomes

    def _run_pool(self, tasks: Sequence[SimTask]
                  ) -> tuple[list[TaskOutcome], str]:
        """Fan out over a process pool; returns (outcomes, mode)."""
        try:
            pool = ProcessPoolExecutor(max_workers=self.jobs)
        except (OSError, ImportError, NotImplementedError,
                PermissionError) as exc:
            self._emit("pool", f"process pool unavailable ({exc}); "
                       "falling back to serial execution",
                       total=len(tasks))
            return self._run_serial(tasks), "fallback-serial"

        outcomes: list[TaskOutcome] = [None] * len(tasks)  # type: ignore
        to_retry: list[int] = []
        with pool:
            try:
                # Workers get the machine pinned (resolved in *this*
                # process): pool processes do not share the parent's
                # config defaults, so an unpinned task could resolve to
                # a different machine than the one its hash names.
                # Ship the correlation context explicitly: contextvars
                # do not cross process boundaries.
                shipped = worker_context({"run_key": self.run_key})
                futures = [(i, pool.submit(_evaluate_task, t.resolved(),
                                           obs.enabled(),
                                           obs.tracing_enabled(),
                                           shipped, self.walk_dir))
                           for i, t in enumerate(tasks)]
            except BrokenProcessPool:
                self._emit("pool", "process pool broke on submit; "
                           "falling back to serial execution",
                           total=len(tasks))
                return self._run_serial(tasks), "fallback-serial"
            done = 0
            for i, future in futures:
                task = tasks[i]
                start = time.perf_counter()
                try:
                    record = future.result(timeout=self.timeout)
                    outcomes[i] = TaskOutcome(
                        task, record, cached=False,
                        wall_time=time.perf_counter() - start,
                        attempts=1)
                except FutureTimeoutError:
                    future.cancel()
                    outcomes[i] = TaskOutcome(
                        task, None, cached=False,
                        wall_time=time.perf_counter() - start,
                        attempts=1,
                        error=f"timeout after {self.timeout}s")
                except BrokenProcessPool:
                    # the pool is gone; everything still pending reruns
                    # serially (attempt 1 didn't really happen for them).
                    self._emit("pool", "process pool broke mid-run; "
                               "finishing remaining cells serially",
                               done=done, total=len(tasks))
                    for j, other in futures:
                        if outcomes[j] is None:
                            outcomes[j] = self._attempt_serial(tasks[j])
                    break
                except Exception as exc:  # noqa: BLE001
                    outcomes[i] = TaskOutcome(
                        task, None, cached=False,
                        wall_time=time.perf_counter() - start,
                        attempts=1,
                        error=f"{type(exc).__name__}: {exc}")
                    to_retry.append(i)
                done += 1
                if outcomes[i] is not None:
                    out = outcomes[i]
                    self._emit("cell",
                               f"[{done}/{len(tasks)}] "
                               + (f"simulated {task.label}" if out.ok
                                  else f"failed {task.label} — "
                                       f"{out.error}"),
                               task_hash=task.content_hash(),
                               label=task.label,
                               state="simulated" if out.ok else "failed",
                               attempt=out.attempts,
                               elapsed=out.wall_time,
                               done=done, total=len(tasks))
        # bounded retry, in-process where tracebacks are debuggable
        for i in to_retry:
            if self.retries and not outcomes[i].ok:
                time.sleep(self.backoff)
                retried = self._attempt_serial(tasks[i], first_attempt=2)
                retried.wall_time += outcomes[i].wall_time
                outcomes[i] = retried
        return outcomes, "process-pool"

    # ---------------------------------------------------------------- runs

    def run(self, tasks: Iterable[SimTask]) -> RunReport:
        """Execute a batch of cells: cache lookups, then fan-out."""
        with correlation(run_key=self.run_key):
            return self._run_correlated(tasks)

    def _run_correlated(self, tasks: Iterable[SimTask]) -> RunReport:
        start = time.perf_counter()
        ordered: list[SimTask] = []
        by_hash: dict[str, SimTask] = {}
        for task in tasks:
            h = task.content_hash()
            if h not in by_hash:
                by_hash[h] = task
                ordered.append(task)

        outcomes: dict[str, TaskOutcome] = {}
        misses: list[SimTask] = []
        cached_records = self.cache.get_many(ordered)
        for task in ordered:
            record = cached_records.get(task.content_hash())
            if record is not None:
                outcomes[task.content_hash()] = TaskOutcome(
                    task, record, cached=True, wall_time=0.0, attempts=0)
            else:
                misses.append(task)

        mode = "serial"
        if misses:
            self._emit("batch",
                       f"runtime: {len(ordered)} cells, "
                       f"{len(ordered) - len(misses)} cached, "
                       f"{len(misses)} to simulate (jobs={self.jobs})",
                       done=len(ordered) - len(misses),
                       total=len(ordered))
        if misses and self.jobs > 1:
            fresh, mode = self._run_pool(misses)
        elif misses:
            fresh = self._run_serial(misses)
        else:
            fresh = []
        tracer = obs.tracer()
        for outcome in fresh:
            if outcome.ok:
                # Worker-captured telemetry and traces ride back on the
                # record; fold them into the parent registry/tracer and
                # keep them out of the cache (they describe one
                # execution, not the cell).
                telemetry = outcome.record.pop("telemetry", None)
                if telemetry is not None and obs.enabled():
                    obs.active().merge(telemetry)
                trace_body = outcome.record.pop("trace", None)
                if trace_body is not None and tracer.enabled:
                    tracer.merge(trace_body)
                self.cache.put(outcome.task, outcome.record)
            outcomes[outcome.task.content_hash()] = outcome
        if tracer.enabled:
            # One executor span per freshly simulated cell, in wall-
            # clock microseconds on the runtime track.
            for outcome in fresh:
                us = int(outcome.wall_time * 1e6)
                tracer.span("runtime.executor", outcome.task.label,
                            tracer.alloc(us), us, {
                                "ok": outcome.ok,
                                "attempts": outcome.attempts,
                            })

        entries = [
            ManifestEntry(
                hash=t.content_hash(),
                workload=t.workload,
                input_id=t.input_id,
                scale=t.scale,
                variants=sorted(t.variants),
                cached=outcomes[t.content_hash()].cached,
                wall_time=outcomes[t.content_hash()].wall_time,
                attempts=outcomes[t.content_hash()].attempts,
                error=outcomes[t.content_hash()].error,
            )
            for t in ordered
        ]
        manifest = RunManifest(jobs=self.jobs, mode=mode,
                               wall_time=time.perf_counter() - start,
                               entries=entries, rev=manifest_rev())
        if obs.enabled():
            simulated = sum(1 for o in fresh if o.ok)
            view = obs.active().prefixed("runtime.executor")
            view.counter("batches").add()
            view.counter("cells").add(len(ordered))
            view.counter("cells_cached").add(len(ordered) - len(misses))
            view.counter("cells_simulated").add(simulated)
            view.counter("cells_failed").add(len(fresh) - simulated)
            timer = view.timer("batch")
            timer.observe(manifest.wall_time)
            # Session-cumulative rate: totals accumulate in the shared
            # registry, so the gauge stays comparable across sessions
            # regardless of how many batches ran or in what order (a
            # per-batch rate would let whichever batch happened to run
            # last define the snapshot headline).
            sim_total = view.counter("cells_simulated").value
            if sim_total and timer.total > 0:
                view.gauge("cells_per_sec").set(sim_total / timer.total)
        self.last_manifest = manifest
        self.manifests.append(manifest)
        self._ingest_manifest(manifest)
        report = RunReport(
            outcomes=[outcomes[t.content_hash()] for t in ordered],
            manifest=manifest)
        if misses:
            self._emit("summary", manifest.summary(),
                       elapsed=manifest.wall_time,
                       done=len(ordered), total=len(ordered))
        return report

    def _ingest_manifest(self, manifest: RunManifest) -> None:
        """Auto-ingest this batch's manifest into the experiment store
        when one is configured (the CLI's ``--store`` flag).  A broken
        store degrades to a progress warning — analytics must never
        fail a sweep."""
        if self.store_path is None:
            return
        from ..store import ExperimentStore, ingest_manifest

        try:
            with ExperimentStore(self.store_path) as store:
                ingest_manifest(store, manifest,
                                source="runtime.executor")
        except StoreError as exc:
            # _emit already logs this at WARNING; the counter makes it
            # visible on a live server's /metrics.
            self._emit("store", f"store ingest failed: {exc}")
            obs.counter("store.ingest_failures").add()

    def run_cells(self, tasks: Iterable[SimTask]) -> dict[SimTask, object]:
        """Run a batch and return ``{task: WorkloadRun}``; raises
        :class:`ExecutorError` if any cell ultimately failed."""
        report = self.run(tasks)
        if report.failures:
            raise ExecutorError(report.manifest.summary())
        return report.runs()
