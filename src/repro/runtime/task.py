"""The unit of work of the experiment runtime: one simulation cell.

A :class:`SimTask` captures everything that determines one
``(workload, input, machine, variants, seed)`` evaluation, gives it a
deterministic content hash, and knows how to evaluate itself into a
plain-JSON result record.  The record round-trips losslessly back into
the :class:`~repro.eval.workloads.WorkloadRun` the experiment drivers
consume, which is what makes on-disk caching and cross-process
execution transparent to every figure/table driver.

Two persistent caches layer under a task, keyed independently: the
*result* cache stores a cell's full record under its content hash
(salted with :data:`CODE_SALT`, so any model-code change invalidates
it), while the *walk* cache (:class:`repro.runtime.cache.WalkStore`)
stores raw hierarchy-walk outcomes keyed purely by cache geometry and
stream bytes — a walk is a pure function of those inputs, so it
survives code changes that only touch the timing model, and a cell
that misses the result cache can still reuse its walks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from .. import __version__
from ..config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    NocConfig,
    TMUConfig,
    experiment_machine,
)
from ..errors import WorkloadError
from ..sim.core import CycleBreakdown
from ..sim.machine import SystemResult

#: bump whenever the result-record layout or the timing model's output
#: semantics change; stale cache entries are invalidated by the salt.
RESULT_SCHEMA_VERSION = 1

#: the code-version salt mixed into every content hash.
CODE_SALT = f"repro/{__version__}/schema-{RESULT_SCHEMA_VERSION}"

#: the system variants a task may evaluate.
KNOWN_VARIANTS = ("baseline", "tmu", "single_lane", "imp")


# -------------------------------------------------- machine (de)serialization

def machine_to_dict(machine: MachineConfig) -> dict:
    """A ``MachineConfig`` as a plain nested dict (JSON-able, canonical)."""
    return asdict(machine)


def machine_from_dict(data: dict) -> MachineConfig:
    """Rebuild a ``MachineConfig`` from :func:`machine_to_dict` output."""
    return MachineConfig(
        num_cores=data["num_cores"],
        core=CoreConfig(**data["core"]),
        l1d=CacheConfig(**data["l1d"]),
        l2=CacheConfig(**data["l2"]),
        llc=CacheConfig(**data["llc"]),
        memory=MemoryConfig(**data["memory"]),
        noc=NocConfig(**data["noc"]),
        tmu=TMUConfig(**data["tmu"]),
        # records written before the fast-model flags existed default to
        # the reference models those results were produced with
        fast_cache=data.get("fast_cache", False),
        fast_engine=data.get("fast_engine", False),
    )


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ------------------------------------------------------------------- SimTask

@dataclass(frozen=True)
class SimTask:
    """One simulation cell of an experiment sweep.

    ``machine=None`` resolves to the cache-scaled Table 5 machine for
    ``scale`` (the common case); sweeps that vary the architecture
    (Figure 14) or the host (Figure 3) pass an explicit machine.
    ``seed`` is a cache-partitioning knob for stochastic extensions —
    the current suite is fully deterministic, but the seed participates
    in the content hash so future randomized workloads stay correct.
    """

    workload: str
    input_id: str
    scale: str = "small"
    variants: tuple[str, ...] = ("baseline", "tmu")
    machine: MachineConfig | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        unknown = set(self.variants) - set(KNOWN_VARIANTS)
        if unknown:
            raise WorkloadError(
                f"unknown variants {sorted(unknown)}; "
                f"known: {list(KNOWN_VARIANTS)}"
            )

    def resolved_machine(self) -> MachineConfig:
        if self.machine is not None:
            return self.machine
        return experiment_machine(self.scale)

    def resolved(self) -> "SimTask":
        """A copy with the machine pinned explicitly.

        Hash-identical to this task (``spec()`` already resolves the
        machine), but immune to process-wide config defaults — e.g. the
        CLI's cache-model selection — differing between the parent and a
        pool worker: the worker evaluates exactly the machine the parent
        hashed."""
        if self.machine is not None:
            return self
        return replace(self, machine=self.resolved_machine())

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.input_id}@{self.scale}"

    def spec(self) -> dict:
        """The task's full identity as a plain dict (JSON-able)."""
        return {
            "workload": self.workload,
            "input_id": self.input_id,
            "scale": self.scale,
            "variants": sorted(self.variants),
            "machine": machine_to_dict(self.resolved_machine()),
            "seed": self.seed,
        }

    def content_hash(self) -> str:
        """Deterministic sha256 over the spec plus the code-version
        salt — the cache key.  Memoized: the task is frozen, so the
        hash cannot change, and the executor/cache/manifest layers all
        re-ask for it several times per cell."""
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            payload = canonical_json({"salt": CODE_SALT, "spec": self.spec()})
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    # ---------------------------------------------------------- evaluation

    def evaluate(self) -> dict:
        """Run the cell and return its plain-JSON result record."""
        from ..eval.workloads import run_workload

        run = run_workload(
            self.workload, self.input_id, self.resolved_machine(),
            self.scale, variants=tuple(self.variants),
        )
        results = {}
        for variant in KNOWN_VARIANTS:
            result = getattr(run, variant, None)
            if result is not None:
                results[variant] = system_result_to_dict(result)
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "salt": CODE_SALT,
            "hash": self.content_hash(),
            "task": self.spec(),
            "results": results,
        }


def task_from_spec(spec: dict) -> SimTask:
    """Rebuild a :class:`SimTask` from :meth:`SimTask.spec` output.

    The spec always carries the resolved machine, so the rebuilt task
    is machine-pinned — and hash-identical to the task that produced
    the spec (``spec()`` resolves the machine before hashing).  The
    service's job journal stores specs; this is the resume path."""
    return SimTask(
        workload=spec["workload"],
        input_id=spec["input_id"],
        scale=spec.get("scale", "small"),
        variants=tuple(spec.get("variants", ("baseline", "tmu"))),
        machine=machine_from_dict(spec["machine"])
        if spec.get("machine") else None,
        seed=spec.get("seed", 0),
    )


# --------------------------------------------------- record (de)serialization

def system_result_to_dict(result: SystemResult) -> dict:
    b = result.breakdown
    return {
        "name": result.name,
        "cycles": result.cycles,
        "read_to_write": result.read_to_write,
        "tmu_cycles": result.tmu_cycles,
        "core_cycles": result.core_cycles,
        "breakdown": {
            "committing": b.committing,
            "frontend": b.frontend,
            "backend": b.backend,
            "load_to_use": b.load_to_use,
            "mem_bytes": b.mem_bytes,
            "flops": b.flops,
        },
    }


def system_result_from_dict(data: dict) -> SystemResult:
    return SystemResult(
        name=data["name"],
        cycles=data["cycles"],
        breakdown=CycleBreakdown(**data["breakdown"]),
        read_to_write=data["read_to_write"],
        tmu_cycles=data["tmu_cycles"],
        core_cycles=data["core_cycles"],
    )


def run_from_record(record: dict):
    """Rebuild the driver-facing :class:`WorkloadRun` from a record."""
    from ..eval.workloads import WorkloadRun

    results = record["results"]
    task = record["task"]
    run = WorkloadRun(
        workload=task["workload"],
        input_id=task["input_id"],
        baseline=system_result_from_dict(results["baseline"]),
    )
    for variant in ("tmu", "single_lane", "imp"):
        if variant in results:
            setattr(run, variant, system_result_from_dict(results[variant]))
    return run
