"""Content-addressed on-disk result store.

Records are JSON files named ``<sha256>.json`` under the cache root;
the hash covers the full task spec *and* a code-version salt
(:data:`repro.runtime.task.CODE_SALT`), so a model change or record
schema bump silently misses instead of serving stale results.
:meth:`ResultCache.gc` reclaims those orphaned entries.

Both cache classes are safe for concurrent readers and writers within
one process (the simulation service shares a single instance across
its worker threads): file operations are atomic renames, and the stats
counters are updated under an internal lock so two threads never lose
an increment to a read-modify-write race.  Across processes (a service
and a one-shot CLI run sharing a cache dir), writes of the same hash
produce identical bytes by construction, so last-rename-wins is
harmless.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .task import CODE_SALT, SimTask


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "errors": self.errors,
                "hit_rate": self.hit_rate}


def _task_hash(task: SimTask | str) -> str:
    return task if isinstance(task, str) else task.content_hash()


class NullCache:
    """The ``--no-cache`` cache: never hits, never stores."""

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._lock = threading.Lock()

    @property
    def root(self) -> None:
        return None

    def get(self, task: SimTask | str) -> dict | None:
        with self._lock:
            self.stats.misses += 1
        return None

    def get_many(self, tasks: Iterable[SimTask | str]
                 ) -> dict[str, dict | None]:
        hashes = [_task_hash(t) for t in tasks]
        with self._lock:
            self.stats.misses += len(hashes)
        return {h: None for h in hashes}

    def put(self, task: SimTask | str, record: dict) -> None:
        pass

    def invalidate(self, task: SimTask | str | None = None) -> int:
        return 0

    def gc(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0


@dataclass
class ResultCache:
    """Content-addressed store of task result records.

    All operations are safe against concurrent writers of the *same*
    record (writes are atomic renames of a per-pid temp file, and any
    writer produces identical bytes for a given hash by construction).
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        # not a dataclass field: locks don't compare, copy or serialize
        self._lock = threading.Lock()

    def path_for(self, task: SimTask | str) -> Path:
        return self.root / f"{_task_hash(task)}.json"

    def get(self, task: SimTask | str) -> dict | None:
        """The stored record, or ``None`` on miss (corrupt entries are
        dropped and counted as misses)."""
        path = self.path_for(task)
        try:
            with path.open("r", encoding="utf-8") as fh:
                record = json.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            with self._lock:
                self.stats.misses += 1
                self.stats.errors += 1
            path.unlink(missing_ok=True)
            return None
        if record.get("salt") != CODE_SALT:
            # hash collisions across salts are impossible, but a record
            # written by a hand-rolled tool might lie; be strict.
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.hits += 1
        return record

    def get_many(self, tasks: Iterable[SimTask | str]
                 ) -> dict[str, dict | None]:
        """Batch lookup: ``{hash: record-or-None}`` for every task.

        One call, one stats settlement — the executor and the service
        use this for the leading is-it-cached sweep over a batch."""
        return {_task_hash(t): self.get(_task_hash(t)) for t in tasks}

    def put(self, task: SimTask | str, record: dict) -> None:
        path = self.path_for(task)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}")
        tmp.write_text(json.dumps(record, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, path)
        with self._lock:
            self.stats.puts += 1

    def invalidate(self, task: SimTask | str | None = None) -> int:
        """Drop one record (or every record when ``task`` is ``None``);
        returns the number removed."""
        if task is not None:
            path = self.path_for(task)
            if path.exists():
                path.unlink()
                return 1
            return 0
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def gc(self) -> int:
        """Remove records whose code-version salt no longer matches the
        running code (plus unparsable files and stale temp files);
        returns the number reclaimed."""
        removed = 0
        for tmp in self.root.glob("*.tmp.*"):
            tmp.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*.json"):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                stale = record.get("salt") != CODE_SALT
            except (OSError, json.JSONDecodeError):
                stale = True
            if stale:
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


@dataclass
class WalkStore:
    """On-disk tier of the hierarchy walk cache (see
    :class:`repro.sim.memsys.WalkCache`).

    Same layout and concurrency story as :class:`ResultCache` —
    ``<sha256>.json`` records, atomic per-pid/tid temp renames,
    identical bytes for identical digests — but keyed by the *walk*
    content address (cache geometry + raw stream bytes) rather than a
    task spec, and schema-gated by the payload's own
    ``repro.walk/...`` tag instead of :data:`CODE_SALT`: a walk record
    is a pure function of its digest inputs, so it survives unrelated
    model-code changes that would invalidate task results.
    """

    root: Path

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def load(self, digest: str) -> tuple[dict | None, int]:
        """``(payload, size_in_bytes)`` for a stored walk, or
        ``(None, 0)`` on miss; corrupt records are dropped."""
        path = self.path_for(digest)
        try:
            raw = path.read_bytes()
            return json.loads(raw), len(raw)
        except FileNotFoundError:
            return None, 0
        except (OSError, json.JSONDecodeError):
            path.unlink(missing_ok=True)
            return None, 0

    def save(self, digest: str, payload: dict) -> int:
        """Atomically persist one walk record; returns bytes written."""
        path = self.path_for(digest)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}")
        data = json.dumps(payload, sort_keys=True)
        tmp.write_text(data, encoding="utf-8")
        os.replace(tmp, path)
        return len(data)

    def gc(self) -> int:
        """Drop stale temp files and unparsable records."""
        removed = 0
        for tmp in self.root.glob("*.tmp.*"):
            tmp.unlink(missing_ok=True)
            removed += 1
        for path in self.root.glob("*.json"):
            try:
                json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
