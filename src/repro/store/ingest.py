"""Ingest: every result shape the project produces, into one database.

Four source shapes feed the store, each mapped onto the same
normalized tables so queries never care where a number came from:

* **run manifests** (``repro.runtime``): per-cell outcomes into
  ``cells``, aggregates into ``run_stats``;
* **telemetry snapshots** (``repro.obs/1``, including the committed
  ``BENCH_<rev>.json`` trajectory points): flattened metrics into
  ``metrics``, the ``runtime.executor.*`` headline into ``run_stats``;
* **serve-job journals** (``repro.serve/1`` records plus their
  ``.events.jsonl``): job aggregates into ``run_stats``, per-cell
  progress events into ``cells``;
* **event traces** (``repro.trace/1``): the end-of-run summary spans
  into ``trace_summaries``.

Every ingest is idempotent: the run row is keyed by a sha256 over the
source's canonical content, so feeding the same file twice (or two
copies of it) creates nothing new.  :func:`ingest_file` sniffs the
shape from the content; :func:`ingest_paths` walks files and
directories (a cache's ``manifests/`` dir, a service's ``jobs/`` dir,
a repo root full of ``BENCH_*.json``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..errors import ReproError, StoreError
from ..obs.export import fold_trace
from ..obs.snapshot import iter_metrics, validate_snapshot
from ..obs.tracing import load_trace, validate_trace
from ..runtime.manifest import RunManifest
from ..runtime.task import canonical_json
from .store import ExperimentStore

#: the headline metric the store derives for every run kind
HEADLINE_METRIC = "runtime.executor.cells_per_sec"

#: trace_summaries name prefix for per-span duration histograms
DURATION_PREFIX = "durations:"


def _run_key(kind: str, payload) -> str:
    """Content address of an ingested source (kind-prefixed sha256)."""
    body = canonical_json(payload)
    return hashlib.sha256(f"{kind}:{body}".encode("utf-8")).hexdigest()


def _summary(kind: str, run_id: int, created: bool,
             rev: str | None, source: str | None) -> dict:
    return {"kind": kind, "run_id": run_id, "created": created,
            "rev": rev, "source": source}


# ---------------------------------------------------------------- manifests

def ingest_manifest(store: ExperimentStore,
                    manifest: RunManifest | dict | str | Path, *,
                    source: str | None = None,
                    rev: str | None = None) -> dict:
    """Ingest one executor run manifest (object, dict, or file path)."""
    if isinstance(manifest, (str, Path)):
        source = source or str(manifest)
        try:
            data = json.loads(Path(manifest).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"cannot read manifest {manifest}: {exc}") from exc
        manifest = RunManifest.load_dict(data)
    elif isinstance(manifest, dict):
        manifest = RunManifest.load_dict(manifest)
    rev = rev or manifest.rev
    data = manifest.to_dict()
    run_id, created = store.add_run(
        run_key=_run_key("manifest", data), kind="manifest", rev=rev,
        created_unix=manifest.created_at or None, source=source,
        meta={"jobs": manifest.jobs, "mode": manifest.mode})
    if not created:
        return _summary("manifest", run_id, False, rev, source)
    store.add_cells(run_id, [
        {
            "task_hash": e.hash,
            "workload": e.workload,
            "input_id": e.input_id,
            "scale": e.scale,
            "variants": ",".join(e.variants),
            "cached": e.cached,
            "wall_time": e.wall_time,
            "attempts": e.attempts,
            "error": e.error,
        }
        for e in manifest.entries
    ])
    simulated = manifest.simulated
    rate = (simulated / manifest.wall_time
            if simulated and manifest.wall_time > 0 else None)
    store.set_run_stats(
        run_id, cells=manifest.total, cached=manifest.cache_hits,
        simulated=simulated, failed=len(manifest.failures),
        wall_time=manifest.wall_time, cells_per_sec=rate)
    return _summary("manifest", run_id, True, rev, source)


# ---------------------------------------------------------------- snapshots

def ingest_snapshot(store: ExperimentStore, snap: dict | str | Path, *,
                    source: str | None = None, kind: str = "snapshot",
                    rev: str | None = None) -> dict:
    """Ingest one ``repro.obs/1`` telemetry snapshot (or BENCH file)."""
    if isinstance(snap, (str, Path)):
        source = source or str(snap)
        if kind == "snapshot" and Path(snap).name.startswith("BENCH_"):
            kind = "bench"
        try:
            snap = json.loads(Path(snap).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"cannot read snapshot {snap}: {exc}") from exc
    snap = validate_snapshot(snap)
    meta = snap.get("meta", {})
    rev = rev or meta.get("rev")
    run_id, created = store.add_run(
        run_key=_run_key(kind, snap), kind=kind, rev=rev,
        created_unix=snap.get("created_unix"), source=source, meta=meta)
    if not created:
        return _summary(kind, run_id, False, rev, source)
    store.add_metrics(run_id, list(iter_metrics(snap)))
    counters = snap.get("counters", {})
    timers = snap.get("timers", {})
    gauges = snap.get("gauges", {})
    cells = int(counters.get("runtime.executor.cells", 0))
    if cells:
        rate = gauges.get(HEADLINE_METRIC, {}).get("value")
        store.set_run_stats(
            run_id, cells=cells,
            cached=int(counters.get("runtime.executor.cells_cached", 0)),
            simulated=int(
                counters.get("runtime.executor.cells_simulated", 0)),
            failed=int(counters.get("runtime.executor.cells_failed", 0)),
            wall_time=float(
                timers.get("runtime.executor.batch", {})
                .get("total_s", 0.0)),
            cells_per_sec=rate)
    return _summary(kind, run_id, True, rev, source)


# -------------------------------------------------------------- serve jobs

def _parse_label(label: str) -> tuple[str | None, str | None, str | None]:
    """Split an executor cell label ``workload/input@scale``."""
    if "/" not in label:
        return None, None, None
    workload, rest = label.split("/", 1)
    input_id, _, scale = rest.partition("@")
    return workload, input_id, scale or None


def ingest_job(store: ExperimentStore, job: dict | str | Path, *,
               events: list[dict] | None = None,
               source: str | None = None,
               rev: str | None = None) -> dict:
    """Ingest one serve-job journal record (plus its event log).

    When ``job`` is a path, the sibling ``<id>.events.jsonl`` is read
    automatically; per-cell progress events become ``cells`` rows
    (cache hits never emit cell events, so those cells are accounted
    only in the job aggregates).
    """
    if isinstance(job, (str, Path)):
        path = Path(job)
        source = source or str(path)
        try:
            job = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"cannot read job record {path}: {exc}") \
                from exc
        if events is None:
            events = _load_events(path.with_name(
                path.name.replace(".json", ".events.jsonl")))
    if not isinstance(job, dict) or "state" not in job or \
            "cells" not in job:
        raise StoreError("not a serve-job record (missing state/cells)")
    run_id, created = store.add_run(
        run_key=_run_key("serve-job", job), kind="serve-job", rev=rev,
        created_unix=job.get("created_at"), source=source,
        meta={"job": job.get("id"), "client": job.get("client"),
              "state": job.get("state"),
              "sweep": job.get("sweep", {})})
    if not created:
        return _summary("serve-job", run_id, False, rev, source)
    started = job.get("started_at")
    finished = job.get("finished_at")
    duration = (finished - started) if started and finished else 0.0
    simulated = int(job.get("simulated", 0))
    rate = simulated / duration if simulated and duration > 0 else None
    store.set_run_stats(
        run_id, cells=int(job.get("total", len(job.get("cells", ())))),
        cached=int(job.get("cached", 0)), simulated=simulated,
        failed=int(job.get("failed", 0)), wall_time=duration,
        cells_per_sec=rate)
    cell_rows: dict[str, dict] = {}
    for event in events or ():
        if event.get("kind") != "cell" or not event.get("task_hash"):
            continue
        workload, input_id, scale = _parse_label(event.get("label") or "")
        cell_rows[event["task_hash"]] = {     # last event per cell wins
            "task_hash": event["task_hash"],
            "workload": workload,
            "input_id": input_id,
            "scale": scale,
            "cached": False,
            "wall_time": float(event.get("elapsed", 0.0)),
            "attempts": int(event.get("attempt", 0)),
            "error": None if event.get("state") == "simulated"
            else event.get("message"),
        }
    if cell_rows:
        store.add_cells(run_id, list(cell_rows.values()))
    if isinstance(job.get("telemetry"), dict):
        ingest_snapshot(store, job["telemetry"], source=source, rev=rev)
    return _summary("serve-job", run_id, True, rev, source)


def _load_events(path: Path) -> list[dict]:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return []
    events = []
    for line in lines:
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue              # torn tail write
    return events


# ------------------------------------------------------------------ traces

def ingest_trace(store: ExperimentStore, trace: dict | str | Path, *,
                 source: str | None = None,
                 rev: str | None = None) -> dict:
    """Ingest one ``repro.trace/1`` timeline's summary spans."""
    if isinstance(trace, (str, Path)):
        source = source or str(trace)
        trace = load_trace(trace)
    else:
        trace = validate_trace(trace)
    meta = dict(trace.get("meta", {}))
    rev = rev or meta.get("rev")
    folded = fold_trace(trace)
    summaries = {f"{track}\x00{name}": args for (track, name), args
                 in folded["summaries"].items()}
    payload = {"meta": meta, "summaries": summaries,
               "ticks": trace.get("ticks")}
    run_id, created = store.add_run(
        run_key=_run_key("trace", payload), kind="trace", rev=rev,
        created_unix=meta.get("created_unix"), source=source, meta=meta)
    if not created:
        return _summary("trace", run_id, False, rev, source)
    store.add_trace_summaries(run_id, [
        (track, name, args)
        for (track, name), args in sorted(folded["summaries"].items())
    ] + [
        # span-length histograms ride along under a prefixed name so
        # the query layer can answer percentile questions later; they
        # are derived data, deliberately outside the run_key payload.
        (track, f"{DURATION_PREFIX}{name}", hist.as_dict())
        for (track, name), hist in sorted(folded["durations"].items())
        if hist.count
    ])
    return _summary("trace", run_id, True, rev, source)


# ------------------------------------------------------------- file sniffer

def ingest_file(store: ExperimentStore, path: str | Path, *,
                rev: str | None = None) -> dict:
    """Ingest one JSON file, sniffing its shape from the content."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreError(f"cannot read {path}: {exc}") from exc
    schema = data.get("schema") if isinstance(data, dict) else None
    if isinstance(schema, str) and schema.startswith("repro.obs/"):
        return ingest_snapshot(store, data, source=str(path), rev=rev,
                               kind="bench"
                               if path.name.startswith("BENCH_")
                               else "snapshot")
    if isinstance(schema, str) and schema.startswith("repro.trace/"):
        return ingest_trace(store, data, source=str(path), rev=rev)
    if isinstance(schema, str) and schema.startswith("repro.serve/"):
        return ingest_job(
            store, data, source=str(path), rev=rev,
            events=_load_events(path.with_name(
                path.name.replace(".json", ".events.jsonl"))))
    if isinstance(data, dict) and "entries" in data and "mode" in data:
        return ingest_manifest(store, data, source=str(path), rev=rev)
    raise StoreError(
        f"{path}: unrecognized result shape (expected a repro.obs "
        f"snapshot, repro.trace timeline, repro.serve job record, or "
        f"a run manifest)")


def ingest_paths(store: ExperimentStore, paths: list[str | Path], *,
                 rev: str | None = None) -> list[dict]:
    """Ingest files and directories; directories are walked for
    ``*.json`` and unrecognized files inside them are skipped (a cache
    or journal dir may hold other artifacts), while an explicitly
    named file that cannot be ingested raises."""
    results: list[dict] = []
    for given in paths:
        given = Path(given)
        if given.is_dir():
            for path in sorted(given.rglob("*.json")):
                try:
                    results.append(ingest_file(store, path, rev=rev))
                except ReproError:
                    continue
        else:
            results.append(ingest_file(store, given, rev=rev))
    return results
