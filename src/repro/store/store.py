""":class:`ExperimentStore` — the handle every layer shares.

A thin, transaction-per-call wrapper over the SQLite database defined
in :mod:`repro.store.schema`.  Writers (the ingest layer, the runtime
and scheduler auto-ingest hooks) and readers (the query layer, the
CLI) all go through this one class; connections are cheap to open, so
hooks open one per ingest and multiple processes coordinate through
SQLite's own locking.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from ..errors import StoreError
from .schema import RUN_KINDS, STORE_SCHEMA, open_db

#: default on-disk location (relative to the working directory);
#: the CLI and README document it, .gitignore covers it.
DEFAULT_STORE_PATH = ".repro-store.sqlite"


class ExperimentStore:
    """One open experiment database.

    Usable as a context manager; all writes are committed per method
    call, so a crash between calls never leaves a torn row behind.
    """

    def __init__(self, path: str | Path = DEFAULT_STORE_PATH) -> None:
        self.path = Path(path)
        self._con: sqlite3.Connection | None = open_db(self.path)

    # ------------------------------------------------------------ plumbing

    @property
    def con(self) -> sqlite3.Connection:
        if self._con is None:
            raise StoreError(f"store {self.path} is closed")
        return self._con

    def close(self) -> None:
        if self._con is not None:
            self._con.close()
            self._con = None

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- writes

    def add_run(self, *, run_key: str, kind: str, rev: str | None,
                created_unix: float | None, source: str | None,
                meta: dict | None = None) -> tuple[int, bool]:
        """Insert a run row; returns ``(run_id, created)``.

        ``run_key`` is a content address of the ingested source, so
        feeding the same file twice finds the existing row
        (``created=False``) and the caller skips its child rows —
        double-ingest is a no-op by construction.
        """
        if kind not in RUN_KINDS:
            raise StoreError(
                f"unknown run kind {kind!r}; known: {list(RUN_KINDS)}")
        with self.con as con:
            row = con.execute(
                "SELECT id FROM runs WHERE run_key = ?", (run_key,)
            ).fetchone()
            if row is not None:
                return row["id"], False
            cur = con.execute(
                "INSERT INTO runs (run_key, kind, rev, created_unix, "
                "source, meta) VALUES (?, ?, ?, ?, ?, ?)",
                (run_key, kind, rev, created_unix, source,
                 json.dumps(meta or {}, sort_keys=True)))
            return cur.lastrowid, True

    def add_cells(self, run_id: int, rows: list[dict]) -> int:
        """Attach per-cell outcome rows to a run."""
        with self.con as con:
            con.executemany(
                "INSERT OR REPLACE INTO cells (run_id, task_hash, "
                "workload, input_id, scale, variants, cached, "
                "wall_time, attempts, error) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(run_id, r["task_hash"], r.get("workload"),
                  r.get("input_id"), r.get("scale"),
                  r.get("variants"), int(bool(r.get("cached"))),
                  float(r.get("wall_time", 0.0)),
                  int(r.get("attempts", 0)), r.get("error"))
                 for r in rows])
        return len(rows)

    def set_run_stats(self, run_id: int, *, cells: int, cached: int,
                      simulated: int, failed: int, wall_time: float,
                      cells_per_sec: float | None) -> None:
        with self.con as con:
            con.execute(
                "INSERT OR REPLACE INTO run_stats (run_id, cells, "
                "cached, simulated, failed, wall_time, cells_per_sec) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (run_id, cells, cached, simulated, failed, wall_time,
                 cells_per_sec))

    def add_metrics(self, run_id: int,
                    rows: list[tuple[str, str, float]]) -> int:
        """Attach flattened ``(name, kind, scalar)`` metrics to a run."""
        with self.con as con:
            con.executemany(
                "INSERT OR REPLACE INTO metrics (run_id, name, kind, "
                "value) VALUES (?, ?, ?, ?)",
                [(run_id, name, kind, float(value))
                 for name, kind, value in rows])
        return len(rows)

    def add_trace_summaries(self, run_id: int,
                            rows: list[tuple[str, str, dict]]) -> int:
        """Attach ``(track, name, args)`` summary spans to a run."""
        with self.con as con:
            con.executemany(
                "INSERT OR REPLACE INTO trace_summaries (run_id, "
                "track, name, args) VALUES (?, ?, ?, ?)",
                [(run_id, track, name,
                  json.dumps(args or {}, sort_keys=True))
                 for track, name, args in rows])
        return len(rows)

    # --------------------------------------------------------------- reads

    def sql(self, query: str, params: tuple = ()) -> list[sqlite3.Row]:
        """Run a read-only query (the query layer's escape hatch)."""
        return self.con.execute(query, params).fetchall()

    def runs(self) -> list[dict]:
        """Every ingested run, oldest first."""
        return [dict(r) for r in self.sql(
            "SELECT id, run_key, kind, rev, created_unix, source, meta "
            "FROM runs ORDER BY created_unix, id")]

    def counts(self) -> dict[str, int]:
        """Row counts per table (the CLI's ingest summary)."""
        out = {}
        for table in ("runs", "cells", "run_stats", "metrics",
                      "trace_summaries"):
            out[table] = self.sql(
                f"SELECT COUNT(*) AS n FROM {table}")[0]["n"]
        return out

    @property
    def schema(self) -> str:
        return STORE_SCHEMA
