"""The experiment database schema: ``repro.store/1``.

One SQLite file holds the project's whole result history in five
normalized tables:

* ``runs`` — one row per ingested source (an executor manifest, a
  ``repro.obs/1`` telemetry snapshot, a ``BENCH_<rev>.json``
  trajectory point, a serve-job journal, a ``repro.trace/1``
  timeline), keyed by a content-addressed ``run_key`` so ingest is
  idempotent: re-ingesting the same bytes is a no-op.
* ``cells`` — per-cell outcomes (task hash, workload, cache hit,
  wall time, attempts, error), from manifests and job journals.
* ``run_stats`` — one aggregate row per run: cell counts by outcome,
  wall time, cells/sec — the ``RunStats`` of a run regardless of
  which source shape it arrived in.
* ``metrics`` — the flattened telemetry metrics of snapshot-bearing
  runs (one scalar per dotted metric name, same flattening as
  ``stats diff``).
* ``trace_summaries`` — the end-of-run summary spans of ingested
  traces (per-layer iterations/merge-steps/stalls, arbiter and outQ
  totals), the substrate of ``repro query stalls``.

The ``store_meta`` table pins the schema version; opening a store
written by a future ``repro.store/2`` raises
:class:`~repro.errors.StoreError` instead of misreading it.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

from ..errors import StoreError

#: bump on any breaking change to the table layout
STORE_SCHEMA = "repro.store/1"

#: the source shapes a run row may have been ingested from
RUN_KINDS = ("manifest", "snapshot", "bench", "serve-job", "trace")

_DDL = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id           INTEGER PRIMARY KEY,
    run_key      TEXT NOT NULL UNIQUE,
    kind         TEXT NOT NULL,
    rev          TEXT,
    created_unix REAL,
    source       TEXT,
    meta         TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS runs_rev ON runs (rev);
CREATE INDEX IF NOT EXISTS runs_created ON runs (created_unix);
CREATE TABLE IF NOT EXISTS cells (
    run_id    INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    task_hash TEXT NOT NULL,
    workload  TEXT,
    input_id  TEXT,
    scale     TEXT,
    variants  TEXT,
    cached    INTEGER NOT NULL DEFAULT 0,
    wall_time REAL NOT NULL DEFAULT 0.0,
    attempts  INTEGER NOT NULL DEFAULT 0,
    error     TEXT,
    UNIQUE (run_id, task_hash)
);
CREATE INDEX IF NOT EXISTS cells_workload ON cells (workload);
CREATE INDEX IF NOT EXISTS cells_hash ON cells (task_hash);
CREATE TABLE IF NOT EXISTS run_stats (
    run_id        INTEGER PRIMARY KEY REFERENCES runs (id)
                  ON DELETE CASCADE,
    cells         INTEGER NOT NULL DEFAULT 0,
    cached        INTEGER NOT NULL DEFAULT 0,
    simulated     INTEGER NOT NULL DEFAULT 0,
    failed        INTEGER NOT NULL DEFAULT 0,
    wall_time     REAL NOT NULL DEFAULT 0.0,
    cells_per_sec REAL
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    name   TEXT NOT NULL,
    kind   TEXT NOT NULL,
    value  REAL NOT NULL,
    UNIQUE (run_id, name)
);
CREATE INDEX IF NOT EXISTS metrics_name ON metrics (name);
CREATE TABLE IF NOT EXISTS trace_summaries (
    run_id INTEGER NOT NULL REFERENCES runs (id) ON DELETE CASCADE,
    track  TEXT NOT NULL,
    name   TEXT NOT NULL,
    args   TEXT NOT NULL DEFAULT '{}',
    UNIQUE (run_id, track, name)
);
"""


def open_db(path: str | Path) -> sqlite3.Connection:
    """Open (creating if needed) the experiment database at ``path``.

    A fresh file gets the ``repro.store/1`` tables; an existing file's
    pinned schema version is checked first, so a database written by a
    newer layout fails loudly instead of being half-read.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    try:
        con = sqlite3.connect(path, timeout=30.0)
    except sqlite3.Error as exc:
        raise StoreError(f"cannot open store {path}: {exc}") from exc
    con.row_factory = sqlite3.Row
    try:
        existing = con.execute(
            "SELECT value FROM store_meta WHERE key = 'schema'"
        ).fetchone()
    except sqlite3.OperationalError:
        existing = None          # fresh database: no tables yet
    except sqlite3.DatabaseError:
        con.close()
        raise StoreError(
            f"{path} is not an experiment store (not an SQLite "
            f"database, or corrupted)") from None
    if existing is not None and existing["value"] != STORE_SCHEMA:
        found = existing["value"]
        con.close()
        raise StoreError(
            f"store {path} uses schema {found!r}; this build reads "
            f"{STORE_SCHEMA!r} — refusing to touch it")
    with con:
        con.executescript(_DDL)
        con.execute(
            "INSERT OR IGNORE INTO store_meta (key, value) "
            "VALUES ('schema', ?)", (STORE_SCHEMA,))
    return con
