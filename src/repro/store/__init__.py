"""``repro.store`` — the queryable experiment database.

Results used to live in four disconnected shapes: per-cell JSON cache
files, ``BENCH_<rev>.json`` trajectory snapshots, ``benchmarks/
results/`` text dumps, and serve-job journals.  This package folds all
of them into one SQLite database (schema ``repro.store/1``) so
cross-run analytics — "cells/sec by rev", "stall share by kernel
across history", "regressions vs baseline rev" — are each one query::

    from repro.store import ExperimentStore, ingest_paths, cells_per_sec

    with ExperimentStore("results.sqlite") as store:
        ingest_paths(store, ["BENCH_a3e8009.json", ".repro-cache/manifests"])
        rows, columns = cells_per_sec(store, by="rev")

The same layer backs the ``repro ingest`` / ``repro query`` CLI and
the ``store-smoke`` CI gate, and the runtime executor, the serve
scheduler and the benchmark harness auto-ingest their outputs behind
a ``--store`` flag — local analytics and CI gating share one code
path.

Rows are content-addressed on the existing sha256 task hashes and a
sha256 over each ingested source, so ingest is idempotent and the
database is trivially partitionable later.
"""

from __future__ import annotations

from .ingest import (
    HEADLINE_METRIC,
    ingest_file,
    ingest_job,
    ingest_manifest,
    ingest_paths,
    ingest_snapshot,
    ingest_trace,
)
from .query import (
    FORMATS,
    cell_outcomes,
    cells_per_sec,
    metric_history,
    metric_values,
    regressions,
    render_rows,
    runs_overview,
    stall_shares,
)
from .schema import RUN_KINDS, STORE_SCHEMA, open_db
from .store import DEFAULT_STORE_PATH, ExperimentStore

__all__ = [
    "STORE_SCHEMA",
    "RUN_KINDS",
    "DEFAULT_STORE_PATH",
    "HEADLINE_METRIC",
    "FORMATS",
    "ExperimentStore",
    "open_db",
    "ingest_file",
    "ingest_paths",
    "ingest_manifest",
    "ingest_snapshot",
    "ingest_job",
    "ingest_trace",
    "metric_values",
    "metric_history",
    "cells_per_sec",
    "runs_overview",
    "cell_outcomes",
    "stall_shares",
    "regressions",
    "render_rows",
]
