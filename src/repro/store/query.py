"""Cross-run analytics over the experiment database.

Each query returns plain ``list[dict]`` rows plus an ordered column
list, and :func:`render_rows` turns any of them into an aligned text
table, CSV, or JSON — the three output modes of ``repro query``.

The queries the project exists to answer each map onto one function:

* "cells/sec by rev"            → :func:`metric_history` (grouped)
* "stall share by kernel"       → :func:`stall_shares`
* "regressions vs baseline rev" → :func:`regressions` (the CI gate)
"""

from __future__ import annotations

import csv
import io
import json

from ..errors import StoreError
from ..obs.metrics import Histogram
from .ingest import DURATION_PREFIX, HEADLINE_METRIC
from .store import ExperimentStore

FORMATS = ("table", "csv", "json")


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}" if not value.is_integer() else str(int(value))
    return str(value)


def render_rows(rows: list[dict], columns: list[str],
                fmt: str = "table") -> str:
    """Render query rows as an aligned table, CSV, or JSON."""
    if fmt == "json":
        return json.dumps(rows, indent=2, sort_keys=True)
    if fmt == "csv":
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow(["" if row.get(c) is None else row.get(c)
                             for c in columns])
        return out.getvalue().rstrip("\n")
    if fmt != "table":
        raise StoreError(
            f"unknown output format {fmt!r}; known: {list(FORMATS)}")
    table = [tuple(columns)]
    for row in rows:
        table.append(tuple(_fmt(row.get(c)) for c in columns))
    widths = [max(len(r[i]) for r in table) for i in range(len(columns))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(
            cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


# ----------------------------------------------------------------- metrics

def metric_values(store: ExperimentStore, name: str) -> list[dict]:
    """Every run's value of one metric, oldest first.

    Snapshot runs carry their metrics verbatim; manifest and serve-job
    runs contribute the derived headline (cells/sec from their
    ``run_stats`` row) when ``name`` is the headline metric — so the
    query works across all source shapes.
    """
    rows = [dict(r) for r in store.sql(
        "SELECT r.id AS run_id, r.run_key, r.kind, r.rev, "
        "r.created_unix, m.value "
        "FROM runs r JOIN metrics m ON m.run_id = r.id "
        "WHERE m.name = ? ORDER BY r.created_unix, r.id", (name,))]
    if name == HEADLINE_METRIC:
        seen = {r["run_id"] for r in rows}
        derived = [dict(r) for r in store.sql(
            "SELECT r.id AS run_id, r.run_key, r.kind, r.rev, "
            "r.created_unix, s.cells_per_sec AS value "
            "FROM runs r JOIN run_stats s ON s.run_id = r.id "
            "WHERE s.cells_per_sec IS NOT NULL "
            "ORDER BY r.created_unix, r.id")]
        rows.extend(r for r in derived if r["run_id"] not in seen)
        rows.sort(key=lambda r: (r["created_unix"] or 0.0, r["run_id"]))
    return rows


METRIC_COLUMNS = {
    "rev": ["rev", "runs", "latest", "best"],
    "run": ["run", "kind", "rev", "value"],
}


def metric_history(store: ExperimentStore, name: str,
                   by: str = "rev") -> tuple[list[dict], list[str]]:
    """One metric across history, grouped ``by`` ``rev`` or ``run``."""
    values = metric_values(store, name)
    if by == "run":
        return [
            {"run": v["run_key"][:12], "kind": v["kind"],
             "rev": v["rev"], "value": v["value"]}
            for v in values
        ], METRIC_COLUMNS["run"]
    if by != "rev":
        raise StoreError(f"unknown grouping {by!r}; known: rev, run")
    grouped: dict[str, dict] = {}
    order: list[str] = []
    for v in values:
        rev = v["rev"] or "unknown"
        if rev not in grouped:
            grouped[rev] = {"rev": rev, "runs": 0,
                            "latest": None, "best": None}
            order.append(rev)
        g = grouped[rev]
        g["runs"] += 1
        g["latest"] = v["value"]        # values arrive oldest-first
        g["best"] = v["value"] if g["best"] is None else \
            max(g["best"], v["value"])
    return [grouped[rev] for rev in order], METRIC_COLUMNS["rev"]


def cells_per_sec(store: ExperimentStore,
                  by: str = "rev") -> tuple[list[dict], list[str]]:
    """The headline throughput metric across history."""
    return metric_history(store, HEADLINE_METRIC, by=by)


# ------------------------------------------------------------------- runs

RUNS_COLUMNS = ["run", "kind", "rev", "cells", "cached", "simulated",
                "failed", "cells_per_sec", "source"]


def runs_overview(store: ExperimentStore) -> tuple[list[dict], list[str]]:
    """Every ingested run with its aggregate stats, oldest first."""
    rows = [dict(r) for r in store.sql(
        "SELECT r.run_key, r.kind, r.rev, r.source, s.cells, s.cached, "
        "s.simulated, s.failed, s.cells_per_sec "
        "FROM runs r LEFT JOIN run_stats s ON s.run_id = r.id "
        "ORDER BY r.created_unix, r.id")]
    for row in rows:
        row["run"] = row.pop("run_key")[:12]
    return rows, RUNS_COLUMNS


# ------------------------------------------------------------------ cells

CELLS_COLUMNS = ["workload", "cells", "cached", "failed",
                 "avg_wall_s", "max_wall_s"]


def cell_outcomes(store: ExperimentStore, workload: str | None = None,
                  ) -> tuple[list[dict], list[str]]:
    """Per-workload cell outcome aggregates across every ingested run."""
    where = "WHERE workload = ?" if workload else ""
    params = (workload,) if workload else ()
    rows = [dict(r) for r in store.sql(
        f"SELECT workload, COUNT(*) AS cells, SUM(cached) AS cached, "
        f"SUM(error IS NOT NULL) AS failed, AVG(wall_time) AS "
        f"avg_wall_s, MAX(wall_time) AS max_wall_s "
        f"FROM cells {where} GROUP BY workload ORDER BY workload",
        params)]
    return rows, CELLS_COLUMNS


# ------------------------------------------------------------------ stalls

STALL_COLUMNS = {
    "layer": ["layer", "traces", "iterations", "merge_steps", "stalls",
              "stall_share"],
    "rev": ["rev", "traces", "merge_steps", "stalls", "stall_share"],
    "workload": ["workload", "traces", "merge_steps", "stalls",
                 "stall_share"],
}


def stall_shares(store: ExperimentStore, by: str = "layer",
                 ) -> tuple[list[dict], list[str]]:
    """TMU merge-stall shares from ingested traces, grouped ``by``
    ``layer`` (track), ``rev``, or ``workload`` (the trace's recorded
    workload filter — per-kernel attribution for single-kernel
    traces)."""
    if by not in STALL_COLUMNS:
        raise StoreError(
            f"unknown grouping {by!r}; known: "
            f"{sorted(STALL_COLUMNS)}")
    raw = store.sql(
        "SELECT t.run_id, t.track, t.args, r.rev, r.meta "
        "FROM trace_summaries t JOIN runs r ON r.id = t.run_id "
        "WHERE t.name = 'layer_summary' "
        "ORDER BY r.created_unix, r.id, t.track")
    grouped: dict[str, dict] = {}
    order: list[str] = []
    for row in raw:
        args = json.loads(row["args"])
        if by == "layer":
            key = row["track"]
        elif by == "rev":
            key = row["rev"] or "unknown"
        else:
            key = json.loads(row["meta"]).get("workloads") or "all"
        if key not in grouped:
            grouped[key] = {by: key, "traces": set(), "iterations": 0,
                            "merge_steps": 0, "stalls": 0}
            order.append(key)
        g = grouped[key]
        g["traces"].add(row["run_id"])
        g["iterations"] += int(args.get("iterations", 0))
        g["merge_steps"] += int(args.get("merge_steps", 0))
        g["stalls"] += int(args.get("stall_advances", 0))
    rows = []
    for key in order:
        g = grouped[key]
        g["traces"] = len(g["traces"])
        g["stall_share"] = round(g["stalls"] / g["merge_steps"], 4) \
            if g["merge_steps"] else None
        if by != "layer":
            g.pop("iterations")
        rows.append(g)
    return rows, STALL_COLUMNS[by]


# ------------------------------------------------------------------ spans

SPAN_COLUMNS = ["span", "traces", "count", "mean", "p50", "p95", "max"]


def span_percentiles(store: ExperimentStore,
                     ) -> tuple[list[dict], list[str]]:
    """Span-duration percentiles from ingested traces (virtual ticks).

    The ingest layer stores one power-of-two duration histogram per
    (track, span name) per trace; this merges them across every
    ingested trace and reads p50/p95 off the merged shape.
    """
    raw = store.sql(
        "SELECT t.run_id, t.track, t.name, t.args "
        "FROM trace_summaries t JOIN runs r ON r.id = t.run_id "
        "WHERE t.name LIKE ? ORDER BY r.created_unix, r.id, t.track",
        (DURATION_PREFIX + "%",))
    merged: dict[str, Histogram] = {}
    traces: dict[str, set] = {}
    order: list[str] = []
    for row in raw:
        span = f"{row['track']}/{row['name'][len(DURATION_PREFIX):]}"
        if span not in merged:
            merged[span] = Histogram(span)
            traces[span] = set()
            order.append(span)
        merged[span].merge(json.loads(row["args"]))
        traces[span].add(row["run_id"])
    rows = []
    for span in sorted(order):
        h = merged[span]
        rows.append({
            "span": span, "traces": len(traces[span]),
            "count": h.count, "mean": round(h.mean, 4),
            "p50": round(h.quantile(0.5), 4),
            "p95": round(h.quantile(0.95), 4),
            "max": h.max if h.count else None,
        })
    return rows, SPAN_COLUMNS


# ------------------------------------------------------------- regressions

REGRESSION_COLUMNS = ["run", "kind", "rev", "value", "change", "status"]


def regressions(store: ExperimentStore, *,
                metric: str = HEADLINE_METRIC,
                baseline: str | None = None,
                bound: float = 0.2,
                lower_is_better: bool = False,
                ) -> tuple[list[dict], list[str], bool]:
    """Every run's ``metric`` against a baseline run; the CI gate.

    The baseline is the oldest run carrying the metric, or — with
    ``baseline`` given — the newest run of that rev (``best`` selects
    the best value seen).  Returns ``(rows, columns, ok)`` where
    ``ok`` is False when the *latest* run regressed beyond ``bound``
    (a fraction; 0.2 = 20%) — the newest result is what a gate
    protects.
    """
    values = metric_values(store, metric)
    if not values:
        raise StoreError(f"no run in {store.path} carries {metric!r}")
    better = min if lower_is_better else max
    if baseline is None:
        base = values[0]
    elif baseline == "best":
        base = better(values, key=lambda v: v["value"])
    else:
        matching = [v for v in values if v["rev"] == baseline]
        if not matching:
            raise StoreError(
                f"no run with rev {baseline!r} carries {metric!r}")
        base = matching[-1]
    rows = []
    ok = True
    for v in values:
        if base["value"]:
            change = (v["value"] - base["value"]) / base["value"]
            regressed = (-change if not lower_is_better else change) \
                > bound
        else:
            change, regressed = None, False
        if v["run_id"] == base["run_id"]:
            status = "baseline"
            regressed = False
        else:
            status = "REGRESSION" if regressed else "ok"
        rows.append({
            "run": v["run_key"][:12], "kind": v["kind"],
            "rev": v["rev"], "value": v["value"],
            "change": None if change is None else round(change, 4),
            "status": status,
        })
    if rows and rows[-1]["status"] == "REGRESSION":
        ok = False
    return rows, REGRESSION_COLUMNS, ok
