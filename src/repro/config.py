"""Architectural parameter dataclasses (paper Table 5).

The defaults model the evaluated system: 8 Neoverse-N1-like out-of-order
cores at 2.4 GHz, three cache levels, 4 HBM2e channels over a 4x4 mesh
NoC, and one 8-lane TMU per core with 2 KB of per-lane storage.

Two additional host presets (:func:`a64fx_like` and :func:`graviton3_like`)
reproduce the motivation study of Figure 3, which contrasts a
bandwidth-rich but OoO-weak HPC part against a cache-rich data-center
part.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import SimulationError


@dataclass(frozen=True)
class CacheConfig:
    """One cache level.

    ``latency`` is the data-access latency in cycles; ``mshrs`` bounds the
    number of outstanding misses (and therefore the memory-level
    parallelism the level can expose).
    """

    size_bytes: int
    ways: int
    latency: int
    mshrs: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise SimulationError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {self.line_bytes}B lines"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class CoreConfig:
    """An out-of-order core, in the terms the interval model needs."""

    name: str = "neoverse-n1-like"
    freq_ghz: float = 2.4
    commit_width: int = 4
    rob_entries: int = 224
    load_queue: int = 96
    store_queue: int = 96
    vector_bits: int = 512
    branch_miss_penalty: int = 14
    #: fraction of data-dependent branches the predictor still gets right.
    datadep_branch_accuracy: float = 0.5


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory: HBM2e channels with FR-FCFS-like behaviour."""

    channels: int = 4
    channel_gbps: float = 37.5
    latency_cycles: int = 110

    @property
    def total_gbps(self) -> float:
        return self.channels * self.channel_gbps


@dataclass(frozen=True)
class NocConfig:
    """2D mesh network-on-chip (AMBA 5 CHI-style)."""

    mesh_x: int = 4
    mesh_y: int = 4
    router_cycles: int = 1
    link_cycles: int = 1

    def average_hops(self) -> float:
        """Mean Manhattan distance between two uniformly random nodes."""
        nx, ny = self.mesh_x, self.mesh_y
        return (nx * nx - 1) / (3.0 * nx) + (ny * ny - 1) / (3.0 * ny)

    def average_latency(self) -> float:
        hops = self.average_hops()
        return hops * (self.router_cycles + self.link_cycles)


@dataclass(frozen=True)
class TMUConfig:
    """The TMU engine attached to each core (Table 5 bottom row)."""

    lanes: int = 8
    layers: int = 4
    per_lane_storage_bytes: int = 2048
    outstanding_requests: int = 128
    outq_chunk_bytes: int = 4096
    #: element width the TMU marshals (doubles).
    element_bytes: int = 8

    @property
    def total_storage_bytes(self) -> int:
        return self.lanes * self.per_lane_storage_bytes

    @property
    def vector_elems(self) -> int:
        """How many elements a full set of lanes packs into one operand."""
        return self.lanes


@dataclass(frozen=True)
class MachineConfig:
    """A full simulated machine: cores, caches, NoC, memory, and TMUs."""

    num_cores: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 4, 2, 32)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 8, 8, 64)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 * 1024 * 1024, 16, 12, 128)
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    tmu: TMUConfig = field(default_factory=TMUConfig)
    #: cache-model selection: True runs the vectorized simulators —
    #: :class:`repro.sim.fastcache.FastCache` for stateful batch
    #: lookups, and the stateless stack-distance pass
    #: (:mod:`repro.sim.stackdist`) for the hierarchy walk's cold-start
    #: whole-stream case — False the golden reference
    #: (:class:`repro.sim.cache.Cache`).  All are bit-for-bit
    #: hit/miss-equivalent; the flag is still part of the machine's
    #: identity, so cached experiment results from the two model
    #: families never collide.
    fast_cache: bool = True
    #: TMU-engine selection: True runs the structure-of-arrays lane
    #: engine (:mod:`repro.tmu.fastlane`), False the scalar golden
    #: reference loop.  Like ``fast_cache`` it is part of the machine's
    #: identity and therefore of every task's content hash, which is
    #: what carries the choice into pool workers.
    fast_engine: bool = True

    def with_tmu(self, **kwargs) -> "MachineConfig":
        """Return a copy with TMU parameters replaced."""
        return replace(self, tmu=replace(self.tmu, **kwargs))

    def with_core(self, **kwargs) -> "MachineConfig":
        """Return a copy with core parameters replaced."""
        return replace(self, core=replace(self.core, **kwargs))

    def memory_latency_cycles(self) -> float:
        """Average load-to-use latency of an LLC miss, in core cycles."""
        return (
            self.llc.latency
            + self.noc.average_latency()
            + self.memory.latency_cycles
        )

    def bytes_per_cycle(self) -> float:
        """Peak off-chip bandwidth expressed in bytes per core cycle,
        aggregated over the whole chip."""
        return self.memory.total_gbps / self.core.freq_ghz

    def bytes_per_cycle_per_core(self) -> float:
        """Fair share of off-chip bandwidth for one core."""
        return self.bytes_per_cycle() / self.num_cores


#: process-wide default for :attr:`MachineConfig.fast_cache`; flipped by
#: the CLI's ``--reference`` flag so every machine the drivers build
#: picks the requested cache model without threading a parameter
#: through each experiment.
_DEFAULT_FAST_CACHE = True

#: process-wide default for :attr:`MachineConfig.fast_engine`; flipped
#: together with the cache model by the CLI's ``--reference`` flag.
_DEFAULT_FAST_ENGINE = True


def set_default_fast_cache(fast: bool) -> None:
    """Select the cache model machines are built with by default."""
    global _DEFAULT_FAST_CACHE
    _DEFAULT_FAST_CACHE = bool(fast)


def default_fast_cache() -> bool:
    return _DEFAULT_FAST_CACHE


def set_default_fast_engine(fast: bool) -> None:
    """Select the TMU engine machines are built with by default."""
    global _DEFAULT_FAST_ENGINE
    _DEFAULT_FAST_ENGINE = bool(fast)


def default_fast_engine() -> bool:
    return _DEFAULT_FAST_ENGINE


def set_default_fast(fast: bool) -> None:
    """Flip every fast/reference model pair at once (the CLI's
    ``--fast``/``--reference`` switch)."""
    set_default_fast_cache(fast)
    set_default_fast_engine(fast)


def default_machine() -> MachineConfig:
    """The evaluated system of Table 5."""
    return MachineConfig(fast_cache=_DEFAULT_FAST_CACHE,
                         fast_engine=_DEFAULT_FAST_ENGINE)


def _scale_cache(cache: CacheConfig, divisor: int) -> CacheConfig:
    """Shrink a cache's capacity by ``divisor`` (latency and MSHRs are
    per-access core resources and stay put), flooring at four sets."""
    floor = cache.ways * cache.line_bytes * 4
    size = max(floor, cache.size_bytes // divisor)
    # round down to a power-of-two set count
    sets = size // (cache.ways * cache.line_bytes)
    sets = 1 << (sets.bit_length() - 1)
    return replace(cache, size_bytes=sets * cache.ways * cache.line_bytes)


def scale_caches(machine: MachineConfig, divisor: int) -> MachineConfig:
    """Return a copy of ``machine`` with cache capacities divided by
    ``divisor``.

    The paper's inputs are 10M+ non-zeros — far larger than the 8 MiB
    LLC.  The pure-Python simulation runs scaled-down inputs, so cache
    capacities must shrink by the same factor to preserve the
    footprint-to-capacity ratios that determine which operands fit
    where (e.g. whether SpMV's gathered vector is LLC-resident).  See
    DESIGN.md, substitution table.
    """
    if divisor < 1:
        raise SimulationError("cache scale divisor must be >= 1")
    return replace(
        machine,
        l1d=_scale_cache(machine.l1d, divisor),
        l2=_scale_cache(machine.l2, divisor),
        llc=_scale_cache(machine.llc, divisor),
    )


#: input-scale → cache divisor, mirroring generators.suite._SCALE_DIVISOR
CACHE_SCALE_DIVISOR = {"small": 256, "medium": 32, "paper": 1}


def experiment_machine(scale: str = "small",
                       base: MachineConfig | None = None) -> MachineConfig:
    """The Table 5 machine, cache-scaled to match an input-suite scale."""
    machine = base if base is not None else default_machine()
    try:
        divisor = CACHE_SCALE_DIVISOR[scale]
    except KeyError:
        raise SimulationError(
            f"unknown scale {scale!r}; pick from {sorted(CACHE_SCALE_DIVISOR)}"
        ) from None
    return scale_caches(machine, divisor)


def a64fx_like() -> MachineConfig:
    """Fujitsu A64FX-flavoured host for the Figure 3 motivation study.

    More bandwidth per core (1 TB/s for 48 cores), small caches, and a
    narrow out-of-order window.
    """
    return MachineConfig(
        num_cores=48,
        core=CoreConfig(
            name="a64fx-like",
            freq_ghz=2.2,
            commit_width=4,
            rob_entries=128,
            load_queue=40,
            store_queue=24,
            vector_bits=512,
            branch_miss_penalty=18,
            datadep_branch_accuracy=0.4,
        ),
        l1d=CacheConfig(64 * 1024, 4, 5, 16),
        l2=CacheConfig(8 * 1024 * 1024, 16, 37, 64),
        # A64FX has no L3; model a thin shared level mirroring the L2 slice
        # an individual core can effectively use.
        llc=CacheConfig(8 * 1024 * 1024, 16, 47, 64),
        memory=MemoryConfig(channels=32, channel_gbps=32.0, latency_cycles=140),
        noc=NocConfig(mesh_x=6, mesh_y=8),
        fast_cache=_DEFAULT_FAST_CACHE,
        fast_engine=_DEFAULT_FAST_ENGINE,
    )


def graviton3_like() -> MachineConfig:
    """AWS Graviton 3-flavoured host for the Figure 3 motivation study.

    Less bandwidth per core (300 GB/s for 64 cores) but beefier cores and
    much larger caches.
    """
    return MachineConfig(
        num_cores=64,
        core=CoreConfig(
            name="graviton3-like",
            freq_ghz=2.6,
            commit_width=8,
            rob_entries=512,
            load_queue=128,
            store_queue=72,
            vector_bits=256,
            branch_miss_penalty=12,
            datadep_branch_accuracy=0.55,
        ),
        l1d=CacheConfig(64 * 1024, 4, 4, 24),
        l2=CacheConfig(1024 * 1024, 8, 13, 48),
        llc=CacheConfig(32 * 1024 * 1024, 16, 31, 192),
        memory=MemoryConfig(channels=8, channel_gbps=37.5, latency_cycles=120),
        noc=NocConfig(mesh_x=8, mesh_y=8),
        fast_cache=_DEFAULT_FAST_CACHE,
        fast_engine=_DEFAULT_FAST_ENGINE,
    )
