"""Shared scalar types and small helpers used across the library."""

from __future__ import annotations

import numpy as np

#: dtype used for coordinate/index arrays throughout the library.
INDEX_DTYPE = np.int64

#: dtype used for non-zero values throughout the library.
VALUE_DTYPE = np.float64

#: Size in bytes of one index element as stored by the simulated machine.
#: The paper's kernels use 32-bit indexes and 64-bit pointers; we model a
#: uniform 4-byte index like TACO's default.
INDEX_BYTES = 4

#: Size in bytes of one value element (double precision).
VALUE_BYTES = 8

#: Cache line size of the simulated machine, in bytes.
CACHELINE_BYTES = 64


def as_index_array(data) -> np.ndarray:
    """Return ``data`` as a contiguous int64 numpy array."""
    return np.ascontiguousarray(np.asarray(data, dtype=INDEX_DTYPE))


def as_value_array(data) -> np.ndarray:
    """Return ``data`` as a contiguous float64 numpy array."""
    return np.ascontiguousarray(np.asarray(data, dtype=VALUE_DTYPE))


def geomean(values) -> float:
    """Geometric mean of a sequence of positive numbers.

    Returns ``nan`` for an empty sequence, mirroring ``numpy.mean``.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    if np.any(arr <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))
