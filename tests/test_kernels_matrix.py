"""Matrix-kernel correctness tests against dense numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.fibers.fiber import Fiber
from repro.generators import uniform_random_matrix
from repro.kernels import (
    spadd,
    spkadd,
    split_rows_cyclic,
    spmm,
    spmspm,
    spmspv,
    spmv,
)
from repro.kernels.spadd import spadd_numpy
from repro.kernels.spmspm import spmspm_symbolic
from repro.kernels.spmspv import spmspv_numpy


class TestSpmv:
    def test_matches_dense(self, small_csr, rng):
        b = rng.random(small_csr.num_cols)
        assert np.allclose(spmv(small_csr, b),
                           small_csr.to_dense() @ b)

    def test_empty_rows_produce_zero(self, figure1_matrix, rng):
        from repro.formats.convert import coo_to_csr

        csr = coo_to_csr(figure1_matrix)
        out = spmv(csr, rng.random(4))
        assert out[2] == 0.0

    def test_dimension_check(self, small_csr):
        with pytest.raises(WorkloadError):
            spmv(small_csr, np.zeros(small_csr.num_cols + 1))

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_random(self, seed):
        a = uniform_random_matrix(17, 13, 3, seed=seed)
        b = np.random.default_rng(seed).random(13)
        assert np.allclose(spmv(a, b), a.to_dense() @ b)


class TestSpmm:
    def test_matches_dense(self, small_csr, rng):
        b = rng.random((small_csr.num_cols, 9))
        assert np.allclose(spmm(small_csr, b),
                           small_csr.to_dense() @ b)

    def test_dimension_check(self, small_csr):
        with pytest.raises(WorkloadError):
            spmm(small_csr, np.zeros((small_csr.num_cols + 1, 3)))


class TestSpmspv:
    def test_matches_numpy_variant(self, small_csr, rng):
        idx = np.sort(rng.choice(small_csr.num_cols, 8, replace=False))
        sv = Fiber(idx, rng.random(8))
        assert np.allclose(spmspv(small_csr, sv),
                           spmspv_numpy(small_csr, sv))

    def test_out_of_range_vector(self, small_csr):
        sv = Fiber([small_csr.num_cols + 5], [1.0])
        with pytest.raises(WorkloadError):
            spmspv(small_csr, sv)


class TestSpmspm:
    def test_matches_dense(self, small_csr):
        b = small_csr.transpose()
        z = spmspm(small_csr, b)
        assert np.allclose(z.to_dense(),
                           small_csr.to_dense() @ b.to_dense())

    def test_output_rows_sorted(self, small_csr):
        z = spmspm(small_csr, small_csr.transpose())
        for i in range(z.num_rows):
            idxs, _ = z.row(i)
            assert np.all(np.diff(idxs) > 0)

    def test_symbolic_counts_match_numeric(self, small_csr):
        b = small_csr.transpose()
        counts = spmspm_symbolic(small_csr, b)
        z = spmspm(small_csr, b)
        assert np.array_equal(counts, z.row_nnz())

    def test_dimension_check(self, small_csr):
        bad = uniform_random_matrix(small_csr.num_cols + 1, 4, 2, seed=1)
        with pytest.raises(WorkloadError):
            spmspm(small_csr, bad)

    @given(st.integers(0, 40))
    @settings(max_examples=12, deadline=None)
    def test_random(self, seed):
        a = uniform_random_matrix(12, 10, 3, seed=seed)
        b = uniform_random_matrix(10, 14, 3, seed=seed + 1)
        z = spmspm(a, b)
        assert np.allclose(z.to_dense(), a.to_dense() @ b.to_dense())


class TestSpadd:
    def test_matches_dense(self, small_csr):
        b = uniform_random_matrix(*small_csr.shape,
                                  nnz_per_row=4, seed=9)
        z = spadd(small_csr, b)
        assert np.allclose(z.to_dense(),
                           small_csr.to_dense() + b.to_dense())

    def test_matches_numpy_variant(self, small_csr):
        b = uniform_random_matrix(*small_csr.shape,
                                  nnz_per_row=4, seed=9)
        assert spadd(small_csr, b) == spadd_numpy(small_csr, b)

    def test_shape_check(self, small_csr):
        bad = uniform_random_matrix(5, 5, 2, seed=1)
        with pytest.raises(WorkloadError):
            spadd(small_csr, bad)


class TestSpkadd:
    def test_split_partition_is_exact(self, small_csr):
        parts = split_rows_cyclic(small_csr, 4)
        assert sum(p.nnz for p in parts) == small_csr.nnz
        # row i*k+x of the source equals row i of part x
        src = small_csr.to_dense()
        for x, part in enumerate(parts):
            d = part.to_dense()
            for i in range(part.num_rows):
                orig = i * 4 + x
                if orig < small_csr.num_rows:
                    assert np.allclose(d[i], src[orig])

    def test_sum_matches_dense(self, small_csr):
        parts = split_rows_cyclic(small_csr, 3)
        z = spkadd(parts)
        expected = sum(p.to_dense() for p in parts)
        assert np.allclose(z.to_dense(), expected)

    def test_k1_is_identity(self, small_csr):
        parts = split_rows_cyclic(small_csr, 1)
        z = spkadd(parts)
        assert np.allclose(z.to_dense(), small_csr.to_dense())

    def test_requires_inputs(self):
        with pytest.raises(WorkloadError):
            spkadd([])

    def test_invalid_k(self, small_csr):
        with pytest.raises(WorkloadError):
            split_rows_cyclic(small_csr, 0)
