"""Scheduler behaviour: execution, dedup, supervision, resume.

The expensive paths (real simulations) use the smallest sweep in the
suite — ``spmv`` on ``M1`` (two variants).  The failure-injection
paths swap in fake runtimes via ``runtime_factory``, which is exactly
the seam the server uses, so the supervision logic under test is the
production code path.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.runtime import ResultCache, RunManifest, RunReport, TaskOutcome
from repro.serve import (
    Job,
    JobQueue,
    JobState,
    JobStore,
    QuotaError,
    Scheduler,
    Submission,
)


def submission(workloads=("spmv",), inputs=("M1", "M2"), **kw):
    return Submission.from_dict({
        "sweep": {"workloads": list(workloads), "inputs": list(inputs)},
        **kw,
    })


def wait_terminal(store: JobStore, job_id: str, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = store.get(job_id)
        if job is not None and job.state.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id[:12]} never finished: "
                         f"{store.get(job_id)}")


def fake_report(tasks) -> RunReport:
    outcomes = [
        TaskOutcome(task=t, record={"fake": True}, cached=False,
                    wall_time=0.0, attempts=1)
        for t in tasks
    ]
    return RunReport(outcomes=outcomes,
                     manifest=RunManifest(jobs=1, mode="serial"))


class FakeRuntime:
    def run(self, tasks):
        return fake_report(tasks)


class BlockingRuntime:
    """Signals ``started`` at the first batch, then holds every batch
    until ``release`` is set."""

    def __init__(self, started: threading.Event,
                 release: threading.Event) -> None:
        self.started = started
        self.release = release

    def run(self, tasks):
        self.started.set()
        assert self.release.wait(30), "test never released the runtime"
        return fake_report(tasks)


@pytest.fixture
def parts(tmp_path):
    store = JobStore(tmp_path / "jobs")
    queue = JobQueue(quota=8)
    cache = ResultCache(tmp_path / "cache")
    return store, queue, cache


def run_scheduler(scheduler):
    """Context manager that always stops the worker threads."""
    class _Ctx:
        def __enter__(self):
            scheduler.start()
            return scheduler

        def __exit__(self, *exc):
            scheduler.stop()
    return _Ctx()


class TestExecution:
    def test_submit_runs_to_done(self, parts):
        store, queue, cache = parts
        sched = Scheduler(store, queue, cache=cache)
        with run_scheduler(sched):
            job, created = sched.submit(submission())
            assert created and job.state is JobState.PENDING
            job = wait_terminal(store, job.id)
        assert job.state is JobState.DONE
        assert job.completed == job.total == 2
        assert job.simulated == 2 and job.cached == 0
        records = cache.get_many(job.cells)
        assert all(records[h] is not None for h in job.cells)
        events = {e["event"] for e in store.events(job.id)}
        assert {"submitted", "started", "progress", "done"} <= events

    def test_resubmit_of_done_job_is_free(self, parts):
        store, queue, cache = parts
        sched = Scheduler(store, queue, cache=cache)
        with run_scheduler(sched):
            job, created = sched.submit(submission())
            job = wait_terminal(store, job.id)
            again, created = sched.submit(submission(client="other"))
        assert created is False
        assert again.id == job.id and again.state is JobState.DONE
        # nothing was queued for it, so no quota was consumed
        assert queue.active("other") == 0

    def test_warm_cache_serves_restarted_service(self, parts, tmp_path):
        # simulate a wiped job journal but a surviving result cache:
        # the same sweep re-runs as 100% cache hits
        store, queue, cache = parts
        sched = Scheduler(store, queue, cache=cache)
        with run_scheduler(sched):
            first, _ = sched.submit(submission())
            wait_terminal(store, first.id)
        store2 = JobStore(tmp_path / "jobs2")
        sched2 = Scheduler(store2, JobQueue(), cache=cache)
        with run_scheduler(sched2):
            job, created = sched2.submit(submission())
            assert created  # new journal has never seen the job...
            job = wait_terminal(store2, job.id)
        assert job.id == first.id  # ...but the id is content-addressed
        assert job.cached == job.total and job.simulated == 0


class TestSupervision:
    def test_worker_death_requeues_then_succeeds(self, parts):
        store, queue, cache = parts
        calls = {"n": 0}

        def flaky_factory(progress):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected worker crash")
            return FakeRuntime()

        sched = Scheduler(store, queue, cache=cache,
                          runtime_factory=flaky_factory, max_requeues=1)
        with run_scheduler(sched):
            job, _ = sched.submit(submission())
            job = wait_terminal(store, job.id)
        assert job.state is JobState.DONE
        assert job.requeues == 1
        events = [e["event"] for e in store.events(job.id)]
        assert "requeued" in events

    def test_requeue_budget_exhausts_to_failed(self, parts):
        store, queue, cache = parts

        def dead_factory(progress):
            raise RuntimeError("always crashes")

        sched = Scheduler(store, queue, cache=cache,
                          runtime_factory=dead_factory, max_requeues=1)
        with run_scheduler(sched):
            job, _ = sched.submit(submission())
            job = wait_terminal(store, job.id)
        assert job.state is JobState.FAILED
        assert "worker died" in job.error

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_supervisor_respawns_dead_worker_thread(self, parts):
        # SystemExit is not an Exception: the worker loop requeues the
        # job, then re-raises and the thread dies.  The job can only
        # finish if the supervisor replaces the thread.
        store, queue, cache = parts
        calls = {"n": 0}

        def exit_factory(progress):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SystemExit("thread killed")
            return FakeRuntime()

        sched = Scheduler(store, queue, cache=cache,
                          runtime_factory=exit_factory, max_requeues=1)
        with run_scheduler(sched):
            job, _ = sched.submit(submission())
            job = wait_terminal(store, job.id)
        assert job.state is JobState.DONE
        assert calls["n"] == 2

    def test_quota_rejection_leaves_no_trace(self, parts):
        store, _, cache = parts
        queue = JobQueue(quota=1)
        sched = Scheduler(store, queue, cache=cache)  # not started
        first, _ = sched.submit(submission())
        blocked = submission(workloads=("spkadd",), client="anon")
        with pytest.raises(QuotaError):
            sched.submit(blocked)
        from repro.serve import job_id_for
        assert store.get(job_id_for(blocked.tasks)) is None
        assert store.get(first.id) is not None  # accepted job untouched


class TestCancellation:
    def test_cancel_pending_job(self, parts):
        store, queue, cache = parts
        sched = Scheduler(store, queue, cache=cache)  # workers not started
        job, _ = sched.submit(submission())
        cancelled = sched.cancel(job.id)
        assert cancelled.state is JobState.CANCELLED
        assert queue.active(job.client) == 0  # quota slot released
        # a resubmit re-opens it
        again, created = sched.submit(submission())
        assert again.id == job.id and created is False
        assert again.state is JobState.PENDING

    def test_cancel_while_running_stops_at_batch_boundary(self, parts):
        store, queue, cache = parts
        started, release = threading.Event(), threading.Event()

        sched = Scheduler(
            store, queue, cache=cache, batch_size=1,
            runtime_factory=lambda p: BlockingRuntime(started, release))
        with run_scheduler(sched):
            job, _ = sched.submit(submission())  # 2 cells, 2 batches
            assert started.wait(10)              # batch 1 in flight
            sched.cancel(job.id)
            release.set()
            job = wait_terminal(store, job.id)
        assert job.state is JobState.CANCELLED
        assert job.completed == 1 and job.total == 2
        events = store.events(job.id)
        assert events[-1]["event"] == "cancelled"
        assert "while running" in events[-1]["message"]


class TestRestartResume:
    def test_recover_finishes_interrupted_job_from_cache(
            self, parts, tmp_path):
        """A server killed mid-job must resume without re-simulating
        the cells it already completed (the acceptance criterion)."""
        store, queue, cache = parts
        # half the sweep (spmv x {M1, M2}, 2 cells) is already in the
        # cache, as it would be after the journal flushed a batch
        warm = Scheduler(store, queue, cache=cache)
        with run_scheduler(warm):
            done, _ = warm.submit(submission(inputs=("M1", "M2")))
            wait_terminal(store, done.id)

        # the "crashed server": a journal holding the full 4-cell job
        # (spmv x {M1..M4}) stuck in RUNNING
        full = submission(inputs=("M1", "M2", "M3", "M4"))
        from repro.serve import job_id_for
        job = Job(
            id=job_id_for(full.tasks),
            sweep=full.sweep.as_dict(),
            cells=[t.content_hash() for t in full.tasks],
        )
        job.advance(JobState.RUNNING)
        job.completed = job.simulated = 2
        store2 = JobStore(tmp_path / "jobs-after-crash")
        store2.put(job)

        # restart: recover() requeues it, the run serves the finished
        # half from cache and simulates only the other half
        sched = Scheduler(store2, JobQueue(), cache=cache)
        assert sched.recover() == 1
        with run_scheduler(sched):
            revived = wait_terminal(store2, job.id)
        assert revived.state is JobState.DONE
        assert revived.requeues == 1
        assert revived.total == 4
        assert revived.cached == 2 and revived.simulated == 2


class TestTelemetry:
    def test_finished_job_carries_obs_snapshot(self, parts):
        store, queue, cache = parts
        sched = Scheduler(store, queue, cache=cache,
                          runtime_factory=lambda p: FakeRuntime())
        with obs.capture():
            with run_scheduler(sched):
                job, _ = sched.submit(submission())
                job = wait_terminal(store, job.id)
            snap = obs.snapshot()
        assert job.telemetry is not None
        assert job.telemetry["schema"] == "repro.obs/1"
        assert job.telemetry["meta"]["job"] == job.id
        assert "serve.queue_depth" in snap["gauges"]
        assert "serve.client.anon.cells" in snap["counters"]
