"""Tests for the CSR format (Figure 1b)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.convert import coo_to_csr
from repro.formats.csr import CsrMatrix


@pytest.fixture
def figure1_csr(figure1_matrix):
    return coo_to_csr(figure1_matrix)


class TestFigure1:
    """The exact arrays the paper's Figure 1b shows."""

    def test_row_ptrs(self, figure1_csr):
        assert figure1_csr.ptrs.tolist() == [0, 1, 2, 2, 4]

    def test_col_idxs(self, figure1_csr):
        assert figure1_csr.idxs.tolist() == [0, 2, 1, 3]

    def test_vals(self, figure1_csr):
        assert figure1_csr.vals.tolist() == [1.0, 2.0, 3.0, 4.0]


class TestValidation:
    def test_bad_ptr_length(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])

    def test_ptrs_must_start_at_zero(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [1, 1, 1], [], [])

    def test_ptrs_must_be_monotonic(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_last_ptr_must_cover_nnz(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [0, 1, 1], [0, 1], [1.0, 2.0])

    def test_column_out_of_bounds(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [0, 1, 1], [5], [1.0])

    def test_unsorted_columns_in_row(self):
        with pytest.raises(FormatError):
            CsrMatrix((1, 4), [0, 2], [2, 1], [1.0, 2.0])

    def test_duplicate_columns_in_row(self):
        with pytest.raises(FormatError):
            CsrMatrix((1, 4), [0, 2], [1, 1], [1.0, 2.0])


class TestOperations:
    def test_row_access(self, figure1_csr):
        idxs, vals = figure1_csr.row(3)
        assert idxs.tolist() == [1, 3]
        assert vals.tolist() == [3.0, 4.0]

    def test_row_slice(self, figure1_csr):
        assert figure1_csr.row_slice(2) == (2, 2)  # empty row

    def test_row_nnz(self, figure1_csr):
        assert figure1_csr.row_nnz().tolist() == [1, 1, 0, 2]

    def test_transpose_matches_numpy(self, small_csr):
        t = small_csr.transpose()
        assert np.allclose(t.to_dense(), small_csr.to_dense().T)

    def test_transpose_keeps_sorted_rows(self, small_csr):
        t = small_csr.transpose()
        for i in range(t.num_rows):
            idxs, _ = t.row(i)
            assert np.all(np.diff(idxs) > 0)

    def test_dense_round_trip(self, small_csr):
        again = CsrMatrix.from_dense(small_csr.to_dense())
        assert again == small_csr

    def test_nbytes(self, figure1_csr):
        expected = 5 * 4 + 4 * (4 + 8)
        assert figure1_csr.nbytes() == expected
