"""Table 4 completeness: every kernel's TMU program computes the same
result as its golden software kernel, on the functional engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TMUConfig
from repro.fibers.fiber import Fiber
from repro.formats.convert import coo_to_csf
from repro.generators import uniform_random_matrix, uniform_random_tensor
from repro.kernels import (
    split_rows_cyclic,
    sptc_symbolic,
    spttm,
    spttv,
    triangle_count,
)
from repro.kernels.triangle import lower_triangle
from repro.programs import (
    build_mttkrp_program,
    build_spkadd_program,
    build_spmm_program,
    build_spmspm_program,
    build_spmspv_program,
    build_spmv_program,
    build_sptc_program,
    build_spttm_program,
    build_spttv_program,
    build_triangle_program,
)
from repro.tmu import TmuEngine


def run(built):
    engine = TmuEngine(built.program)
    stats = engine.run(built.handlers)
    return built.result(), stats, engine


@pytest.fixture
def matrix():
    return uniform_random_matrix(30, 30, 4, seed=13)


@pytest.fixture
def vector(rng, matrix):
    return rng.random(matrix.num_cols)


class TestSpmvVariants:
    @pytest.mark.parametrize("lanes", [1, 2, 4, 8])
    def test_lanes_invariant(self, matrix, vector, lanes):
        """P0 (lanes=1) and P1 (multi-lane) produce identical results."""
        built = build_spmv_program(matrix, vector, lanes=lanes)
        out, stats, _ = run(built)
        assert np.allclose(out, matrix.to_dense() @ vector)
        # layer 1 touches every non-zero exactly once, any lane count
        assert stats.layer_iterations[1] == matrix.nnz

    def test_outq_and_callbacks(self, matrix, vector):
        built = build_spmv_program(matrix, vector, lanes=2)
        _, stats, _ = run(built)
        assert stats.callback_counts["re"] == matrix.num_rows
        expected_ri = int(np.sum(-(-matrix.row_nnz() // 2)))
        assert stats.callback_counts["ri"] == expected_ri
        assert stats.outq_records == expected_ri + matrix.num_rows
        assert stats.outq_bytes > 0

    def test_memory_requests_cover_operands(self, matrix, vector):
        built = build_spmv_program(matrix, vector, lanes=2)
        _, stats, engine = run(built)
        # every idx/val element touched once; gathers at least once
        assert stats.memory_touches >= 3 * matrix.nnz
        assert stats.memory_lines > 0

    @given(st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_random_matrices(self, seed):
        a = uniform_random_matrix(15, 15, 3, seed=seed)
        b = np.random.default_rng(seed).random(15)
        built = build_spmv_program(a, b, lanes=2)
        out, _, _ = run(built)
        assert np.allclose(out, a.to_dense() @ b)


class TestOtherKernels:
    def test_spmspv(self, matrix, rng):
        idx = np.sort(rng.choice(matrix.num_cols, 7, replace=False))
        sv = Fiber(idx, rng.random(7))
        built = build_spmspv_program(matrix, sv)
        out, _, _ = run(built)
        assert np.allclose(out,
                           matrix.to_dense() @ sv.to_dense(matrix.num_cols))

    def test_spmm(self, matrix, rng):
        b = rng.random((matrix.num_cols, 5))
        built = build_spmm_program(matrix, b, lanes=2)
        out, _, _ = run(built)
        assert np.allclose(out, matrix.to_dense() @ b)

    def test_spmspm(self, matrix):
        at = matrix.transpose()
        built = build_spmspm_program(matrix, at, lanes=2)
        out, _, _ = run(built)
        assert np.allclose(out.to_dense(),
                           matrix.to_dense() @ at.to_dense())

    def test_spkadd(self, matrix):
        parts = split_rows_cyclic(matrix, 4)
        built = build_spkadd_program(parts)
        out, stats, _ = run(built)
        assert np.allclose(out.to_dense(),
                           sum(p.to_dense() for p in parts))
        # both layers merge: gites recorded
        assert stats.layer_merge_steps[0] > 0
        assert stats.layer_merge_steps[1] > 0

    def test_triangle(self):
        g = uniform_random_matrix(40, 40, 5, seed=21)
        lt = lower_triangle(g)
        built = build_triangle_program(lt)
        out, _, _ = run(built)
        assert out == triangle_count(lt)

    def test_mttkrp(self, rng):
        t = uniform_random_tensor((10, 8, 6), 120, seed=5)
        b = rng.random((8, 4))
        c = rng.random((6, 4))
        built = build_mttkrp_program(t, b, c)
        out, _, _ = run(built)
        ref = np.einsum("ikl,kj,lj->ij", t.to_dense(), b, c)
        assert np.allclose(out, ref)

    def test_spttv(self, rng):
        csf = coo_to_csf(uniform_random_tensor((9, 8, 7), 100, seed=6))
        v = rng.random(7)
        built = build_spttv_program(csf, v)
        out, _, _ = run(built)
        assert out == pytest.approx(spttv(csf, v))

    def test_spttm(self, rng):
        csf = coo_to_csf(uniform_random_tensor((9, 8, 7), 100, seed=6))
        m = rng.random((7, 3))
        built = build_spttm_program(csf, m)
        out, _, _ = run(built)
        ref = spttm(csf, m)
        assert set(out) == set(ref)
        for key in ref:
            assert np.allclose(out[key], ref[key])

    def test_sptc(self):
        ta = coo_to_csf(uniform_random_tensor((8, 7, 6), 90, seed=7))
        tb = coo_to_csf(uniform_random_tensor((6, 7, 9), 90, seed=8))
        built = build_sptc_program(ta, tb)
        out, _, _ = run(built)
        assert np.array_equal(out, sptc_symbolic(ta, tb))


class TestEngineConstraints:
    def test_program_wider_than_engine_rejected(self, matrix, vector):
        from repro.errors import TMUConfigError

        built = build_spmv_program(matrix, vector, lanes=4)
        with pytest.raises(TMUConfigError):
            TmuEngine(built.program, TMUConfig(lanes=2))

    def test_queue_sizing_attached(self, matrix, vector):
        built = build_spmv_program(matrix, vector, lanes=2)
        _, stats, _ = run(built)
        assert stats.queue_sizing is not None
        assert stats.queue_sizing.utilization > 0.5

    def test_results_independent_of_chunk_size(self, matrix, vector):
        built1 = build_spmv_program(matrix, vector, lanes=2)
        eng1 = TmuEngine(built1.program,
                         TMUConfig(outq_chunk_bytes=256))
        eng1.run(built1.handlers)
        out1 = built1.result()
        built2 = build_spmv_program(matrix, vector, lanes=2)
        eng2 = TmuEngine(built2.program,
                         TMUConfig(outq_chunk_bytes=16384))
        eng2.run(built2.handlers)
        assert np.allclose(out1, built2.result())
