"""Cross-validation: the functional engine's measured statistics must
agree with the fast analytic timing models on the same inputs.

This is the test that licenses running experiments on the analytic
path: if iteration counts, merge steps, and outQ records match the
exact dataflow execution, the timing models describe the hardware the
functional model implements.
"""

import numpy as np
import pytest

from repro.config import default_machine
from repro.generators import uniform_random_matrix
from repro.kernels import split_rows_cyclic
from repro.kernels.triangle import lower_triangle
from repro.programs import (
    build_spkadd_program,
    build_spmv_program,
    build_triangle_program,
    spkadd_timing_model,
    spmv_timing_model,
    triangle_timing_model,
)
from repro.tmu import TmuEngine


@pytest.fixture(scope="module")
def machine():
    # 512-bit SVE -> 8-lane analytic models; functional programs are
    # built with the same lane counts below.
    return default_machine()


@pytest.fixture(params=[False, True], ids=["reference", "fastlane"])
def fast(request):
    """Cross-validation must hold for both functional engines — the
    scalar reference and the SoA fast lane."""
    return request.param


class TestSpmv:
    def test_counts_agree(self, machine, fast):
        a = uniform_random_matrix(40, 40, 5, seed=17)
        b = np.random.default_rng(0).random(40)
        lanes = machine.core.vector_bits // 64
        built = build_spmv_program(a, b, lanes=lanes)
        stats = TmuEngine(built.program, fast=fast).run(built.handlers)
        model = spmv_timing_model(a, machine)

        # layer elements: rows then nnz
        assert stats.layer_iterations == model.layer_elements
        # outQ records: lockstep steps + row ends
        assert stats.outq_records == model.outq_records
        # traversal bytes agree at line granularity within dedup noise
        model_bytes = sum(s.bytes for s in model.tmu_streams)
        assert stats.memory_touches * 4 <= model_bytes * 2.5
        assert stats.outq_bytes == pytest.approx(model.outq_bytes,
                                                 rel=0.05)

    def test_flops_agree(self, machine):
        a = uniform_random_matrix(40, 40, 5, seed=18)
        model = spmv_timing_model(a, machine)
        assert model.core_trace.flops == 2.0 * a.nnz


class TestSpkadd:
    def test_merge_steps_agree(self, machine, fast):
        a = uniform_random_matrix(48, 48, 5, seed=19)
        parts = split_rows_cyclic(a, 8)
        built = build_spkadd_program(parts)
        stats = TmuEngine(built.program, fast=fast).run(built.handlers)
        model = spkadd_timing_model(parts, machine)

        functional_merges = sum(stats.layer_merge_steps)
        assert functional_merges == model.merge_steps
        assert stats.outq_records == model.outq_records

    def test_layer_elements_agree(self, machine, fast):
        a = uniform_random_matrix(48, 48, 5, seed=20)
        parts = split_rows_cyclic(a, 8)
        built = build_spkadd_program(parts)
        stats = TmuEngine(built.program, fast=fast).run(built.handlers)
        model = spkadd_timing_model(parts, machine)
        assert stats.layer_iterations == model.layer_elements


class TestTriangle:
    def test_hit_records_agree(self, machine, fast):
        g = uniform_random_matrix(40, 40, 6, seed=21)
        lt = lower_triangle(g)
        built = build_triangle_program(lt)
        stats = TmuEngine(built.program, fast=fast).run(built.handlers)
        model = triangle_timing_model(lt, machine)
        # model records = hits + per-edge bookkeeping
        hits = stats.callback_counts.get("hit", 0)
        assert model.outq_records == hits + lt.nnz

    def test_merge_work_bounds(self, machine, fast):
        """The analytic merge-element estimate upper-bounds the
        functional engine's actual merge consumption (the estimate
        assumes full rescans; conjunctions stop early)."""
        g = uniform_random_matrix(40, 40, 6, seed=22)
        lt = lower_triangle(g)
        built = build_triangle_program(lt)
        stats = TmuEngine(built.program, fast=fast).run(built.handlers)
        model = triangle_timing_model(lt, machine)
        functional = stats.layer_iterations[2]
        estimate = model.layer_elements[2]
        assert functional <= estimate
        assert functional >= estimate * 0.2
