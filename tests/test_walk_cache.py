"""The two-tier persistent walk cache: correctness under eviction,
disk round-trips, and telemetry.

The memory tier's LRU eviction replaced a wholesale ``clear()`` at
capacity; the regression tests here prove an eviction (or a full
churn past capacity) never changes any profile — an evicted walk is
recomputed, bit-identically, because the walk is a pure function of
geometry and stream content.
"""

import json
from dataclasses import asdict

import numpy as np
import pytest

from repro import obs, runtime
from repro.config import MachineConfig
from repro.runtime.cache import WalkStore
from repro.sim.memsys import (
    MemoryHierarchy,
    WalkCache,
    _decode_walk,
    _encode_walk,
    _walk_digest,
    configure_walk_store,
    llc_only_profile,
    walk_cache,
)
from repro.sim.trace import AccessStream, KernelTrace


def _trace(seed: int, n: int = 3000) -> KernelTrace:
    rng = np.random.default_rng(seed)
    return KernelTrace(name=f"t{seed}", streams=[
        AccessStream(addresses=rng.integers(0, 1 << 20, n) * 8,
                     elem_bytes=8, label="a"),
        AccessStream(addresses=np.arange(n) * 8, elem_bytes=8,
                     kind="write", label="b"),
    ])


def _profiles(trace: KernelTrace, machine: MachineConfig) -> list[dict]:
    return [asdict(sp)
            for sp in MemoryHierarchy(machine).profile(trace).streams]


@pytest.fixture(autouse=True)
def _isolated_walk_cache():
    """Each test gets a cleared process cache with no disk tier."""
    wc = walk_cache()
    saved_store, saved_capacity = wc.store, wc.capacity
    wc.clear()
    wc.store = None
    wc.hits = wc.disk_hits = wc.misses = wc.evictions = 0
    try:
        yield wc
    finally:
        wc.clear()
        wc.store = saved_store
        wc.capacity = saved_capacity


class TestMemoryTierLRU:
    def test_eviction_never_changes_results(self, _isolated_walk_cache):
        """Regression for the old clear-all behaviour: churn 3x the
        capacity through the cache, then recompute everything — every
        profile must match its pre-eviction value even though the early
        entries were evicted and re-simulated."""
        wc = _isolated_walk_cache
        wc.capacity = 4
        machine = MachineConfig()
        traces = [_trace(seed, n=800) for seed in range(12)]
        first = [_profiles(t, machine) for t in traces]
        assert len(wc) <= wc.capacity
        assert wc.evictions > 0
        second = [_profiles(t, machine) for t in traces]
        assert first == second

    def test_lru_keeps_recently_used(self, _isolated_walk_cache):
        wc = _isolated_walk_cache
        wc.capacity = 3
        machine = MachineConfig()
        hot = _trace(0, n=500)
        _profiles(hot, machine)
        for seed in range(1, 3):
            _profiles(_trace(seed, n=500), machine)
            _profiles(hot, machine)  # keep hot at the MRU end
        hits_before = wc.hits
        _profiles(_trace(3, n=500), machine)  # evicts an LRU entry
        _profiles(hot, machine)
        assert wc.hits > hits_before  # hot survived the eviction

    def test_fingerprint_collision_is_verified(self, _isolated_walk_cache):
        """A key collision must fall through to a miss, not serve the
        colliding entry's value."""
        wc = _isolated_walk_cache
        a = [AccessStream(addresses=np.arange(10) * 64, elem_bytes=8)]
        b = [AccessStream(addresses=np.arange(10)[::-1].copy() * 64,
                          elem_bytes=8)]
        wc.put(("k",), a, (["va"], [(1, 1)]))
        assert wc.lookup(("k",), a) is not None
        assert wc.lookup(("k",), b) is None
        # both variants live under the same key afterwards
        wc.put(("k",), b, (["vb"], [(2, 2)]))
        assert wc.lookup(("k",), a)[0] == ["va"]
        assert wc.lookup(("k",), b)[0] == ["vb"]


class TestDiskTier:
    def test_round_trip_and_promotion(self, tmp_path,
                                      _isolated_walk_cache):
        wc = _isolated_walk_cache
        wc.store = WalkStore(tmp_path / "walks")
        machine = MachineConfig()
        trace = _trace(1)
        first = _profiles(trace, machine)
        assert len(wc.store) > 0
        # fresh process: memory tier gone, disk tier intact
        wc.clear()
        wc.hits = wc.disk_hits = wc.misses = 0
        assert _profiles(trace, machine) == first
        assert wc.disk_hits == 1 and wc.misses == 0
        # promoted: the next lookup hits memory
        assert _profiles(trace, machine) == first
        assert wc.hits >= 1

    def test_warm_session_hit_rate_above_90pct(self, tmp_path,
                                               _isolated_walk_cache):
        """The acceptance demo: a second session over the same sweep
        (memory tier cold, disk tier warm) must show > 90% walk-cache
        hit rate in the published telemetry."""
        wc = _isolated_walk_cache
        wc.store = WalkStore(tmp_path / "walks")
        machine = MachineConfig()
        traces = [_trace(seed, n=600) for seed in range(12)]
        for t in traces:
            _profiles(t, machine)
            llc_only_profile(machine, t.streams)
        wc.clear()
        wc.hits = wc.disk_hits = wc.misses = 0
        with obs.capture() as registry:
            for t in traces:
                _profiles(t, machine)
                llc_only_profile(machine, t.streams)
        lookups = wc.hits + wc.disk_hits + wc.misses
        assert (wc.hits + wc.disk_hits) / lookups > 0.9
        gauges = registry.as_dict()["gauges"]
        assert gauges["sim.memsys.walk_cache.hit_rate"]["value"] > 0.9

    def test_corrupt_record_degrades_to_miss(self, tmp_path,
                                             _isolated_walk_cache):
        wc = _isolated_walk_cache
        wc.store = WalkStore(tmp_path / "walks")
        machine = MachineConfig()
        trace = _trace(2)
        first = _profiles(trace, machine)
        for path in wc.store.root.glob("*.json"):
            path.write_text("{not json", encoding="utf-8")
        wc.clear()
        assert _profiles(trace, machine) == first  # re-simulated
        assert wc.disk_hits == 0

    def test_schema_mismatch_misses(self, tmp_path):
        store = WalkStore(tmp_path / "walks")
        digest = "ab" * 32
        store.save(digest, {"schema": "repro.walk/0", "profiles": [],
                            "levels": []})
        payload, _ = store.load(digest)
        assert _decode_walk(payload) is None

    def test_encode_decode_round_trip(self):
        from repro.sim.memsys import StreamProfile

        value = ([StreamProfile(label="x", kind="read", dependent=False,
                                accesses=10, l1_hits=4)],
                 [(10, 4), (6, 2), (4, 1)])
        decoded = _decode_walk(
            json.loads(json.dumps(_encode_walk(value))))
        assert decoded == value

    def test_digest_sensitive_to_content(self):
        a = [AccessStream(addresses=np.arange(100) * 64, elem_bytes=8)]
        b = [AccessStream(addresses=np.arange(100) * 64 + 64,
                          elem_bytes=8)]
        assert _walk_digest(("k",), a) != _walk_digest(("k",), b)
        assert _walk_digest(("k",), a) != _walk_digest(("k2",), a)
        assert _walk_digest(("k",), a) == _walk_digest(("k",), [
            AccessStream(addresses=np.arange(100) * 64, elem_bytes=8)])

    def test_gc_reclaims_corrupt_and_temp(self, tmp_path):
        store = WalkStore(tmp_path / "walks")
        store.save("aa" * 32, {"schema": "repro.walk/1", "profiles": [],
                               "levels": []})
        (store.root / "bb.json").write_text("{", encoding="utf-8")
        (store.root / "cc.json.tmp.1.2").write_text("", encoding="utf-8")
        assert store.gc() == 2
        assert len(store) == 1


class TestRuntimeWiring:
    def test_configure_installs_beside_result_cache(self, tmp_path):
        saved = walk_cache().store
        try:
            runtime.configure(cache_dir=tmp_path / "cache")
            store = walk_cache().store
            assert store is not None
            assert store.root == tmp_path / "cache" / "walks"
            runtime.configure(cache_dir=None)  # auto + no cache -> off
            assert walk_cache().store is None
            runtime.configure(cache_dir=None,
                              walk_cache=tmp_path / "elsewhere")
            assert walk_cache().store.root == tmp_path / "elsewhere"
            runtime.configure(cache_dir=tmp_path / "cache",
                              walk_cache="off")
            assert walk_cache().store is None
        finally:
            runtime.reset()
            configure_walk_store(saved)

    def test_env_override(self, tmp_path, monkeypatch):
        saved = walk_cache().store
        try:
            monkeypatch.setenv("REPRO_WALK_CACHE", "off")
            runtime.configure(cache_dir=tmp_path / "cache")
            assert walk_cache().store is None
            monkeypatch.setenv("REPRO_WALK_CACHE",
                               str(tmp_path / "pinned"))
            runtime.configure(cache_dir=None)
            assert walk_cache().store.root == tmp_path / "pinned"
        finally:
            runtime.reset()
            configure_walk_store(saved)

    def test_worker_entry_installs_store(self, tmp_path):
        from repro.runtime.executor import _install_walk_store

        saved = walk_cache().store
        try:
            configure_walk_store(None)
            _install_walk_store(None)
            assert walk_cache().store is None
            _install_walk_store(str(tmp_path / "w"))
            first = walk_cache().store
            assert first is not None
            _install_walk_store(str(tmp_path / "w"))  # idempotent
            assert walk_cache().store is first
        finally:
            configure_walk_store(saved)


def test_walk_cache_telemetry_counters(_isolated_walk_cache, tmp_path):
    wc = _isolated_walk_cache
    wc.store = WalkStore(tmp_path / "walks")
    machine = MachineConfig()
    trace = _trace(5, n=400)
    with obs.capture() as registry:
        _profiles(trace, machine)   # miss + store
        _profiles(trace, machine)   # memory hit
        wc.clear()
        _profiles(trace, machine)   # disk hit
    counters = registry.as_dict()["counters"]
    pre = "sim.memsys.walk_cache."
    assert counters[pre + "misses"] == 1
    assert counters[pre + "mem_hits"] == 1
    assert counters[pre + "disk_hits"] == 1
    assert counters[pre + "stores"] == 1
    assert counters[pre + "disk_bytes_written"] > 0
    assert counters[pre + "disk_bytes_read"] > 0


def test_walk_cache_capacity_type():
    wc = WalkCache(capacity=2)
    for i in range(5):
        wc.put((i,), [AccessStream(addresses=np.arange(4) * 64,
                                   elem_bytes=8)], ([], [(0, 0)]))
    assert len(wc) <= 2
    assert wc.evictions >= 3
