"""CLI smoke tests: ``python -m repro`` with the runtime flags."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cli, runtime

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _run_cli(*argv: str, cwd=None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, cwd=cwd, timeout=300,
    )


class TestSubprocess:
    def test_help(self):
        proc = _run_cli("--help")
        assert proc.returncode == 0
        for flag in ("--jobs", "--cache-dir", "--no-cache", "--scale"):
            assert flag in proc.stdout

    def test_small_experiment_parallel_no_cache(self, tmp_path):
        proc = _run_cli("fig10", "--workloads", "spmv", "--jobs", "2",
                        "--no-cache", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "Figure 10" in proc.stdout
        assert "geomean" in proc.stdout
        assert "6 cells" in proc.stderr
        # --no-cache must not create the default cache directory
        assert not (tmp_path / runtime.DEFAULT_CACHE_DIR).exists()

    def test_warm_cache_second_invocation(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = _run_cli("fig10", "--workloads", "spmv",
                        "--cache-dir", str(cache_dir), cwd=tmp_path)
        assert cold.returncode == 0, cold.stderr
        warm = _run_cli("fig10", "--workloads", "spmv",
                        "--cache-dir", str(cache_dir), cwd=tmp_path)
        assert warm.returncode == 0, warm.stderr
        assert "6 cached (100%)" in warm.stderr
        assert cold.stdout == warm.stdout
        manifests = list((cache_dir / "manifests").glob("run-*.json"))
        assert manifests, "manifest files should be written to the cache"


class TestInProcess:
    """Faster checks through cli.main() directly."""

    @pytest.fixture(autouse=True)
    def _fresh_runtime(self):
        yield
        runtime.reset()

    def test_table5_needs_no_simulation(self, tmp_path, capsys):
        rc = cli.main(["table5", "--no-cache"])
        assert rc == 0
        assert "Table 5" in capsys.readouterr().out

    def test_unknown_workload_fails_cleanly(self, tmp_path, capsys):
        rc = cli.main(["fig10", "--workloads", "warp", "--no-cache",
                       "--retries", "0"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_cache_maintenance_commands(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        rc = cli.main(["fig10", "--workloads", "spmv",
                       "--cache-dir", str(cache_dir)])
        assert rc == 0
        assert cli.main(["cache-gc", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr()
        assert "6 live" in out.out
        assert cli.main(["cache-clear", "--cache-dir",
                         str(cache_dir)]) == 0
        assert "removed 6 entries" in capsys.readouterr().out
