"""Tests for the expression-to-TMU compiler (the paper's future work)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_expression, parse_expression
from repro.compiler.parser import ExpressionError
from repro.fibers.fiber import Fiber
from repro.generators import uniform_random_matrix
from repro.tmu import TmuEngine


def run(built):
    TmuEngine(built.program).run(built.handlers)
    return built.result()


@pytest.fixture
def a():
    return uniform_random_matrix(24, 24, 4, seed=51)


@pytest.fixture
def b_mat():
    return uniform_random_matrix(24, 24, 4, seed=52)


class TestParser:
    def test_spmv_expression(self):
        expr = parse_expression("Z(i) = A(i,j) * B(j)")
        assert expr.output.indices == ("i",)
        assert expr.op == "*"
        assert expr.index_classes() == {"i": "free", "j": "contracted"}

    def test_elementwise_classification(self):
        expr = parse_expression("Z(i,j) = A(i,j) * B(i,j)")
        assert expr.index_classes() == {"i": "elementwise",
                                        "j": "elementwise"}

    def test_copy_expression(self):
        expr = parse_expression("Z(i,j) = A(i,j)")
        assert expr.op is None and expr.rhs is None

    def test_whitespace_insensitive(self):
        expr = parse_expression("  Z( i , j )=A(i,j)+B(i,j) ")
        assert expr.op == "+"

    def test_rejects_repeated_index_in_ref(self):
        with pytest.raises(ExpressionError):
            parse_expression("Z(i) = A(i,i) * B(i)")

    def test_rejects_unknown_operator(self):
        with pytest.raises(ExpressionError):
            parse_expression("Z(i) = A(i,j) - B(j)")

    def test_rejects_dangling_output_index(self):
        with pytest.raises(ExpressionError):
            parse_expression("Z(i,k) = A(i,j) * B(j)")

    def test_rejects_three_operands(self):
        with pytest.raises(ExpressionError):
            parse_expression("Z(i) = A(i,j) * B(j) * C(j)")

    def test_addition_requires_aligned_indices(self):
        with pytest.raises(ExpressionError):
            parse_expression("Z(i,j) = A(i,j) + B(j,i)")


class TestCompilation:
    def test_spmv(self, a, rng):
        b = rng.random(24)
        out = run(compile_expression("Z(i) = A(i,j) * B(j)",
                                     {"A": a, "B": b}))
        assert np.allclose(out, a.to_dense() @ b)

    def test_spmspv(self, a, rng):
        idx = np.sort(rng.choice(24, 6, replace=False))
        sv = Fiber(idx, rng.random(6))
        out = run(compile_expression("Z(i) = A(i,j) * B(j)",
                                     {"A": a, "B": sv}))
        assert np.allclose(out, a.to_dense() @ sv.to_dense(24))

    def test_spmm(self, a, rng):
        b = rng.random((24, 5))
        out = run(compile_expression("Z(i,k) = A(i,j) * B(j,k)",
                                     {"A": a, "B": b}))
        assert np.allclose(out, a.to_dense() @ b)

    def test_spmspm(self, a, b_mat):
        out = run(compile_expression("Z(i,k) = A(i,j) * B(j,k)",
                                     {"A": a, "B": b_mat}))
        assert np.allclose(out.to_dense(),
                           a.to_dense() @ b_mat.to_dense())

    def test_operand_order_normalized(self, a, rng):
        """B(j) * A(i,j) compiles the same as A(i,j) * B(j)."""
        b = rng.random(24)
        out = run(compile_expression("Z(i) = B(j) * A(i,j)",
                                     {"A": a, "B": b}))
        assert np.allclose(out, a.to_dense() @ b)

    def test_elementwise_add(self, a, b_mat):
        out = run(compile_expression("Z(i,j) = A(i,j) + B(i,j)",
                                     {"A": a, "B": b_mat}))
        assert np.allclose(out.to_dense(),
                           a.to_dense() + b_mat.to_dense())

    def test_elementwise_multiply(self, a, b_mat):
        out = run(compile_expression("Z(i,j) = A(i,j) * B(i,j)",
                                     {"A": a, "B": b_mat}))
        assert np.allclose(out.to_dense(),
                           a.to_dense() * b_mat.to_dense())

    def test_copy(self, a):
        out = run(compile_expression("Z(i,j) = A(i,j)", {"A": a}))
        assert out == a

    def test_missing_operand(self, a):
        with pytest.raises(ExpressionError):
            compile_expression("Z(i) = A(i,j) * B(j)", {"A": a})

    def test_shape_mismatch(self, a):
        other = uniform_random_matrix(10, 10, 2, seed=3)
        with pytest.raises(ExpressionError):
            compile_expression("Z(i,j) = A(i,j) + B(i,j)",
                               {"A": a, "B": other})

    def test_dense_operand_where_csr_required(self, rng):
        with pytest.raises(ExpressionError):
            compile_expression("Z(i,j) = A(i,j) + B(i,j)",
                               {"A": rng.random((4, 4)),
                                "B": rng.random((4, 4))})

    @given(st.integers(0, 25))
    @settings(max_examples=10, deadline=None)
    def test_random_elementwise_adds(self, seed):
        x = uniform_random_matrix(12, 12, 3, seed=seed)
        y = uniform_random_matrix(12, 12, 3, seed=seed + 100)
        out = run(compile_expression("Z(i,j) = A(i,j) + B(i,j)",
                                     {"A": x, "B": y}))
        assert np.allclose(out.to_dense(), x.to_dense() + y.to_dense())
