"""Tests for the ``repro ingest`` / ``repro query`` CLI.

Exercises the exact command sequence the ``store-smoke`` CI job runs:
ingest a trajectory of BENCH snapshots, render cross-run analytics in
all three formats, and gate on ``repro query regressions`` — the gate
must exit nonzero when the latest run degraded past the bound.
"""

import csv
import io
import json

import pytest

from repro.cli import main
from repro.obs import Registry, make_snapshot, write_snapshot


def bench_file(path, rev, cells_per_sec, created):
    reg = Registry()
    reg.counter("runtime.executor.cells").add(12)
    reg.counter("runtime.executor.cells_simulated").add(12)
    reg.gauge("runtime.executor.cells_per_sec").set(cells_per_sec)
    reg.timer("runtime.executor.batch").observe(12 / cells_per_sec)
    snap = make_snapshot(reg, meta={"rev": rev})
    snap["created_unix"] = created
    return write_snapshot(snap, path)


@pytest.fixture()
def trajectory(tmp_path):
    """Three BENCH files (improving) and a degraded fourth."""
    files = [
        bench_file(tmp_path / "BENCH_r1.json", "r1", 6.0, 100.0),
        bench_file(tmp_path / "BENCH_r2.json", "r2", 15.0, 200.0),
        bench_file(tmp_path / "BENCH_r3.json", "r3", 16.0, 300.0),
    ]
    degraded = bench_file(tmp_path / "degraded.json", "r4", 4.0, 400.0)
    return files, degraded, tmp_path / "db.sqlite"


class TestIngestCli:
    def test_ingest_reports_sources_and_counts(self, trajectory, capsys):
        files, _, db = trajectory
        argv = ["ingest", *map(str, files), "--store", str(db)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "3 sources (3 new, 0 already ingested; 3 bench)" in out
        assert "3 runs" in out

    def test_reingest_is_idempotent(self, trajectory, capsys):
        files, _, db = trajectory
        argv = ["ingest", *map(str, files), "--store", str(db)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "(0 new, 3 already ingested" in out

    def test_unreadable_file_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "junk.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["ingest", str(bad),
                     "--store", str(tmp_path / "db.sqlite")]) == 2
        assert "error:" in capsys.readouterr().err


class TestQueryRendering:
    def _ingest(self, trajectory):
        files, _, db = trajectory
        main(["ingest", *map(str, files), "--store", str(db)])
        return db

    def test_table_output_is_aligned_and_complete(
            self, trajectory, capsys):
        db = self._ingest(trajectory)
        capsys.readouterr()
        assert main(["query", "cells-per-sec", "--by", "rev",
                     "--store", str(db)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].split() == ["rev", "runs", "latest", "best"]
        assert set(lines[1]) <= {"-", " "}      # separator row
        assert [ln.split()[0] for ln in lines[2:]] == ["r1", "r2", "r3"]
        assert lines[2].split() == ["r1", "1", "6", "6"]

    def test_csv_output_parses(self, trajectory, capsys):
        db = self._ingest(trajectory)
        capsys.readouterr()
        assert main(["query", "runs", "--format", "csv",
                     "--store", str(db)]) == 0
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert [r["rev"] for r in rows] == ["r1", "r2", "r3"]
        assert float(rows[0]["cells_per_sec"]) == 6.0
        assert rows[0]["kind"] == "bench"

    def test_json_output_parses(self, trajectory, capsys):
        db = self._ingest(trajectory)
        capsys.readouterr()
        assert main(["query", "cells-per-sec", "--by", "run",
                     "--format", "json", "--store", str(db)]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["value"] for r in rows] == [6.0, 15.0, 16.0]

    def test_store_flag_works_before_the_subcommand(
            self, trajectory, capsys):
        db = self._ingest(trajectory)
        capsys.readouterr()
        assert main(["query", "--store", str(db), "runs"]) == 0
        assert "r1" in capsys.readouterr().out

    def test_metric_query_reads_any_snapshot_metric(
            self, trajectory, capsys):
        db = self._ingest(trajectory)
        capsys.readouterr()
        assert main(["query", "metric", "runtime.executor.cells",
                     "--by", "run", "--store", str(db)]) == 0
        out = capsys.readouterr().out
        assert out.count("12") == 3

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        # opening a store creates it, so an empty one queried for a
        # metric reports there is nothing to read — exit 2, not 1
        assert main(["query", "regressions",
                     "--store", str(tmp_path / "empty.sqlite")]) == 2
        assert "error:" in capsys.readouterr().err


class TestRegressionGate:
    def test_healthy_trajectory_passes(self, trajectory, capsys):
        files, _, db = trajectory
        main(["ingest", *map(str, files), "--store", str(db)])
        capsys.readouterr()
        assert main(["query", "regressions", "--bound", "0.2",
                     "--store", str(db)]) == 0
        out = capsys.readouterr().out
        assert "ok runtime.executor.cells_per_sec" in out

    def test_degraded_latest_run_exits_nonzero(self, trajectory, capsys):
        # the acceptance scenario: committed baseline snapshots plus a
        # degraded synthetic snapshot — the gate must fail
        files, degraded, db = trajectory
        main(["ingest", *map(str, files), str(degraded),
              "--store", str(db)])
        capsys.readouterr()
        assert main(["query", "regressions", "--bound", "0.2",
                     "--store", str(db)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "-33" in out or "-0.33" in out  # 4.0 vs 6.0 baseline

    def test_bound_is_respected(self, trajectory, capsys):
        files, degraded, db = trajectory
        main(["ingest", *map(str, files), str(degraded),
              "--store", str(db)])
        capsys.readouterr()
        # 4.0 vs the 6.0 baseline is a 33% drop: inside a 50% bound
        assert main(["query", "regressions", "--bound", "0.5",
                     "--store", str(db)]) == 0

    def test_explicit_baseline_rev(self, trajectory, capsys):
        files, degraded, db = trajectory
        main(["ingest", *map(str, files), str(degraded),
              "--store", str(db)])
        capsys.readouterr()
        # against r3 (16.0), the degraded 4.0 run is a 75% drop
        assert main(["query", "regressions", "--baseline", "r3",
                     "--bound", "0.5", "--store", str(db)]) == 1

    def test_future_store_schema_is_refused(self, trajectory, capsys):
        import sqlite3

        files, _, db = trajectory
        main(["ingest", *map(str, files), "--store", str(db)])
        con = sqlite3.connect(db)
        con.execute("UPDATE store_meta SET value = 'repro.store/2' "
                    "WHERE key = 'schema'")
        con.commit()
        con.close()
        capsys.readouterr()
        assert main(["query", "runs", "--store", str(db)]) == 2
        assert "repro.store/2" in capsys.readouterr().err


class TestRunWithStore:
    def test_driver_run_auto_ingests(self, tmp_path, capsys):
        db = tmp_path / "db.sqlite"
        snap = tmp_path / "snap.json"
        assert main(["fig13", "--scale", "small", "--workloads", "spmv",
                     "--no-cache",
                     "--telemetry", str(snap), "--store", str(db)]) == 0
        capsys.readouterr()
        assert main(["query", "runs", "--store", str(db)]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out and "snapshot" in out
