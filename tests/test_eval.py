"""Experiment driver and reporting tests (fast subset)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.eval import experiments as ex
from repro.eval.reporting import heatmap_table, text_table, to_csv
from repro.eval.workloads import (
    as_order3,
    inputs_for,
    run_workload,
    workload_ids,
)
from repro.formats.coo import CooTensor


class TestRegistry:
    def test_categories_cover_paper_grouping(self):
        assert set(workload_ids("memory")) == {
            "spmv", "pr", "mttkrp_mp", "mttkrp_cp", "cpals"}
        assert workload_ids("compute") == ["spmspm"]
        assert set(workload_ids("merge")) == {"spkadd", "tc", "sptc",
                                              "spadd"}

    def test_inputs_for(self):
        assert inputs_for("spmv") == ["M1", "M2", "M3", "M4", "M5", "M6"]
        assert inputs_for("sptc") == ["T1", "T2", "T3", "T4"]

    def test_unknown_workload(self, small_machine):
        with pytest.raises(WorkloadError):
            run_workload("nope", "M1", small_machine)

    def test_memoization(self, small_machine):
        a = run_workload("spmv", "M2", small_machine, "small")
        b = run_workload("spmv", "M2", small_machine, "small")
        assert a is b

    def test_variant_selection(self, small_machine):
        run = run_workload("spmv", "M6", small_machine, "small",
                           variants=("baseline", "imp"))
        assert run.imp is not None
        assert run.tmu is None


class TestAsOrder3:
    def test_passthrough_for_3d(self, small_tensor):
        assert as_order3(small_tensor) is small_tensor

    def test_folds_4d(self):
        t = CooTensor((4, 5, 6, 7),
                      [[0, 1], [0, 1], [2, 3], [4, 5]], [1.0, 2.0])
        folded = as_order3(t)
        assert folded.ndim == 3
        assert folded.nnz == 2
        # dense relabeling: extent equals distinct folded coordinates
        assert folded.shape[2] == 2

    def test_rejects_matrices(self):
        t = CooTensor((4, 5), [[0], [0]], [1.0])
        with pytest.raises(WorkloadError):
            as_order3(t)


class TestExperimentDrivers:
    """Smoke the cheap drivers end to end (the heavy ones are exercised
    by the benchmark harness)."""

    def test_table5(self):
        rows = ex.table5_parameters("small")
        rendered = ex.render_table5(rows)
        assert "TMU" in rendered and "HBM2e" in rendered

    def test_table6(self):
        rows = ex.table6_inputs("small")
        assert len(rows) == 10  # 6 matrices + 4 tensors
        rendered = ex.render_table6(rows)
        assert "af_0_k101" in rendered and "Uber" in rendered

    def test_area(self):
        data = ex.area_results()
        assert data["total_mm2"] == pytest.approx(0.0704, rel=1e-6)
        assert "1.52%" in ex.render_area(data)

    def test_fig13_single_workload(self, small_machine):
        run = run_workload("spmv", "M2", small_machine, "small")
        assert run.tmu.read_to_write is not None
        assert 0.05 < run.tmu.read_to_write < 20

    def test_fig15_driver_subset(self, small_machine):
        run = run_workload("spmv", "M2", small_machine, "small",
                           variants=("baseline", "tmu", "single_lane",
                                     "imp"))
        assert run.baseline.cycles >= run.single_lane.cycles * 0.9
        assert run.single_lane.cycles >= run.tmu.cycles


class TestReporting:
    def test_text_table_alignment(self):
        out = text_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]], "T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out and "3.00" in out

    def test_csv(self):
        out = to_csv(["x", "y"], [[1, 2], [3, 4]])
        assert out.splitlines()[0] == "x,y"
        assert out.splitlines()[2] == "3,4"

    def test_heatmap(self):
        out = heatmap_table(["r1"], ["c1", "c2"],
                            np.array([[1.0, 2.0]]), "H")
        assert "r1" in out and "2.00" in out


class TestCli:
    def test_cli_table5(self, capsys):
        from repro.cli import main

        assert main(["table5"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_cli_area(self, capsys):
        from repro.cli import main

        assert main(["area"]) == 0
        assert "0.0704" in capsys.readouterr().out

    def test_cli_rejects_unknown(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig99"])


class TestCliOutput:
    def test_output_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["area", "--output", str(tmp_path)]) == 0
        written = (tmp_path / "area.txt").read_text()
        assert "0.0704" in written
