"""System-level run tests: baseline/TMU/Single-Lane/IMP invariants."""

import pytest

from repro.config import experiment_machine
from repro.errors import SimulationError
from repro.generators import load_matrix, uniform_random_matrix
from repro.kernels.spmv import characterize_spmv
from repro.programs import spmv_timing_model
from repro.sim.machine import (
    run_baseline,
    run_imp,
    run_single_lane,
    run_tmu,
)


@pytest.fixture(scope="module")
def setup():
    machine = experiment_machine("small")
    matrix = load_matrix("M2", "small")
    trace = characterize_spmv(matrix, machine)
    model = spmv_timing_model(matrix, machine)
    return machine, matrix, trace, model


class TestBaseline:
    def test_positive_cycles(self, setup):
        machine, _, trace, _ = setup
        result = run_baseline(trace, machine)
        assert result.cycles > 0
        assert result.breakdown.total == pytest.approx(result.cycles)

    def test_breakdown_fractions_sum_to_one(self, setup):
        machine, _, trace, _ = setup
        result = run_baseline(trace, machine)
        assert sum(result.breakdown.normalized()) == pytest.approx(1.0)


class TestTmu:
    def test_tmu_beats_baseline_on_spmv(self, setup):
        machine, _, trace, model = setup
        base = run_baseline(trace, machine)
        tmu = run_tmu(model, machine)
        assert 1.5 < base.cycles / tmu.cycles < 8.0

    def test_read_to_write_consistency(self, setup):
        machine, _, _, model = setup
        tmu = run_tmu(model, machine)
        assert tmu.read_to_write == pytest.approx(
            tmu.core_cycles / tmu.tmu_cycles)

    def test_total_covers_slower_side(self, setup):
        machine, _, _, model = setup
        tmu = run_tmu(model, machine)
        assert tmu.cycles >= max(tmu.tmu_cycles, tmu.core_cycles)

    def test_more_lanes_never_slower(self, setup):
        machine, _, _, model = setup
        cycles = [run_tmu(model, machine, lanes=l).cycles
                  for l in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(cycles, cycles[1:]))

    def test_zero_lanes_rejected(self, setup):
        machine, _, _, model = setup
        with pytest.raises(SimulationError):
            run_tmu(model, machine, lanes=0)

    def test_storage_monotonic_for_spmv(self, setup):
        machine, _, _, model = setup
        tiny = machine.with_tmu(per_lane_storage_bytes=256)
        big = machine.with_tmu(per_lane_storage_bytes=4096)
        assert run_tmu(model, tiny).cycles >= run_tmu(model, big).cycles

    def test_tmu_removes_frontend_stalls(self, setup):
        machine, _, trace, model = setup
        base = run_baseline(trace, machine)
        tmu = run_tmu(model, machine)
        _, fe_base, _ = base.breakdown.normalized()
        _, fe_tmu, _ = tmu.breakdown.normalized()
        assert fe_tmu < fe_base + 1e-9
        assert fe_tmu < 0.05

    def test_load_to_use_drops(self, setup):
        """The Figure 11 effect: outQ reads hit the L2."""
        machine, _, trace, model = setup
        base = run_baseline(trace, machine)
        tmu = run_tmu(model, machine)
        assert tmu.breakdown.load_to_use < base.breakdown.load_to_use


class TestSingleLaneAndImp:
    def test_single_lane_between_baseline_and_tmu(self, setup):
        machine, _, trace, model = setup
        base = run_baseline(trace, machine)
        tmu = run_tmu(model, machine)
        sl = run_single_lane(model, machine)
        assert tmu.cycles <= sl.cycles
        assert sl.cycles <= base.cycles * 1.05

    def test_imp_helps_gather_workloads(self, setup):
        machine, _, trace, _ = setup
        base = run_baseline(trace, machine)
        imp = run_imp(trace, machine)
        assert imp.cycles <= base.cycles * 1.01

    def test_imp_never_helps_without_gathers(self, setup):
        machine = setup[0]
        matrix = uniform_random_matrix(500, 500, 4, seed=3)
        from repro.kernels.spmspm import characterize_spmspm

        trace = characterize_spmspm(matrix, matrix.transpose(), machine)
        base = run_baseline(trace, machine)
        imp = run_imp(trace, machine)
        assert imp.cycles >= base.cycles * 0.999
