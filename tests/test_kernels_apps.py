"""Application kernels: PageRank and triangle counting, validated
against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.formats.csr import CsrMatrix
from repro.generators import uniform_random_matrix
from repro.kernels import pagerank, triangle_count
from repro.kernels.triangle import lower_triangle


def _symmetric_graph(n=60, p=0.1, seed=3):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < p).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 0.0)
    return CsrMatrix.from_dense(dense)


class TestTriangleCount:
    def test_matches_networkx(self):
        adj = _symmetric_graph()
        g = nx.from_numpy_array(adj.to_dense())
        expected = sum(nx.triangles(g).values()) // 3
        assert triangle_count(lower_triangle(adj)) == expected

    def test_known_triangle(self):
        dense = np.zeros((3, 3))
        dense[[0, 1, 0], [1, 2, 2]] = 1.0
        dense = np.maximum(dense, dense.T)
        adj = CsrMatrix.from_dense(dense)
        assert triangle_count(lower_triangle(adj)) == 1

    def test_triangle_free_graph(self):
        # a path graph has no triangles
        dense = np.zeros((5, 5))
        for i in range(4):
            dense[i, i + 1] = dense[i + 1, i] = 1.0
        assert triangle_count(lower_triangle(
            CsrMatrix.from_dense(dense))) == 0

    def test_lower_triangle_strictness(self):
        adj = _symmetric_graph(20, 0.3)
        lt = lower_triangle(adj)
        row_of = np.repeat(np.arange(lt.num_rows), lt.row_nnz())
        assert np.all(lt.idxs < row_of)

    def test_nonsquare_rejected(self):
        bad = uniform_random_matrix(4, 5, 2, seed=0)
        with pytest.raises(WorkloadError):
            triangle_count(bad)


class TestPageRank:
    def test_matches_networkx(self):
        adj = _symmetric_graph(50, 0.12, seed=7)
        ours = pagerank(adj, damping=0.85, iterations=80)
        g = nx.from_numpy_array(adj.to_dense().T, create_using=nx.DiGraph)
        theirs = nx.pagerank(g, alpha=0.85, max_iter=200, tol=1e-12)
        theirs_vec = np.array([theirs[i] for i in range(adj.num_rows)])
        assert np.allclose(ours, theirs_vec, atol=1e-4)

    def test_rank_mass_bounded(self):
        # Dangling nodes leak rank mass (GAP PR does not redistribute),
        # so the sum is at most 1 and positive.
        square = uniform_random_matrix(40, 40, 4, seed=2)
        ranks = pagerank(square, iterations=30)
        assert 0.5 < ranks.sum() <= 1.0 + 1e-9
        assert np.all(ranks > 0)

    def test_tolerance_early_exit(self):
        adj = _symmetric_graph(30, 0.2, seed=9)
        r1 = pagerank(adj, iterations=500, tolerance=1e-12)
        r2 = pagerank(adj, iterations=500, tolerance=0.0)
        assert np.allclose(r1, r2, atol=1e-6)

    def test_nonsquare_rejected(self):
        bad = uniform_random_matrix(4, 5, 2, seed=0)
        with pytest.raises(WorkloadError):
            pagerank(bad)

    def test_empty_graph(self):
        empty = CsrMatrix((0, 0), [0], [], [])
        assert pagerank(empty).size == 0
