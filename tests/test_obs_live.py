"""Tests for repro.obs.live — Prometheus text exposition.

Round-trips every rendering through ``tests.prometheus_checker`` (the
same ~30-line parser CI uses against a live ``/metrics`` scrape), so
the renderer and the validator can only drift together, loudly.
"""

import pytest

from repro.obs import Registry
from repro.obs.live import (
    PROM_CONTENT_TYPE,
    escape_label_value,
    to_prometheus,
)
from tests.prometheus_checker import parse_exposition


def render(reg, labels=None):
    text = to_prometheus(reg, labels=labels)
    return text, dict(((n, tuple(sorted(lb.items()))), v)
                      for n, lb, v in parse_exposition(text))


class TestRendering:
    def test_counter_renders_verbatim_with_base_labels(self):
        reg = Registry()
        reg.counter("tmu.engine.runs").add(3)
        text, samples = render(reg, labels={"job": "repro-serve"})
        assert text.endswith("\n")
        assert samples[("repro_tmu_engine_runs", (("job", "repro-serve"),))] \
            == 3
        assert "# TYPE repro_tmu_engine_runs counter" in text

    def test_gauge_gets_high_water_twin(self):
        reg = Registry()
        g = reg.gauge("serve.queue_depth")
        g.set(7)
        g.set(2)
        _, samples = render(reg)
        assert samples[("repro_serve_queue_depth", ())] == 2
        assert samples[("repro_serve_queue_depth_high_water", ())] == 7

    def test_histogram_buckets_are_cumulative_pow2(self):
        reg = Registry()
        for v in (0.5, 1, 2, 3, 1000):
            reg.histogram("lat").record(v)
        _, samples = render(reg)
        # buckets 0,1,2,10 -> le 1,2,4,1024, cumulative counts 2,3,4,5
        assert samples[("repro_lat_bucket", (("le", "1"),))] == 2
        assert samples[("repro_lat_bucket", (("le", "2"),))] == 3
        assert samples[("repro_lat_bucket", (("le", "4"),))] == 4
        assert samples[("repro_lat_bucket", (("le", "1024"),))] == 5
        assert samples[("repro_lat_bucket", (("le", "+Inf"),))] == 5
        assert samples[("repro_lat_count", ())] == 5
        assert samples[("repro_lat_sum", ())] == pytest.approx(1006.5)

    def test_timer_renders_as_summary(self):
        reg = Registry()
        reg.timer("sim.step").observe(0.25)
        text, samples = render(reg)
        assert "# TYPE repro_sim_step summary" in text
        assert samples[("repro_sim_step_seconds_count", ())] == 1
        assert samples[("repro_sim_step_seconds_sum", ())] \
            == pytest.approx(0.25)

    def test_output_is_deterministic(self):
        reg = Registry()
        reg.counter("b").add(1)
        reg.counter("a").add(1)
        reg.gauge("c").set(4)
        assert to_prometheus(reg) == to_prometheus(reg)
        lines = [ln for ln in to_prometheus(reg).splitlines()
                 if not ln.startswith("#")]
        assert lines == sorted(lines)

    def test_content_type_pins_the_exposition_version(self):
        assert "version=0.0.4" in PROM_CONTENT_TYPE


class TestLabelRules:
    def test_client_segment_becomes_a_label(self):
        reg = Registry()
        reg.counter("serve.client.ci.cells").add(12)
        reg.counter("serve.client.dev.cells").add(3)
        text, samples = render(reg)
        assert samples[("repro_serve_client_cells", (("client", "ci"),))] \
            == 12
        assert samples[("repro_serve_client_cells", (("client", "dev"),))] \
            == 3
        # one family, one TYPE header
        assert text.count("# TYPE repro_serve_client_cells ") == 1

    def test_state_family_with_empty_tail(self):
        reg = Registry()
        reg.gauge("serve.jobs.done").set(4)
        reg.gauge("serve.jobs.running").set(1)
        _, samples = render(reg)
        assert samples[("repro_serve_jobs", (("state", "done"),))] == 4
        assert samples[("repro_serve_jobs", (("state", "running"),))] == 1

    def test_route_label_composes_with_base_labels(self):
        reg = Registry()
        reg.counter("serve.http.metrics.requests").add(2)
        _, samples = render(reg, labels={"job": "repro-serve"})
        key = ("repro_serve_http_requests",
               (("job", "repro-serve"), ("route", "metrics")))
        assert samples[key] == 2


class TestEscaping:
    @pytest.mark.parametrize("raw", [
        'quote " inside',
        "back\\slash",
        "new\nline",
        '\\"mixed\\"\n',
    ])
    def test_label_values_round_trip_through_the_parser(self, raw):
        escaped = escape_label_value(raw)
        assert "\n" not in escaped
        text = ('# TYPE repro_x counter\n'
                f'repro_x{{client="{escaped}"}} 1\n')
        samples = parse_exposition(text)
        assert samples == [("repro_x", {"client": raw}, 1.0)]

    def test_malformed_lines_are_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_exposition("# TYPE repro_x counter\nrepro_x one\n")
        with pytest.raises(ValueError, match="no samples"):
            parse_exposition("# HELP repro_x hi\n")
