"""Sanity checks on every baseline characterization: the traces the
timing model consumes must be internally consistent for any input."""

import numpy as np
import pytest

from repro.config import default_machine
from repro.formats.convert import coo_to_csf
from repro.generators import uniform_random_matrix, uniform_random_tensor
from repro.kernels import split_rows_cyclic
from repro.kernels.cpals import characterize_cpals
from repro.kernels.mttkrp import characterize_mttkrp
from repro.kernels.pagerank import characterize_pagerank
from repro.kernels.spadd import characterize_spadd
from repro.kernels.spkadd import characterize_spkadd
from repro.kernels.spmm import characterize_spmm
from repro.kernels.spmspm import characterize_spmspm
from repro.kernels.spmv import characterize_spmv
from repro.kernels.sptc import characterize_sptc
from repro.kernels.triangle import characterize_triangle, lower_triangle


@pytest.fixture(scope="module")
def machine():
    return default_machine()


@pytest.fixture(scope="module")
def matrix():
    return uniform_random_matrix(80, 80, 5, seed=91)


@pytest.fixture(scope="module")
def tensor():
    return uniform_random_tensor((20, 16, 12), 400, seed=92)


def all_traces(machine, matrix, tensor):
    csf = coo_to_csf(tensor)
    csf_b = coo_to_csf(tensor, mode_order=(2, 1, 0))
    return {
        "spmv": characterize_spmv(matrix, machine),
        "spmm": characterize_spmm(matrix, 8, machine),
        "spmspm": characterize_spmspm(matrix, matrix.transpose(),
                                      machine),
        "spadd": characterize_spadd(matrix, matrix.transpose(), machine),
        "spkadd": characterize_spkadd(split_rows_cyclic(matrix, 8),
                                      machine),
        "pagerank": characterize_pagerank(matrix, machine),
        "triangle": characterize_triangle(lower_triangle(matrix),
                                          machine),
        "mttkrp": characterize_mttkrp(tensor, 16, machine),
        "cpals": characterize_cpals(tensor, 16, machine),
        "sptc": characterize_sptc(csf, csf_b, machine),
    }


@pytest.fixture(scope="module")
def traces(machine, matrix, tensor):
    return all_traces(machine, matrix, tensor)


class TestTraceInvariants:
    def test_instruction_mix_positive(self, traces):
        for name, t in traces.items():
            assert t.total_instructions() > 0, name
            assert t.loads > 0, name
            assert t.branches >= 0, name

    def test_datadep_within_branches(self, traces):
        for name, t in traces.items():
            assert 0 <= t.datadep_branches <= t.branches, name

    def test_dependence_fraction_bounded(self, traces):
        for name, t in traces.items():
            assert 0.0 <= t.dependent_load_fraction <= 1.0, name

    def test_streams_nonempty_and_typed(self, traces):
        for name, t in traces.items():
            assert t.streams, name
            assert any(s.kind == "read" for s in t.streams), name
            for s in t.streams:
                assert s.addresses.dtype == np.int64, (name, s.label)
                assert s.count == s.addresses.size, (name, s.label)

    def test_flops_nonnegative(self, traces):
        for name, t in traces.items():
            assert t.flops >= 0.0, name
        # the integer/symbolic kernels carry no flops (Figure 12 note)
        assert traces["triangle"].flops == 0.0
        assert traces["sptc"].flops == 0.0

    def test_spmv_flop_count_exact(self, traces, matrix):
        assert traces["spmv"].flops == 2.0 * matrix.nnz

    def test_read_bytes_cover_operands(self, traces, matrix):
        # SpMV must at least stream the matrix once.
        assert traces["spmv"].total_bytes("read") >= matrix.nbytes()

    def test_parallel_units_positive(self, traces):
        for name, t in traces.items():
            assert t.parallel_units >= 1, name


class TestScalingBehaviour:
    def test_traces_scale_with_input(self, machine):
        small = characterize_spmv(
            uniform_random_matrix(40, 40, 4, seed=1), machine)
        big = characterize_spmv(
            uniform_random_matrix(160, 160, 4, seed=1), machine)
        assert big.total_instructions() > 2 * small.total_instructions()
        assert big.flops > 2 * small.flops

    def test_vector_width_reduces_vector_ops(self, matrix):
        wide = characterize_spmv(matrix, default_machine())
        narrow = characterize_spmv(
            matrix, default_machine().with_core(vector_bits=128))
        assert narrow.vector_ops > wide.vector_ops
