"""FastCache vs the golden-reference Cache: bit-for-bit equivalence.

The vectorized simulator must produce the *same hit mask on every
access* as the list-based reference, for any geometry and any access
pattern — including the call-boundary composition (state carried
between ``lookup_lines`` calls) and the derived state queries
(``contains_line``, ``reset``).  The seeded fuzz below replays well
over 1000 randomized streams through both models.

The second half pins the slot-free TMU engine: RunStats must be
identical whether memory touches flow through the batched per-fiber
path or the per-touch reference path, on every Table 4 kernel.
"""

import numpy as np
import pytest

from repro.config import CacheConfig
from repro.fibers.fiber import Fiber
from repro.formats.convert import coo_to_csf
from repro.generators import uniform_random_matrix, uniform_random_tensor
from repro.kernels import split_rows_cyclic
from repro.kernels.triangle import lower_triangle
from repro.programs import (
    build_mttkrp_program,
    build_spkadd_program,
    build_spmm_program,
    build_spmspm_program,
    build_spmspv_program,
    build_spmv_program,
    build_sptc_program,
    build_spttm_program,
    build_spttv_program,
    build_triangle_program,
)
from repro.sim.cache import Cache
from repro.sim.fastcache import FastCache
from repro.tmu import TmuEngine

# ------------------------------------------------------------ cache fuzzing


def _pair(sets: int, ways: int) -> tuple[Cache, FastCache]:
    cfg = CacheConfig(sets * ways * 64, ways, 1, 4)
    return Cache(cfg), FastCache(cfg)


def _stream(
    rng: np.random.Generator, kind: str, n: int, sets: int, ways: int
) -> np.ndarray:
    """One adversarial line stream of length ``n``."""
    capacity = sets * ways
    if kind == "uniform":
        return rng.integers(0, 4 * capacity + 1, n)
    if kind == "conflict":
        # hammer one or two sets with way-aliasing lines
        base = rng.integers(0, sets, 1)[0]
        return base + sets * rng.integers(0, 2 * ways + 1, n)
    if kind == "sequential":
        start = rng.integers(0, capacity, 1)[0]
        return np.arange(start, start + n)
    if kind == "thrash":
        # cyclic loop slightly larger than one set's ways: all misses
        # after warmup on true LRU — the classic LRU stress
        loop = sets * (ways + rng.integers(1, 3, 1)[0])
        return np.arange(n) % loop
    if kind == "reuse":
        # working set within capacity, revisited with repeats
        ws = rng.integers(1, max(2, capacity), 1)[0]
        return rng.integers(0, ws, n)
    # "burst": runs of repeated lines (consecutive-duplicate heavy)
    reps = rng.integers(1, 6, n)
    vals = rng.integers(0, 2 * capacity + 1, n)
    return np.repeat(vals, reps)[:n]


def _replay(
    ref: Cache, fast: FastCache, lines: np.ndarray, rng: np.random.Generator
) -> None:
    """Feed one stream through both models in random-sized chunks and
    assert identical hit masks at every call boundary."""
    pos = 0
    while pos < lines.size:
        step = int(rng.integers(1, max(2, lines.size // 3 + 1), 1)[0])
        chunk = lines[pos : pos + step]
        pos += step
        hits_ref = ref.lookup_lines(chunk)
        hits_fast = fast.lookup_lines(chunk)
        np.testing.assert_array_equal(hits_ref, hits_fast)


class TestFuzzEquivalence:
    def test_randomized_streams(self):
        """1080 randomized streams across random geometries."""
        rng = np.random.default_rng(0xF457CAC4)
        kinds = ("uniform", "conflict", "sequential", "thrash", "reuse", "burst")
        streams = 0
        for _rep in range(180):
            sets = int(rng.choice([1, 2, 4, 8, 16, 32]))
            ways = int(rng.integers(1, 17, 1)[0])
            ref, fast = _pair(sets, ways)
            for kind in kinds:
                n = int(rng.integers(1, 220, 1)[0])
                _replay(ref, fast, _stream(rng, kind, n, sets, ways), rng)
                streams += 1
            assert ref.stats.accesses == fast.stats.accesses
            assert ref.stats.hits == fast.stats.hits
            assert ref.stats.misses == fast.stats.misses
            # resident-state parity on a sample of lines
            for line in rng.integers(0, 4 * sets * ways + 1, 16):
                val = int(line)
                assert ref.contains_line(val) == fast.contains_line(val)
        assert streams >= 1000

    def test_reset_matches(self):
        rng = np.random.default_rng(7)
        ref, fast = _pair(4, 3)
        _replay(ref, fast, rng.integers(0, 40, 100), rng)
        ref.reset()
        fast.reset()
        assert fast.stats.accesses == 0
        assert not fast.contains_line(0)
        _replay(ref, fast, rng.integers(0, 40, 100), rng)

    def test_empty_lookup(self):
        ref, fast = _pair(2, 2)
        empty = np.zeros(0, dtype=np.int64)
        hits_ref = ref.lookup_lines(empty)
        hits_fast = fast.lookup_lines(empty)
        np.testing.assert_array_equal(hits_ref, hits_fast)

    def test_mshrs_exposed(self):
        _, fast = _pair(2, 2)
        assert fast.mshrs == 4

    def test_huge_prologue_exceeds_static_pack(self):
        """A batch whose prologue + length tops 2**22 must still be
        exact: the packed-sort position bits are sized per batch, so a
        giant configuration (num_sets x ways resident lines all touched
        at once) cannot overflow the pack.

        Disjoint sets never interact under LRU, so processing the same
        batch partitioned by set range (program order kept within each
        partition) is an exact oracle for the one-shot call.
        """
        num_sets, ways = 1 << 18, 16  # 4.2M resident slots > 2**22
        cfg = CacheConfig(num_sets * ways * 64, ways, 1, 4)
        rng = np.random.default_rng(0x905B175)

        def filled() -> FastCache:
            fast = FastCache(cfg)
            w = np.arange(ways, dtype=np.int64)
            for chunk in range(0, num_sets, 1 << 15):
                s = np.arange(chunk, chunk + (1 << 15), dtype=np.int64)
                fast.lookup_lines(np.repeat(w, s.size) * num_sets + np.tile(s, ways))
            return fast

        tail = rng.integers(0, num_sets * (ways + 4), 200_000, dtype=np.int64)
        every_set = np.arange(num_sets, dtype=np.int64)
        batch = np.concatenate([every_set, tail])

        one = filled()
        hits_one = one._process(batch)
        part = filled()
        hits_part = np.empty(batch.size, dtype=bool)
        sets = batch & (num_sets - 1)
        for lo in range(0, num_sets, 1 << 13):
            sel = (sets >= lo) & (sets < lo + (1 << 13))
            hits_part[sel] = part._process(batch[sel])
        np.testing.assert_array_equal(hits_one, hits_part)
        np.testing.assert_array_equal(one._tags, part._tags)
        np.testing.assert_array_equal(one._occ, part._occ)


# ------------------------------------------------ engine RunStats parity


def _builders():
    rng = np.random.default_rng(31)
    matrix = uniform_random_matrix(30, 30, 4, seed=13)
    vector = rng.random(matrix.num_cols)
    sv_idx = np.sort(rng.choice(matrix.num_cols, 7, replace=False))
    csf = coo_to_csf(uniform_random_tensor((9, 8, 7), 100, seed=6))
    return {
        "spmv": lambda: build_spmv_program(matrix, vector, lanes=2),
        "spmspv": lambda: build_spmspv_program(matrix, Fiber(sv_idx, rng.random(7))),
        "spmm": lambda: build_spmm_program(
            matrix, rng.random((matrix.num_cols, 5)), lanes=2
        ),
        "spmspm": lambda: build_spmspm_program(matrix, matrix.transpose(), lanes=2),
        "spkadd": lambda: build_spkadd_program(split_rows_cyclic(matrix, 4)),
        "triangle": lambda: build_triangle_program(
            lower_triangle(uniform_random_matrix(40, 40, 5, seed=21))
        ),
        "mttkrp": lambda: build_mttkrp_program(
            uniform_random_tensor((10, 8, 6), 120, seed=5),
            rng.random((8, 4)),
            rng.random((6, 4)),
        ),
        "spttv": lambda: build_spttv_program(csf, rng.random(7)),
        "spttm": lambda: build_spttm_program(csf, rng.random((7, 3))),
        "sptc": lambda: build_sptc_program(
            coo_to_csf(uniform_random_tensor((8, 7, 6), 90, seed=7)),
            coo_to_csf(uniform_random_tensor((6, 7, 9), 90, seed=8)),
        ),
    }


def _stats_dict(stats) -> dict:
    return {
        "layer_iterations": stats.layer_iterations,
        "layer_merge_steps": stats.layer_merge_steps,
        "layer_activations": stats.layer_activations,
        "outq_records": stats.outq_records,
        "outq_bytes": stats.outq_bytes,
        "outq_chunks": stats.outq_chunks,
        "memory_touches": stats.memory_touches,
        "memory_lines": stats.memory_lines,
        "memory_bytes": stats.memory_bytes,
        "callback_counts": stats.callback_counts,
    }


@pytest.mark.parametrize("kernel", sorted(_builders()))
def test_runstats_identical_batched_vs_per_touch(kernel):
    """The slot-free engine's RunStats must not depend on whether memory
    touches take the batched per-fiber path or the per-touch reference
    path — on every Table 4 kernel program."""
    builders = _builders()
    batched_built = builders[kernel]()
    engine = TmuEngine(batched_built.program)
    batched = _stats_dict(engine.run(batched_built.handlers))

    reference_built = builders[kernel]()
    engine = TmuEngine(reference_built.program)
    engine.batch_touches_enabled = False
    reference = _stats_dict(engine.run(reference_built.handlers))

    assert batched == reference
