"""Scalar reference engine vs the SoA fast lane engine: differential
parity (licenses ``tmu/fastlane.py``).

Three tiers of evidence, strongest first:

1. every registered Table 4 kernel program, comparing outQ records
   element-for-element, the full RunStats dict, the kernel's numeric
   result, and the ``tmu.*`` telemetry counters;
2. seeded fuzz over generated one-layer merge programs and two-layer
   nests — every merge mode, duplicate and empty fibers, lin/map/ldr/
   fwd streams, strides and offsets — with the seed rotated by CI via
   ``REPRO_FUZZ_SEED``;
3. failure parity: inputs that make the reference engine raise must
   make the fast engine raise the same error with the same message
   (the fast lane falls back *before* side effects, so errors surface
   from the identical scalar code path).
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.fibers.fiber import Fiber
from repro.formats.convert import coo_to_csf
from repro.generators import uniform_random_matrix, uniform_random_tensor
from repro.kernels import split_rows_cyclic
from repro.kernels.triangle import lower_triangle
from repro.programs import (
    build_mttkrp_program,
    build_spkadd_program,
    build_spmm_program,
    build_spmspm_program,
    build_spmspv_program,
    build_spmv_program,
    build_sptc_program,
    build_spttm_program,
    build_spttv_program,
    build_triangle_program,
)
from repro.tmu import TmuEngine
from repro.tmu.program import Event, LayerMode, Program, ScalarOperand
from repro.types import INDEX_BYTES, VALUE_BYTES

#: CI rotates this (see .github/workflows/ci.yml parity-fuzz); a fixed
#: default keeps local runs reproducible.
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "2371"), 0)

MERGE_MODES = (
    LayerMode.DISJ_MRG,
    LayerMode.CONJ_MRG,
    LayerMode.LOCKSTEP,
    LayerMode.KEEP,
)


# --------------------------------------------------------------- run harness


def _stats_dict(stats) -> dict:
    return {
        "layer_iterations": stats.layer_iterations,
        "layer_merge_steps": stats.layer_merge_steps,
        "layer_activations": stats.layer_activations,
        "outq_records": stats.outq_records,
        "outq_bytes": stats.outq_bytes,
        "outq_chunks": stats.outq_chunks,
        "memory_touches": stats.memory_touches,
        "memory_lines": stats.memory_lines,
        "memory_bytes": stats.memory_bytes,
        "callback_counts": stats.callback_counts,
    }


def _tmu_metrics(registry) -> dict:
    """Deterministic ``tmu.*`` telemetry: counters and gauges (timers
    measure wall time and are excluded)."""
    body = registry.as_dict()
    out = {}
    for kind in ("counters", "gauges"):
        for name, data in body[kind].items():
            if name.startswith("tmu."):
                out[f"{kind}:{name}"] = data
    return out


def _run_engine(factory, fast: bool) -> dict:
    """Run a freshly built program on one engine flavor; capture every
    observable output, or the error if the run raises."""
    prog, handlers, result = factory()
    engine = TmuEngine(prog, fast=fast)
    assert engine.fast is fast
    with obs.capture() as registry:
        try:
            stats = engine.run(handlers)
        except Exception as exc:  # error parity is the point
            return {"error": (type(exc).__name__, str(exc))}
    return {
        "records": list(engine.outq.records),
        "stats": _stats_dict(stats),
        "metrics": _tmu_metrics(registry),
        "result": result() if result is not None else None,
    }


def _assert_parity(factory, label: str = "") -> dict:
    ref = _run_engine(factory, fast=False)
    fast = _run_engine(factory, fast=True)
    tag = f" [{label}]" if label else ""
    if "error" in ref or "error" in fast:
        detail = f"scalar={ref.get('error')} fast={fast.get('error')}"
        msg = f"error parity broken{tag}: {detail}"
        assert ref.get("error") == fast.get("error"), msg
        return ref
    n_ref, n_fast = len(ref["records"]), len(fast["records"])
    msg = f"record count differs{tag}: {n_ref} scalar vs {n_fast} fast"
    assert n_ref == n_fast, msg
    for i, (a, b) in enumerate(zip(ref["records"], fast["records"])):
        assert a == b, f"record {i} differs{tag}:\n  scalar {a}\n  fast   {b}"
    assert ref["stats"] == fast["stats"], f"RunStats differ{tag}"
    assert ref["metrics"] == fast["metrics"], f"telemetry differs{tag}"
    if ref["result"] is not None:
        np.testing.assert_allclose(
            _as_dense(ref["result"]),
            _as_dense(fast["result"]),
            err_msg=f"kernel result differs{tag}",
        )
    return ref


def _as_dense(result) -> np.ndarray:
    """Kernel outputs come back as ndarrays or sparse formats (CsrMatrix,
    Csf, Fiber, ...) — flatten everything to a dense float array."""
    if hasattr(result, "to_dense"):
        try:
            return np.asarray(result.to_dense(), dtype=float)
        except TypeError:  # Fiber.to_dense(size)
            return np.asarray(result.values, dtype=float)
    if isinstance(result, dict):  # e.g. spttm's {(i, j): row} output
        if not result:
            return np.zeros(0)
        rows = [np.asarray(result[k], dtype=float) for k in sorted(result)]
        return np.concatenate([np.atleast_1d(r) for r in rows])
    return np.asarray(result, dtype=float)


# --------------------------------------------- tier 1: registered programs


def _kernel_builders():
    # every input is materialized *eagerly*: the two engine runs of one
    # parity check must rebuild the program from identical data
    rng = np.random.default_rng(97)
    matrix = uniform_random_matrix(28, 32, 5, seed=41)
    vector = rng.random(matrix.num_cols)
    sv_idx = np.sort(rng.choice(matrix.num_cols, 9, replace=False))
    sv = Fiber(sv_idx, rng.random(9))
    dense_b = rng.random((matrix.num_cols, 6))
    matrix_t = matrix.transpose()
    parts = split_rows_cyclic(matrix, 3)
    tri = lower_triangle(uniform_random_matrix(36, 36, 4, seed=33))
    tensor = uniform_random_tensor((9, 7, 8), 130, seed=10)
    fac_b, fac_c = rng.random((7, 3)), rng.random((8, 3))
    csf = coo_to_csf(uniform_random_tensor((8, 9, 7), 110, seed=16))
    ttv_vec, ttm_mat = rng.random(7), rng.random((7, 4))
    csf_a = coo_to_csf(uniform_random_tensor((7, 8, 6), 95, seed=11))
    csf_b = coo_to_csf(uniform_random_tensor((6, 8, 7), 95, seed=12))
    return {
        "spmv": lambda: build_spmv_program(matrix, vector, lanes=4),
        "spmspv": lambda: build_spmspv_program(matrix, sv),
        "spmm": lambda: build_spmm_program(matrix, dense_b, lanes=2),
        "spmspm": lambda: build_spmspm_program(matrix, matrix_t, lanes=2),
        "spkadd": lambda: build_spkadd_program(parts),
        "triangle": lambda: build_triangle_program(tri),
        "mttkrp": lambda: build_mttkrp_program(tensor, fac_b, fac_c),
        "spttv": lambda: build_spttv_program(csf, ttv_vec),
        "spttm": lambda: build_spttm_program(csf, ttm_mat),
        "sptc": lambda: build_sptc_program(csf_a, csf_b),
    }


@pytest.mark.parametrize("kernel", sorted(_kernel_builders()))
def test_kernel_program_parity(kernel):
    """Scalar and SoA engines are indistinguishable on every registered
    kernel: records, stats, telemetry, and the computed result."""
    builders = _kernel_builders()

    def factory():
        built = builders[kernel]()
        return built.program, built.handlers, built.result

    out = _assert_parity(factory, label=kernel)
    assert out["records"], f"{kernel} produced no records — vacuous parity"


# ----------------------------------------------- tier 2: seeded fuzz corpus


def _fuzz_merge_factory(rng):
    """A randomized one-layer merge program: 1-5 lanes, duplicate and
    empty fibers, lin/map/ldr side streams, random operand shapes."""
    mode = MERGE_MODES[int(rng.integers(0, len(MERGE_MODES)))]
    lanes = int(rng.integers(1, 6))
    fibers = []
    for _ in range(lanes):
        n = int(rng.integers(0, 15))
        coords = np.sort(rng.integers(0, 24, n)).astype(np.int64)
        if n and rng.random() < 0.08:  # unsorted: error-parity case
            coords = coords[::-1].copy()
        fibers.append(coords)
    keep_lane = None
    if mode is LayerMode.KEEP and rng.random() < 0.7:
        keep_lane = int(rng.integers(0, lanes))
    want_map = rng.random() < 0.4
    want_ldr = rng.random() < 0.4
    want_lin = rng.random() < 0.6
    want_scalar = rng.random() < 0.5
    two_gite = rng.random() < 0.3
    table = [float(v) for v in rng.random(16)]

    def factory():
        prog = Program("fuzz1", lanes=lanes)
        layer = prog.add_layer(mode)
        if keep_lane is not None:
            layer.keep_lane = keep_lane
        vals_streams, extra_streams = [], []
        for lane, coords in enumerate(fibers):
            n = coords.size
            carr = prog.place_array(coords, INDEX_BYTES, f"c{lane}")
            vals = np.arange(1.0, n + 1) * (lane + 1)
            varr = prog.place_array(vals, VALUE_BYTES, f"v{lane}")
            tu = layer.dns_fbrt(beg=0, end=n)
            key = tu.add_mem_stream(carr, name=f"key{lane}")
            val = tu.add_mem_stream(varr, name=f"val{lane}")
            tu.set_merge_key(key)
            vals_streams.append(val)
            side = val
            if want_lin:
                side = tu.add_lin_stream(2.0, float(lane), key)
            if want_map:
                # keys are < 24; clamp through lin into table range is
                # overkill — map straight off the iteration index, whose
                # values are < 15 < table size
                side = tu.add_map_stream(table, name=f"map{lane}")
            if want_ldr:
                side = tu.add_ldr_stream(varr, parent=key, name=f"ldr{lane}")
            extra_streams.append(side)
        ops = [layer.index_operand(), layer.mask_operand()]
        ops.append(layer.vec_operand(vals_streams))
        if want_lin or want_map or want_ldr:
            ops.append(layer.vec_operand(extra_streams))
        if want_scalar:
            ops.append(ScalarOperand(vals_streams[0]))
        layer.add_callback(Event.GBEG, "b", [])
        layer.add_callback(Event.GITE, "pt", ops)
        if two_gite:
            layer.add_callback(Event.GITE, "pt2", [layer.index_operand()])
        layer.add_callback(Event.GEND, "e", [])
        return prog, None, None

    return factory, f"merge:{mode.value}/lanes={lanes}"


def _fuzz_nested_factory(rng):
    """A randomized two-layer nest: SINGLE/BCAST outer over per-lane
    CSR-style pointer streams, rng/idx inner fiber types, fwd streams,
    every inner mode."""
    lanes = int(rng.integers(1, 5))
    outer_mode = LayerMode.BCAST if lanes > 1 else LayerMode.SINGLE
    inner_mode = LayerMode.SINGLE
    if rng.random() < 0.75:
        inner_mode = MERGE_MODES[int(rng.integers(0, len(MERGE_MODES)))]
    inner_lanes = lanes if inner_mode is not LayerMode.SINGLE else 1
    rows = int(rng.integers(1, 6))
    use_idx = rng.random() < 0.25
    use_fwd = rng.random() < 0.6
    split_cyclic = rng.random() < 0.3  # offset=lane, stride=lanes idiom

    per_lane = []
    for _ in range(inner_lanes):
        rowlens = rng.integers(0, 5, rows)
        pe = np.cumsum(rowlens).astype(np.int64)
        pb = pe - rowlens
        if pe[-1]:
            chunks = [np.sort(rng.integers(0, 20, int(k))) for k in rowlens]
            coords = np.concatenate(chunks).astype(np.int64)
        else:
            coords = np.zeros(0, dtype=np.int64)
        per_lane.append((pb, pe, coords, rng.random(max(coords.size, 1))))
    rowvals = rng.random(rows)

    def factory():
        prog = Program("fuzz2", lanes=max(lanes, inner_lanes))
        l0 = prog.add_layer(outer_mode)
        tu0 = l0.dns_fbrt(beg=0, end=rows)
        rv_arr = prog.place_array(rowvals, VALUE_BYTES, "rowvals")
        rowval = tu0.add_mem_stream(rv_arr, name="rowval")
        l1 = prog.add_layer(inner_mode)
        inner_vals, fwds = [], []
        for lane, (pb, pe, coords, vals) in enumerate(per_lane):
            pb_arr = prog.place_array(pb, INDEX_BYTES, f"pb{lane}")
            pb_s = tu0.add_mem_stream(pb_arr)
            pe_arr = prog.place_array(pe, INDEX_BYTES, f"pe{lane}")
            pe_s = tu0.add_mem_stream(pe_arr)
            carr = prog.place_array(coords, INDEX_BYTES, f"ic{lane}")
            varr = prog.place_array(vals, VALUE_BYTES, f"iv{lane}")
            if use_idx:
                tu = l1.idx_fbrt(beg=pb_s, size=1)
            elif split_cyclic:
                tu = l1.rng_fbrt(beg=pb_s, end=pe_s, offset=lane, stride=inner_lanes)
            else:
                tu = l1.rng_fbrt(beg=pb_s, end=pe_s)
            key = tu.add_mem_stream(carr, name=f"ikey{lane}")
            val = tu.add_mem_stream(varr, name=f"ival{lane}")
            if inner_mode in MERGE_MODES:
                tu.set_merge_key(key)
            inner_vals.append(val)
            if use_fwd:
                fwds.append(tu.add_fwd_stream(rowval, name=f"fw{lane}"))
        l0.add_callback(Event.GBEG, "rb", [])
        row_ops = [l0.index_operand(), ScalarOperand(rowval)]
        l0.add_callback(Event.GITE, "row", row_ops)
        ops = [l1.index_operand(), l1.mask_operand()]
        ops.append(l1.vec_operand(inner_vals))
        if use_fwd:
            ops.append(l1.vec_operand(fwds))
        ops.append(ScalarOperand(rowval))  # env-resolved from the parent
        l1.add_callback(Event.GITE, "pt", ops)
        l1.add_callback(Event.GEND, "re", [])
        return prog, None, None

    label = f"nest:{outer_mode.value}>{inner_mode.value}/lanes={inner_lanes}"
    return factory, label


def test_fuzz_single_layer_merge_parity():
    rng = np.random.default_rng(FUZZ_SEED)
    for case in range(120):
        factory, label = _fuzz_merge_factory(rng)
        _assert_parity(factory, label=f"seed={FUZZ_SEED} case={case} {label}")


def test_fuzz_two_layer_nest_parity():
    rng = np.random.default_rng(FUZZ_SEED ^ 0x5A5A5A)
    for case in range(80):
        factory, label = _fuzz_nested_factory(rng)
        _assert_parity(factory, label=f"seed={FUZZ_SEED} case={case} {label}")


# -------------------------------------------- tier 3: directed edge cases


def _directed_cases():
    def empty_fibers():
        prog = Program("empty", lanes=3)
        layer = prog.add_layer(LayerMode.DISJ_MRG)
        for lane in range(3):
            empty = np.zeros(0, dtype=np.int64)
            carr = prog.place_array(empty, INDEX_BYTES, f"c{lane}")
            tu = layer.dns_fbrt(beg=0, end=0)
            tu.set_merge_key(tu.add_mem_stream(carr))
        layer.add_callback(Event.GITE, "pt", [layer.index_operand()])
        layer.add_callback(Event.GEND, "e", [])
        return prog, None, None

    def negative_stride():
        prog = Program("revwalk", lanes=1)
        layer = prog.add_layer(LayerMode.SINGLE)
        vals = prog.place_array(np.arange(10.0), VALUE_BYTES, "v")
        tu = layer.dns_fbrt(beg=9, end=-1, stride=-1)
        v = tu.add_mem_stream(vals)
        ops = [layer.index_operand(), layer.vec_operand([v])]
        layer.add_callback(Event.GITE, "pt", ops)
        return prog, None, None

    def stream_offset():
        prog = Program("offs", lanes=2)
        layer = prog.add_layer(LayerMode.LOCKSTEP)
        data = prog.place_array(np.arange(20.0), VALUE_BYTES, "d")
        streams = []
        for lane in range(2):
            tu = layer.dns_fbrt(beg=0, end=6)
            streams.append(tu.add_mem_stream(data, offset=3 + lane))
        ops = [layer.mask_operand(), layer.vec_operand(streams)]
        layer.add_callback(Event.GITE, "pt", ops)
        return prog, None, None

    def unsorted_disj():
        # both engines must raise the same TMURuntimeError
        prog = Program("unsorted", lanes=2)
        layer = prog.add_layer(LayerMode.DISJ_MRG)
        for lane, idx in enumerate([[5, 2, 9], [1, 3]]):
            arr = np.asarray(idx, dtype=np.int64)
            carr = prog.place_array(arr, INDEX_BYTES, f"c{lane}")
            tu = layer.dns_fbrt(beg=0, end=arr.size)
            tu.set_merge_key(tu.add_mem_stream(carr))
        layer.add_callback(Event.GITE, "pt", [layer.index_operand()])
        return prog, None, None

    def oob_chase():
        # both engines must raise the same out-of-bounds TMUConfigError
        prog = Program("oob", lanes=1)
        bad = prog.place_array(np.array([0, 99]), INDEX_BYTES, "idx")
        data = prog.place_array(np.zeros(4), VALUE_BYTES, "data")
        layer = prog.add_layer(LayerMode.SINGLE)
        tu = layer.dns_fbrt(beg=0, end=2)
        chase = tu.add_mem_stream(bad, name="chase")
        victim = tu.add_mem_stream(data, parent=chase, name="victim")
        layer.add_callback(Event.GITE, "pt", [layer.vec_operand([victim])])
        return prog, None, None

    return {
        "empty_fibers": empty_fibers,
        "negative_stride": negative_stride,
        "stream_offset": stream_offset,
        "unsorted_disj": unsorted_disj,
        "oob_chase": oob_chase,
    }


@pytest.mark.parametrize("case", sorted(_directed_cases()))
def test_directed_edge_case_parity(case):
    _assert_parity(_directed_cases()[case], label=case)


def test_error_cases_actually_error():
    """Guard the two failure-parity cases against silently passing."""
    cases = _directed_cases()
    assert "error" in _run_engine(cases["unsorted_disj"], fast=True)
    assert "error" in _run_engine(cases["oob_chase"], fast=True)
