"""Tensor-kernel correctness tests against einsum references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.formats.convert import coo_to_csf
from repro.generators import uniform_random_tensor
from repro.kernels import (
    cp_als,
    mttkrp,
    sptc_numeric,
    sptc_symbolic,
    spttm,
    spttv,
)


class TestMttkrp:
    def test_matches_einsum_mode0(self, small_tensor, rng):
        b = rng.random((16, 6))
        c = rng.random((12, 6))
        ref = np.einsum("ikl,kj,lj->ij", small_tensor.to_dense(), b, c)
        assert np.allclose(mttkrp(small_tensor, b, c), ref)

    @pytest.mark.parametrize("mode,spec", [
        (0, "ikl,kj,lj->ij"), (1, "kil,kj,lj->ij"), (2, "kli,kj,lj->ij"),
    ])
    def test_all_modes(self, small_tensor, rng, mode, spec):
        dense = small_tensor.to_dense()
        axes = [m for m in range(3) if m != mode]
        b = rng.random((small_tensor.shape[axes[0]], 5))
        c = rng.random((small_tensor.shape[axes[1]], 5))
        moved = np.moveaxis(dense, mode, 0)
        ref = np.einsum("ikl,kj,lj->ij", moved, b, c)
        assert np.allclose(mttkrp(small_tensor, b, c, mode=mode), ref)

    def test_rank_mismatch(self, small_tensor, rng):
        with pytest.raises(WorkloadError):
            mttkrp(small_tensor, rng.random((16, 6)),
                   rng.random((12, 7)))

    def test_extent_mismatch(self, small_tensor, rng):
        with pytest.raises(WorkloadError):
            mttkrp(small_tensor, rng.random((99, 6)),
                   rng.random((12, 6)))


class TestSptc:
    @given(st.integers(0, 25))
    @settings(max_examples=10, deadline=None)
    def test_numeric_matches_einsum(self, seed):
        a = coo_to_csf(uniform_random_tensor((8, 7, 6), 60, seed=seed))
        b = coo_to_csf(uniform_random_tensor((6, 7, 9), 60,
                                             seed=seed + 100))
        out = sptc_numeric(a, b)
        ref = np.einsum("ikl,lkj->ij", a.to_dense(), b.to_dense())
        dd = np.zeros_like(ref)
        for (i, j), v in out.items():
            dd[i, j] = v
        assert np.allclose(dd, ref)

    def test_symbolic_counts_distinct_js(self):
        a = coo_to_csf(uniform_random_tensor((6, 5, 4), 40, seed=3))
        b = coo_to_csf(uniform_random_tensor((4, 5, 7), 40, seed=4))
        counts = sptc_symbolic(a, b)
        numeric = sptc_numeric(a, b)
        per_i: dict[int, set] = {}
        for (i, j) in numeric:
            per_i.setdefault(i, set()).add(j)
        # the symbolic phase upper-bounds numeric structure (numeric
        # cancellation aside, they should coincide for random values)
        order = {int(c): n for n, c in enumerate(a.idxs[0])}
        for i, js in per_i.items():
            assert counts[order[i]] == len(js)

    def test_arity_check(self, small_csf):
        bad = coo_to_csf(uniform_random_tensor((4, 4), 10, seed=0))
        with pytest.raises(WorkloadError):
            sptc_symbolic(small_csf, bad)


class TestSpttv:
    def test_matches_einsum(self, small_csf, rng):
        v = rng.random(small_csf.shape[2])
        out = spttv(small_csf, v)
        ref = np.einsum("ijk,k->ij", small_csf.to_dense(), v)
        for (i, j), val in out.items():
            assert val == pytest.approx(ref[i, j])
        assert len(out) == small_csf.idxs[1].size

    def test_vector_length_check(self, small_csf):
        with pytest.raises(WorkloadError):
            spttv(small_csf, np.zeros(small_csf.shape[2] + 1))


class TestSpttm:
    def test_matches_einsum(self, small_csf, rng):
        m = rng.random((small_csf.shape[2], 4))
        out = spttm(small_csf, m)
        ref = np.einsum("ijk,kr->ijr", small_csf.to_dense(), m)
        for (i, j), row in out.items():
            assert np.allclose(row, ref[i, j])

    def test_matrix_shape_check(self, small_csf, rng):
        with pytest.raises(WorkloadError):
            spttm(small_csf, rng.random((small_csf.shape[2] + 1, 4)))


class TestCpAls:
    def test_fit_improves_and_reconstructs(self):
        # A genuinely low-rank tensor: CP-ALS must fit it ~exactly.
        rng = np.random.default_rng(0)
        a = rng.random((8, 3))
        b = rng.random((7, 3))
        c = rng.random((6, 3))
        dense = np.einsum("ir,jr,kr->ijk", a, b, c)
        from repro.formats.coo import CooTensor

        t = CooTensor.from_dense(dense)
        result = cp_als(t, rank=3, iterations=60, seed=1)
        assert result.fit_history[-1] > 0.99
        assert result.fit_history[-1] >= result.fit_history[0] - 1e-9
        assert np.allclose(result.reconstruct(), dense, atol=0.05)

    def test_bad_rank(self, small_tensor):
        with pytest.raises(WorkloadError):
            cp_als(small_tensor, 0)

    def test_fit_history_length(self, small_tensor):
        result = cp_als(small_tensor, 4, iterations=3)
        assert len(result.fit_history) == 3

    def test_tolerance_stops_early(self):
        rng = np.random.default_rng(0)
        dense = np.einsum("ir,jr->ij", rng.random((5, 1)),
                          rng.random((4, 1)))[:, :, None] * np.ones(3)
        from repro.formats.coo import CooTensor

        t = CooTensor.from_dense(dense)
        result = cp_als(t, rank=2, iterations=50, tolerance=1e-6)
        assert len(result.fit_history) < 50
