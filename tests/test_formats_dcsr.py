"""Tests for the DCSR format (Figure 1c)."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.convert import coo_to_dcsr
from repro.formats.dcsr import DcsrMatrix


@pytest.fixture
def figure1_dcsr(figure1_matrix):
    return coo_to_dcsr(figure1_matrix)


class TestFigure1:
    """DCSR drops the empty row 2 of Figure 1's matrix."""

    def test_row_idxs_skip_empty_rows(self, figure1_dcsr):
        assert figure1_dcsr.row_idxs.tolist() == [0, 1, 3]

    def test_ptrs(self, figure1_dcsr):
        assert figure1_dcsr.ptrs.tolist() == [0, 1, 2, 4]

    def test_idxs_and_vals(self, figure1_dcsr):
        assert figure1_dcsr.idxs.tolist() == [0, 2, 1, 3]
        assert figure1_dcsr.vals.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_nonempty_row_count(self, figure1_dcsr):
        assert figure1_dcsr.num_nonempty_rows == 3


class TestValidation:
    def test_empty_row_rejected(self):
        # DCSR stores only non-empty rows: equal consecutive ptrs are
        # a format violation.
        with pytest.raises(FormatError):
            DcsrMatrix((3, 3), [0, 1], [0, 1, 1], [0], [1.0])

    def test_row_idxs_must_increase(self):
        with pytest.raises(FormatError):
            DcsrMatrix((3, 3), [1, 0], [0, 1, 2], [0, 0], [1.0, 1.0])

    def test_row_index_out_of_bounds(self):
        with pytest.raises(FormatError):
            DcsrMatrix((2, 3), [5], [0, 1], [0], [1.0])

    def test_unsorted_columns(self):
        with pytest.raises(FormatError):
            DcsrMatrix((2, 4), [0], [0, 2], [2, 1], [1.0, 1.0])


class TestOperations:
    def test_nonempty_row_accessor(self, figure1_dcsr):
        row, idxs, vals = figure1_dcsr.nonempty_row(2)
        assert row == 3
        assert idxs.tolist() == [1, 3]
        assert vals.tolist() == [3.0, 4.0]

    def test_to_dense(self, figure1_dcsr, figure1_matrix):
        assert np.allclose(figure1_dcsr.to_dense(),
                           figure1_matrix.to_dense())

    def test_dense_round_trip(self, small_dcsr):
        again = DcsrMatrix.from_dense(small_dcsr.to_dense())
        assert again == small_dcsr

    def test_nbytes_smaller_than_csr_when_hypersparse(self):
        # One non-zero in a 1000-row matrix: DCSR's advantage case.
        dense = np.zeros((1000, 4))
        dense[500, 2] = 1.0
        dcsr = DcsrMatrix.from_dense(dense)
        from repro.formats.csr import CsrMatrix

        csr = CsrMatrix.from_dense(dense)
        assert dcsr.nbytes() < csr.nbytes() / 10
