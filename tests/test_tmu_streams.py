"""TU data stream tests (Table 2)."""

import numpy as np
import pytest

from repro.errors import TMUConfigError
from repro.tmu.streams import (
    FwdStream,
    IteStream,
    LdrStream,
    LinStream,
    MapStream,
    MemoryArray,
    MemStream,
)


@pytest.fixture
def array():
    return MemoryArray(data=np.array([10.0, 20.0, 30.0]),
                       base_address=1 << 30, elem_bytes=8, name="p")


class TestMemoryArray:
    def test_addressing(self, array):
        assert array.address_of(2) == (1 << 30) + 16

    def test_load(self, array):
        assert array.load(1) == 20.0

    def test_out_of_bounds(self, array):
        with pytest.raises(TMUConfigError):
            array.load(3)
        with pytest.raises(TMUConfigError):
            array.load(-1)

    def test_must_be_1d(self):
        with pytest.raises(TMUConfigError):
            MemoryArray(np.zeros((2, 2)), 0, 8)


class TestStreams:
    def test_ite_is_identity(self):
        assert IteStream().derive(7) == 7

    def test_mem_loads_at_parent_value(self, array):
        s = MemStream(array, IteStream())
        assert s.derive(2) == 30.0
        assert s.touched_address(2) == array.address_of(2)

    def test_mem_offset(self, array):
        s = MemStream(array, IteStream(), offset=1)
        assert s.derive(0) == 20.0

    def test_lin_transform(self):
        s = LinStream(3.0, 2.0, IteStream())
        assert s.derive(4) == 14.0
        assert s.touched_address(4) is None

    def test_map_lookup(self):
        s = MapStream([9, 8, 7], IteStream())
        assert s.derive(1) == 8

    def test_map_table_bounded_to_16(self):
        with pytest.raises(TMUConfigError):
            MapStream(list(range(17)), IteStream())
        with pytest.raises(TMUConfigError):
            MapStream([], IteStream())

    def test_map_index_out_of_table(self):
        with pytest.raises(TMUConfigError):
            MapStream([1, 2], IteStream()).derive(5)

    def test_ldr_produces_address(self, array):
        s = LdrStream(array, IteStream())
        assert s.derive(1) == (1 << 30) + 8

    def test_fwd_not_directly_derivable(self):
        src = IteStream("src")
        src.tu = None
        fwd = FwdStream(src)
        with pytest.raises(TMUConfigError):
            fwd.derive(0)
