"""Stack-distance model vs Cache vs FastCache: three-way parity.

The stateless whole-stream pass (:func:`repro.sim.stackdist.hit_mask`)
must produce the *same hit mask on every access* as both stateful
models from a cold start, for any geometry and any access pattern —
that is the license for the hierarchy walk in :mod:`repro.sim.memsys`
to route its batched cold-start walks through it.

The seeded fuzz rotates with ``REPRO_FUZZ_SEED`` (the CI parity-fuzz
job sets it per run), so coverage compounds across runs while any
failure stays reproducible from the seed in the log.

The second half holds the walk itself to account on every Table 4
kernel baseline: identical ``StreamProfile``s, per-level cache stats,
published ``sim.cache.*`` telemetry, and end-to-end ``run_baseline``
cycle results between the fast and reference model families.
"""

import os
from dataclasses import asdict

import numpy as np
import pytest

from repro import obs
from repro.config import CacheConfig, MachineConfig, default_machine
from repro.errors import SimulationError
from repro.formats.convert import coo_to_csf
from repro.generators import uniform_random_matrix, uniform_random_tensor
from repro.kernels import split_rows_cyclic
from repro.kernels.cpals import characterize_cpals
from repro.kernels.mttkrp import characterize_mttkrp
from repro.kernels.pagerank import characterize_pagerank
from repro.kernels.spadd import characterize_spadd
from repro.kernels.spkadd import characterize_spkadd
from repro.kernels.spmm import characterize_spmm
from repro.kernels.spmspm import characterize_spmspm
from repro.kernels.spmv import characterize_spmv
from repro.kernels.sptc import characterize_sptc
from repro.kernels.triangle import characterize_triangle, lower_triangle
from repro.sim.cache import Cache
from repro.sim.fastcache import FastCache
from repro.sim.machine import run_baseline
from repro.sim.memsys import (
    MemoryHierarchy,
    llc_only_profile,
    walk_cache,
)
from repro.sim.stackdist import hit_mask
from repro.sim.trace import KernelTrace

#: rotating fuzz seed: CI sets REPRO_FUZZ_SEED per run so coverage
#: compounds; a failure's log line pins the seed for local replay.
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0x57ACD157"), 0)

# ------------------------------------------------------------ stream fuzzing


def _stream(rng, kind, n, sets, ways):
    """One adversarial line stream of length ``n`` (the same shapes
    ``test_fastcache_equiv`` replays through the stateful pair)."""
    capacity = sets * ways
    if kind == "uniform":
        return rng.integers(0, 4 * capacity + 1, n)
    if kind == "conflict":
        base = rng.integers(0, sets, 1)[0]
        return base + sets * rng.integers(0, 2 * ways + 1, n)
    if kind == "sequential":
        start = rng.integers(0, capacity, 1)[0]
        return np.arange(start, start + n)
    if kind == "thrash":
        loop = sets * (ways + rng.integers(1, 3, 1)[0])
        return np.arange(n) % loop
    if kind == "reuse":
        ws = rng.integers(1, max(2, capacity), 1)[0]
        return rng.integers(0, ws, n)
    # "burst": runs of repeated lines (consecutive-duplicate heavy)
    reps = rng.integers(1, 6, n)
    vals = rng.integers(0, 2 * capacity + 1, n)
    return np.repeat(vals, reps)[:n]


def _three_way(lines: np.ndarray, sets: int, ways: int) -> None:
    """Assert stackdist == cold Cache == cold FastCache on one stream."""
    lines = np.asarray(lines, dtype=np.int64)
    cfg = CacheConfig(sets * ways * 64, ways, 1, 4)
    ref = Cache(cfg).lookup_lines(lines)
    fast = FastCache(cfg).lookup_lines(lines)
    sd = hit_mask(lines, sets, ways)
    np.testing.assert_array_equal(sd, ref)
    np.testing.assert_array_equal(sd, fast)


class TestFuzzEquivalence:
    def test_randomized_streams(self):
        """720+ randomized cold-start streams across random geometries,
        rotating with REPRO_FUZZ_SEED."""
        rng = np.random.default_rng(FUZZ_SEED)
        kinds = ("uniform", "conflict", "sequential", "thrash", "reuse",
                 "burst")
        streams = 0
        for _rep in range(120):
            sets = int(rng.choice([1, 2, 4, 8, 16, 32, 64]))
            ways = int(rng.integers(1, 17, 1)[0])
            for kind in kinds:
                n = int(rng.integers(1, 500, 1)[0])
                _three_way(_stream(rng, kind, n, sets, ways), sets, ways)
                streams += 1
        assert streams >= 720

    def test_long_streams_exercise_block_table(self):
        """Streams long and query-heavy enough to route through the
        block distinct-count screen and the chunked lockstep scan."""
        rng = np.random.default_rng(FUZZ_SEED ^ 0xA2C402ED)
        for sets, ways in ((64, 8), (256, 16), (16, 12)):
            capacity = sets * ways
            for kind in ("uniform", "thrash", "reuse"):
                lines = _stream(rng, kind, 60_000, sets, ways)
                _three_way(lines, sets, ways)
            # wrap-around loop at 2x capacity: every access's window
            # spans half the stream — worst case for the screens
            _three_way(np.arange(60_000) % (2 * capacity), sets, ways)

    def test_monotonic_early_exit_is_exact(self):
        """Strictly monotonic streams take the all-cold-miss early
        exit; the shortcut must agree with the stateful models, and
        near-monotonic streams (one repeat) must not take it."""
        for lines in (np.arange(5000), np.arange(5000)[::-1].copy(),
                      np.arange(0, 15000, 3)):
            _three_way(lines, 64, 8)
            assert not hit_mask(np.asarray(lines), 64, 8).any()
        nearly = np.arange(5000)
        nearly[2500] = nearly[2499]  # one plateau: exit must not fire
        _three_way(nearly, 64, 8)
        assert hit_mask(nearly, 64, 8).sum() == 1

    def test_single_access_and_empty(self):
        assert hit_mask(np.zeros(0, dtype=np.int64), 4, 2).size == 0
        _three_way(np.array([7]), 4, 2)
        _three_way(np.array([7, 7]), 4, 2)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(SimulationError):
            hit_mask(np.arange(10), 3, 2)

    def test_direct_mapped_and_single_set(self):
        rng = np.random.default_rng(FUZZ_SEED ^ 0xD19E57)
        _three_way(rng.integers(0, 64, 4000), 16, 1)  # direct-mapped
        _three_way(rng.integers(0, 64, 4000), 1, 16)  # fully assoc.


# ---------------------------------------------- Table 4 kernel walk parity


def _kernel_traces() -> dict:
    """Baseline KernelTraces of the Table 4 kernels on small inputs."""
    machine = default_machine()
    matrix = uniform_random_matrix(40, 40, 5, seed=13)
    coo = uniform_random_tensor((10, 9, 8), 150, seed=6)
    return {
        "spmv": lambda: characterize_spmv(matrix, machine),
        "spmm": lambda: characterize_spmm(matrix, 8, machine),
        "spmspm": lambda: characterize_spmspm(
            matrix, matrix.transpose(), machine),
        "spadd": lambda: characterize_spadd(
            matrix, matrix.transpose(), machine),
        "spkadd": lambda: characterize_spkadd(
            split_rows_cyclic(matrix, 4), machine),
        "pagerank": lambda: characterize_pagerank(matrix, machine),
        "triangle": lambda: characterize_triangle(
            lower_triangle(uniform_random_matrix(50, 50, 6, seed=21)),
            machine),
        "mttkrp": lambda: characterize_mttkrp(coo, 4, machine),
        "cpals": lambda: characterize_cpals(coo, 4, machine),
        "sptc": lambda: characterize_sptc(
            coo_to_csf(coo),
            coo_to_csf(uniform_random_tensor((8, 9, 10), 150, seed=8)),
            machine),
    }


def _machines() -> tuple[MachineConfig, MachineConfig]:
    fast = default_machine()
    from dataclasses import replace

    return fast, replace(fast, fast_cache=False)


def _cache_counters(registry) -> dict:
    body = registry.as_dict()
    return {name: data for name, data in body.get("counters", {}).items()
            if name.startswith("sim.cache.")}


@pytest.mark.parametrize("kernel", sorted(_kernel_traces()))
def test_walk_parity_on_kernel(kernel):
    """Fast-model hierarchy walks (stack-distance) must match the
    reference walk on every Table 4 kernel baseline: StreamProfiles,
    per-level stats, published telemetry, and end-to-end cycles."""
    trace = _kernel_traces()[kernel]()
    m_fast, m_ref = _machines()

    results = {}
    for tag, machine in (("fast", m_fast), ("reference", m_ref)):
        walk_cache().clear()
        h = MemoryHierarchy(machine)
        with obs.capture() as registry:
            profile = h.profile(trace)
            llc = llc_only_profile(machine, trace.streams)
        results[tag] = {
            "profiles": [asdict(sp) for sp in profile.streams],
            "llc": [asdict(sp) for sp in llc.streams],
            "stats": [(c.stats.accesses, c.stats.hits)
                      for c in (h.l1, h.l2, h.llc)],
            "telemetry": _cache_counters(registry),
        }
    assert results["fast"] == results["reference"]

    # end-to-end: identical cycle results from both model families
    walk_cache().clear()
    base_fast = run_baseline(trace, m_fast)
    walk_cache().clear()
    base_ref = run_baseline(trace, m_ref)
    assert base_fast.cycles == base_ref.cycles
    assert asdict(base_fast.breakdown) == asdict(base_ref.breakdown)


def test_fuzzed_traces_walk_parity():
    """Randomized multi-stream traces through the full hierarchy walk:
    fast and reference machines agree on every profile field."""
    rng = np.random.default_rng(FUZZ_SEED ^ 0xC0FFEE)
    from repro.sim.trace import AccessStream

    for _rep in range(10):
        streams = []
        for i in range(int(rng.integers(1, 5, 1)[0])):
            n = int(rng.integers(1, 4000, 1)[0])
            kind = "write" if rng.random() < 0.25 else "read"
            addrs = rng.integers(0, 1 << 22, n) * 8
            streams.append(AccessStream(addresses=addrs, elem_bytes=8,
                                        kind=kind, label=f"s{i}",
                                        dependent=bool(rng.random() < .5),
                                        gather=bool(rng.random() < .3)))
        trace = KernelTrace(name="fuzz", streams=streams)
        m_fast, m_ref = _machines()
        walk_cache().clear()
        pf = MemoryHierarchy(m_fast).profile(trace)
        walk_cache().clear()
        pr = MemoryHierarchy(m_ref).profile(trace)
        assert [asdict(a) for a in pf.streams] == \
               [asdict(b) for b in pr.streams]
