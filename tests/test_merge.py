"""Merge machinery tests (Section 2.4), incl. property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FiberError
from repro.fibers.fiber import Fiber
from repro.fibers.merge import (
    conjunctive_merge,
    disjunctive_merge,
    lockstep_coiterate,
    merge_to_fiber,
    reduce_by_index,
)


def fiber_strategy(max_index=20, max_len=10):
    return st.lists(
        st.integers(0, max_index), max_size=max_len, unique=True
    ).map(lambda idx: Fiber(
        np.sort(np.asarray(idx, dtype=np.int64)),
        np.arange(1.0, len(idx) + 1.0), validate=False))


class TestFigure2:
    """The exact example of the paper's Figure 2."""

    @pytest.fixture
    def fibers(self):
        a = Fiber([0, 2, 3], [1.0, 2.0, 3.0])     # A: a _ b c
        b = Fiber([0, 1, 3], [10.0, 20.0, 30.0])  # B: d e _ f
        return [a, b]

    def test_disjunctive_masks(self, fibers):
        points = list(disjunctive_merge(fibers))
        # paper: msk stream is 11, 01, 10, 11
        assert [p.mask for p in points] == [0b11, 0b10, 0b01, 0b11]
        assert [p.index for p in points] == [0, 1, 2, 3]

    def test_disjunctive_sums(self, fibers):
        out = merge_to_fiber(disjunctive_merge(fibers))
        assert out.indices.tolist() == [0, 1, 2, 3]
        assert out.values.tolist() == [11.0, 20.0, 2.0, 33.0]

    def test_conjunctive_intersection(self, fibers):
        points = list(conjunctive_merge(fibers))
        assert [p.index for p in points] == [0, 3]
        assert all(p.mask == 0b11 for p in points)

    def test_conjunctive_products(self, fibers):
        out = merge_to_fiber(conjunctive_merge(fibers), combine="prod")
        assert out.indices.tolist() == [0, 3]
        assert out.values.tolist() == [10.0, 90.0]


class TestProperties:
    @given(st.lists(fiber_strategy(), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_disjunctive_is_union(self, fibers):
        points = list(disjunctive_merge(fibers))
        expected = sorted(set().union(
            *[set(f.indices.tolist()) for f in fibers]))
        assert [p.index for p in points] == expected

    @given(st.lists(fiber_strategy(), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_conjunctive_is_intersection(self, fibers):
        points = list(conjunctive_merge(fibers))
        expected = sorted(set.intersection(
            *[set(f.indices.tolist()) for f in fibers]))
        assert [p.index for p in points] == expected

    @given(st.lists(fiber_strategy(), min_size=2, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_disjunctive_sum_matches_dense(self, fibers):
        size = 21
        out = merge_to_fiber(disjunctive_merge(fibers))
        expected = sum(f.to_dense(size) for f in fibers)
        assert np.allclose(out.to_dense(size), expected)

    @given(st.lists(fiber_strategy(), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_masks_cover_every_element_once(self, fibers):
        consumed = [0] * len(fibers)
        for p in disjunctive_merge(fibers):
            for lane in p.active_lanes():
                consumed[lane] += 1
        assert consumed == [f.nnz for f in fibers]


class TestLockstep:
    def test_pads_shorter_fibers(self):
        a = Fiber([0, 1, 2], [1.0, 2.0, 3.0])
        b = Fiber([0, 5], [10.0, 20.0])
        points = list(lockstep_coiterate([a, b]))
        assert len(points) == 3
        assert points[2].mask == 0b01
        assert points[2].values == (3.0, 0.0)

    def test_empty_input_rejected(self):
        with pytest.raises(FiberError):
            list(lockstep_coiterate([]))


class TestReduce:
    def test_accumulates_duplicates(self):
        out = reduce_by_index([1, 1, 3, 3, 3], [1.0, 2.0, 3.0, 4.0, 5.0])
        assert out.indices.tolist() == [1, 3]
        assert out.values.tolist() == [3.0, 12.0]

    def test_rejects_unsorted(self):
        with pytest.raises(FiberError):
            reduce_by_index([3, 1], [1.0, 2.0])

    def test_empty(self):
        assert reduce_by_index([], []).nnz == 0
