"""Programming-API validation tests (Figure 8, Section 4.4)."""

import numpy as np
import pytest

from repro.errors import TMUConfigError
from repro.tmu.program import (
    Event,
    LayerMode,
    MaskOperand,
    Program,
    ScalarOperand,
    VectorOperand,
)


@pytest.fixture
def prog():
    return Program("test", lanes=2)


class TestDeclaration:
    def test_lane_auto_increment(self, prog):
        layer = prog.add_layer(LayerMode.LOCKSTEP)
        tu0 = layer.dns_fbrt(beg=0, end=4)
        tu1 = layer.dns_fbrt(beg=0, end=4)
        assert (tu0.lane, tu1.lane) == (0, 1)

    def test_lane_overflow(self, prog):
        layer = prog.add_layer(LayerMode.LOCKSTEP)
        layer.dns_fbrt(beg=0, end=4)
        layer.dns_fbrt(beg=0, end=4)
        with pytest.raises(TMUConfigError):
            layer.dns_fbrt(beg=0, end=4)

    def test_out_of_order_lane_rejected(self, prog):
        layer = prog.add_layer(LayerMode.LOCKSTEP)
        with pytest.raises(TMUConfigError):
            layer.dns_fbrt(beg=0, end=4, lane=1)

    def test_layer_budget(self):
        prog = Program("deep", lanes=1, max_layers=2)
        prog.add_layer(LayerMode.SINGLE)
        prog.add_layer(LayerMode.SINGLE)
        with pytest.raises(TMUConfigError):
            prog.add_layer(LayerMode.SINGLE)

    def test_needs_at_least_one_lane(self):
        with pytest.raises(TMUConfigError):
            Program("zero", lanes=0)


class TestOperands:
    def test_vec_operand_requires_local_streams(self, prog):
        l0 = prog.add_layer(LayerMode.BCAST)
        tu = l0.dns_fbrt(beg=0, end=4)
        arr = prog.place_array(np.zeros(4), 8, "a")
        s0 = tu.add_mem_stream(arr)
        l1 = prog.add_layer(LayerMode.SINGLE)
        l1.rng_fbrt(beg=s0, end=s0)
        with pytest.raises(TMUConfigError):
            l1.vec_operand([s0])  # s0 lives in layer 0

    def test_vec_operand_nonempty(self, prog):
        layer = prog.add_layer(LayerMode.SINGLE)
        layer.dns_fbrt(beg=0, end=4)
        with pytest.raises(TMUConfigError):
            layer.vec_operand([])

    def test_operand_kinds(self, prog):
        layer = prog.add_layer(LayerMode.SINGLE)
        tu = layer.dns_fbrt(beg=0, end=4)
        arr = prog.place_array(np.zeros(4), 8, "a")
        s = tu.add_mem_stream(arr)
        assert isinstance(layer.vec_operand([s]), VectorOperand)
        assert isinstance(layer.mask_operand(), MaskOperand)
        assert ScalarOperand(s).label() == s.name


class TestValidation:
    def test_empty_program(self, prog):
        with pytest.raises(TMUConfigError):
            prog.validate()

    def test_layer_without_tus(self, prog):
        prog.add_layer(LayerMode.SINGLE)
        with pytest.raises(TMUConfigError):
            prog.validate()

    def test_uniform_streams_per_layer(self, prog):
        layer = prog.add_layer(LayerMode.LOCKSTEP)
        tu0 = layer.dns_fbrt(beg=0, end=4)
        layer.dns_fbrt(beg=0, end=4)
        arr = prog.place_array(np.zeros(4), 8, "a")
        tu0.add_mem_stream(arr)
        with pytest.raises(TMUConfigError):
            prog.validate()

    def test_merge_layer_needs_merge_key(self, prog):
        l0 = prog.add_layer(LayerMode.BCAST)
        row = l0.dns_fbrt(beg=0, end=2)
        arr = prog.place_array(np.array([0, 1, 2]), 4, "ptrs")
        beg = row.add_mem_stream(arr)
        end = row.add_mem_stream(arr, offset=1)
        l1 = prog.add_layer(LayerMode.DISJ_MRG)
        l1.rng_fbrt(beg=beg, end=end)  # no merge key set
        with pytest.raises(TMUConfigError):
            prog.validate()

    def test_unknown_event_rejected(self, prog):
        layer = prog.add_layer(LayerMode.SINGLE)
        layer.dns_fbrt(beg=0, end=2)
        with pytest.raises(TMUConfigError):
            layer.add_callback("not-an-event", "cb", [])

    def test_valid_spmv_program_passes(self, prog):
        arr_p = prog.place_array(np.array([0, 2, 4]), 4, "ptrs")
        arr_v = prog.place_array(np.zeros(4), 8, "vals")
        l0 = prog.add_layer(LayerMode.BCAST)
        row = l0.dns_fbrt(beg=0, end=2)
        beg = row.add_mem_stream(arr_p)
        end = row.add_mem_stream(arr_p, offset=1)
        l1 = prog.add_layer(LayerMode.LOCKSTEP)
        for lane in range(2):
            col = l1.rng_fbrt(beg=beg, end=end, offset=lane, stride=2)
            col.add_mem_stream(arr_v)
        prog.validate()

    def test_arrays_get_disjoint_regions(self, prog):
        a = prog.place_array(np.zeros(10), 8, "a")
        b = prog.place_array(np.zeros(10), 8, "b")
        assert abs(a.base_address - b.base_address) >= 10 * 8


class TestEvents:
    def test_callbacks_filtered_by_event(self, prog):
        layer = prog.add_layer(LayerMode.SINGLE)
        layer.dns_fbrt(beg=0, end=2)
        layer.add_callback(Event.GITE, "body", [])
        layer.add_callback(Event.GEND, "tail", [])
        assert [c.callback_id for c in layer.callbacks_for(Event.GITE)
                ] == ["body"]
        assert [c.callback_id for c in layer.callbacks_for(Event.GEND)
                ] == ["tail"]
