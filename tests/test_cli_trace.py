"""CLI tests for ``--trace`` and the ``repro trace`` subcommands.

Drives the exact pipeline the docs and the bench-smoke CI job use:
record a traced fig10 run, export it to Perfetto JSON, and render the
stall report — all in-process through ``cli.main`` for speed.

The figure drivers go through the analytic characterization + interval
core models, so a CLI-recorded trace carries ``sim.*`` and ``runtime.*``
tracks; the TMU-pipeline sections of the report are exercised on a
trace captured from a real :class:`TmuEngine` run.  ``run_workload`` is
memoized in-process, so the real recording happens once (module scope)
— later CLI runs in the same process simulate nothing new.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs, runtime
from repro.cli import main


@pytest.fixture(autouse=True)
def _fresh_state():
    yield
    runtime.reset()
    obs.disable_tracing()
    obs.disable()


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    """A real sampled trace from a tiny fig10 run (recorded once; the
    workload memo makes later in-process runs trace almost nothing)."""
    from repro.eval.workloads import run_workload

    # earlier tests in the session may have warmed the memo; clear it so
    # this recording actually simulates and emits sim.* events
    run_workload.cache_clear()
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    rc = main(
        [
            "fig10",
            "--workloads",
            "spmv",
            "--no-cache",
            "--trace",
            str(path),
            "--trace-sample",
            "4",
        ]
    )
    runtime.reset()
    assert rc == 0
    return path


@pytest.fixture(scope="module")
def engine_trace(tmp_path_factory):
    """A trace file captured from a real TMU engine run (the CLI's
    figure drivers use the analytic models, not the event-level FSM)."""
    from repro.formats.csr import CsrMatrix
    from repro.programs.spmv import build_spmv_program
    from repro.tmu.engine import TmuEngine

    a = CsrMatrix.from_dense(np.array([[1.0, 0, 2], [0, 3, 0], [4, 0, 5]]))
    built = build_spmv_program(a, np.ones(3))
    with obs.trace_capture():
        stats = TmuEngine(built.program).run(built.handlers)
        trace = obs.trace_snapshot(meta={"experiments": "spmv-engine"})
    path = obs.write_trace(trace, tmp_path_factory.mktemp("engine") / "t.json")
    return path, stats


class TestRecord:
    def test_run_flag_writes_a_valid_trace(self, recorded_trace):
        trace = obs.load_trace(recorded_trace)
        obs.validate_trace(trace)
        assert trace["sample_every"] == 4
        assert trace["events"]
        assert trace["meta"]["experiments"] == "fig10"
        assert trace["meta"]["workloads"] == "spmv"
        tracks = {e[3] for e in trace["events"]}
        assert any(t.startswith("sim.core") for t in tracks)
        assert any(t.startswith("sim.cache.") for t in tracks)
        assert "runtime.executor" in tracks

    def test_tracing_switch_is_off_after_the_run(self, recorded_trace):
        assert not obs.tracing_enabled()

    def test_trace_flag_reports_on_stderr(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        rc = main(["fig10", "--workloads", "spmv", "--no-cache", "--trace", str(out)])
        assert rc == 0
        assert "trace:" in capsys.readouterr().err
        assert out.exists()

    def test_trace_record_shorthand(self, tmp_path, capsys):
        out = tmp_path / "rec.json"
        rc = main(
            [
                "trace",
                "record",
                "fig10",
                "--workloads",
                "spmv",
                "--out",
                str(out),
                "--sample",
                "4",
            ]
        )
        assert rc == 0
        trace = obs.load_trace(out)
        assert trace["sample_every"] == 4
        capsys.readouterr()

    def test_bad_sample_value_is_an_error(self, tmp_path, capsys):
        rc = main(
            [
                "fig10",
                "--workloads",
                "spmv",
                "--no-cache",
                "--trace",
                str(tmp_path / "t.json"),
                "--trace-sample",
                "0",
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestExport:
    def test_export_writes_perfetto_json(self, recorded_trace, capsys):
        assert main(["trace", "export", str(recorded_trace)]) == 0
        assert "perfetto export:" in capsys.readouterr().out
        out = recorded_trace.parent / "trace.perfetto.json"
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert any(e["ph"] == "M" for e in doc["traceEvents"])

    def test_export_custom_out(self, recorded_trace, tmp_path, capsys):
        out = tmp_path / "custom.json"
        assert main(["trace", "export", str(recorded_trace), "--out", str(out)]) == 0
        assert json.loads(out.read_text())["traceEvents"]
        capsys.readouterr()

    def test_export_missing_trace_is_an_error(self, tmp_path, capsys):
        rc = main(["trace", "export", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestReport:
    def test_report_on_a_cli_recording(self, recorded_trace, capsys):
        assert main(["trace", "report", str(recorded_trace)]) == 0
        out = capsys.readouterr().out
        assert "stall attribution · fig10" in out
        assert "core cycle decomposition (Fig. 11):" in out
        assert "span durations (virtual ticks):" in out

    def test_report_on_an_engine_trace(self, engine_trace, capsys):
        path, stats = engine_trace
        assert main(["trace", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "TMU pipeline (per TG layer):" in out
        assert f"iterations={stats.total_iterations}" in out
        assert f"records={stats.outq_records}" in out
        assert "memory arbiter:" in out
        assert "outQ:" in out

    def test_report_missing_trace_is_an_error(self, tmp_path, capsys):
        rc = main(["trace", "report", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_report_rejects_invalid_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.trace/1"}))
        rc = main(["trace", "report", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
