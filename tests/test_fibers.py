"""Fiber view and traversal function tests (Section 2.3)."""

import pytest

from repro.errors import FiberError
from repro.fibers.fiber import Fiber
from repro.fibers.traversal import (
    iter_compressed,
    iter_coordinates,
    iter_dense,
    scan_and_lookup,
)


class TestFiber:
    def test_requires_increasing_indices(self):
        with pytest.raises(FiberError):
            Fiber([2, 1], [1.0, 2.0])
        with pytest.raises(FiberError):
            Fiber([1, 1], [1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(FiberError):
            Fiber([1, 2], [1.0])

    def test_lookup_binary_search(self):
        f = Fiber([2, 5, 9], [1.0, 2.0, 3.0])
        assert f.lookup(5) == 2.0
        assert f.lookup(3) == 0.0
        assert f.lookup(100) == 0.0

    def test_from_dense_keeps_zeros(self):
        f = Fiber.from_dense([0.0, 3.0, 0.0])
        assert f.nnz == 3
        assert f.lookup(0) == 0.0

    def test_to_dense(self):
        f = Fiber([1, 3], [5.0, 7.0])
        assert f.to_dense(4).tolist() == [0.0, 5.0, 0.0, 7.0]

    def test_to_dense_bounds(self):
        with pytest.raises(FiberError):
            Fiber([5], [1.0]).to_dense(3)

    def test_iteration_and_indexing(self):
        f = Fiber([0, 4], [1.0, 2.0])
        assert list(f) == [(0, 1.0), (4, 2.0)]
        assert f[1] == (4, 2.0)
        assert len(f) == 2


class TestTraversals:
    def test_dense_traversal(self):
        vals = [10.0, 11.0, 12.0, 13.0]
        assert list(iter_dense(vals)) == list(enumerate(vals))
        assert list(iter_dense(vals, beg=1, end=4, stride=2)) == [
            (1, 11.0), (3, 13.0)]

    def test_compressed_traversal(self, figure1_matrix):
        from repro.formats.convert import coo_to_csr

        csr = coo_to_csr(figure1_matrix)
        row3 = list(iter_compressed(csr.ptrs, csr.idxs, csr.vals, 3))
        assert row3 == [(1, 3.0), (3, 4.0)]
        assert list(iter_compressed(csr.ptrs, csr.idxs, csr.vals, 2)) == []

    def test_compressed_offset_stride(self, figure1_matrix):
        from repro.formats.convert import coo_to_csr

        csr = coo_to_csr(figure1_matrix)
        # offset=1, stride=2 over row 3: just the second element
        row = list(iter_compressed(csr.ptrs, csr.idxs, csr.vals, 3,
                                   stride=2, offset=1))
        assert row == [(3, 4.0)]

    def test_coordinate_traversal(self, small_tensor):
        seen = list(iter_coordinates(small_tensor.coords,
                                     small_tensor.values))
        assert len(seen) == small_tensor.nnz
        coords = [c for c, _ in seen]
        assert coords == sorted(coords)

    def test_scan_and_lookup_matches_spmv_row(self, small_csr, rng):
        b = rng.random(small_csr.num_cols)
        i = 3
        total = sum(nv * bv for _, nv, bv in scan_and_lookup(
            small_csr.ptrs, small_csr.idxs, small_csr.vals, b, i))
        assert total == pytest.approx(small_csr.to_dense()[i] @ b)
