"""Tests for multicore partitioning and the SpMSpM schedules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError, WorkloadError
from repro.generators import uniform_random_matrix
from repro.kernels import spmspm
from repro.kernels.schedules import (
    schedule_merge_work,
    spmspm_inner_product,
    spmspm_outer_product,
)
from repro.sim.parallel import (
    core_scaling,
    parallel_speedup,
    partition_rows,
    run_parallel,
)


class TestPartitioning:
    def test_covers_all_rows_contiguously(self):
        shards = partition_rows([1] * 10, 3)
        assert shards[0][0] == 0 and shards[-1][1] == 10
        for (b1, e1), (b2, e2) in zip(shards, shards[1:]):
            assert e1 == b2

    def test_balances_by_weight(self):
        # one heavy row at the front: the first shard should be tiny
        weights = [100] + [1] * 99
        shards = partition_rows(weights, 2)
        w = np.asarray(weights)
        first = w[shards[0][0]:shards[0][1]].sum()
        second = w[shards[1][0]:shards[1][1]].sum()
        assert abs(first - second) <= 100

    def test_more_parts_than_rows(self):
        shards = partition_rows([1, 1], 5)
        assert len(shards) == 5
        assert shards[0][0] == 0 and shards[-1][1] == 2

    def test_empty_rows(self):
        assert partition_rows([], 3) == [(0, 0)] * 3

    def test_invalid_parts(self):
        with pytest.raises(SimulationError):
            partition_rows([1], 0)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200),
           st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_partition_is_exact_cover(self, weights, parts):
        shards = partition_rows(weights, parts)
        covered = []
        for beg, end in shards:
            covered.extend(range(beg, end))
        assert covered == list(range(len(weights)))


class TestParallelRuns:
    def test_slowest_shard_dominates(self, small_machine):
        weights = [1] * 64
        result = run_parallel(lambda b, e: float(e - b) * 100, weights,
                              small_machine)
        assert result.total_cycles == pytest.approx(
            max(result.shard_cycles))
        assert result.imbalance >= 1.0

    def test_bandwidth_floor_binds(self, small_machine):
        result = run_parallel(lambda b, e: 1.0, [1] * 8, small_machine,
                              total_mem_bytes=1e9)
        assert result.total_cycles == pytest.approx(
            result.bandwidth_floor)

    def test_speedup_helper(self):
        assert parallel_speedup([1] * 64, 8) == pytest.approx(8.0)
        # a single dominant row caps scaling
        assert parallel_speedup([1000] + [1] * 7, 8) < 1.2

    def test_core_scaling_knee(self, small_machine):
        # compute-light, traffic-heavy workload saturates early
        curve = core_scaling(small_machine, per_core_cycles=1000.0,
                             per_core_mem_bytes=1e6,
                             core_counts=(1, 2, 4, 8, 16))
        assert curve[1] == pytest.approx(1.0)
        assert curve[16] == curve[8]  # bandwidth wall
        # compute-heavy workload keeps scaling
        curve2 = core_scaling(small_machine, per_core_cycles=1e9,
                              per_core_mem_bytes=10.0,
                              core_counts=(1, 8))
        assert curve2[8] == pytest.approx(8.0, rel=0.01)

    def test_core_scaling_validation(self, small_machine):
        with pytest.raises(SimulationError):
            core_scaling(small_machine, 1.0, 1.0, (0,))


class TestSchedules:
    @pytest.fixture
    def operands(self):
        a = uniform_random_matrix(14, 12, 3, seed=71)
        b = uniform_random_matrix(12, 16, 3, seed=72)
        return a, b

    def test_all_schedules_agree(self, operands):
        a, b = operands
        reference = a.to_dense() @ b.to_dense()
        assert np.allclose(spmspm(a, b).to_dense(), reference)
        assert np.allclose(spmspm_inner_product(a, b).to_dense(),
                           reference)
        assert np.allclose(spmspm_outer_product(a, b).to_dense(),
                           reference)

    def test_dimension_checks(self, operands):
        a, _ = operands
        bad = uniform_random_matrix(5, 5, 2, seed=1)
        with pytest.raises(WorkloadError):
            spmspm_inner_product(a, bad)
        with pytest.raises(WorkloadError):
            spmspm_outer_product(a, bad)

    def test_gustavson_does_least_merge_work(self, operands):
        """The paper's rationale for the (ikj) schedule: on sparse
        outputs Gustavson traverses far fewer elements than the inner
        product and no more than the outer product."""
        a, b = operands
        work = schedule_merge_work(a, b)
        assert work["ikj"] <= work["kij"]
        assert work["ikj"] < work["ijk"]

    def test_merge_work_matches_gustavson_scan(self, operands):
        a, b = operands
        work = schedule_merge_work(a, b)
        scanned = int(np.diff(b.ptrs)[a.idxs].sum())
        assert work["ikj"] == scanned

    @given(st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_schedules_agree_on_random_inputs(self, seed):
        a = uniform_random_matrix(8, 9, 2, seed=seed)
        b = uniform_random_matrix(9, 7, 2, seed=seed + 50)
        reference = a.to_dense() @ b.to_dense()
        assert np.allclose(spmspm_outer_product(a, b).to_dense(),
                           reference)
        assert np.allclose(spmspm_inner_product(a, b).to_dense(),
                           reference)
