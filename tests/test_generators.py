"""Input generator and suite-registry tests (Table 6)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.generators import (
    banded_matrix,
    clustered_tensor,
    diagonal_block_matrix,
    fixed_nnz_per_row_matrix,
    load_matrix,
    load_tensor,
    matrix_ids,
    power_law_matrix,
    road_network_matrix,
    stencil_3d_matrix,
    tensor_ids,
    uniform_random_matrix,
    uniform_random_tensor,
)
from repro.generators.suite import MATRIX_SUITE, TENSOR_SUITE


class TestGenerators:
    def test_determinism(self):
        a = uniform_random_matrix(50, 50, 3, seed=5)
        b = uniform_random_matrix(50, 50, 3, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = uniform_random_matrix(50, 50, 3, seed=5)
        b = uniform_random_matrix(50, 50, 3, seed=6)
        assert a != b

    def test_banded_stays_in_band(self):
        band = 10
        m = banded_matrix(100, nnz_per_row=4, bandwidth=band, seed=1)
        row_of = np.repeat(np.arange(m.num_rows), m.row_nnz())
        assert np.all(np.abs(m.idxs - row_of) <= band)

    def test_banded_keeps_diagonal(self):
        m = banded_matrix(50, nnz_per_row=3, bandwidth=5, seed=2)
        dense = m.to_dense()
        assert np.all(np.diagonal(dense) != 0)

    def test_stencil_7pt_degree(self):
        m = stencil_3d_matrix(6, 6, 6, points=7, seed=0)
        # interior nodes have exactly 7 neighbours
        interior = m.row_nnz().max()
        assert interior == 7
        assert m.row_nnz().min() >= 4  # corners

    def test_stencil_symmetric(self):
        m = stencil_3d_matrix(4, 4, 4, seed=0)
        d = m.to_dense()
        assert np.allclose(d != 0, (d != 0).T)

    def test_stencil_invalid_points(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            stencil_3d_matrix(4, 4, 4, points=9)

    def test_power_law_is_skewed(self):
        m = power_law_matrix(500, nnz_per_row=4.0, seed=3)
        degrees = np.sort(m.row_nnz())[::-1]
        # top 10% of rows hold well over 10% of the nnz
        top = degrees[: len(degrees) // 10].sum()
        assert top > 0.2 * m.nnz

    def test_road_network_low_degree(self):
        m = road_network_matrix(1000, seed=4)
        assert 1.5 < m.nnz / m.num_rows < 4.5

    def test_fixed_nnz_per_row(self):
        m = fixed_nnz_per_row_matrix(32, 8, seed=0)
        assert np.all(m.row_nnz() == 8)
        assert np.all(m.idxs < 8)  # columns 0..n-1, as Figure 12c says

    def test_diagonal_block_structure(self):
        m = diagonal_block_matrix(64, block=16, fill=0.5, seed=1)
        row_of = np.repeat(np.arange(m.num_rows), m.row_nnz())
        assert np.all(row_of // 16 == m.idxs // 16)

    def test_clustered_tensor_shapes(self):
        t = clustered_tensor((10, 20, 30), 200, skews=[0, 1, 2], seed=1)
        assert t.shape == (10, 20, 30)
        assert 0 < t.nnz <= 200

    def test_uniform_tensor(self):
        t = uniform_random_tensor((5, 5, 5), 50, seed=2)
        assert t.ndim == 3


class TestSuite:
    def test_ids(self):
        assert matrix_ids() == ["M1", "M2", "M3", "M4", "M5", "M6"]
        assert tensor_ids() == ["T1", "T2", "T3", "T4"]

    def test_unknown_id_rejected(self):
        with pytest.raises(WorkloadError):
            load_matrix("M9")
        with pytest.raises(WorkloadError):
            load_tensor("T9")

    def test_unknown_scale_rejected(self):
        with pytest.raises(WorkloadError):
            load_matrix("M1", "gigantic")

    def test_memoization(self):
        assert load_matrix("M1", "small") is load_matrix("M1", "small")

    @pytest.mark.parametrize("input_id", ["M1", "M2", "M3", "M4", "M5",
                                          "M6"])
    def test_nnz_per_row_tracks_paper(self, input_id):
        spec = MATRIX_SUITE[input_id]
        m = load_matrix(input_id, "small")
        generated = m.nnz / max(1, m.num_rows)
        if spec.nnz_per_row >= 5:
            assert generated == pytest.approx(spec.nnz_per_row,
                                              rel=0.45)
        else:
            assert generated == pytest.approx(spec.nnz_per_row,
                                              abs=2.0)

    @pytest.mark.parametrize("input_id", ["T1", "T2", "T3", "T4"])
    def test_tensor_arity_matches_paper(self, input_id):
        spec = TENSOR_SUITE[input_id]
        t = load_tensor(input_id, "small")
        assert t.ndim == spec.paper_rows_or_dims.count("x") + 1


class TestScaleConsistency:
    def test_medium_is_larger_than_small(self):
        small = load_matrix("M2", "small")
        medium = load_matrix("M2", "medium")
        assert medium.nnz > 4 * small.nnz
        # density profile is scale-invariant
        assert (medium.nnz / medium.num_rows) == pytest.approx(
            small.nnz / small.num_rows, rel=0.25)

    def test_speedup_stable_across_scales(self):
        """The headline result must not be an artifact of one scale."""
        from repro.config import experiment_machine
        from repro.eval.workloads import run_workload

        small = run_workload("spmv", "M2",
                             experiment_machine("small"), "small")
        medium = run_workload("spmv", "M2",
                              experiment_machine("medium"), "medium")
        assert medium.speedup == pytest.approx(small.speedup, rel=0.35)
