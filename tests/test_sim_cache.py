"""Cache model tests, including LRU property checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.sim.cache import Cache, dedup_consecutive, to_lines


def tiny_cache(sets=2, ways=2):
    return Cache(CacheConfig(sets * ways * 64, ways, 1, 4))


class TestBasics:
    def test_cold_misses_then_hits(self):
        c = tiny_cache()
        first = c.lookup_lines(np.array([0, 1, 2, 3]))
        assert not first.any()
        second = c.lookup_lines(np.array([0, 1, 2, 3]))
        assert second.all()

    def test_capacity_eviction_lru(self):
        c = tiny_cache(sets=1, ways=2)
        # lines 0, 2, 4 map to the same (only) set
        c.lookup_lines(np.array([0, 2]))
        c.lookup_lines(np.array([4]))       # evicts 0 (LRU)
        hits = c.lookup_lines(np.array([2, 4, 0]))
        assert hits.tolist() == [True, True, False]

    def test_recency_update_on_hit(self):
        c = tiny_cache(sets=1, ways=2)
        c.lookup_lines(np.array([0, 2]))
        c.lookup_lines(np.array([0]))       # 0 becomes MRU
        c.lookup_lines(np.array([4]))       # evicts 2
        hits = c.lookup_lines(np.array([0, 2]))
        assert hits.tolist() == [True, False]

    def test_stats_accumulate(self):
        c = tiny_cache()
        c.lookup_lines(np.array([0, 0, 1]))
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)

    def test_reset(self):
        c = tiny_cache()
        c.lookup_lines(np.array([0]))
        c.reset()
        assert c.stats.accesses == 0
        assert not c.lookup_lines(np.array([0])).any()

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(SimulationError):
            Cache(CacheConfig(3 * 64, 1, 1, 1))


class TestHelpers:
    def test_to_lines(self):
        addrs = np.array([0, 63, 64, 128])
        assert to_lines(addrs, 64).tolist() == [0, 0, 1, 2]

    def test_to_lines_rejects_non_power_of_two(self):
        with pytest.raises(SimulationError):
            to_lines(np.array([0]), 48)

    def test_dedup_consecutive(self):
        lines = np.array([5, 5, 5, 6, 5, 5])
        assert dedup_consecutive(lines).tolist() == [5, 6, 5]

    def test_dedup_empty(self):
        assert dedup_consecutive(np.zeros(0, dtype=np.int64)).size == 0


class TestProperties:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_working_set_within_capacity_always_hits_on_repeat(self,
                                                               lines):
        """Any access sequence over at most `ways` distinct lines per
        set fully hits on the second pass (LRU never evicts a line that
        still fits)."""
        c = Cache(CacheConfig(64 * 64, 64, 1, 4))  # fully assoc. 64 ways
        distinct = sorted(set(lines))
        if len(distinct) > 64:
            return
        arr = np.asarray(lines)
        c.lookup_lines(arr)
        assert c.lookup_lines(arr[::-1].copy()).all()

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_hits_never_exceed_accesses(self, lines):
        c = tiny_cache(sets=4, ways=2)
        c.lookup_lines(np.asarray(lines))
        assert 0 <= c.stats.hits <= c.stats.accesses

    @given(st.lists(st.integers(0, 30), min_size=2, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_immediate_repeat_always_hits(self, lines):
        c = tiny_cache(sets=4, ways=2)
        arr = np.repeat(np.asarray(lines), 2)  # every line twice in a row
        hits = c.lookup_lines(arr)
        assert hits[1::2].all()
