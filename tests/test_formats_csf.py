"""Tests for the CSF format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.formats.convert import coo_to_csf, csf_to_coo
from repro.formats.coo import CooTensor
from repro.formats.csf import CsfTensor


class TestStructure:
    def test_tree_levels_align(self, small_csf):
        t = small_csf
        assert t.ptrs[0].tolist() == [0, t.idxs[0].size]
        for lvl in range(1, t.ndim):
            assert t.ptrs[lvl].size == t.idxs[lvl - 1].size + 1
            assert t.ptrs[lvl][-1] == t.idxs[lvl].size
        assert t.vals.size == t.idxs[-1].size

    def test_fibers_sorted_and_nonempty(self, small_csf):
        t = small_csf
        for lvl in range(t.ndim):
            ptr = t.ptrs[lvl]
            assert np.all(np.diff(ptr) > 0)
            for f in range(ptr.size - 1):
                seg = t.idxs[lvl][ptr[f]:ptr[f + 1]]
                assert np.all(np.diff(seg) > 0)

    def test_nnz_matches_source(self, small_tensor, small_csf):
        assert small_csf.nnz == small_tensor.nnz

    def test_fiber_accessor(self, small_csf):
        coords, positions = small_csf.fiber(1, 0)
        assert coords.size == positions.size
        assert coords.size >= 1


class TestConversionRoundTrips:
    def test_coo_round_trip(self, small_tensor):
        csf = coo_to_csf(small_tensor)
        again = csf_to_coo(csf)
        assert again == small_tensor

    def test_dense_agrees(self, small_tensor):
        csf = coo_to_csf(small_tensor)
        assert np.allclose(csf.to_dense(), small_tensor.to_dense())

    def test_mode_permutation(self, small_tensor):
        csf = coo_to_csf(small_tensor, mode_order=(2, 0, 1))
        expected = np.transpose(small_tensor.to_dense(), (2, 0, 1))
        assert np.allclose(csf.to_dense(), expected)

    @given(st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_random_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        nnz = int(rng.integers(1, 60))
        coords = [rng.integers(0, 8, nnz) for _ in range(3)]
        t = CooTensor((8, 8, 8), coords, rng.random(nnz))
        assert csf_to_coo(coo_to_csf(t)) == t


class TestValidation:
    def test_bad_root_ptrs(self):
        with pytest.raises(FormatError):
            CsfTensor((2, 2), [[0, 5], [0, 1]], [[0], [0]], [1.0])

    def test_level_count_mismatch(self):
        with pytest.raises(FormatError):
            CsfTensor((2, 2), [[0, 1]], [[0], [0]], [1.0])

    def test_vals_must_align_with_leaves(self):
        with pytest.raises(FormatError):
            CsfTensor((2, 2), [[0, 1], [0, 1]], [[0], [0]],
                      [1.0, 2.0])

    def test_storage_beats_coo_for_shared_prefixes(self):
        # 16 nnz all sharing one (i, j) prefix: CSF stores the prefix
        # once, COO sixteen times.
        coords = [np.zeros(16, dtype=np.int64),
                  np.zeros(16, dtype=np.int64),
                  np.arange(16, dtype=np.int64)]
        t = CooTensor((4, 4, 16), coords, np.ones(16))
        csf = coo_to_csf(t)
        assert csf.nbytes() < t.nbytes()
