"""Tests for repro.store: schema, ingest, queries, auto-ingest hooks.

The store's contract is threefold: numbers survive the round trip
(manifest / snapshot / journal in, identical numbers out), ingest is
idempotent (content-addressed run keys), and a future schema version
is refused rather than silently misread.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro import obs
from repro.errors import StoreError
from repro.obs import Registry
from repro.obs.snapshot import make_snapshot
from repro.obs.tracing import make_trace
from repro.runtime import ManifestEntry, NullCache, RunManifest, Runtime, SimTask
from repro.store import (
    HEADLINE_METRIC,
    STORE_SCHEMA,
    ExperimentStore,
    cell_outcomes,
    cells_per_sec,
    ingest_file,
    ingest_job,
    ingest_manifest,
    ingest_paths,
    ingest_snapshot,
    ingest_trace,
    metric_values,
    open_db,
    regressions,
    runs_overview,
    stall_shares,
)

# ------------------------------------------------------------ test sources


def bench_snapshot(rev: str, cps: float, created: float,
                   cells: int = 10) -> dict:
    """A synthetic ``repro.obs/1`` snapshot with a known headline."""
    reg = Registry()
    reg.counter("runtime.executor.cells").add(cells)
    reg.counter("runtime.executor.cells_simulated").add(cells)
    reg.timer("runtime.executor.batch").observe(cells / cps)
    reg.gauge(HEADLINE_METRIC).set(cps)
    snap = make_snapshot(reg, meta={"rev": rev})
    snap["created_unix"] = created
    return snap


def manifest(rev: str = "r1", created: float = 100.0) -> RunManifest:
    entries = [
        ManifestEntry(hash=f"h{i}", workload="spmv", input_id=f"M{i}",
                      scale="small", variants=["base", "tmu"],
                      cached=(i == 0), wall_time=0.5, attempts=1)
        for i in range(3)
    ]
    entries.append(ManifestEntry(
        hash="h9", workload="spkadd", input_id="T1", scale="small",
        variants=["tmu"], cached=False, wall_time=2.0, attempts=2,
        error="boom"))
    return RunManifest(jobs=2, mode="process-pool", created_at=created,
                       wall_time=4.0, entries=entries, rev=rev)


def job_record(created: float = 200.0) -> tuple[dict, list[dict]]:
    job = {
        "schema": "repro.serve/1",
        "id": "j" * 64, "state": "done", "client": "test",
        "created_at": created, "started_at": created + 1,
        "finished_at": created + 5,
        "total": 2, "cached": 0, "simulated": 2, "failed": 0,
        "cells": ["a" * 64, "b" * 64],
        "sweep": {"workloads": ["spmv"]},
    }
    events = [
        {"kind": "cell", "task_hash": "a" * 64,
         "label": "spmv/M1@small", "state": "simulated",
         "elapsed": 1.5, "attempt": 1},
        {"kind": "cell", "task_hash": "b" * 64,
         "label": "spmv/M2@small", "state": "simulated",
         "elapsed": 2.5, "attempt": 1},
        {"kind": "job", "event": "done"},
    ]
    return job, events


def layer_trace(rev: str = "r1", stalls: int = 20) -> dict:
    with obs.trace_capture() as tr:
        tr.span("tmu.tg.layer0", "layer_summary", 0, 100, {
            "layer": 0, "lanes": 4, "activations": 1,
            "iterations": 50, "merge_steps": 100,
            "stall_advances": stalls})
        tr.span("tmu.engine", "run", 0, 100, {
            "iterations": 50, "records": 10, "memory_lines": 5})
        trace = make_trace(tr, meta={"rev": rev, "workloads": "spmv"})
    return trace


@pytest.fixture
def store(tmp_path):
    with ExperimentStore(tmp_path / "db.sqlite") as db:
        yield db


# ----------------------------------------------------------------- schema


class TestSchema:
    def test_fresh_store_is_created_and_reopens(self, tmp_path):
        path = tmp_path / "db.sqlite"
        with ExperimentStore(path) as db:
            assert db.schema == STORE_SCHEMA
            assert db.counts()["runs"] == 0
        with ExperimentStore(path) as db:   # reopen: same schema, no-op
            assert db.counts()["runs"] == 0

    def test_future_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "db.sqlite"
        ExperimentStore(path).close()
        con = sqlite3.connect(path)
        con.execute("UPDATE store_meta SET value = 'repro.store/2' "
                    "WHERE key = 'schema'")
        con.commit()
        con.close()
        with pytest.raises(StoreError, match="repro.store/2"):
            open_db(path)

    def test_non_database_file_is_refused(self, tmp_path):
        path = tmp_path / "not-a-db.sqlite"
        path.write_text("this is not sqlite", encoding="utf-8")
        with pytest.raises(StoreError):
            ExperimentStore(path)

    def test_unknown_run_kind_rejected(self, store):
        with pytest.raises(StoreError, match="unknown run kind"):
            store.add_run(run_key="k", kind="nope", rev=None,
                          created_unix=None, source=None)

    def test_closed_store_raises(self, tmp_path):
        db = ExperimentStore(tmp_path / "db.sqlite")
        db.close()
        with pytest.raises(StoreError, match="closed"):
            db.runs()


# ------------------------------------------------------------- round trips


class TestManifestRoundTrip:
    def test_numbers_survive(self, store, tmp_path):
        m = manifest()
        path = m.write(tmp_path / "manifest.json")
        summary = ingest_manifest(store, path)
        assert summary["created"] and summary["rev"] == "r1"
        (stats,) = store.sql("SELECT * FROM run_stats")
        assert stats["cells"] == m.total == 4
        assert stats["cached"] == m.cache_hits == 1
        assert stats["simulated"] == m.simulated == 2
        assert stats["failed"] == len(m.failures) == 1
        assert stats["wall_time"] == m.wall_time
        assert stats["cells_per_sec"] == pytest.approx(
            m.simulated / m.wall_time)
        cells = store.sql("SELECT * FROM cells ORDER BY task_hash")
        assert len(cells) == 4
        by_hash = {c["task_hash"]: c for c in cells}
        assert by_hash["h0"]["cached"] == 1
        assert by_hash["h9"]["error"] == "boom"
        assert by_hash["h9"]["attempts"] == 2
        assert by_hash["h1"]["variants"] == "base,tmu"

    def test_double_ingest_is_a_noop(self, store, tmp_path):
        path = manifest().write(tmp_path / "manifest.json")
        first = ingest_manifest(store, path)
        before = store.counts()
        again = ingest_manifest(store, path)
        assert again["created"] is False
        assert again["run_id"] == first["run_id"]
        assert store.counts() == before


class TestSnapshotRoundTrip:
    def test_numbers_survive(self, store):
        snap = bench_snapshot("r1", cps=20.0, created=50.0)
        summary = ingest_snapshot(store, snap)
        assert summary["created"] and summary["kind"] == "snapshot"
        (stats,) = store.sql("SELECT * FROM run_stats")
        assert stats["cells"] == 10
        assert stats["simulated"] == 10
        assert stats["cells_per_sec"] == pytest.approx(20.0)
        values = metric_values(store, HEADLINE_METRIC)
        assert [v["value"] for v in values] == [pytest.approx(20.0)]

    def test_bench_filename_sets_the_kind(self, store, tmp_path):
        path = tmp_path / "BENCH_r1.json"
        path.write_text(json.dumps(bench_snapshot("r1", 20.0, 50.0)),
                        encoding="utf-8")
        assert ingest_snapshot(store, path)["kind"] == "bench"

    def test_invalid_snapshot_is_refused(self, store):
        with pytest.raises(Exception):
            ingest_snapshot(store, {"schema": "repro.obs/999"})

    def test_double_ingest_is_a_noop(self, store):
        snap = bench_snapshot("r1", cps=20.0, created=50.0)
        ingest_snapshot(store, snap)
        before = store.counts()
        assert ingest_snapshot(store, snap)["created"] is False
        assert store.counts() == before


class TestJobRoundTrip:
    def test_numbers_survive(self, store):
        job, events = job_record()
        summary = ingest_job(store, job, events=events)
        assert summary["created"] and summary["kind"] == "serve-job"
        (stats,) = store.sql("SELECT * FROM run_stats")
        assert stats["cells"] == 2 and stats["simulated"] == 2
        assert stats["wall_time"] == pytest.approx(4.0)
        assert stats["cells_per_sec"] == pytest.approx(0.5)
        cells = store.sql("SELECT * FROM cells ORDER BY task_hash")
        assert [c["workload"] for c in cells] == ["spmv", "spmv"]
        assert [c["input_id"] for c in cells] == ["M1", "M2"]
        assert cells[0]["wall_time"] == pytest.approx(1.5)

    def test_journal_file_reads_sibling_events(self, store, tmp_path):
        job, events = job_record()
        (tmp_path / "job.json").write_text(json.dumps(job),
                                           encoding="utf-8")
        (tmp_path / "job.events.jsonl").write_text(
            "\n".join(json.dumps(e) for e in events) + "\n{torn",
            encoding="utf-8")
        ingest_job(store, tmp_path / "job.json")
        assert store.counts()["cells"] == 2

    def test_double_ingest_is_a_noop(self, store):
        job, events = job_record()
        ingest_job(store, job, events=events)
        before = store.counts()
        assert ingest_job(store, job, events=events)["created"] is False
        assert store.counts() == before


class TestTraceRoundTrip:
    def test_layer_summaries_survive(self, store):
        ingest_trace(store, layer_trace(stalls=25))
        rows, _ = stall_shares(store, by="layer")
        (layer0,) = [r for r in rows if r["layer"] == "tmu.tg.layer0"]
        assert layer0["merge_steps"] == 100
        assert layer0["stalls"] == 25
        assert layer0["stall_share"] == pytest.approx(0.25)

    def test_stalls_group_by_rev_and_workload(self, store):
        ingest_trace(store, layer_trace(rev="r1", stalls=10))
        ingest_trace(store, layer_trace(rev="r2", stalls=30))
        by_rev, _ = stall_shares(store, by="rev")
        assert {r["rev"]: r["stalls"] for r in by_rev} == \
            {"r1": 10, "r2": 30}
        by_wl, _ = stall_shares(store, by="workload")
        (row,) = by_wl
        assert row["workload"] == "spmv" and row["stalls"] == 40


# ---------------------------------------------------------------- sniffing


class TestIngestFiles:
    def test_sniffer_routes_every_shape(self, store, tmp_path):
        manifest().write(tmp_path / "manifest.json")
        (tmp_path / "BENCH_r2.json").write_text(
            json.dumps(bench_snapshot("r2", 15.0, 60.0)),
            encoding="utf-8")
        (tmp_path / "trace.json").write_text(
            json.dumps(layer_trace()), encoding="utf-8")
        job, events = job_record()
        (tmp_path / "job.json").write_text(json.dumps(job),
                                           encoding="utf-8")
        kinds = {ingest_file(store, tmp_path / n)["kind"]
                 for n in ("manifest.json", "BENCH_r2.json",
                           "trace.json", "job.json")}
        assert kinds == {"manifest", "bench", "trace", "serve-job"}

    def test_unrecognized_file_raises(self, store, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}', encoding="utf-8")
        with pytest.raises(StoreError, match="unrecognized"):
            ingest_file(store, path)

    def test_directory_walk_skips_what_it_cannot_read(
            self, store, tmp_path):
        manifest().write(tmp_path / "manifest.json")
        (tmp_path / "junk.json").write_text("[1, 2]", encoding="utf-8")
        (tmp_path / "bad-schema.json").write_text(
            '{"schema": "repro.obs/999"}', encoding="utf-8")
        results = ingest_paths(store, [tmp_path])
        assert [r["kind"] for r in results] == ["manifest"]


# ------------------------------------------------------------------ queries


class TestQueries:
    def _trajectory(self, store):
        ingest_snapshot(store, bench_snapshot("r1", 6.0, 100.0))
        ingest_snapshot(store, bench_snapshot("r2", 15.0, 200.0))
        ingest_snapshot(store, bench_snapshot("r2", 16.0, 300.0))

    def test_cells_per_sec_by_rev(self, store):
        self._trajectory(store)
        rows, columns = cells_per_sec(store, by="rev")
        assert columns == ["rev", "runs", "latest", "best"]
        assert [r["rev"] for r in rows] == ["r1", "r2"]
        assert rows[1]["runs"] == 2
        assert rows[1]["latest"] == pytest.approx(16.0)
        assert rows[1]["best"] == pytest.approx(16.0)

    def test_headline_unifies_snapshots_and_manifests(
            self, store, tmp_path):
        ingest_snapshot(store, bench_snapshot("r1", 6.0, 100.0))
        ingest_manifest(store, manifest(rev="r2", created=200.0))
        values = metric_values(store, HEADLINE_METRIC)
        assert [v["kind"] for v in values] == ["snapshot", "manifest"]
        assert values[1]["value"] == pytest.approx(0.5)

    def test_runs_overview_lists_everything(self, store, tmp_path):
        self._trajectory(store)
        ingest_trace(store, layer_trace())
        rows, _ = runs_overview(store)
        assert len(rows) == 4
        assert [r["kind"] for r in rows].count("snapshot") == 3

    def test_cell_outcomes_filter(self, store, tmp_path):
        ingest_manifest(store, manifest())
        rows, _ = cell_outcomes(store)
        assert {r["workload"] for r in rows} == {"spmv", "spkadd"}
        rows, _ = cell_outcomes(store, "spkadd")
        (row,) = rows
        assert row["failed"] == 1

    def test_regression_gate_trips_on_degraded_latest(self, store):
        self._trajectory(store)
        ingest_snapshot(store, bench_snapshot("r3", 3.0, 400.0))
        rows, _, ok = regressions(store, bound=0.2)
        assert ok is False
        assert rows[0]["status"] == "baseline"
        assert rows[-1]["status"] == "REGRESSION"
        assert rows[-1]["change"] == pytest.approx(-0.5)

    def test_regression_gate_passes_within_bound(self, store):
        self._trajectory(store)
        _, _, ok = regressions(store, bound=0.2)
        assert ok is True

    def test_regression_baseline_by_rev_and_best(self, store):
        self._trajectory(store)
        ingest_snapshot(store, bench_snapshot("r3", 10.0, 400.0))
        # explicit rev: newest r2 run (16.0); latest (10.0) is -37.5%
        rows, _, ok = regressions(store, baseline="r2", bound=0.2)
        assert ok is False
        assert rows[-1]["change"] == pytest.approx(-0.375)
        # r1's 6.0 as baseline: 10.0 is an improvement
        _, _, ok = regressions(store, baseline="r1", bound=0.2)
        assert ok is True
        # 'best' picks the 16.0 run regardless of rev
        rows, _, ok = regressions(store, baseline="best", bound=0.2)
        assert ok is False

    def test_regression_unknown_rev_raises(self, store):
        self._trajectory(store)
        with pytest.raises(StoreError, match="no run with rev"):
            regressions(store, baseline="nope")

    def test_empty_store_raises(self, store):
        with pytest.raises(StoreError, match="no run"):
            regressions(store)


# -------------------------------------------------------------------- hooks


class TestAutoIngestHooks:
    def test_runtime_ingests_every_batch(self, tmp_path):
        db_path = tmp_path / "db.sqlite"
        rt = Runtime(jobs=1, cache=NullCache(), store=str(db_path))
        rt.run_cells([SimTask("spmv", "M1")])
        with ExperimentStore(db_path) as db:
            runs = db.runs()
            assert [r["kind"] for r in runs] == ["manifest"]
            (stats,) = db.sql("SELECT * FROM run_stats")
            assert stats["cells"] == 1 and stats["failed"] == 0

    def test_runtime_without_store_writes_nothing(self, tmp_path):
        rt = Runtime(jobs=1, cache=NullCache())
        rt.run_cells([SimTask("spmv", "M1")])
        assert not list(tmp_path.glob("*.sqlite"))

    def test_scheduler_ingests_finished_jobs(self, tmp_path):
        from repro.serve import JobQueue, JobStore, Scheduler, Submission

        db_path = tmp_path / "db.sqlite"

        class FakeRuntime:
            def run(self, tasks):
                from repro.runtime import (
                    RunManifest,
                    RunReport,
                    TaskOutcome,
                )
                outcomes = [TaskOutcome(task=t, record={"fake": True},
                                        cached=False, wall_time=0.0,
                                        attempts=1) for t in tasks]
                return RunReport(outcomes=outcomes,
                                 manifest=RunManifest(jobs=1,
                                                      mode="serial"))

        sched = Scheduler(JobStore(tmp_path / "jobs"), JobQueue(),
                          runtime_factory=lambda progress: FakeRuntime(),
                          store_path=str(db_path))
        sched.start()
        try:
            job, _ = sched.submit(Submission.from_dict(
                {"sweep": {"workloads": ["spmv"], "inputs": ["M1"]}}))
            import time
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if sched.store.get(job.id).state.terminal:
                    break
                time.sleep(0.02)
        finally:
            sched.stop()
        with ExperimentStore(db_path) as db:
            kinds = [r["kind"] for r in db.runs()]
            assert "serve-job" in kinds
