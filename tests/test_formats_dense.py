"""Dense container tests."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.dense import DenseMatrix, DenseVector


class TestDenseVector:
    def test_zeros(self):
        v = DenseVector.zeros(5)
        assert v.size == 5 and not v.values.any()

    def test_indexing(self):
        v = DenseVector([1.0, 2.0, 3.0])
        v[1] = 9.0
        assert v[1] == 9.0
        assert list(v) == [1.0, 9.0, 3.0]

    def test_rejects_2d(self):
        with pytest.raises(FormatError):
            DenseVector([[1.0, 2.0]])

    def test_nbytes(self):
        assert DenseVector.zeros(10).nbytes() == 80


class TestDenseMatrix:
    def test_rows_are_contiguous_fibers(self):
        m = DenseMatrix(np.arange(12.0).reshape(3, 4))
        row = m.row(1)
        assert row.tolist() == [4.0, 5.0, 6.0, 7.0]
        assert row.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(FormatError):
            DenseMatrix([1.0, 2.0])

    def test_negative_dims_rejected(self):
        with pytest.raises(FormatError):
            DenseMatrix.zeros(-1, 3)

    def test_to_numpy_is_a_copy(self):
        m = DenseMatrix.zeros(2, 2)
        n = m.to_numpy()
        n[0, 0] = 5.0
        assert m[0, 0] == 0.0
