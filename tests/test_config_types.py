"""Configuration, scaling and shared-type tests."""

import pytest

from repro.config import (
    CACHE_SCALE_DIVISOR,
    CacheConfig,
    a64fx_like,
    default_machine,
    experiment_machine,
    graviton3_like,
    scale_caches,
)
from repro.errors import SimulationError
from repro.types import as_index_array, as_value_array, geomean


class TestMachineConfig:
    def test_table5_defaults(self):
        m = default_machine()
        assert m.num_cores == 8
        assert m.core.rob_entries == 224
        assert m.core.vector_bits == 512
        assert m.l1d.size_bytes == 64 * 1024 and m.l1d.mshrs == 32
        assert m.l2.size_bytes == 512 * 1024 and m.l2.mshrs == 64
        assert m.llc.size_bytes == 8 * 1024 * 1024 and m.llc.mshrs == 128
        assert m.memory.total_gbps == 150.0
        assert m.tmu.lanes == 8
        assert m.tmu.per_lane_storage_bytes == 2048
        assert m.tmu.outstanding_requests == 128

    def test_bandwidth_helpers(self):
        m = default_machine()
        assert m.bytes_per_cycle() == pytest.approx(150.0 / 2.4)
        assert m.bytes_per_cycle_per_core() == pytest.approx(
            150.0 / 2.4 / 8)

    def test_memory_latency_composition(self):
        m = default_machine()
        lat = m.memory_latency_cycles()
        assert lat > m.memory.latency_cycles
        assert lat > m.llc.latency

    def test_with_helpers_do_not_mutate(self):
        m = default_machine()
        m2 = m.with_tmu(lanes=4)
        m3 = m.with_core(vector_bits=128)
        assert m.tmu.lanes == 8 and m2.tmu.lanes == 4
        assert m.core.vector_bits == 512 and m3.core.vector_bits == 128

    def test_cache_set_count(self):
        c = CacheConfig(64 * 1024, 4, 2, 32)
        assert c.num_sets == 256

    def test_cache_alignment_validation(self):
        with pytest.raises(SimulationError):
            CacheConfig(1000, 3, 1, 1)


class TestScaling:
    def test_divisors_match_suite(self):
        from repro.generators.suite import _SCALE_DIVISOR

        assert CACHE_SCALE_DIVISOR == _SCALE_DIVISOR

    def test_paper_scale_is_identity(self):
        assert experiment_machine("paper").llc.size_bytes == (
            default_machine().llc.size_bytes)

    def test_small_scale_shrinks_caches(self):
        m = experiment_machine("small")
        full = default_machine()
        assert m.llc.size_bytes < full.llc.size_bytes
        assert m.l1d.size_bytes < full.l1d.size_bytes
        # latencies and MSHRs are untouched
        assert m.llc.latency == full.llc.latency
        assert m.l1d.mshrs == full.l1d.mshrs

    def test_floor_keeps_caches_usable(self):
        m = scale_caches(default_machine(), 10**9)
        assert m.l1d.num_sets >= 4
        assert m.llc.num_sets >= 4

    def test_power_of_two_sets_preserved(self):
        m = scale_caches(default_machine(), 3)
        for cache in (m.l1d, m.l2, m.llc):
            assert cache.num_sets & (cache.num_sets - 1) == 0

    def test_invalid_divisor(self):
        with pytest.raises(SimulationError):
            scale_caches(default_machine(), 0)

    def test_unknown_scale(self):
        with pytest.raises(SimulationError):
            experiment_machine("huge")


class TestHostPresets:
    def test_a64fx_contrasts(self):
        a64, g3 = a64fx_like(), graviton3_like()
        # more bandwidth per core on the A64FX-like host
        assert (a64.memory.total_gbps / a64.num_cores
                > g3.memory.total_gbps / g3.num_cores)
        # bigger OoO resources on the Graviton-like host
        assert g3.core.rob_entries > a64.core.rob_entries
        assert g3.llc.size_bytes > a64.llc.size_bytes

    def test_noc_average_hops(self):
        m = default_machine()
        assert m.noc.average_hops() == pytest.approx(2.5)


class TestFastModelDefaults:
    def test_set_default_fast_drives_both_models(self):
        """The CLI's --fast/--reference switch selects the cache model
        AND the TMU engine, and every machine factory snapshots the
        choice into the (hashed) config."""
        from repro.config import (
            default_fast_engine,
            experiment_machine,
            set_default_fast,
        )

        try:
            set_default_fast(False)
            assert default_fast_engine() is False
            for m in (default_machine(), a64fx_like(), graviton3_like(),
                      experiment_machine("small")):
                assert m.fast_cache is False
                assert m.fast_engine is False
        finally:
            set_default_fast(True)
        assert default_machine().fast_engine is True
        assert default_machine().fast_cache is True

    def test_engine_inherits_process_default(self):
        import numpy as np

        from repro.config import set_default_fast_engine
        from repro.tmu import LayerMode, Program, TmuEngine
        from repro.types import VALUE_BYTES

        prog = Program("p", lanes=1)
        layer = prog.add_layer(LayerMode.SINGLE)
        arr = prog.place_array(np.zeros(2), VALUE_BYTES, "z")
        layer.dns_fbrt(beg=0, end=2).add_mem_stream(arr)
        try:
            set_default_fast_engine(False)
            assert TmuEngine(prog).fast is False
            assert TmuEngine(prog, fast=True).fast is True
        finally:
            set_default_fast_engine(True)
        assert TmuEngine(prog).fast is True


class TestSharedTypes:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_empty_is_nan(self):
        import math

        assert math.isnan(geomean([]))

    def test_array_helpers(self):
        idx = as_index_array([1, 2, 3])
        val = as_value_array([1, 2, 3])
        assert idx.dtype.kind == "i" and idx.flags["C_CONTIGUOUS"]
        assert val.dtype.kind == "f"
