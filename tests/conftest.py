"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_machine, experiment_machine
from repro.formats.coo import CooMatrix
from repro.formats.convert import coo_to_csf, coo_to_dcsr
from repro.generators.matrices import uniform_random_matrix
from repro.generators.tensors import uniform_random_tensor


@pytest.fixture(scope="session")
def machine():
    """The Table 5 machine."""
    return default_machine()


@pytest.fixture(scope="session")
def small_machine():
    """The cache-scaled machine used by experiments."""
    return experiment_machine("small")


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def small_csr():
    """A 60x60, ~5 nnz/row random CSR matrix."""
    return uniform_random_matrix(60, 60, 5, seed=7)


@pytest.fixture
def small_coo(small_csr):
    from repro.formats.convert import csr_to_coo

    return csr_to_coo(small_csr)


@pytest.fixture
def small_dcsr(small_coo):
    return coo_to_dcsr(small_coo)


@pytest.fixture
def small_tensor():
    """A 20x16x12 random COO tensor with ~300 stored entries."""
    return uniform_random_tensor((20, 16, 12), 300, seed=11)


@pytest.fixture
def small_csf(small_tensor):
    return coo_to_csf(small_tensor)


@pytest.fixture
def figure1_matrix():
    """The example matrix of the paper's Figure 1:

    rows: (a at (0,0)), (b at (1,2)), (empty), (c at (3,1), d at (3,3))
    """
    dense = np.array([
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 2.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
        [0.0, 3.0, 0.0, 4.0],
    ])
    return CooMatrix.from_dense(dense)
